"""Ablation: distribution policy on a heterogeneous cluster (§4.3).

"Distributing metadata based on MDS throughput might equalize relative
performance of all MDS nodes, [but] this may not maximize overall cluster
efficiency because different nodes may be bound by different resource
constraints."  One node here is 3x faster than its peers; vanilla
balancing equalizes raw load (wasting the fast node), capacity-weighted
balancing equalizes *utilization*.
"""

import dataclasses

from repro.api import scaling_config
from repro.api import build_simulation
from repro.mds import BalancePolicy, WeightedNodesPolicy

from .conftest import bench_scale, run_once

N_MDS = 6
SPEEDS = (3.0, 1.0, 1.0, 1.0, 1.0, 1.0)


def run_with_policy(weighted: bool):
    # a CPU-bound regime: ample cache and disk bandwidth so per-node CPU
    # speed is the binding resource the policy is supposed to exploit
    cfg = scaling_config("DynamicSubtree", n_mds=N_MDS, scale=bench_scale(),
                         cache_capacity_per_mds=800)
    cfg = cfg.replace(params=dataclasses.replace(
        cfg.params, node_speed_factors=SPEEDS, osds_per_mds=4))
    sim = build_simulation(cfg)
    # build_simulation auto-starts with the derived weighted policy; for
    # the vanilla arm we override it before any balancing round has run
    if not weighted:
        sim.cluster.balancer.policy = BalancePolicy()
    t0, t1 = cfg.measure_window
    sim.run_to(t1)
    served = [n.stats.ops_served for n in sim.cluster.nodes]
    return {
        "total_throughput": sum(sim.cluster.node_throughputs(t0, t1)),
        "fast_node_share": served[0] / max(1, sum(served)),
        "migrations": sim.cluster.balancer.migrations,
    }


def test_ablation_heterogeneous_policy(benchmark):
    def both():
        return run_with_policy(False), run_with_policy(True)

    vanilla, weighted = run_once(benchmark, both)
    print()
    print(f"vanilla balancing : total={vanilla['total_throughput']:.0f} "
          f"fast-node share={vanilla['fast_node_share']:.2f} "
          f"migrations={vanilla['migrations']}")
    print(f"capacity-weighted : total={weighted['total_throughput']:.0f} "
          f"fast-node share={weighted['fast_node_share']:.2f} "
          f"migrations={weighted['migrations']}")

    # the weighted policy lets the fast node carry at least its fair share
    assert weighted["fast_node_share"] >= vanilla["fast_node_share"] - 0.02
    # and overall the cluster is no worse off (usually better)
    assert (weighted["total_throughput"]
            > 0.9 * vanilla["total_throughput"])
