"""Shared benchmark configuration.

Benchmarks double as the figure-regeneration harness: each ``test_fig*``
runs the corresponding paper experiment once (``benchmark.pedantic`` with a
single round — these are simulations, not microbenchmarks), prints the
same series the paper plots, and asserts the qualitative shape.

``REPRO_SCALE`` (default 0.5 here) trades fidelity for wall time; the
shape assertions are written to hold from 0.4 upward — below that the
simulated systems are too small for the paper's contrasts to bind.

Figure sweeps are submitted through :mod:`repro.parallel`, which fans
independent configs across worker processes on multi-core hosts.  Set
``REPRO_PARALLEL=0`` to force serial execution (results are bit-identical
either way; only wall time changes) or ``REPRO_PARALLEL=<n>`` to pin the
worker count.
"""

import os

import pytest


def bench_scale() -> float:
    return float(os.environ.get("REPRO_SCALE", "0.5"))


@pytest.fixture
def scale():
    return bench_scale()


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)
