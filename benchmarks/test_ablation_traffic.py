"""Ablation: traffic-control replication threshold (§5.4).

The paper notes the flash-crowd response time depends on the replication
threshold.  Sweeping it shows the trade: a low threshold replicates early
(crowd absorbed quickly, but eager replication of mildly-popular items), a
high threshold funnels more of the crowd through the single authority
before relief arrives.
"""

import dataclasses

from repro.api import build_simulation, flash_config

from .conftest import bench_scale, run_once

THRESHOLDS = [20.0, 60.0, 100000.0]  # eager / default / effectively off


def run_with_threshold(threshold: float):
    cfg = flash_config(True, bench_scale())
    cfg = cfg.replace(params=dataclasses.replace(
        cfg.params, replicate_threshold=threshold,
        unreplicate_threshold=min(threshold / 2,
                                  cfg.params.unreplicate_threshold)))
    sim = build_simulation(cfg)
    sim.run_to(cfg.run_until_s)
    summary = sim.summary(window=(0.0, cfg.run_until_s))
    return {"threshold": threshold, "forwards": summary.total_forwards,
            "served": summary.total_served,
            "worst_latency_s": summary.latency.max_s}


def test_ablation_replication_threshold(benchmark):
    def sweep():
        return [run_with_threshold(t) for t in THRESHOLDS]

    results = run_once(benchmark, sweep)
    print()
    for r in results:
        print(f"threshold={r['threshold']:>8.0f}  forwards={r['forwards']:5d} "
              f"served={r['served']:5d} "
              f"worst_latency={r['worst_latency_s'] * 1000:.1f}ms")

    eager, default, off = results
    # the lower the threshold, the fewer requests funnel through the
    # authority before the item is replicated
    assert eager["forwards"] <= default["forwards"] <= off["forwards"]
    # and the crowd clears faster
    assert eager["worst_latency_s"] <= off["worst_latency_s"]
