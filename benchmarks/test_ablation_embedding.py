"""Ablation: embedded inodes / directory-grain storage (§4.5).

The paper argues the DirHash-vs-FileHash gap is the clearest evidence that
embedding inodes in directories (one I/O per directory, prefetchable) beats
scattered per-inode storage.  This ablation isolates the layout choice on a
*single* strategy: the same dynamic-subtree partition is run with its native
directory-grain layout and again forced onto the inode-grain layout.
"""

from repro.api import run_steady_state, scaling_config
from repro.api import build_simulation
from repro.storage import InodeGrainLayout

from .conftest import bench_scale, run_once


def run_with_layout(inode_grain: bool):
    cfg = scaling_config("DynamicSubtree", n_mds=6, scale=bench_scale())
    sim = build_simulation(cfg)
    if inode_grain:
        sim.cluster.strategy.layout = InodeGrainLayout()
    t0, t1 = cfg.measure_window
    sim.run_to(t1)
    return {
        "throughput": sim.cluster.mean_node_throughput(t0, t1),
        "hit_rate": sim.cluster.cluster_hit_rate(),
        "disk_reads": sim.cluster.object_store.total_reads,
        "ops": sum(c.stats.ops_completed for c in sim.clients),
    }


def test_ablation_inode_embedding(benchmark):
    def both():
        return run_with_layout(False), run_with_layout(True)

    embedded, scattered = run_once(benchmark, both)
    print()
    print(f"directory-grain (embedded inodes): thr={embedded['throughput']:.0f}"
          f" hit={embedded['hit_rate']:.3f}"
          f" reads/op={embedded['disk_reads'] / embedded['ops']:.3f}")
    print(f"inode-grain (scattered inodes):    thr={scattered['throughput']:.0f}"
          f" hit={scattered['hit_rate']:.3f}"
          f" reads/op={scattered['disk_reads'] / scattered['ops']:.3f}")

    # embedding buys hit rate (prefetch) and fewer disk reads per op
    assert embedded["hit_rate"] > scattered["hit_rate"]
    assert (embedded["disk_reads"] / embedded["ops"]
            < scattered["disk_reads"] / scattered["ops"])
