"""Figure 2: average MDS throughput as the whole system scales (§5.3).

Regenerates the paper's headline comparison: five partitioning strategies,
cluster sizes swept with file-system size and client base scaling along,
per-MDS cache fixed.  Asserts the qualitative shape:

* subtree strategies (static & dynamic) outperform full-path hashing;
* FileHash is the worst performer and degrades with scale;
* LazyHybrid scales roughly linearly (flat per-MDS curve);
* DirHash beats FileHash (the embedded-inode/prefetch contrast the paper
  highlights, §5.3.1).
"""

from repro.api import fig2

from .conftest import run_once


def test_fig2_scaling(benchmark, scale):
    result = run_once(benchmark, fig2, scale=scale, seeds=2)
    print()
    print(result.format())

    series = result.series
    sizes = [n for n, _v in series["StaticSubtree"]]

    def curve(name):
        return dict(series[name])

    static = curve("StaticSubtree")
    dynamic = curve("DynamicSubtree")
    filehash = curve("FileHash")
    dirhash = curve("DirHash")
    lazy = curve("LazyHybrid")

    largest = sizes[-1]
    # subtree strategies clearly beat full-path hashing at scale
    assert static[largest] > 1.5 * filehash[largest]
    assert dynamic[largest] > 1.5 * filehash[largest]
    # embedded inodes & prefetching: DirHash above FileHash
    assert dirhash[largest] > 1.1 * filehash[largest]
    # FileHash degrades as the system grows
    assert filehash[largest] < filehash[sizes[0]]
    # LazyHybrid is roughly flat (almost-linear scaling, §5.3)
    lazy_vals = [lazy[n] for n in sizes]
    assert max(lazy_vals) < 1.8 * min(lazy_vals)
    # dynamic stays within a modest factor of static (balancing overhead
    # can make static slightly better, §5.3.2)
    for n in sizes:
        assert dynamic[n] > 0.6 * static[n]
