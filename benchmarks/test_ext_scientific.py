"""Extension experiment A: scientific burst workload across strategies.

Not a paper figure — the paper's §5.2 motivates the LLNL-style burst
workload but only evaluates it via the flash-crowd scenario.  This bench
runs the full alternating read-burst / checkpoint workload against all
five strategies and asserts the consequences of the paper's arguments:

* only the dynamic subtree partition replicates the shared input file, so
  it spreads the read burst (low busiest-node share) and absorbs the most
  total work;
* file-grain hashing spreads the per-client checkpoint creates (§3.1.2's
  "create activity in a single directory does not correlate to individual
  metadata servers") so it beats the static/directory-grain strategies,
  which funnel everything through the shared directory's one authority.
"""

from repro.api import extA_scientific

from .conftest import run_once


def test_extA_scientific_bursts(benchmark, scale):
    result = run_once(benchmark, extA_scientific, scale=scale)
    print()
    print(result.format())

    rows = {row[0]: row for row in result.rows}
    ops = {name: row[1] for name, row in rows.items()}
    share = {name: row[2] for name, row in rows.items()}
    replications = {name: row[4] for name, row in rows.items()}

    # dynamic subtree absorbs the most burst work, via replication
    assert ops["DynamicSubtree"] == max(ops.values())
    assert ops["DynamicSubtree"] > 1.5 * ops["StaticSubtree"]
    assert replications["DynamicSubtree"] >= 1
    assert all(replications[n] == 0 for n in rows if n != "DynamicSubtree")

    # static and DirHash funnel the burst through one authority
    assert share["StaticSubtree"] > 80.0
    assert share["DirHash"] > 80.0
    assert share["DynamicSubtree"] < 50.0

    # file-grain hashing at least spreads the checkpoint creates
    assert ops["FileHash"] > ops["StaticSubtree"]
    assert ops["LazyHybrid"] > ops["StaticSubtree"]
