"""Ablation: journal-warmed vs cold MDS recovery (§4.6).

"With a log size on the order of the amount of memory in the MDS, such an
arrangement has the convenient property that the log represents an
approximation of that node's working set, allowing the memory cache to be
quickly preloaded ... on startup or after a failure."  This bench fails a
node mid-run, recovers it warm or cold, and compares how it performs in
the first seconds back.
"""

from repro.api import scaling_config
from repro.api import build_simulation
from repro.mds import fail_node, recover_node

from .conftest import bench_scale, run_once


#: an update-heavy mix with a stable working set: the §4.6 premise — "the
#: log represents an approximation of that node's working set" — holds
#: when the hot files are the mutated files
from repro.mds import OpType

UPDATE_HEAVY = {
    OpType.OPEN: 0.25,
    OpType.CLOSE: 0.15,
    OpType.STAT: 0.25,
    OpType.SETATTR: 0.30,
    OpType.READDIR: 0.05,
}


def run_recovery(warm: bool):
    cfg = scaling_config("DynamicSubtree", n_mds=6, scale=bench_scale(),
                         op_weights=UPDATE_HEAVY,
                         workload_args={"move_dir_prob": 0.05})
    sim = build_simulation(cfg)
    env = sim.env
    victim = 0
    fail_t = cfg.warmup_s + 1.0
    sim.run_to(fail_t)
    owned = fail_node(sim.cluster, victim)
    sim.run_to(fail_t + 1.0)

    done = env.event()

    def bring_back():
        loaded = yield from recover_node(sim.cluster, victim, warm=warm)
        done.succeed(loaded)

    env.process(bring_back())
    loaded = env.run(until=done)
    # hand the node its old subtrees back so it serves again
    for subtree in owned:
        if subtree in sim.ns:
            try:
                sim.cluster.strategy.delegate(subtree, victim)
            except ValueError:
                continue
    recover_t = env.now
    node = sim.cluster.nodes[victim]
    misses_before = node.stats.cache_misses
    sim.run_to(recover_t + 2.0)
    return {
        "preloaded": loaded,
        "early_misses": node.stats.cache_misses - misses_before,
        "served_after": node.stats.served_by_time.count_in(
            recover_t, recover_t + 2.0),
    }


def test_ablation_journal_warm_recovery(benchmark):
    def both():
        return run_recovery(False), run_recovery(True)

    cold, warm = run_once(benchmark, both)
    print()
    print(f"cold restart: preloaded={cold['preloaded']:4d} "
          f"early_misses={cold['early_misses']:5d} "
          f"served={cold['served_after']:.0f}")
    print(f"warm restart: preloaded={warm['preloaded']:4d} "
          f"early_misses={warm['early_misses']:5d} "
          f"served={warm['served_after']:.0f}")

    assert cold["preloaded"] == 0
    assert warm["preloaded"] > 50
    # the preloaded working set absorbs faults the cold node must take from
    # the object store; service volume is comparable (the balancer's
    # post-recovery moves dominate its exact value, so only a coarse bound
    # is asserted there)
    assert warm["early_misses"] < cold["early_misses"]
    assert warm["served_after"] > 0.75 * cold["served_after"]
