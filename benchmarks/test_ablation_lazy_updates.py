"""Ablation: Lazy Hybrid's update propagation policy (§3.1.3).

LH's viability is "predicated on the low prevalence of specific metadata
operations": every directory chmod/rename owes one deferred update per
nested file.  This ablation raises the directory-mutation rate and
compares pure on-access application against background draining — and
shows the divergence the paper warns about when updates are created
faster than they are applied.
"""

import dataclasses

from repro.api import scaling_config
from repro.api import build_simulation
from repro.mds import OpType

from .conftest import bench_scale, run_once

#: a chmod/rename-heavy op mix (an unfriendly workload for LH)
STORMY_WEIGHTS = {
    OpType.OPEN: 0.30,
    OpType.STAT: 0.30,
    OpType.CLOSE: 0.15,
    OpType.READDIR: 0.05,
    OpType.CREATE: 0.05,
    OpType.CHMOD: 0.10,
    OpType.RENAME: 0.05,
}


def run_lh(drain_rate: float):
    cfg = scaling_config("LazyHybrid", n_mds=6, scale=bench_scale())
    cfg = cfg.replace(
        op_weights=STORMY_WEIGHTS,
        workload_args={"move_dir_prob": 0.3, "dir_chmod_fraction": 0.5},
        params=dataclasses.replace(cfg.params,
                                   lh_drain_rate_per_s=drain_rate))
    sim = build_simulation(cfg)
    t0, t1 = cfg.measure_window
    sim.run_to(t1)
    on_access = sum(n.stats.lazy_updates for n in sim.cluster.nodes)
    return {
        "drain_rate": drain_rate,
        "throughput": sim.cluster.mean_node_throughput(t0, t1),
        "backlog": sim.cluster.strategy.pending_count,
        "updates_owed": sim.cluster.deferred_work_created,
        "updates_applied": on_access,
    }


def test_ablation_lazy_update_propagation(benchmark):
    def sweep():
        return [run_lh(rate) for rate in (0.0, 50.0, 5000.0)]

    results = run_once(benchmark, sweep)
    print()
    for r in results:
        label = "on-access only" if r["drain_rate"] == 0 else \
            f"drain {r['drain_rate']:.0f}/s"
        print(f"{label:15s} owed={r['updates_owed']:6d} "
              f"backlog={r['backlog']:6d} applied={r['updates_applied']:6d} "
              f"thr={r['throughput']:.0f}")

    on_access, slow_drain, fast_drain = results
    # the storm creates substantial deferred work
    assert on_access["updates_owed"] > 1000
    # a fast drain keeps the backlog well below on-access-only — though it
    # is itself bounded by journal commit throughput (~2000/s), so under a
    # sufficiently violent storm even it cannot fully converge: exactly
    # the paper's "as long as updates are eventually applied more quickly
    # than they are created" precondition
    assert fast_drain["backlog"] < 0.5 * max(1, on_access["backlog"])
    assert fast_drain["backlog"] < slow_drain["backlog"]
    # an inadequate drain rate cannot keep up: its backlog stays within
    # the same order as no drain at all
    assert slow_drain["backlog"] > 0.5 * max(1, on_access["backlog"])
    assert fast_drain["updates_applied"] > 1.5 * on_access["updates_applied"]
