"""Ablation: prefetched-inode LRU insertion position (§4.5).

The paper inserts prefetched inodes "near the tail of the cache's LRU list"
to protect known-useful data.  Under heavy cache pressure that policy can
evict prefetched siblings before first use, forfeiting the directory-grain
amortization — which is why the simulator defaults to normal insertion and
exposes the conservative cold-end policy as a parameter.  This ablation
quantifies the difference.
"""

import dataclasses

from repro.api import scaling_config
from repro.api import build_simulation

from .conftest import bench_scale, run_once


def run_with_policy(cold_insert: bool):
    cfg = scaling_config("DynamicSubtree", n_mds=6, scale=bench_scale())
    cfg = cfg.replace(params=dataclasses.replace(
        cfg.params, prefetch_cold_insert=cold_insert))
    sim = build_simulation(cfg)
    t0, t1 = cfg.measure_window
    sim.run_to(t1)
    return {
        "throughput": sim.cluster.mean_node_throughput(t0, t1),
        "hit_rate": sim.cluster.cluster_hit_rate(),
        "prefetches": sum(n.stats.prefetches for n in sim.cluster.nodes),
        "evictions": sum(n.cache.counters.evictions
                         for n in sim.cluster.nodes),
    }


def test_ablation_prefetch_insertion(benchmark):
    def both():
        return run_with_policy(False), run_with_policy(True)

    normal, cold = run_once(benchmark, both)
    print()
    print(f"normal insertion:   thr={normal['throughput']:.0f} "
          f"hit={normal['hit_rate']:.3f} evictions={normal['evictions']}")
    print(f"cold-end insertion: thr={cold['throughput']:.0f} "
          f"hit={cold['hit_rate']:.3f} evictions={cold['evictions']}")

    # cold-end insertion cannot *help* hit rate; under pressure it hurts
    assert normal["hit_rate"] >= cold["hit_rate"] - 0.01
