"""Figure 7: flash-crowd traffic control (§5.4).

A large crowd of previously-ignorant clients opens the same file nearly
simultaneously.  Asserts:

* without traffic control, forwards dominate (every non-authoritative
  node relays the request) and one node serves every reply;
* with traffic control, the authority replicates the hot item and the
  other nodes answer most requests themselves — fewer forwards, faster
  crowd drain.
"""

from repro.api import fig7
from repro.api import build_simulation
from repro.api import flash_config

from .conftest import run_once


def test_fig7_flash_crowd(benchmark, scale):
    result = run_once(benchmark, fig7, scale=scale)
    print()
    print(result.format())

    off = result.series["off"]
    on = result.series["on"]
    off_replies = sum(r for (_t, r, _f) in off)
    off_forwards = sum(f for (_t, _r, f) in off)
    on_replies = sum(r for (_t, r, _f) in on)
    on_forwards = sum(f for (_t, _r, f) in on)

    assert off_replies > 0 and on_replies > 0
    # without traffic control most requests take a forwarding hop
    assert off_forwards > 0.5 * off_replies
    # traffic control slashes forwarding
    assert on_forwards < 0.5 * off_forwards
    # and spreads the reply load: peak cluster reply rate is higher
    assert max(r for (_t, r, _f) in on) > max(r for (_t, r, _f) in off)


def test_flash_crowd_served_by_many_nodes_with_tc(scale):
    cfg = flash_config(True, scale)
    sim = build_simulation(cfg)
    sim.run_to(cfg.run_until_s)
    serving = [n.stats.ops_served for n in sim.cluster.nodes]
    assert sum(1 for s in serving if s > 0) >= sim.cluster.n_mds - 1


def test_flash_crowd_served_by_one_node_without_tc(scale):
    cfg = flash_config(False, scale)
    sim = build_simulation(cfg)
    sim.run_to(cfg.run_until_s)
    serving = sorted((n.stats.ops_served for n in sim.cluster.nodes),
                     reverse=True)
    assert serving[0] > 10 * max(1, serving[1])
