"""Figure 3: fraction of MDS cache devoted to prefix inodes (§5.3.1).

Hashed distributions scatter metadata, so every node must replicate the
ancestor directories of whatever it serves; subtree partitions keep
prefixes local and few.  Asserts:

* FileHash devotes by far the largest share, growing with cluster size;
* DirHash sits between FileHash and the subtree strategies;
* subtree strategies stay low and roughly flat.
"""

from repro.api import fig3

from .conftest import run_once


def test_fig3_prefix_cache(benchmark, scale):
    result = run_once(benchmark, fig3, scale=scale, seeds=2)
    print()
    print(result.format())

    series = {name: dict(points) for name, points in result.series.items()}
    sizes = sorted(series["StaticSubtree"])
    largest, smallest = sizes[-1], sizes[0]

    # hashing pays heavily for prefix replication
    assert series["FileHash"][largest] > 2.0 * series["StaticSubtree"][largest]
    assert series["FileHash"][largest] > series["DirHash"][largest]
    assert series["DirHash"][largest] > series["StaticSubtree"][largest]
    # FileHash's prefix burden grows with the cluster
    assert series["FileHash"][largest] > series["FileHash"][smallest]
    # subtree partitions stay in a narrow low band
    for n in sizes:
        assert series["StaticSubtree"][n] < 0.30
        assert series["DynamicSubtree"][n] < 0.35
