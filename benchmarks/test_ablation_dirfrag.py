"""Ablation: dynamic directory fragmentation (§4.3).

A create storm into one giant shared directory is the scenario dirfrag
exists for: with fragmentation the directory's entries are hashed across
the cluster by name and creates spread over every node; without it a
single authority absorbs the whole storm.
"""

import dataclasses

from repro.clients import Client
from repro.mds import MdsCluster, MdsRequest, OpType, SimParams
from repro.namespace import Namespace, build_tree
from repro.namespace import path as pathmod
from repro.partition import make_strategy
from repro.sim import Environment, RngStreams

from .conftest import bench_scale, run_once


class CreateStormWorkload:
    """Every client creates files in one shared directory as fast as it can."""

    def __init__(self, target_dir, think_s=0.002):
        self.target_dir = target_dir
        self.think_s = think_s

    def next_delay(self, client):
        return client.rng.expovariate(1.0 / self.think_s)

    def next_op(self, client):
        count = client.scratch.setdefault("n", 0)
        client.scratch["n"] = count + 1
        name = f"s{client.client_id}_{count}"
        return MdsRequest(op=OpType.CREATE,
                          path=pathmod.join(self.target_dir, name),
                          client_id=client.client_id)


def run_storm(dirfrag_enabled: bool, n_clients=None, duration=None):
    scale = bench_scale()
    n_clients = n_clients or max(16, int(120 * scale))
    duration = duration or 2.0 + 2.0 * scale
    env = Environment()
    streams = RngStreams(17)
    ns = Namespace()
    build_tree(ns, {"shared": {"seed.txt": 1},
                    "other": {"x.txt": 1}})
    strategy = make_strategy("DynamicSubtree", 6)
    strategy.bind(ns)
    params = SimParams(dirfrag_enabled=dirfrag_enabled,
                       dirfrag_size_threshold=40,
                       dirfrag_unfrag_size=8,
                       balance_interval_s=1e9)  # isolate dirfrag
    cluster = MdsCluster(env, ns, strategy, params)
    cluster.start()
    workload = CreateStormWorkload(pathmod.parse("/shared"))
    clients = []
    for i in range(n_clients):
        c = Client(env, i, cluster, workload, streams.py_stream(f"c{i}"))
        c.start()
        clients.append(c)
    env.run(until=duration)
    serving = [n.stats.ops_served for n in cluster.nodes]
    return {
        "total_created": sum(c.stats.ops_completed for c in clients),
        "serving_nodes": sum(1 for s in serving if s > 10),
        "max_node_share": max(serving) / max(1, sum(serving)),
        "fragmented": bool(strategy.fragmented),
    }


def test_ablation_dirfrag_create_storm(benchmark):
    def both():
        return run_storm(False), run_storm(True)

    off, on = run_once(benchmark, both)
    print()
    print(f"dirfrag off: created={off['total_created']} "
          f"serving_nodes={off['serving_nodes']} "
          f"max_share={off['max_node_share']:.2f}")
    print(f"dirfrag on:  created={on['total_created']} "
          f"serving_nodes={on['serving_nodes']} "
          f"max_share={on['max_node_share']:.2f}")

    assert on["fragmented"] and not off["fragmented"]
    # the storm spreads across the cluster once the directory fragments
    assert on["serving_nodes"] > off["serving_nodes"]
    assert on["max_node_share"] < off["max_node_share"]
    # and the cluster absorbs more creates in the same time
    assert on["total_created"] > off["total_created"]
