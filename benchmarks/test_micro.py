"""Microbenchmarks of the hot data structures and kernel.

These are true pytest-benchmark measurements (many rounds): the simulator's
throughput rests on the event calendar, the hierarchical LRU, authority
lookups and decaying counters.
"""

import pytest

from repro.cache import MetadataCache
from repro.mds.popularity import PopularityMap
from repro.namespace import Namespace, SnapshotSpec, generate_snapshot
from repro.partition import make_strategy
from repro.sim import Environment, RngStreams


@pytest.fixture(scope="module")
def snapshot():
    ns = Namespace()
    generate_snapshot(ns, SnapshotSpec(n_users=20, files_per_user=100),
                      RngStreams(7))
    return ns


def test_event_loop_throughput(benchmark):
    def run_chain():
        env = Environment()

        def ping(n):
            for _ in range(n):
                yield env.timeout(0.001)

        env.process(ping(2000))
        env.run()

    benchmark(run_chain)


def test_lru_insert_evict_cycle(benchmark):
    cache = MetadataCache(512)
    cache.insert(1, None, True)
    cache.pin(1)
    counter = [2]

    def churn():
        base = counter[0]
        for i in range(1000):
            cache.insert(base + i, 1, False)
        counter[0] = base + 1000

    benchmark(churn)


def test_lru_hit_path(benchmark):
    cache = MetadataCache(4096)
    cache.insert(1, None, True)
    for i in range(2, 2002):
        cache.insert(i, 1, False)

    def hits():
        for i in range(2, 1002):
            cache.get(i)

    benchmark(hits)


@pytest.mark.parametrize("name", ["DynamicSubtree", "FileHash", "DirHash"])
def test_authority_lookup(benchmark, snapshot, name):
    strat = make_strategy(name, 16)
    strat.bind(snapshot)
    inos = [node.ino for node in snapshot.iter_subtree(1)][:500]

    def lookups():
        for ino in inos:
            strat.authority_of_ino(ino)

    benchmark(lookups)


def test_namespace_resolve(benchmark, snapshot):
    paths = [snapshot.path_of(node.ino)
             for node in snapshot.iter_subtree(1)][:500]

    def resolves():
        for path in paths:
            snapshot.resolve(path)

    benchmark(resolves)


def test_popularity_counter_updates(benchmark):
    pm = PopularityMap(1.0)

    def updates():
        for i in range(1000):
            pm.add(i % 50, i * 0.001)

    benchmark(updates)
