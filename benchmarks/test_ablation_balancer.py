"""Ablation: load-balancing aggressiveness (§4.3, §5.3.2).

The paper observes that perfectly balanced distributions can be
counterproductive, and that its own balancing metric is primitive.  This
ablation sweeps the heartbeat's imbalance threshold — from "never balance"
(equivalent to a static partition) to hair-trigger — under the steady
scaling workload, where balancing has little to gain and mostly costs
migrations and client re-discovery.
"""

import dataclasses

from repro.api import scaling_config
from repro.api import build_simulation

from .conftest import bench_scale, run_once

THRESHOLDS = [1e9, 0.25, 0.02]  # off / default / aggressive


def run_with_threshold(threshold: float):
    cfg = scaling_config("DynamicSubtree", n_mds=6, scale=bench_scale())
    cfg = cfg.replace(params=dataclasses.replace(
        cfg.params, balance_threshold=threshold))
    sim = build_simulation(cfg)
    t0, t1 = cfg.measure_window
    sim.run_to(t1)
    migrations = sim.cluster.balancer.migrations if sim.cluster.balancer else 0
    return {
        "threshold": threshold,
        "throughput": sim.cluster.mean_node_throughput(t0, t1),
        "migrations": migrations,
        "forward_fraction": sim.cluster.forward_fraction(),
    }


def test_ablation_balancer_aggressiveness(benchmark):
    def sweep():
        return [run_with_threshold(t) for t in THRESHOLDS]

    results = run_once(benchmark, sweep)
    print()
    for r in results:
        label = ("off" if r["threshold"] > 1e6 else f"θ={r['threshold']}")
        print(f"balancing {label:8s} thr={r['throughput']:.0f} "
              f"migrations={r['migrations']} fwd={r['forward_fraction']:.3f}")

    off, default, aggressive = results
    assert off["migrations"] == 0
    # more aggressive balancing does more migrations...
    assert aggressive["migrations"] >= default["migrations"]
    # ...and more migrations mean more client re-discovery forwarding
    assert aggressive["forward_fraction"] >= off["forward_fraction"]
    # under a steady workload, balancing must not be a large win — the
    # paper's "fairness is not always best" point
    assert off["throughput"] > 0.7 * max(r["throughput"] for r in results)
