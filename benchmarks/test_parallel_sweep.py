"""Benchmark: the parallel sweep executor vs forced-serial execution.

Times a small Fig. 2-style sweep both ways and asserts the determinism
contract: the process pool must return bit-identical results to the serial
path.  ``tools/bench_sweep.py`` is the full standalone version of this
measurement (it also writes ``BENCH_parallel.json``).
"""

from repro.api import require_ok, run_many, scaling_config

from .conftest import bench_scale, run_once


def sweep_configs():
    scale = bench_scale()
    return [scaling_config(name, 4, scale, seed=42 + 7 * s)
            for name in ("DynamicSubtree", "StaticSubtree")
            for s in range(2)]


def test_sweep_serial(benchmark):
    results = run_once(
        benchmark,
        lambda: require_ok(run_many(sweep_configs(), mode="serial")))
    assert len(results) == 4


def test_sweep_parallel_matches_serial(benchmark):
    configs = sweep_configs()
    serial = require_ok(run_many(configs, mode="serial"))
    parallel = run_once(
        benchmark,
        lambda: require_ok(run_many(configs, mode="parallel")))
    assert parallel == serial
