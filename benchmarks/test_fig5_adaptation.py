"""Figures 5 & 6: dynamic vs static subtree partitioning under a workload
shift (§5.3.2, §5.3.3).

One experiment feeds both figures: half the clients migrate to the
subtrees one MDS serves and start creating files there.  Asserts:

* Fig. 5 — after the shift, the dynamic partition's average per-MDS
  throughput recovers above the static partition's (re-delegation spreads
  the hot region), and the static partition shows a persistent imbalance;
* Fig. 6 — forwarding rises for the dynamic partition after its balancer
  migrates metadata (clients must rediscover locations), ending above the
  static partition's residual.
"""

from repro.api import fig5, fig6, run_shift_experiment

from .conftest import run_once


def test_fig5_and_fig6_workload_shift(benchmark, scale):
    results = run_once(benchmark, run_shift_experiment, scale=scale)
    f5 = fig5(scale, shift_results=results)
    f6 = fig6(scale, shift_results=results)
    print()
    print(f5.format())
    print()
    print(f6.format())

    dyn = results["DynamicSubtree"]
    sta = results["StaticSubtree"]
    shift_t = dyn.config.workload_args["shift_time_s"]

    # recovery window: from one balance round after the shift to a few
    # rounds later (the long tail degrades as the created namespace grows)
    lo = shift_t + 1.5
    hi = shift_t + 6.5
    dyn_window = [avg for (t, _mn, avg, _mx) in dyn.throughput_series
                  if lo <= t <= hi]
    sta_window = [avg for (t, _mn, avg, _mx) in sta.throughput_series
                  if lo <= t <= hi]
    assert dyn_window and sta_window
    dyn_avg = sum(dyn_window) / len(dyn_window)
    sta_avg = sum(sta_window) / len(sta_window)
    assert dyn_avg > 1.15 * sta_avg, (dyn_avg, sta_avg)

    # static stays unbalanced: its *least* loaded node never recovers to
    # its pre-shift level, while the dynamic partition lifts its weakest
    # node above the static average at some point in the window
    sta_min = [mn for (t, mn, _avg, _mx) in sta.throughput_series
               if lo <= t <= hi]
    dyn_min = [mn for (t, mn, _avg, _mx) in dyn.throughput_series
               if lo <= t <= hi]
    pre_avg = [avg for (t, _mn, avg, _mx) in sta.throughput_series
               if t < shift_t - 1.0]
    assert max(sta_min) < 0.8 * (sum(pre_avg) / len(pre_avg))
    assert max(dyn_min) > sta_avg

    # Fig. 6: dynamic partitioning ends with a higher forwarding residual
    dyn_fwd = [f for (t, f) in dyn.forward_series if t >= shift_t + 1.0]
    sta_fwd = [f for (t, f) in sta.forward_series if t >= shift_t + 1.0]
    assert sum(dyn_fwd) / len(dyn_fwd) > sum(sta_fwd) / len(sta_fwd)
