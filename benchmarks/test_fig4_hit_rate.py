"""Figure 4: cache hit rate vs cache size (§5.3.1).

Sweeps per-node cache capacity as a fraction of total metadata with a
fixed cluster.  Asserts:

* every strategy's hit rate improves (weakly) as the cache grows;
* hit rates converge at large caches, diverge at small ones;
* subtree partitioning leads at small caches; LazyHybrid (no prefetch,
  no locality) trails.
"""

from repro.api import fig4

from .conftest import run_once

FRACTIONS = [0.05, 0.15, 0.3, 0.5]


def test_fig4_hit_rate(benchmark, scale):
    result = run_once(benchmark, fig4, scale=scale, seeds=1,
                      fractions=FRACTIONS)
    print()
    print(result.format())

    series = {name: dict(points) for name, points in result.series.items()}
    small, large = FRACTIONS[0], FRACTIONS[-1]

    for name, curve in series.items():
        assert curve[large] >= curve[small] - 0.02, name
    # subtree beats the scattered distributions when memory is scarce
    assert series["StaticSubtree"][small] > series["FileHash"][small]
    assert series["StaticSubtree"][small] > series["LazyHybrid"][small]
    assert series["DirHash"][small] > series["LazyHybrid"][small]
    # convergence: the spread narrows as cache grows
    spread_small = (max(c[small] for c in series.values())
                    - min(c[small] for c in series.values()))
    spread_large = (max(c[large] for c in series.values())
                    - min(c[large] for c in series.values()))
    assert spread_large < spread_small
