#!/usr/bin/env python3
"""Trace record/replay demo: one workload, replayed on every strategy.

Records a general-purpose run once, then replays the *identical* operation
stream against all five partitioning strategies — the controlled,
apples-to-apples comparison the paper's future-work section calls for with
real traces.  Because replay preserves per-client timing, the differences
below come only from how each strategy distributes the metadata.

Run:  python examples/trace_replay.py
"""

import io

from repro.clients import Client, GeneralWorkload, GeneralWorkloadSpec
from repro.mds import MdsCluster, SimParams
from repro.metrics import format_table, summarize
from repro.namespace import Namespace, SnapshotSpec, generate_snapshot
from repro.partition import make_strategy, strategy_names
from repro.sim import Environment, RngStreams
from repro.trace import RecordingWorkload, Trace, TraceReplayWorkload

SEED = 31
N_MDS = 4
N_CLIENTS = 32
RECORD_UNTIL = 4.0


def build_cluster(strategy_name):
    env = Environment()
    streams = RngStreams(SEED)
    ns = Namespace()
    snapshot = generate_snapshot(
        ns, SnapshotSpec(n_users=12, files_per_user=50), streams)
    strategy = make_strategy(strategy_name, N_MDS)
    strategy.bind(ns)
    cluster = MdsCluster(env, ns, strategy,
                         SimParams(cache_capacity=350, journal_capacity=350))
    cluster.start()
    return env, streams, ns, snapshot, cluster


def record() -> Trace:
    env, streams, ns, snapshot, cluster = build_cluster("DynamicSubtree")
    workload = RecordingWorkload(
        GeneralWorkload(ns, snapshot.user_roots,
                        GeneralWorkloadSpec(think_time_s=0.02)))
    for i in range(N_CLIENTS):
        Client(env, i, cluster, workload, streams.py_stream(f"c{i}")).start()
    env.run(until=RECORD_UNTIL)
    return workload.trace


def replay(trace: Trace, strategy_name: str):
    env, streams, ns, snapshot, cluster = build_cluster(strategy_name)
    workload = TraceReplayWorkload(trace)
    clients = [Client(env, i, cluster, workload, streams.py_stream(f"c{i}"))
               for i in sorted(trace.clients())]
    for client in clients:
        client.start()
    env.run(until=RECORD_UNTIL + 2.0)
    latencies = [l for c in clients for l in c.stats.latencies]
    return {
        "completed": sum(c.stats.ops_completed for c in clients),
        "latency": summarize(latencies),
        "hit_rate": cluster.cluster_hit_rate(),
        "forwarded": cluster.forward_fraction(),
    }


def main() -> None:
    print("recording a general-purpose run ...")
    trace = record()
    buffer = io.StringIO()
    trace.dump(buffer)
    print(f"captured {len(trace)} operations from {len(trace.clients())} "
          f"clients over {trace.duration():.1f}s "
          f"({len(buffer.getvalue()) // 1024} KiB as JSONL)\n")

    rows = []
    for name in strategy_names():
        print(f"replaying on {name} ...")
        result = replay(trace, name)
        lat = result["latency"]
        rows.append([name, result["completed"],
                     f"{lat.p50 * 1000:.2f}", f"{lat.p99 * 1000:.2f}",
                     f"{result['hit_rate']:.3f}",
                     f"{100 * result['forwarded']:.2f}%"])
    print()
    print(format_table(
        ["strategy", "ops replayed", "p50 ms", "p99 ms", "hit rate",
         "forwarded"],
        rows, title="Identical trace, five partitioning strategies"))


if __name__ == "__main__":
    main()
