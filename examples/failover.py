#!/usr/bin/env python3
"""Failover demo: kill an MDS mid-run, take over, warm-restart it.

Exercises §2.1.2 (workload redistribution after failure) and §4.6 (the
shared-storage journal approximates the node's working set, so a successor
— or the recovering node itself — preloads its cache from the log instead
of faulting everything in from the object store).

Run:  python examples/failover.py
"""

from repro.clients import Client, GeneralWorkload, GeneralWorkloadSpec
from repro.mds import MdsCluster, SimParams, fail_node, recover_node
from repro.metrics import format_table
from repro.namespace import Namespace, SnapshotSpec, generate_snapshot
from repro.partition import make_strategy
from repro.sim import Environment, RngStreams

N_MDS = 4
VICTIM = 1


def main() -> None:
    env = Environment()
    streams = RngStreams(99)
    ns = Namespace()
    snapshot = generate_snapshot(
        ns, SnapshotSpec(n_users=16, files_per_user=60), streams)
    strategy = make_strategy("DynamicSubtree", N_MDS)
    strategy.bind(ns)
    cluster = MdsCluster(env, ns, strategy,
                         SimParams(cache_capacity=500, journal_capacity=500))
    cluster.start()

    workload = GeneralWorkload(ns, snapshot.user_roots,
                               GeneralWorkloadSpec(think_time_s=0.01))
    clients = [Client(env, i, cluster, workload,
                      streams.py_stream(f"c{i}")) for i in range(48)]
    for client in clients:
        client.start()

    def snapshot_row(label, t0, t1):
        rates = cluster.node_throughputs(t0, t1)
        return [label] + [f"{r:.0f}" for r in rates] + [
            f"{cluster.forward_fraction():.3f}"]

    rows = []
    env.run(until=2.0)
    rows.append(snapshot_row("healthy (0-2s)", 0.5, 2.0))

    owned = len(strategy.subtrees_of(VICTIM))
    journal_entries = len(cluster.nodes[VICTIM].journal)
    print(f"t=2.0s: failing mds{VICTIM} "
          f"({owned} delegations, {journal_entries} journal entries, "
          f"{len(cluster.nodes[VICTIM].cache)} cached inodes)")
    reassigned = fail_node(cluster, VICTIM)
    print(f"        {len(reassigned)} subtrees reassigned to survivors; "
          "journal survives on shared OSDs")

    env.run(until=4.0)
    rows.append(snapshot_row("degraded (2-4s)", 2.0, 4.0))

    print(f"t=4.0s: recovering mds{VICTIM} with journal warm-restart")
    done = env.event()

    def recovery():
        loaded = yield from recover_node(cluster, VICTIM, warm=True)
        done.succeed(loaded)

    env.process(recovery())
    loaded = env.run(until=done)
    print(f"        cache preloaded with {loaded} inodes from the log "
          f"(cache now holds {len(cluster.nodes[VICTIM].cache)})")

    env.run(until=7.0)
    rows.append(snapshot_row("recovered (4-7s)", 4.5, 7.0))

    headers = (["phase"] + [f"mds{i} ops/s" for i in range(N_MDS)]
               + ["fwd frac"])
    print()
    print(format_table(headers, rows, title="Throughput through the failure"))
    errors = sum(c.stats.errors for c in clients)
    total = sum(c.stats.ops_completed for c in clients)
    print(f"\nclient ops: {total}, errors: {errors} "
          f"({100 * errors / total:.2f}%) — no request was lost")


if __name__ == "__main__":
    main()
