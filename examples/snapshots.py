#!/usr/bin/env python3
"""Directory-object snapshots demo (§4.6).

The long-term metadata tier stores each directory as a copy-on-write
B-tree object; because mutations never modify old nodes, freezing a
snapshot costs O(1) and old states stay readable forever.  This demo
builds a project directory, snapshots it through a series of edits, and
then reads every historical state back — plus shows the incremental
write cost (B-tree nodes rewritten) that the paper's "minimal
modifications to on-disk structures" refers to.

Run:  python examples/snapshots.py
"""

from repro.metrics import format_table
from repro.namespace import Namespace, build_tree
from repro.namespace import path as pathmod
from repro.storage.dirstore import DirectoryObjectStore


def main() -> None:
    ns = Namespace()
    build_tree(ns, {"proj": {f"src{i:02d}.c": 100 + i for i in range(40)}})
    store = DirectoryObjectStore(min_degree=4)
    store.load_from_namespace(ns)
    proj_path = pathmod.parse("/proj")
    proj = ns.resolve(proj_path).ino

    print(f"/proj holds {store.entry_count(proj)} entries in a B-tree of "
          f"depth {store.object_depth(proj)}\n")

    history = []
    edits = [
        ("v1", "create notes.txt",
         lambda: store.apply_create(
             proj, "notes.txt", ns.create_file(proj_path + ("notes.txt",),
                                               size=1))),
        ("v2", "delete src00.c",
         lambda: (ns.unlink(proj_path + ("src00.c",)),
                  store.apply_unlink(proj, "src00.c"))[-1]),
        ("v3", "grow notes.txt to 4096",
         lambda: store.apply_update(
             proj, "notes.txt",
             ns.setattr(proj_path + ("notes.txt",), size=4096))),
        ("v4", "create 10 results files",
         lambda: sum(store.apply_create(
             proj, f"res{i}.dat",
             ns.create_file(proj_path + (f"res{i}.dat",), size=8))
             for i in range(10))),
    ]

    store.snapshot_directory(proj, "v0")
    rows = [["v0", "(baseline)", 0, store.entry_count(proj)]]
    for tag, description, apply in edits:
        nodes_written = apply()
        store.snapshot_directory(proj, tag)
        rows.append([tag, description, nodes_written,
                     store.entry_count(proj)])
        history.append(tag)

    print(format_table(
        ["snapshot", "edit", "B-tree nodes rewritten", "entries after"],
        rows, title="Edit history (each snapshot froze in O(1))"))

    print()
    for tag in ["v0"] + history:
        names = [n for n, _e in store.read_snapshot(proj, tag)]
        marker = []
        if "notes.txt" in names:
            size = dict(store.read_snapshot(proj, tag))["notes.txt"].size
            marker.append(f"notes.txt={size}B")
        if "src00.c" not in names:
            marker.append("src00.c gone")
        if any(n.startswith("res") for n in names):
            marker.append("results present")
        print(f"  {tag}: {len(names):2d} entries   {', '.join(marker)}")

    live = {n for n, _e in store.readdir(proj)}
    v0 = {n for n, _e in store.read_snapshot(proj, "v0")}
    print(f"\nlive != v0: {len(live - v0)} added, {len(v0 - live)} removed "
          "— every snapshot stayed intact while the live tree moved on")
    store.verify_against(ns)
    print("store verified against the live namespace")


if __name__ == "__main__":
    main()
