#!/usr/bin/env python3
"""Data-placement demo: clients compute file layouts without the MDS.

§2.1.1's design: once a client holds a file's inode number, it can compute
the identity and location of every object of the file — striping, replica
sets, everything — with no further MDS interaction, because placement is a
deterministic pseudo-random function.  This demo shows the computation, the
balance it achieves, and the minimal data movement when the OSD pool grows.

Run:  python examples/data_placement.py
"""

from collections import Counter

from repro.metrics import format_table
from repro.placement import (Device, FileMapper, StableHashPlacement,
                             StripeLayout)


def main() -> None:
    layout = StripeLayout(object_size=4 << 20, n_replicas=3)
    placement = StableHashPlacement.uniform(12)
    mapper = FileMapper(placement, layout)

    # --- one file's complete map, straight from (ino, size) --------------
    ino, size = 0x2A7, 18 << 20  # an 18 MiB file
    extents = mapper.map_file(ino, size)
    rows = [[f"{e.object_id:#x}", f"{e.file_offset >> 20} MiB",
             f"{e.length >> 20 or 1} MiB",
             " ".join(f"osd{d}" for d in e.osds)] for e in extents]
    print(format_table(
        ["object", "offset", "length", "replicas (primary first)"], rows,
        title=f"Layout of ino {ino:#x} ({size >> 20} MiB), computed "
              "client-side"))

    # --- balance across the pool -----------------------------------------
    counts = Counter()
    n_files = 2000
    for f in range(n_files):
        for extent in mapper.map_file(1000 + f, 8 << 20):
            for osd in extent.osds:
                counts[osd] += 1
    mean = sum(counts.values()) / len(placement.devices)
    spread = (max(counts.values()) - min(counts.values())) / mean
    print(f"\n{n_files} files x 2 objects x 3 replicas over 12 OSDs: "
          f"per-OSD load within {100 * spread:.1f}% of mean")

    # --- expansion: only the fair share moves ------------------------------
    grown = placement.expanded([Device(12), Device(13), Device(14)])
    grown_mapper = FileMapper(grown, layout)
    moved = total = 0
    for f in range(n_files):
        before = mapper.map_file(1000 + f, 8 << 20)
        after = grown_mapper.map_file(1000 + f, 8 << 20)
        for old, new in zip(before, after):
            total += 1
            if old.osds[0] != new.osds[0]:
                moved += 1
    print(f"adding 3 OSDs (25% more capacity) moved "
          f"{100 * moved / total:.1f}% of primaries "
          "(ideal: 20% — new capacity's share)")

    # --- the MDS-side cost ---------------------------------------------------
    print("\nMDS metadata required for all of this: the inode number and "
          "file size.\nNo block lists, no object tables — the paper's "
          '"fixed size of only a few bytes".')


if __name__ == "__main__":
    main()
