#!/usr/bin/env python3
"""Flash-crowd demo: traffic control absorbing 1,200 simultaneous opens.

Reproduces the §5.4 scenario interactively: a crowd of clients that have
never seen a file all open it within a tenth of a second.  The run is done
twice — traffic control off, then on — and the per-node reply/forward
counts show the difference: without it every node forwards to the single
authority; with it the authority replicates the hot metadata cluster-wide
and every node answers.

Run:  python examples/flash_crowd.py
"""

import dataclasses

from repro.clients import Client, FlashCrowdSpec, FlashCrowdWorkload
from repro.mds import MdsCluster, SimParams
from repro.metrics import format_table
from repro.namespace import Namespace, build_tree
from repro.namespace import path as pathmod
from repro.partition import make_strategy
from repro.sim import Environment, RngStreams

N_MDS = 5
N_CLIENTS = 1200
TARGET = pathmod.parse("/data/results/summary.dat")


def run_crowd(traffic_control: bool) -> dict:
    env = Environment()
    streams = RngStreams(7)
    ns = Namespace()
    build_tree(ns, {"data": {"results": {"summary.dat": 1 << 30},
                             "raw": {"a.dat": 1, "b.dat": 1}}})
    strategy = make_strategy("DynamicSubtree", N_MDS)
    strategy.bind(ns)
    params = SimParams(traffic_control=traffic_control,
                       replicate_threshold=80.0,
                       popularity_halflife_s=0.5,
                       balance_interval_s=1e9)
    cluster = MdsCluster(env, ns, strategy, params)
    cluster.start()

    workload = FlashCrowdWorkload(
        ns, TARGET, FlashCrowdSpec(start_s=0.2, arrival_jitter_s=0.1,
                                   requests_per_client=1))
    clients = [Client(env, i, cluster, workload,
                      streams.py_stream(f"c{i}")) for i in range(N_CLIENTS)]
    for client in clients:
        client.start()
    env.run(until=3.0)

    latencies = sorted(l for c in clients for l in c.stats.latencies)
    return {
        "nodes": [(n.node_id, n.stats.ops_served, n.stats.forwards)
                  for n in cluster.nodes],
        "authority": strategy.authority_of_ino(ns.resolve(TARGET).ino),
        "p50_ms": latencies[len(latencies) // 2] * 1000,
        "p99_ms": latencies[int(len(latencies) * 0.99)] * 1000,
        "replicated": ns.resolve(TARGET).ino in cluster.hot_inos
                      or any(n.stats.replications_pushed
                             for n in cluster.nodes),
    }


def report(label: str, result: dict) -> None:
    print(f"\n=== traffic control {label} "
          f"(authority: mds{result['authority']}) ===")
    rows = [[f"mds{i}", served, forwards]
            for i, served, forwards in result["nodes"]]
    print(format_table(["node", "replies", "forwards"], rows))
    print(f"replicated cluster-wide: {result['replicated']}")
    print(f"client latency: p50 {result['p50_ms']:.1f} ms, "
          f"p99 {result['p99_ms']:.1f} ms")


def main() -> None:
    print(f"{N_CLIENTS} clients open {pathmod.format_path(TARGET)} "
          f"within ~0.1 s on a {N_MDS}-node cluster")
    off = run_crowd(False)
    on = run_crowd(True)
    report("OFF", off)
    report("ON", on)
    speedup = off["p99_ms"] / on["p99_ms"]
    print(f"\ntraffic control cut p99 latency by {speedup:.1f}x")


if __name__ == "__main__":
    main()
