#!/usr/bin/env python3
"""Scientific-computing workload demo: shared-file and checkpoint bursts.

Models the LLNL-style behaviour the paper's evaluation draws on (§5.2):
a cluster of compute clients alternates between opening the same input
file in unison, computing, and writing per-client checkpoints into one
shared directory.  The demo shows how the burst phases land on the MDS
cluster and how traffic control reacts to the shared-file burst.

Run:  python examples/scientific_burst.py
"""

from repro.clients import Client, ScientificSpec, ScientificWorkload
from repro.mds import MdsCluster, SimParams
from repro.metrics import format_table
from repro.namespace import Namespace, SnapshotSpec, generate_snapshot
from repro.namespace import path as pathmod
from repro.partition import make_strategy
from repro.sim import Environment, RngStreams

N_MDS = 4
N_CLIENTS = 120
PHASE_LEN_S = 1.0


def main() -> None:
    env = Environment()
    streams = RngStreams(23)
    ns = Namespace()
    snapshot = generate_snapshot(
        ns, SnapshotSpec(n_users=8, files_per_user=40), streams)

    strategy = make_strategy("DynamicSubtree", N_MDS)
    strategy.bind(ns)
    cluster = MdsCluster(env, ns, strategy,
                         SimParams(replicate_threshold=100.0))
    cluster.start()

    shared_dir = snapshot.user_roots[0]
    workload = ScientificWorkload(ns, shared_dir,
                                  ScientificSpec(phase_len_s=PHASE_LEN_S))
    for i in range(N_CLIENTS):
        Client(env, i, cluster, workload,
               streams.py_stream(f"rank{i}")).start()

    phase_names = {0: "shared-file open burst", 1: "compute",
                   2: "checkpoint creates", 3: "compute"}
    rows = []
    for step in range(8):
        t0, t1 = step * PHASE_LEN_S, (step + 1) * PHASE_LEN_S
        env.run(until=t1)
        served = sum(s.served_by_time.count_in(t0, t1)
                     for s in cluster.node_stats())
        hot = "yes" if cluster.hot_inos else "no"
        rows.append([f"{t0:.0f}-{t1:.0f}s",
                     phase_names[workload.phase_at(t0 + 0.01)],
                     f"{served / PHASE_LEN_S:.0f}", hot])

    print(format_table(
        ["window", "phase", "cluster ops/s", "hot metadata replicated"],
        rows,
        title=f"{N_CLIENTS} compute clients against "
              f"{pathmod.format_path(shared_dir)}"))

    ckpts = sum(1 for name in ns.readdir(shared_dir)
                if name.startswith("ckpt."))
    print(f"\ncheckpoints created in the shared directory: {ckpts}")
    input_ino = ns.resolve(workload.input_file).ino
    replicas = sum(1 for node in cluster.nodes
                   if input_ino in node.cache)
    print(f"input file cached on {replicas}/{N_MDS} nodes "
          f"(traffic control replicates it during open bursts)")


if __name__ == "__main__":
    main()
