#!/usr/bin/env python3
"""Extending the library: plug in your own partitioning strategy.

The five paper strategies all implement one small interface
(:class:`repro.partition.Strategy`).  This demo adds a sixth — naive
round-robin by inode number, ignoring the hierarchy entirely — wires it
into a cluster unchanged, and races it against dynamic subtree
partitioning.  Round-robin is hashing-without-the-hash: perfectly
balanced, locality-free, and it pays the same prefix-replication tax the
paper charges every structure-blind distribution.

Run:  python examples/custom_strategy.py
"""

from repro.clients import Client, GeneralWorkload, GeneralWorkloadSpec
from repro.mds import MdsCluster, SimParams
from repro.metrics import format_table
from repro.namespace import Namespace, SnapshotSpec, generate_snapshot
from repro.namespace.path import Path
from repro.partition import Strategy, make_strategy
from repro.sim import Environment, RngStreams
from repro.storage import InodeGrainLayout


class RoundRobinPartition(Strategy):
    """Authority = ino mod n.  The simplest structure-blind distribution.

    Like full-path hashing it scatters every inode independently, so it
    needs inode-grain storage and leaves clients able to compute the
    authority only if they already know the ino — which they don't before
    the first lookup, so ``client_locate`` returns None and clients fall
    back to learned locations.
    """

    name = "RoundRobin"
    needs_path_traversal = True
    supports_rebalancing = False

    def __init__(self, n_mds: int) -> None:
        super().__init__(n_mds)
        self.layout = InodeGrainLayout()

    def _authority_of_ino(self, ino: int) -> int:
        return ino % self.n_mds

    def authority_of_new(self, path: Path, parent_ino: int) -> int:
        # a new entry's ino is unknown before creation; route creations to
        # the parent's authority, which allocates and may forward once
        return self.authority_of_ino(parent_ino)


def run(strategy):
    env = Environment()
    streams = RngStreams(21)
    ns = Namespace()
    snapshot = generate_snapshot(
        ns, SnapshotSpec(n_users=18, files_per_user=60), streams)
    strategy.bind(ns)
    cluster = MdsCluster(env, ns, strategy,
                         SimParams(cache_capacity=300, journal_capacity=300,
                                   osds_per_mds=1))
    cluster.start()
    workload = GeneralWorkload(ns, snapshot.user_roots,
                               GeneralWorkloadSpec(think_time_s=0.004))
    clients = [Client(env, i, cluster, workload,
                      streams.py_stream(f"c{i}")) for i in range(60)]
    for c in clients:
        c.start()
    env.run(until=6.0)
    return {
        "ops/s per MDS": round(cluster.mean_node_throughput(2.0, 6.0)),
        "hit rate": round(cluster.cluster_hit_rate(), 3),
        "prefix cache": f"{100 * cluster.mean_prefix_fraction():.1f}%",
        "forwarded": f"{100 * cluster.forward_fraction():.2f}%",
    }


def main() -> None:
    print("racing a custom RoundRobin strategy against DynamicSubtree ...")
    rows = []
    for strategy in (make_strategy("DynamicSubtree", 6),
                     RoundRobinPartition(6)):
        result = run(strategy)
        rows.append([strategy.name] + list(result.values()))
        print(f"  {strategy.name} done")
    print()
    print(format_table(
        ["strategy", "ops/s per MDS", "hit rate", "prefix cache",
         "forwarded"], rows,
        title="Same cluster, same workload, different partition function"))
    print()
    print("RoundRobin shows the §3.1.2 trade in its rawest form: scattering")
    print("every inode independently destroys locality (low hit rate, large")
    print("prefix-replica tax) even though the load split is perfectly even.")


if __name__ == "__main__":
    main()
