#!/usr/bin/env python3
"""Quickstart: build an MDS cluster, run a workload, read the results.

This walks the public API end to end:

1. generate a synthetic file-system snapshot;
2. pick a partitioning strategy and build the simulated MDS cluster;
3. attach a population of general-purpose clients;
4. run for a few simulated seconds and print what happened.

Run:  python examples/quickstart.py
"""

from repro.clients import Client, GeneralWorkload, GeneralWorkloadSpec
from repro.mds import MdsCluster, SimParams
from repro.metrics import format_table
from repro.namespace import Namespace, SnapshotSpec, generate_snapshot
from repro.partition import make_strategy
from repro.sim import Environment, RngStreams


def main() -> None:
    env = Environment()
    streams = RngStreams(master_seed=42)

    # 1. the file system: a collection of home directories plus /usr
    ns = Namespace()
    snapshot = generate_snapshot(
        ns, SnapshotSpec(n_users=24, files_per_user=80), streams)
    print(f"namespace: {snapshot.n_files} files, {snapshot.n_dirs} dirs, "
          f"max depth {snapshot.max_depth_seen}")

    # 2. the metadata cluster: 4 servers, dynamic subtree partitioning
    strategy = make_strategy("DynamicSubtree", n_mds=4)
    strategy.bind(ns)
    params = SimParams(cache_capacity=500, journal_capacity=500)
    cluster = MdsCluster(env, ns, strategy, params)
    cluster.start()

    # 3. eighty clients working in their home directories
    workload = GeneralWorkload(ns, snapshot.user_roots,
                               GeneralWorkloadSpec(think_time_s=0.01))
    clients = [Client(env, i, cluster, workload,
                      streams.py_stream(f"client.{i}")) for i in range(80)]
    for client in clients:
        client.start()

    # 4. simulate five seconds, then report
    env.run(until=5.0)

    rows = []
    for node in cluster.nodes:
        s = node.stats
        rows.append([
            f"mds{node.node_id}",
            s.ops_served,
            s.forwards,
            f"{s.hit_rate:.3f}",
            f"{node.cache.prefix_fraction():.3f}",
            len(node.cache),
        ])
    print()
    print(format_table(
        ["node", "ops served", "forwards", "hit rate", "prefix frac",
         "cached inodes"], rows, title="Per-MDS results after 5 s"))

    total_ops = sum(c.stats.ops_completed for c in clients)
    mean_latency = (sum(c.stats.total_latency_s for c in clients)
                    / max(1, total_ops))
    print()
    print(f"cluster throughput : {total_ops / 5.0:,.0f} ops/s")
    print(f"mean client latency: {mean_latency * 1000:.2f} ms")
    print(f"cluster hit rate   : {cluster.cluster_hit_rate():.3f}")
    print(f"forward fraction   : {cluster.forward_fraction():.3f}")


if __name__ == "__main__":
    main()
