#!/usr/bin/env python3
"""Quickstart: run an MDS-cluster experiment and see where the time goes.

This walks the public API (``repro.api``) end to end:

1. describe an experiment with :class:`ExperimentConfig` — cluster size,
   partitioning strategy, workload, and a trace sampling rate;
2. run it with :func:`run_experiment`;
3. read the typed :class:`ClusterSummary` (throughput, hit rate,
   per-op-type latency percentiles);
4. pick one sampled request trace and render its span timeline.

Run:  python examples/quickstart.py
"""

from repro.api import ExperimentConfig, run_experiment


def main() -> None:
    # 1. a 4-node dynamic-subtree cluster under the general-purpose
    #    workload, tracing every request (sample rate 1.0; production-style
    #    runs use 0.01-0.1, and 0.0 keeps only the latency histograms)
    config = ExperimentConfig(
        strategy="DynamicSubtree",
        n_mds=4,
        scale=0.2,
        warmup_s=1.0,
        duration_s=4.0,
        trace_sample_rate=1.0,
    )

    # 2. build + run + summarize in one call
    result = run_experiment(config)

    # 3. the aggregate view: cluster counters plus p50/p95/p99 per op type
    print(result.summary.format())

    # 4. the per-request view: where did one slow open spend its time?
    traced = [t for t in result.traces if t.ok]
    slowest = max(traced, key=lambda t: t.latency_s)
    print()
    print(f"collected {len(result.traces)} traces; slowest request:")
    print()
    print(slowest.render())
    print()
    print("Each bar is one span: net.hop (client->MDS wire time),")
    print("node.queue (inbox wait), node.cpu (path resolution),")
    print("osd.read (metadata fetch from the object store), and so on —")
    print("see docs/ARCHITECTURE.md#observability for the full taxonomy.")
    print("Pass jsonl_path=... to run_experiment to export traces for")
    print("offline analysis, and trace_sample_rate=0.0 (the default) to")
    print("keep only the histograms at zero per-request cost.")


if __name__ == "__main__":
    main()
