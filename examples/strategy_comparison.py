#!/usr/bin/env python3
"""Compare all five metadata partitioning strategies on one workload.

Runs the same general-purpose workload against StaticSubtree,
DynamicSubtree, DirHash, LazyHybrid and FileHash clusters and prints the
throughput / hit-rate / prefix-overhead / forwarding profile of each — a
one-screen summary of the trade-offs the paper's evaluation explores.

Run:  python examples/strategy_comparison.py
"""

from repro.api import run_steady_state, scaling_config
from repro.metrics import format_table
from repro.partition import strategy_names

N_MDS = 6
SCALE = 0.4


def main() -> None:
    rows = []
    for name in strategy_names():
        print(f"running {name} ...")
        result = run_steady_state(scaling_config(name, N_MDS, SCALE))
        rows.append([
            name,
            f"{result.mean_node_throughput:.0f}",
            f"{result.hit_rate:.3f}",
            f"{100 * result.prefix_fraction:.1f}%",
            f"{100 * result.forward_fraction:.2f}%",
            f"{result.client_mean_latency_s * 1000:.1f}",
            result.errors,
        ])
    print()
    print(format_table(
        ["strategy", "ops/s per MDS", "hit rate", "prefix cache",
         "forwarded", "latency (ms)", "errors"],
        rows,
        title=f"{N_MDS}-node cluster, general-purpose workload"))
    print()
    print("Reading the table (paper §5.3):")
    print(" - subtree strategies keep prefix overhead low and hit rates high;")
    print(" - DirHash groups directories but replicates prefixes widely;")
    print(" - FileHash pays both prefix replication and per-inode I/O;")
    print(" - LazyHybrid avoids traversal entirely (no prefix cache, no")
    print("   forwarding) at the cost of the worst cache hit rate — it can")
    print("   look strong on a small cluster; run `python -m")
    print("   repro.experiments fig2` (or repro.api.fig2()) to see how the")
    print("   curves evolve with scale, and EXPERIMENTS.md for the full")
    print("   comparison.")


if __name__ == "__main__":
    main()
