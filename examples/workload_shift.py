#!/usr/bin/env python3
"""Workload-shift demo: dynamic re-delegation vs a static partition.

The §5.3.2 scenario: a general-purpose population runs for a while, then
half the clients converge on the subtrees one MDS serves and start
creating files there.  The same run is performed with a static subtree
partition (nothing moves) and a dynamic one (the load balancer re-delegates
the hot subtrees), and the per-second cluster averages are printed side by
side.

Run:  python examples/workload_shift.py
"""

from repro.api import run_timeline, shift_config
from repro.metrics import format_table

SCALE = 0.4


def main() -> None:
    print("running static partition ...")
    static = run_timeline(shift_config("StaticSubtree", SCALE),
                          sample_interval_s=1.0)
    print("running dynamic partition ...")
    dynamic = run_timeline(shift_config("DynamicSubtree", SCALE),
                           sample_interval_s=1.0)

    shift_t = static.config.workload_args["shift_time_s"]
    rows = []
    for (t, smin, savg, smax), (_t, dmin, davg, dmax) in zip(
            static.throughput_series, dynamic.throughput_series):
        marker = " <= shift" if abs(t - shift_t) < 0.5 else ""
        rows.append([f"{t:.1f}{marker}", f"{savg:.0f}",
                     f"{smin:.0f}-{smax:.0f}", f"{davg:.0f}",
                     f"{dmin:.0f}-{dmax:.0f}"])
    print()
    print(format_table(
        ["time", "static avg", "static range", "dynamic avg",
         "dynamic range"],
        rows,
        title=f"Per-MDS throughput (ops/s); half the clients migrate at "
              f"t={shift_t:.0f}s"))

    post = [t for (t, *_rest) in static.throughput_series if t > shift_t + 1]
    if post:
        s_avg = sum(avg for (t, _mn, avg, _mx) in static.throughput_series
                    if t > shift_t + 1) / len(post)
        d_avg = sum(avg for (t, _mn, avg, _mx) in dynamic.throughput_series
                    if t > shift_t + 1) / len(post)
        print()
        print(f"post-shift average per-MDS throughput: "
              f"static {s_avg:.0f} ops/s, dynamic {d_avg:.0f} ops/s "
              f"({d_avg / s_avg:.2f}x)")


if __name__ == "__main__":
    main()
