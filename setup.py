"""Extension build hook for the optional compiled backends.

Project metadata lives in pyproject.toml; this file only declares the C
extensions: ``repro.sim._ckernel`` (the compiled event calendar) and
``repro.model._cmodel`` (the compiled MDS-model hot spots).  Both are
**optional**: when no C toolchain (or no CPython headers) is available
the build logs a warning and the wheel/editable install proceeds without
them — at runtime ``REPRO_KERNEL=compiled`` / ``REPRO_MODEL=compiled``
then fall back silently to the pure-python reference implementations
(see ``repro/sim/backend.py`` and ``repro/model/backend.py``).

Build in place for a source checkout (puts the .so files next to the
backend modules)::

    python tools/build_kernel.py          # or:
    python setup.py build_ext --inplace
"""

from setuptools import Extension, setup

setup(
    ext_modules=[
        Extension(
            "repro.sim._ckernel",
            sources=["src/repro/sim/_ckernel.c"],
            optional=True,
        ),
        Extension(
            "repro.model._cmodel",
            sources=["src/repro/model/_cmodel.c"],
            optional=True,
        ),
    ]
)
