"""Extension build hook for the optional compiled event kernel.

Project metadata lives in pyproject.toml; this file only declares the
``repro.sim._ckernel`` C extension.  The extension is **optional**: when
no C toolchain (or no CPython headers) is available the build logs a
warning and the wheel/editable install proceeds without it — at runtime
``REPRO_KERNEL=compiled`` then falls back silently to the pure-python
reference kernel (see ``repro/sim/backend.py``).

Build in place for a source checkout (puts the .so next to backend.py)::

    python tools/build_kernel.py          # or:
    python setup.py build_ext --inplace
"""

from setuptools import Extension, setup

setup(
    ext_modules=[
        Extension(
            "repro.sim._ckernel",
            sources=["src/repro/sim/_ckernel.c"],
            optional=True,
        )
    ]
)
