#!/usr/bin/env python3
"""Profile a standard simulation run (cProfile).

"No optimization without measuring": this drives the same simulation the
scaling experiments use under cProfile and prints the hottest functions,
so changes to the kernel or the MDS serving path can be judged on data.

Usage:
    python tools/profile_sim.py [--scale 0.5] [--strategy DynamicSubtree]
    python tools/profile_sim.py --sort tottime --limit 40
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import sys
import time

from repro.api import run_steady_state, scaling_config


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.5)
    parser.add_argument("--strategy", default="DynamicSubtree")
    parser.add_argument("--n-mds", type=int, default=6)
    parser.add_argument("--sort", default="cumulative",
                        choices=["cumulative", "tottime", "ncalls"])
    parser.add_argument("--limit", type=int, default=25)
    parser.add_argument("--dump", metavar="FILE",
                        help="also write raw stats for snakeviz etc.")
    args = parser.parse_args(argv)

    config = scaling_config(args.strategy, args.n_mds, args.scale)
    profiler = cProfile.Profile()
    wall = time.time()
    profiler.enable()
    result = run_steady_state(config)
    profiler.disable()
    wall = time.time() - wall

    print(f"simulated {result.total_ops} ops "
          f"({result.mean_node_throughput:.0f} ops/s/MDS) "
          f"in {wall:.1f}s wall "
          f"-> {result.total_ops / wall:.0f} simulated ops per wall-second\n")
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.strip_dirs().sort_stats(args.sort).print_stats(args.limit)
    if args.dump:
        stats.dump_stats(args.dump)
        print(f"raw profile written to {args.dump}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
