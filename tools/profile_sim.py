#!/usr/bin/env python3
"""Profile a standard simulation run (cProfile) or time it stably.

"No optimization without measuring": this drives the same simulation the
scaling experiments use under cProfile and prints the hottest functions,
so changes to the kernel or the MDS serving path can be judged on data.

Kernel micro-optimisations are judged on *stable* numbers, not one noisy
run: ``--repeat N`` times the run N times (profiler off — cProfile skews
per-call costs) and reports min and median wall time.  ``--parallel`` /
``--serial`` instead drive a ``--seeds``-wide sweep through
``repro.parallel.run_many`` in the chosen mode, timing the whole sweep.

``--shards N`` instead times the *same single experiment* partitioned N
ways through ``repro.shard`` (a shardable StaticSubtree config replaces
the default DynamicSubtree one, which cannot shard), so serial,
process-pool and sharded modes are comparable from one entry point.

``--backend`` pins the event-kernel backend (``REPRO_KERNEL``) for the
run; ``--backend both`` times one run on each backend and prints their
kernel counters side by side — the quickest way to see what the compiled
calendar buys on this host.

``--breakdown`` buckets the profiled time by subsystem (cProfile module
prefixes): the event *kernel* (``repro.sim``), the metadata *model*
(cache/namespace/mds/partition/model/proxy), and *observability*
(obs/metrics/trace) — the quickest way to see which compiled extension
the next wall-second should come from.

Usage:
    python tools/profile_sim.py [--scale 0.5] [--strategy DynamicSubtree]
    python tools/profile_sim.py --sort tottime --limit 40
    python tools/profile_sim.py --repeat 5
    python tools/profile_sim.py --parallel --seeds 8 --repeat 3
    python tools/profile_sim.py --shards 4 --repeat 3
    python tools/profile_sim.py --backend both --repeat 3
    python tools/profile_sim.py --breakdown
"""

from __future__ import annotations

import argparse
import cProfile
import os
import pstats
import statistics
import sys
import time

from repro.api import (KERNEL_ENV, build_simulation, compiled_viable,
                       resolve_kernel, run_many, require_ok,
                       run_sharded_summary, run_steady_state, scaling_config,
                       shard_viability, sharded_config)


def _sweep_once(configs, mode):
    t = time.perf_counter()
    results = require_ok(run_many(configs, mode=mode))
    wall = time.perf_counter() - t
    return wall, sum(r.total_ops for r in results)


def _single_once(config):
    t = time.perf_counter()
    result = run_steady_state(config)
    wall = time.perf_counter() - t
    return wall, result.total_ops


def _counters_run(config, backend):
    """One timed run pinned to ``backend``; its merged kernel counters."""
    os.environ[KERNEL_ENV] = backend
    sim = build_simulation(config)
    t = time.perf_counter()
    sim.run_to(config.run_until_s)
    wall = time.perf_counter() - t
    summary = sim.summary()
    return wall, summary.total_ops, dict(summary.kernel)


def _print_side_by_side(config, repeat):
    """Time ``repeat`` runs per backend; counters in adjacent columns."""
    rows = {}
    walls = {}
    ops = 0
    for backend in ("reference", "compiled"):
        best = float("inf")
        for _ in range(repeat):
            wall, ops, kernel = _counters_run(config, backend)
            best = min(best, wall)
        walls[backend] = best
        rows[backend] = kernel
    print(f"\n{ops} simulated ops per run, best of {repeat} "
          "per backend")
    print(f"{'counter':<24}{'reference':>16}{'compiled':>16}")
    print(f"{'wall_s':<24}{walls['reference']:>16.3f}"
          f"{walls['compiled']:>16.3f}")
    keys = [k for k in rows["reference"] if k in rows["compiled"]]
    for key in keys:
        ref, com = rows["reference"][key], rows["compiled"][key]
        ref_s = f"{ref:.4f}" if isinstance(ref, float) else str(ref)
        com_s = f"{com:.4f}" if isinstance(com, float) else str(com)
        print(f"{key:<24}{ref_s:>16}{com_s:>16}")
    print(f"\ncompiled speedup {walls['reference'] / walls['compiled']:.2f}x "
          "(same events, same results; see the equivalence suites)")


#: subsystem buckets for --breakdown, matched against profiled filenames
#: (first match wins; anything unmatched lands in "other")
BREAKDOWN_BUCKETS = (
    ("kernel", ("repro/sim/",)),
    ("model", ("repro/cache/", "repro/namespace/", "repro/mds/",
               "repro/partition/", "repro/model/", "repro/proxy/")),
    ("observability", ("repro/obs/", "repro/metrics/", "repro/trace/")),
)


def _bucket_of(filename: str) -> str:
    norm = filename.replace(os.sep, "/")
    for bucket, prefixes in BREAKDOWN_BUCKETS:
        if any(prefix in norm for prefix in prefixes):
            return bucket
    return "other"


def _print_breakdown(profiler, wall: float) -> None:
    """Fold per-function exclusive (tottime) costs into subsystem buckets.

    Exclusive time is used because it sums to the profiled total;
    cumulative time would double-count every cross-subsystem call.
    """
    stats = pstats.Stats(profiler)
    buckets: dict = {}
    calls: dict = {}
    for (filename, _lineno, _func), entry in stats.stats.items():
        _cc, nc, tt, _ct, _callers = entry
        bucket = _bucket_of(filename)
        buckets[bucket] = buckets.get(bucket, 0.0) + tt
        calls[bucket] = calls.get(bucket, 0) + nc
    total = sum(buckets.values()) or 1.0
    print(f"\nsubsystem breakdown ({wall:.1f}s wall, exclusive time):")
    print(f"{'subsystem':<16}{'time_s':>10}{'share':>9}{'calls':>14}")
    order = [name for name, _ in BREAKDOWN_BUCKETS] + ["other"]
    for bucket in order:
        if bucket not in buckets:
            continue
        tt = buckets[bucket]
        print(f"{bucket:<16}{tt:>10.3f}{tt / total:>8.1%}"
              f"{calls[bucket]:>14}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.5)
    parser.add_argument("--strategy", default="DynamicSubtree")
    parser.add_argument("--n-mds", type=int, default=6)
    parser.add_argument("--sort", default="cumulative",
                        choices=["cumulative", "tottime", "ncalls"])
    parser.add_argument("--limit", type=int, default=25)
    parser.add_argument("--dump", metavar="FILE",
                        help="also write raw stats for snakeviz etc.")
    parser.add_argument("--repeat", type=int, default=1, metavar="N",
                        help="time N runs (profiler off) and report "
                             "min/median wall time")
    parser.add_argument("--seeds", type=int, default=4,
                        help="sweep width for --parallel/--serial")
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument("--parallel", action="store_true",
                      help="time a --seeds-wide sweep via run_many "
                           "(process pool)")
    mode.add_argument("--serial", action="store_true",
                      help="time the same sweep forced serial in-process")
    mode.add_argument("--shards", type=int, metavar="N",
                      help="time one shardable experiment partitioned N "
                           "ways via repro.shard")
    parser.add_argument("--breakdown", action="store_true",
                        help="profile one run and report time bucketed "
                             "by subsystem (kernel/model/observability) "
                             "instead of the flat function listing")
    parser.add_argument("--backend", choices=["reference", "compiled",
                                              "both"],
                        help="pin the event-kernel backend (REPRO_KERNEL) "
                             "for the run; 'both' times one run per "
                             "backend and prints kernel counters side by "
                             "side")
    args = parser.parse_args(argv)
    if args.repeat < 1:
        parser.error("--repeat must be >= 1")
    if args.breakdown and (args.parallel or args.serial
                           or args.shards is not None or args.repeat > 1
                           or args.backend == "both"):
        parser.error("--breakdown profiles a single run; drop "
                     "--parallel/--serial/--shards/--repeat/--backend both")
    if args.backend in ("compiled", "both") and not compiled_viable():
        parser.error("compiled kernel extension not built; run "
                     "`python tools/build_kernel.py` first")
    if args.backend == "both":
        if args.parallel or args.serial or args.shards is not None:
            parser.error("--backend both compares single runs; drop "
                         "--parallel/--serial/--shards")
        cfg = scaling_config(args.strategy, args.n_mds, args.scale)
        prior_env = os.environ.get(KERNEL_ENV)
        try:
            _print_side_by_side(cfg, args.repeat)
        finally:
            if prior_env is None:
                os.environ.pop(KERNEL_ENV, None)
            else:
                os.environ[KERNEL_ENV] = prior_env
        return 0
    if args.backend is not None:
        os.environ[KERNEL_ENV] = args.backend
    print(f"kernel backend: {resolve_kernel()} "
          f"(compiled extension {'built' if compiled_viable() else 'absent'})")

    if args.shards is not None:
        cfg = sharded_config(n_mds=max(args.n_mds, args.shards),
                             scale=args.scale)
        reason = shard_viability(cfg, args.shards)
        if reason is not None:
            parser.error(f"--shards {args.shards} not viable: {reason}")
        walls = []
        ops = 0
        for i in range(args.repeat):
            t = time.perf_counter()
            summary = run_sharded_summary(cfg, args.shards)
            walls.append(time.perf_counter() - t)
            ops = summary.total_ops
            print(f"  sharded run {i + 1}/{args.repeat}: {walls[-1]:.2f}s")
        _report(walls, ops, f"single experiment ({args.shards} shards)")
        return 0

    config = scaling_config(args.strategy, args.n_mds, args.scale)

    if args.parallel or args.serial:
        sweep_mode = "parallel" if args.parallel else "serial"
        configs = [scaling_config(args.strategy, args.n_mds, args.scale,
                                  seed=42 + 7 * s)
                   for s in range(args.seeds)]
        walls = []
        ops = 0
        for i in range(args.repeat):
            wall, ops = _sweep_once(configs, sweep_mode)
            walls.append(wall)
            print(f"  sweep run {i + 1}/{args.repeat}: {wall:.2f}s")
        _report(walls, ops, f"{len(configs)}-config sweep ({sweep_mode})")
        return 0

    if args.repeat > 1:
        walls = []
        ops = 0
        for i in range(args.repeat):
            wall, ops = _single_once(config)
            walls.append(wall)
            print(f"  run {i + 1}/{args.repeat}: {wall:.2f}s")
        _report(walls, ops, "single run")
        return 0

    profiler = cProfile.Profile()
    wall = time.time()
    profiler.enable()
    result = run_steady_state(config)
    profiler.disable()
    wall = time.time() - wall

    print(f"simulated {result.total_ops} ops "
          f"({result.mean_node_throughput:.0f} ops/s/MDS) "
          f"in {wall:.1f}s wall "
          f"-> {result.total_ops / wall:.0f} simulated ops per wall-second\n")
    if args.breakdown:
        _print_breakdown(profiler, wall)
        if args.dump:
            pstats.Stats(profiler).dump_stats(args.dump)
            print(f"raw profile written to {args.dump}")
        return 0
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.strip_dirs().sort_stats(args.sort).print_stats(args.limit)
    if args.dump:
        stats.dump_stats(args.dump)
        print(f"raw profile written to {args.dump}")
    return 0


def _report(walls, total_ops, label) -> None:
    best = min(walls)
    med = statistics.median(walls)
    print(f"{label}: {total_ops} simulated ops")
    print(f"  wall time  min {best:.2f}s   median {med:.2f}s "
          f"({len(walls)} repeats)")
    print(f"  throughput min-wall {total_ops / best:.0f} ops/wall-s   "
          f"median-wall {total_ops / med:.0f} ops/wall-s")


if __name__ == "__main__":
    raise SystemExit(main())
