#!/usr/bin/env python3
"""Compiled-kernel benchmark + full-scale figure run; ``BENCH_fullscale.json``.

Three stages, each recorded in the report:

1. **Kernel churn microbenchmark** — a calendar-bound workload (timeout
   chains through callbacks, no model code) timed on both backends.
   This isolates what the compiled calendar buys: the end-to-end figure
   runs are dominated by the python MDS model, so the portable
   compiled-vs-reference signal is measured where the kernel *is* the
   workload.  Best wall of ``--repeat`` runs per backend.
2. **Equivalence spot check** — a fixed-seed experiment run on each
   backend; the summaries must be bit-identical (``repr`` equality).
   Divergence fails the run, like ``bench_request_path``'s fast-lane
   check.  The exhaustive proofs live in the backend-parametrized test
   suites; this is the bench-time smoke of the same contract.
3. **Figure regeneration** — Figures 2-7 at ``--scale`` (default
   **1.0**) on the compiled backend (silent fallback to reference when
   the extension is unbuilt, recorded as ``kernel_backend``).  Text
   tables land in ``results/figures_scale<scale>.txt`` and CSVs in
   ``results/csv_fullscale/``; per-figure wall times go in the report.

Report discipline follows ``bench_common``: the baseline is the prior
committed report's compiled churn rate, each run appends to the
``trajectory``, and a >15% regression warns without failing (absolute
rates are host-dependent; the hard failure is the equivalence check).

Usage:
    PYTHONPATH=src python tools/bench_fullscale.py            # scale 1.0
    PYTHONPATH=src python tools/bench_fullscale.py --quick    # CI smoke
    PYTHONPATH=src python tools/bench_fullscale.py --no-figures
"""

from __future__ import annotations

import argparse
import os
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import bench_common  # noqa: E402  (tools-dir import)
from bench_common import load_prior_report  # noqa: E402

from repro.api import build_simulation, scaling_config  # noqa: E402
from repro.experiments.figures import (FIGURES, fig5, fig6,  # noqa: E402
                                       run_shift_experiment)
from repro.sim import CompiledEnvironment, Environment  # noqa: E402
from repro.model.backend import resolve_model  # noqa: E402
from repro.sim.backend import (KERNEL_ENV, compiled_viable,  # noqa: E402
                               resolve_kernel)

#: compiled churn rate (events/wall-s) recorded when this tool landed —
#: used only when no prior report exists at ``--out``.
FALLBACK_BASELINE_EVENTS_PER_S = 2_500_000.0

#: calendar-bound events per churn run (quick mode divides by 5)
CHURN_EVENTS = 300_000


def churn(env_cls, n_events: int) -> float:
    """Wall seconds to drain ``n_events`` through pure timeout chains."""
    env = env_cls(fastlane=True)
    remaining = [n_events]

    def resume(_ev):
        if remaining[0] > 0:
            remaining[0] -= 1
            t = env.timeout(0.001)
            t.callbacks.append(resume)

    for i in range(64):
        t = env.timeout(0.001 * i)
        t.callbacks.append(resume)
    t0 = time.perf_counter()
    env.run()
    return time.perf_counter() - t0


def bench_kernels(n_events: int, repeat: int) -> dict:
    """Best-of-``repeat`` churn walls per backend; rates and speedup."""
    out = {"churn_events": n_events,
           "reference_events_per_s": None,
           "compiled_events_per_s": None,
           "speedup_compiled_vs_reference": None}
    backends = [("reference", Environment)]
    if compiled_viable():
        backends.append(("compiled", CompiledEnvironment))
    walls = {}
    for name, env_cls in backends:
        best = min(churn(env_cls, n_events) for _ in range(max(1, repeat)))
        walls[name] = best
        rate = n_events / best
        out[f"{name}_events_per_s"] = round(rate, 1)
        print(f"kernel churn [{name}]: {n_events} events in {best:.3f}s "
              f"-> {rate:,.0f} events/wall-s")
    if "compiled" in walls:
        speedup = walls["reference"] / walls["compiled"]
        out["speedup_compiled_vs_reference"] = round(speedup, 3)
        print(f"compiled kernel speedup {speedup:.2f}x on the "
              "calendar-bound workload")
    else:
        print("compiled kernel unavailable; churn measured on reference "
              "only")
    return out


def equivalence_check(scale: float) -> bool:
    """Fixed-seed summaries must match byte-for-byte across backends."""
    cfg = scaling_config("DynamicSubtree", 4, scale, seed=42)
    reprs = {}
    for backend in ("reference", "compiled"):
        os.environ[KERNEL_ENV] = backend
        sim = build_simulation(cfg)
        sim.run_to(cfg.run_until_s)
        reprs[backend] = repr(sim.summary())
    identical = reprs["reference"] == reprs["compiled"]
    print(f"equivalence spot check (scale {scale}): "
          f"identical summaries: {identical}")
    return identical


def run_figures(scale: float, seeds, out_dir: str, quiet: bool) -> dict:
    """Figures 2-7 at ``scale`` under the current gate; per-figure walls."""
    progress = (lambda msg: None) if quiet else (
        lambda msg: print(f"  .. {msg}", file=sys.stderr, flush=True))
    os.makedirs(out_dir, exist_ok=True)
    csv_dir = os.path.join(out_dir, "csv_fullscale")
    os.makedirs(csv_dir, exist_ok=True)
    text_path = os.path.join(out_dir, f"figures_scale{scale:g}.txt")
    figures = {}
    shift = None
    with open(text_path, "w", encoding="utf-8") as fp:
        for name in sorted(FIGURES):
            start = time.perf_counter()
            if name in ("fig5", "fig6"):
                if shift is None:
                    shift = run_shift_experiment(scale, progress)
                result = (fig5 if name == "fig5" else fig6)(
                    scale, shift_results=shift)
            else:
                kwargs = {"scale": scale, "progress": progress}
                if seeds is not None and name in ("fig2", "fig3", "fig4"):
                    kwargs["seeds"] = seeds
                result = FIGURES[name](**kwargs)
            wall = time.perf_counter() - start
            figures[name] = {"wall_s": round(wall, 1)}
            fp.write(result.format() + "\n\n")
            result.save_csv(csv_dir)
            print(f"{name}: {wall:.1f}s", flush=True)
    figures["_text"] = text_path
    figures["_csv_dir"] = csv_dir
    return figures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke: tiny scale, short churn")
    parser.add_argument("--scale", type=float, default=None,
                        help="figure scale (default 1.0; 0.05 with "
                             "--quick)")
    parser.add_argument("--seeds", type=int, default=None,
                        help="seeds for fig2/fig3/fig4 (default: the "
                             "figure drivers' own)")
    parser.add_argument("--repeat", type=int, default=3,
                        help="churn timing repeats per backend (min wins)")
    parser.add_argument("--no-figures", action="store_true",
                        help="record the kernel numbers and equivalence "
                             "check only")
    parser.add_argument("--results-dir", default="results",
                        help="where figure text/CSV outputs land")
    parser.add_argument("--out", default="BENCH_fullscale.json")
    args = parser.parse_args(argv)
    scale = args.scale if args.scale is not None else \
        (0.05 if args.quick else 1.0)
    churn_events = CHURN_EVENTS // 5 if args.quick else CHURN_EVENTS

    prior = load_prior_report(args.out)
    baseline = bench_common.baseline_from_prior(
        prior, ("kernel", "compiled_events_per_s"),
        FALLBACK_BASELINE_EVENTS_PER_S)
    trajectory = bench_common.trajectory_from_prior(prior)

    kernel = bench_kernels(churn_events, args.repeat)

    prior_env = os.environ.get(KERNEL_ENV)
    figures = {}
    try:
        identical = equivalence_check(0.05 if args.quick else 0.1)
        os.environ[KERNEL_ENV] = "compiled"  # silent fallback if unbuilt
        figures_backend = resolve_kernel()
        model_backend = resolve_model()
        if not args.no_figures:
            print(f"regenerating figures 2-7 at scale {scale} on the "
                  f"{figures_backend} kernel | {model_backend} model",
                  flush=True)
            figures = run_figures(scale, args.seeds, args.results_dir,
                                  quiet=args.quick)
    finally:
        if prior_env is None:
            os.environ.pop(KERNEL_ENV, None)
        else:
            os.environ[KERNEL_ENV] = prior_env

    compiled_rate = kernel["compiled_events_per_s"]
    regressed = False
    if compiled_rate is not None:
        regressed = bench_common.warn_if_regressed(
            compiled_rate, baseline, what="compiled kernel churn rate",
            hint="events/wall-s; informational: absolute rates depend on "
                 "host load")

    figure_walls = {k: v for k, v in figures.items()
                    if not k.startswith("_")}
    total_wall = round(sum(v["wall_s"] for v in figure_walls.values()), 1)
    entry = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "scale": scale,
        "reference_events_per_s": kernel["reference_events_per_s"],
        "compiled_events_per_s": compiled_rate,
        "speedup_compiled_vs_reference":
            kernel["speedup_compiled_vs_reference"],
        "figures_total_wall_s": total_wall if figure_walls else None,
        "quick": args.quick,
    }
    trajectory.append(entry)

    host = bench_common.host_fields()
    # the ambient gate was restored above; the report's backend field
    # should name what actually produced the recorded run
    host["kernel_backend"] = figures_backend
    report = {
        "benchmark": "compiled kernel + full-scale figures",
        "quick": args.quick,
        "scale": scale,
        "seeds": args.seeds,
        "repeats": args.repeat,
        **host,
        "timestamp": entry["timestamp"],
        "baseline_events_per_s": round(baseline, 1),
        "kernel": kernel,
        "speedup_compiled_vs_reference":
            kernel["speedup_compiled_vs_reference"],
        "regressed_vs_baseline": regressed,
        "identical_summaries": identical,
        "figures_backend": figures_backend,
        "figures": figure_walls,
        "figures_total_wall_s": total_wall if figure_walls else None,
        "outputs": ({"text": figures.get("_text"),
                     "csv_dir": figures.get("_csv_dir")}
                    if figure_walls else None),
        "trajectory": trajectory,
    }
    bench_common.write_report(args.out, report)
    if not identical:
        print("ERROR: compiled-kernel summaries diverged from the "
              "reference backend")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
