"""Shared bench-report plumbing for the ``tools/bench_*`` scripts.

Every bench tool follows the same report discipline:

* the **baseline** is read from the previously committed report at
  ``--out`` rather than a number frozen in the source, so each run is
  compared against the last recorded state of the tree;
* each run appends one entry to the report's ``trajectory`` list,
  keeping the full history of recorded rates across PRs;
* a regression beyond :data:`REGRESSION_TOLERANCE` against that prior
  baseline prints a **warning but never fails the run** — absolute rates
  depend on host speed and load (or, for simulated quantities, on
  deliberate model changes); the hard failures are the determinism
  checks each tool performs itself.

The tools keep thin module-level wrappers around these helpers (their
names are part of the tools' tested surface); the mechanics live here
once.
"""

from __future__ import annotations

import json
import os
import platform
import time
from typing import Callable, Optional, Sequence

#: warn-only regression threshold against the prior recorded baseline
REGRESSION_TOLERANCE = 0.15


def load_prior_report(path: str):
    """Previously committed report at ``path``, or ``None``."""
    try:
        with open(path, "r", encoding="utf-8") as fp:
            return json.load(fp)
    except (OSError, ValueError):
        return None


def baseline_from_prior(prior, keys: Sequence[str],
                        fallback: float) -> float:
    """Walk ``keys`` into ``prior`` for the recorded baseline rate.

    Falls back to ``fallback`` when the report is missing, malformed, or
    predates the metric.
    """
    node = prior
    for key in keys:
        if not node:
            return fallback
        node = node.get(key) if isinstance(node, dict) else None
    if node:
        return float(node)
    return fallback


def trajectory_from_prior(prior, seed_entry: Optional[Callable] = None
                          ) -> list:
    """The prior report's trajectory list (a fresh copy, never an alias).

    ``seed_entry(prior)``, when given, synthesizes the first entry from a
    report that predates trajectory support, so its headline numbers are
    not lost from the history.
    """
    if not prior:
        return []
    trajectory = prior.get("trajectory")
    if trajectory is None:
        trajectory = [seed_entry(prior)] if seed_entry is not None else []
    return list(trajectory)


def warn_if_regressed(current: float, baseline: float, *, what: str,
                      hint: str,
                      tolerance: float = REGRESSION_TOLERANCE) -> bool:
    """Print the standard warn-only regression message; ``True`` when the
    current rate fell more than ``tolerance`` below the prior baseline."""
    regressed = current < (1.0 - tolerance) * baseline
    if regressed:
        print(f"WARNING: {what} {current:.0f} is >{tolerance:.0%} below "
              f"the prior recorded {baseline:.0f} ({hint})")
    return regressed


def host_fields() -> dict:
    """The host/provenance fields every bench report carries.

    ``kernel_backend``/``model_backend`` are the backends the current
    gates resolve to, so a report produced after a silent
    compiled->reference fallback is still distinguishable from a
    genuinely compiled run.
    """
    from repro.model.backend import compiled_model_viable, resolve_model
    from repro.sim.backend import compiled_viable, resolve_kernel

    return {
        "cpu_count": os.cpu_count() or 1,
        "platform": platform.platform(),
        "python": platform.python_version(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "kernel_backend": resolve_kernel(),
        "compiled_viable": compiled_viable(),
        "model_backend": resolve_model(),
        "compiled_model_viable": compiled_model_viable(),
    }


def write_report(path: str, report: dict) -> None:
    with open(path, "w", encoding="utf-8") as fp:
        json.dump(report, fp, indent=2)
        fp.write("\n")
    print(f"report written to {path}")
