#!/usr/bin/env python3
"""Benchmark the compiled model structures and write ``BENCH_model.json``.

Mirrors ``bench_fullscale.py``'s kernel discipline for the *model*
backend (``REPRO_MODEL``): the headline number is a **model churn**
rate — the composed stream of metadata-cache, resolution-memo,
authority-memo and popularity operations that the request-path workload
performs per served request, replayed directly against the structures on
each backend (best wall-clock of ``--repeat``).  Driving the structures
without the surrounding simulator isolates what the C extension buys;
the whole-simulation rates are recorded alongside for the end-to-end
picture (there the python serving generators dominate, so the win is
diluted — that residual is exactly what ``profile_sim.py --breakdown``
shows).

Determinism is enforced twice and each is a hard failure (exit 1):

* the churn replay must leave bit-identical structure state on both
  backends (counters, LRU order, popularity values, memo stats);
* a fixed-seed steady-state run must produce bit-identical summaries
  under ``REPRO_MODEL=reference`` and ``REPRO_MODEL=compiled``.

The baseline is read from the previously committed report at ``--out``
(its ``churn.compiled_model_ops_per_s``); a >15% regression against it
warns but never fails (absolute rates depend on host speed and load).

Usage:
    PYTHONPATH=src python tools/bench_model.py [--quick] [--out PATH]
"""

from __future__ import annotations

import argparse
import os
import random
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import bench_common  # noqa: E402  (tools-dir import)
from bench_common import load_prior_report  # noqa: E402

from repro.api import run_steady_state, scaling_config  # noqa: E402
from repro.model.backend import (MODEL_ENV,  # noqa: E402
                                 compiled_model_viable,
                                 make_metadata_cache, make_popularity_map,
                                 make_resolution_memo, resolve_model)

#: model ops per churn replay (``--quick`` divides by 5)
CHURN_REQUESTS = 60_000

#: compiled churn rate (model-ops/wall-s) recorded when this tool landed —
#: used only when no prior report exists at ``--out``.
FALLBACK_BASELINE_MODEL_OPS_PER_S = 1_000_000.0

#: the acceptance floor for the compiled/reference churn speedup
TARGET_SPEEDUP = 1.5


class _Node:
    """Stand-in for a namespace node: the memo only reads ``.ino``."""

    __slots__ = ("ino",)

    def __init__(self, ino: int) -> None:
        self.ino = ino

    def __deepcopy__(self, memo):
        return self


def build_trace(n_requests: int, seed: int):
    """A deterministic request-path-shaped model-op trace.

    Each simulated request mirrors what ``MdsNode._handle`` does to the
    model structures: resolve the path (memo lookup / store on miss),
    touch the cached ancestor chain, insert fetched inodes under cache
    pressure, account popularity for the whole chain, and occasionally
    rename (memo invalidation + subtree collection) or evict under
    pin churn.  All randomness is drawn here, once — the replay below
    is a straight-line interpretation on either backend.
    """
    rng = random.Random(seed)
    # a synthetic tree: inos 1..n, parent pointers biased shallow
    n_dirs = 2_000
    parents = {1: None}
    depth = {1: 0}
    dirs = [1]
    for ino in range(2, n_dirs + 1):
        parent = dirs[rng.randrange(len(dirs))]
        if depth[parent] >= 8:
            parent = 1
        parents[ino] = parent
        depth[ino] = depth[parent] + 1
        dirs.append(ino)
    files = {}
    next_file = n_dirs + 1
    trace = []
    for _ in range(n_requests):
        d = dirs[int(rng.random() ** 2 * len(dirs))]  # popularity skew
        chain = []
        node = d
        while node is not None:
            chain.append(node)
            node = parents[node]
        chain.reverse()
        if d not in files:
            files[d] = next_file
            next_file += 1
        leaf = files[d]
        now = rng.random() * 600.0
        roll = rng.random()
        trace.append(("request", chain, leaf, now,
                      rng.random() < 0.3))       # replica fetch?
        if roll < 0.01:
            trace.append(("rename", d, chain[0]))
        elif roll < 0.02:
            trace.append(("prune", now, 1e-4))
    return trace


def run_trace(trace, model: str):
    """Replay ``trace`` against backend ``model``; returns
    ``(state_fingerprint, model_ops, wall_s)``."""
    cache = make_metadata_cache(1_024, model=model)
    memo = make_resolution_memo(65_536, model=model)
    pop = make_popularity_map(600.0, model=model)
    nodes = {}

    def node_of(ino):
        node = nodes.get(ino)
        if node is None:
            node = nodes[ino] = _Node(ino)
        return node

    ops = 0
    t0 = time.perf_counter()
    for op in trace:
        kind = op[0]
        if kind == "request":
            _, chain, leaf, now, replica = op
            path = tuple(chain)
            hit = memo.paths.get(path)
            if hit is None:
                memo.misses += 1
                walk = tuple(node_of(ino) for ino in chain)
                memo.store_path(path, walk)
                if len(walk) > 1:
                    memo.store_chain(chain[-1], walk[:-1])
            else:
                memo.hits += 1
            parent = None
            for ino in chain:
                if ino in cache:
                    cache.get(ino)
                else:
                    cache.insert(ino, parent, True, replica=replica)
                parent = ino
            if leaf not in cache:
                cache.insert(leaf, chain[-1], False, replica=replica)
            else:
                cache.get(leaf)
            pop.add_chain(chain, now)
            pop.add(leaf, now)
            ops += 2 * len(chain) + 3
        elif kind == "rename":
            _, d, root = op
            dropped = memo.invalidate_ino(d)
            if d in cache:
                for entry in cache.collect_subtree(d):
                    if entry.ino != d and not entry.pinned:
                        cache.remove(entry.ino)
            ops += 2 + dropped
        else:  # prune
            _, now, floor = op
            ops += pop.prune(now, floor=floor) + 1
    wall = time.perf_counter() - t0

    counters = cache.counters
    fingerprint = {
        "cache_len": len(cache),
        "insertions": counters.insertions,
        "evictions": counters.evictions,
        "prefetch_insertions": counters.prefetch_insertions,
        "slot_census": cache.slot_census(),
        "prefix_fraction": cache.prefix_fraction(),
        "replica_fraction": cache.replica_fraction(),
        "memo": memo.stats(),
        "pop_len": len(pop),
        "pop_mass": repr(sum(sorted(pop.read(i, 600.0)
                                    for i in range(1, 2_001)))),
    }
    cache.verify_invariants()
    memo.verify_invariants()
    return fingerprint, ops, wall


def bench_churn(n_requests: int, repeat: int, seed: int = 42):
    """Best-of-``repeat`` churn replay per backend; hard-fails on state
    divergence between the backends."""
    trace = build_trace(n_requests, seed)
    results = {}
    for model in ("reference", "compiled"):
        if model == "compiled" and not compiled_model_viable():
            results[model] = None
            continue
        best = float("inf")
        fingerprint = None
        ops = 0
        for _ in range(max(1, repeat)):
            fingerprint, ops, wall = run_trace(trace, model)
            best = min(best, wall)
        rate = ops / best
        results[model] = {"fingerprint": fingerprint, "model_ops": ops,
                          "wall_s": best, "ops_per_s": rate}
        print(f"model churn [{model}]: {ops} model-ops in {best:.3f}s "
              f"-> {rate:,.0f} model-ops/s")
    identical = True
    if results["compiled"] is not None:
        identical = (results["reference"]["fingerprint"]
                     == results["compiled"]["fingerprint"])
        speedup = (results["reference"]["wall_s"]
                   / results["compiled"]["wall_s"])
        print(f"compiled model speedup {speedup:.2f}x on the churn replay "
              f"(identical final state: {identical})")
    else:
        print("compiled model unavailable; churn measured on reference only")
    return trace, results, identical


def fullsim_check(scale: float, repeat: int):
    """Fixed-seed steady-state runs on both backends: bit-identical
    summaries required; wall rates recorded for the end-to-end picture."""
    cfg = scaling_config("DynamicSubtree", 4, scale, seed=42)
    out = {}
    reprs = {}
    prior_env = os.environ.get(MODEL_ENV)
    try:
        for model in ("reference", "compiled"):
            if model == "compiled" and not compiled_model_viable():
                out[model] = None
                continue
            os.environ[MODEL_ENV] = model
            best = float("inf")
            result = None
            for _ in range(max(1, repeat)):
                t0 = time.perf_counter()
                result = run_steady_state(cfg)
                best = min(best, time.perf_counter() - t0)
            reprs[model] = repr(result)
            out[model] = {"total_ops": result.total_ops,
                          "wall_s": round(best, 3),
                          "sim_ops_per_wall_s":
                              round(result.total_ops / best, 1)}
            print(f"full sim [{model}]: {result.total_ops} ops in "
                  f"{best:.3f}s -> {result.total_ops / best:.0f} "
                  "sim-ops/wall-s")
    finally:
        if prior_env is None:
            os.environ.pop(MODEL_ENV, None)
        else:
            os.environ[MODEL_ENV] = prior_env
    identical = ("compiled" not in reprs
                 or reprs["reference"] == reprs["compiled"])
    print(f"identical fixed-seed summaries across model backends: "
          f"{identical}")
    return out, identical


def baseline_from_prior(prior) -> float:
    return bench_common.baseline_from_prior(
        prior, ("churn", "compiled_model_ops_per_s"),
        FALLBACK_BASELINE_MODEL_OPS_PER_S)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smaller replay and fewer repeats for CI")
    parser.add_argument("--scale", type=float, default=0.2,
                        help="full-sim spot-check scale")
    parser.add_argument("--repeat", type=int, default=None,
                        help="timing repeats (min wins; default 2 quick, "
                             "3 full)")
    parser.add_argument("--out", default="BENCH_model.json")
    args = parser.parse_args(argv)
    repeat = args.repeat if args.repeat is not None else \
        (2 if args.quick else 3)
    n_requests = CHURN_REQUESTS // 5 if args.quick else CHURN_REQUESTS

    prior = load_prior_report(args.out)
    baseline = baseline_from_prior(prior)
    trajectory = bench_common.trajectory_from_prior(prior)

    from repro.sim.backend import resolve_kernel
    print(f"kernel backend: {resolve_kernel()} | model backend: "
          f"{resolve_model()} (recorded in the report's kernel_backend/"
          "model_backend fields)")

    _, churn, churn_identical = bench_churn(n_requests, repeat)
    fullsim, sim_identical = fullsim_check(args.scale, repeat)

    compiled_rate = (churn["compiled"]["ops_per_s"]
                     if churn["compiled"] else None)
    speedup = None
    if churn["compiled"] is not None:
        speedup = round(churn["reference"]["wall_s"]
                        / churn["compiled"]["wall_s"], 3)
        if speedup < TARGET_SPEEDUP:
            print(f"WARNING: churn speedup {speedup:.2f}x is below the "
                  f"{TARGET_SPEEDUP}x target for the compiled model")

    regressed = False
    if compiled_rate is not None:
        regressed = bench_common.warn_if_regressed(
            compiled_rate, baseline, what="compiled model churn rate",
            hint="model-ops/s; informational: absolute rates depend on "
                 "host load")

    entry = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "reference_model_ops_per_s":
            round(churn["reference"]["ops_per_s"], 1),
        "compiled_model_ops_per_s":
            round(compiled_rate, 1) if compiled_rate else None,
        "speedup_compiled_vs_reference": speedup,
        "quick": args.quick,
    }
    trajectory.append(entry)

    report = {
        "benchmark": "compiled model structures (LRU cache, resolution "
                     "memo, popularity counters)",
        "quick": args.quick,
        "churn_requests": n_requests,
        "repeats": repeat,
        **bench_common.host_fields(),
        "timestamp": entry["timestamp"],
        "baseline_model_ops_per_s": round(baseline, 1),
        "churn": {
            "reference_model_ops_per_s":
                entry["reference_model_ops_per_s"],
            "compiled_model_ops_per_s":
                entry["compiled_model_ops_per_s"],
            "speedup_compiled_vs_reference": speedup,
            "target_speedup": TARGET_SPEEDUP,
            "identical_final_state": churn_identical,
        },
        "fullsim": {
            "scale": args.scale,
            "reference": fullsim["reference"],
            "compiled": fullsim["compiled"],
            "identical_summaries": sim_identical,
        },
        "regressed_vs_baseline": regressed,
        "trajectory": trajectory,
    }
    bench_common.write_report(args.out, report)
    if not churn_identical:
        print("ERROR: churn replay left divergent structure state "
              "across model backends")
        return 1
    if not sim_identical:
        print("ERROR: fixed-seed summaries diverged across model backends")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
