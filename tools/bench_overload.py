#!/usr/bin/env python3
"""Benchmark the overload scenarios and write ``BENCH_overload.json``.

Runs the open-loop goodput-vs-offered-load sweep (dynamic subtree, with
and without admission control, plus the proxy-fronted variant) and the
flash-crowd hotspot head-to-head (§4.4 traffic control vs the proxy
tier), recording:

* goodput at the peak offered load with admission control on — the
  headline "the cluster keeps working past saturation" number;
* the shape checks the figures claim (no-AC goodput collapses past the
  knee, AC goodput stays pinned; the proxy beats traffic control on p99
  under the hotspot);
* a fast-lane equivalence check on an admission+proxy configuration —
  bounded inboxes and the proxy tier must be bit-identical across
  ``REPRO_FASTPATH`` modes, exactly like the closed-loop path.

The baseline is **read from the previously committed report** at
``--out`` (its ``peak_ac_goodput_ops_per_s``), so every run is compared
against the last recorded state of the tree.  Goodput is a simulated
quantity — deterministic per seed, independent of host speed — so a >15%
regression against the prior baseline means the *model* changed; it
prints a warning but never fails the run (model changes can be
deliberate).  The tool exits non-zero only when the fast-lane modes
diverge.

Usage:
    PYTHONPATH=src python tools/bench_overload.py [--quick] [--out PATH]
"""

from __future__ import annotations

import argparse
import os
import sys
import time
import warnings

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import bench_common  # noqa: E402  (tools-dir import)
from bench_common import REGRESSION_TOLERANCE, load_prior_report  # noqa: E402,F401

from repro._fastpath import FASTPATH_ENV  # noqa: E402
from repro.experiments._build import build_simulation  # noqa: E402
from repro.experiments.overload import (fig_hotspot, fig_overload,  # noqa: E402
                                        hotspot_config, overload_config)

#: used only when no prior report exists at ``--out``
FALLBACK_BASELINE_GOODPUT_OPS_S = 9500.0

#: offered-load fractions for --quick runs (full runs use the figure's)
QUICK_FRACTIONS = [0.5, 1.0, 1.6]

#: the hotspot head-to-head runs at the smallest supported scale: its
#: window is hotspot-dominated there (the countermeasure difference is
#: the signal), and the sweep's collapse/hold shapes need the longer
#: window of the default ``--scale``
HOTSPOT_SCALE = 0.25


def baseline_from_prior(prior) -> float:
    """The prior report's recorded peak-AC goodput (or the fallback)."""
    return bench_common.baseline_from_prior(
        prior, ("peak_ac_goodput_ops_per_s",),
        FALLBACK_BASELINE_GOODPUT_OPS_S)


def trajectory_from_prior(prior) -> list:
    """The prior report's trajectory list (empty for a fresh report)."""
    return bench_common.trajectory_from_prior(prior)


def equivalence_check(scale: float):
    """Admission + proxy summary comparison across fast-lane modes."""
    cfg = overload_config(1.25, proxy=True, scale=scale)
    summaries = {}
    prior_env = os.environ.get(FASTPATH_ENV)
    try:
        for fastpath in (False, True):
            os.environ[FASTPATH_ENV] = "1" if fastpath else "0"
            sim = build_simulation(cfg)
            sim.run_to(cfg.run_until_s)
            s = sim.summary()
            summaries[fastpath] = (repr(s), s.offered_ops, s.dropped_ops,
                                   s.slo_violations, s.goodput_ops_per_s,
                                   s.proxy)
    finally:
        if prior_env is None:
            os.environ.pop(FASTPATH_ENV, None)
        else:
            os.environ[FASTPATH_ENV] = prior_env
    return summaries[False] == summaries[True]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="fewer offered-load points for CI")
    parser.add_argument("--scale", type=float, default=0.3)
    parser.add_argument("--out", default="BENCH_overload.json")
    args = parser.parse_args(argv)

    warnings.simplefilter("ignore", DeprecationWarning)
    prior = load_prior_report(args.out)
    baseline = baseline_from_prior(prior)
    trajectory = trajectory_from_prior(prior)

    fractions = QUICK_FRACTIONS if args.quick else None
    t0 = time.perf_counter()
    overload = fig_overload(scale=args.scale, fractions=fractions)
    hotspot = fig_hotspot(scale=HOTSPOT_SCALE)
    wall = time.perf_counter() - t0

    # index the sweep: variant -> [(offered, goodput), ...] in load order
    by_variant = {name: list(points)
                  for name, points in overload.series.items()}
    no_ac = by_variant["dynamic no-AC"]
    ac = by_variant["dynamic AC"]
    peak_ac_goodput = ac[-1][1]
    # shape checks the overload figure claims
    no_ac_collapses = no_ac[-1][1] < 0.5 * max(g for _o, g in no_ac)
    ac_holds = ac[-1][1] >= 0.8 * max(g for _o, g in ac)

    hot_rows = {row[0]: row for row in hotspot.rows}
    proxy_p99 = hot_rows["proxy"][2]
    tc_p99 = hot_rows["traffic-control"][2]
    proxy_beats_tc = proxy_p99 < tc_p99

    print(f"overload sweep + hotspot in {wall:.1f}s wall")
    print(f"peak AC goodput {peak_ac_goodput:.0f} ops/s "
          f"(no-AC collapses: {no_ac_collapses}, AC holds: {ac_holds})")
    print(f"hotspot p99: proxy {proxy_p99:.2f} ms vs "
          f"traffic control {tc_p99:.2f} ms "
          f"(proxy wins: {proxy_beats_tc})")

    identical = equivalence_check(args.scale)
    print(f"fast-lane equivalence (admission+proxy): {identical}")

    vs_baseline = peak_ac_goodput / baseline
    regressed = bench_common.warn_if_regressed(
        peak_ac_goodput, baseline, what="peak AC goodput",
        hint="ops/s; informational: the overload model changed; update "
             "expectations if deliberate")

    entry = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "peak_ac_goodput_ops_per_s": round(peak_ac_goodput, 1),
        "proxy_p99_ms": proxy_p99,
        "tc_p99_ms": tc_p99,
        "quick": args.quick,
    }
    trajectory.append(entry)

    report = {
        "benchmark": "open-loop overload & admission control",
        "quick": args.quick,
        "scale": args.scale,
        "hotspot_scale": HOTSPOT_SCALE,
        **bench_common.host_fields(),
        "timestamp": entry["timestamp"],
        "wall_s": round(wall, 1),
        "baseline_peak_ac_goodput_ops_per_s": round(baseline, 1),
        "peak_ac_goodput_ops_per_s": round(peak_ac_goodput, 1),
        "goodput_vs_baseline": round(vs_baseline, 3),
        "regressed_vs_baseline": regressed,
        "shape": {
            "no_ac_collapses_past_knee": no_ac_collapses,
            "ac_goodput_holds": ac_holds,
            "proxy_beats_tc_on_p99": proxy_beats_tc,
        },
        "goodput_by_variant": {
            name: [[round(o, 1), round(g, 1)] for o, g in points]
            for name, points in by_variant.items()
        },
        "hotspot": {
            "headers": hotspot.headers,
            "rows": [list(r) for r in hotspot.rows],
        },
        "identical_summaries_across_fastpath": identical,
        "trajectory": trajectory,
    }
    bench_common.write_report(args.out, report)
    if not identical:
        print("ERROR: fast-lane summaries diverged on the overload path")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
