#!/usr/bin/env python3
"""Benchmark the parallel sweep executor and write ``BENCH_parallel.json``.

Runs a Fig. 2-style scaling sweep (strategies × cluster sizes × seeds)
twice — forced serial, then through the process pool — verifies the two
produce identical results, and times one standalone simulation for the
single-run simulated-ops/sec number the kernel optimisations are judged
on.  Everything lands in a JSON report:

* ``sweep.serial_s`` / ``sweep.parallel_s`` / ``sweep.speedup`` — sweep
  wall-clock in each mode (speedup > 1 means the pool won; expect ~min(
  workers, tasks)× on an otherwise-idle multi-core host, and ~1× or below
  on a single core, where the pool can only add overhead).
* ``single_run.sim_ops_per_wall_s`` — simulated ops per wall-second of one
  in-process run (best of ``--repeat``), the kernel-hot-path regression
  number.
* ``identical_results`` — hard determinism check: the serial and parallel
  sweeps compared field-by-field.

Usage:
    PYTHONPATH=src python tools/bench_sweep.py [--quick] [--out PATH]
    PYTHONPATH=src python tools/bench_sweep.py --scale 0.3 --seeds 2
"""

from __future__ import annotations

import argparse
import os
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import bench_common  # noqa: E402  (tools-dir import)

from repro.api import (require_ok, run_many, run_steady_state,  # noqa: E402
                       scaling_config, shard_viability, sharded_config)
from repro.experiments.figures import _sizes_for  # noqa: E402
from repro.partition import strategy_names  # noqa: E402


def build_configs(scale: float, seeds: int, quick: bool):
    if quick:
        strategies = ["DynamicSubtree", "StaticSubtree"]
        sizes = [4]
    else:
        strategies = strategy_names()
        sizes = _sizes_for(scale)
    return [scaling_config(name, n_mds, scale, seed=42 + 7 * s)
            for name in strategies for n_mds in sizes
            for s in range(seeds)]


def time_sweep(configs, mode: str):
    t = time.perf_counter()
    results = require_ok(run_many(configs, mode=mode))
    return time.perf_counter() - t, results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small sweep for CI (2 strategies × 1 size)")
    parser.add_argument("--scale", type=float, default=None,
                        help="experiment scale (default: 0.2 quick, 0.3 full)")
    parser.add_argument("--seeds", type=int, default=2)
    parser.add_argument("--repeat", type=int, default=3,
                        help="repeats for the single-run timing (min wins)")
    parser.add_argument("--out", default="BENCH_parallel.json")
    args = parser.parse_args(argv)

    scale = args.scale if args.scale is not None else \
        (0.2 if args.quick else 0.3)
    configs = build_configs(scale, args.seeds, args.quick)
    cpus = os.cpu_count() or 1
    print(f"sweep: {len(configs)} configs at scale {scale} "
          f"({cpus} CPUs available)")

    serial_s, serial_results = time_sweep(configs, "serial")
    print(f"  serial   {serial_s:.2f}s")
    # On a single-CPU host the process pool can only add overhead (the
    # auto resolve_mode stays serial there for the same reason), so
    # benchmarking it would just record a meaningless slowdown.  The
    # verdict is re-evaluated from the *current* host every run — a
    # report produced on a 1-CPU box must not pin later multi-core runs
    # to its stale conclusion.
    parallel_viable = cpus > 1
    prior = bench_common.load_prior_report(args.out)
    prior_viable = (prior or {}).get("sweep", {}).get("parallel_viable")
    if prior_viable is not None and prior_viable != parallel_viable:
        prior_cpus = (prior or {}).get("cpu_count")
        print(f"  note: prior report recorded parallel_viable="
              f"{prior_viable} on {prior_cpus} CPU(s); re-evaluated as "
              f"{parallel_viable} on this {cpus}-CPU host")
    if parallel_viable:
        parallel_s, parallel_results = time_sweep(configs, "parallel")
        print(f"  parallel {parallel_s:.2f}s")
        identical = serial_results == parallel_results
        speedup = serial_s / parallel_s if parallel_s > 0 else 0.0
        print(f"  speedup {speedup:.2f}x   identical results: {identical}")
    else:
        parallel_s = None
        identical = True
        speedup = None
        print("  1 CPU: parallel sweep skipped (pool would only add "
              "overhead); recording parallel_viable=false")

    single_cfg = configs[0]
    walls = []
    for _ in range(max(1, args.repeat)):
        t = time.perf_counter()
        single = run_steady_state(single_cfg)
        walls.append(time.perf_counter() - t)
    best = min(walls)
    print(f"single run: {single.total_ops} ops in {best:.2f}s (best of "
          f"{len(walls)}) -> {single.total_ops / best:.0f} sim-ops/wall-s")

    # shard-mode viability: can *within-experiment* sharding (repro.shard)
    # win on this host, and is the reference shard config still in the
    # shardable class?  Recorded so a report from one host does not pin
    # another host's expectations.
    shard_reason = shard_viability(sharded_config(n_mds=4), 2)
    shard_mode = {
        "multi_core": cpus > 1,
        "config_shardable": shard_reason is None,
        "nonviable_reason": shard_reason,
    }

    report = {
        "benchmark": "parallel sweep executor + kernel hot path",
        "quick": args.quick,
        "scale": scale,
        **bench_common.host_fields(),
        "shard_mode": shard_mode,
        "sweep": {
            "n_configs": len(configs),
            "total_sim_ops": sum(r.total_ops for r in serial_results),
            "serial_s": round(serial_s, 3),
            "parallel_viable": parallel_viable,
            "parallel_s": round(parallel_s, 3) if parallel_s is not None
            else None,
            "speedup": round(speedup, 3) if speedup is not None else None,
        },
        "single_run": {
            "total_ops": single.total_ops,
            "wall_s": round(best, 3),
            "sim_ops_per_wall_s": round(single.total_ops / best, 1),
            "repeats": len(walls),
        },
        "identical_results": identical,
    }
    bench_common.write_report(args.out, report)
    if not identical:
        print("ERROR: serial and parallel sweeps diverged")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
