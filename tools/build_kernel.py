#!/usr/bin/env python3
"""Build the optional compiled event kernel in place and verify it.

Compiles ``src/repro/sim/_ckernel.c`` with the running interpreter's
toolchain (``setup.py build_ext --inplace``), then imports the result and
reports whether ``REPRO_KERNEL=compiled`` will actually select it.  Safe
to run on hosts without a C compiler: the extension is declared optional,
so the build degrades to a warning and this script exits non-zero with
the reason instead of a traceback.

Usage:
    python tools/build_kernel.py [--quiet]
"""

from __future__ import annotations

import argparse
import os
import pathlib
import subprocess
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quiet", action="store_true",
                        help="suppress compiler output")
    args = parser.parse_args(argv)

    cmd = [sys.executable, "setup.py", "build_ext", "--inplace"]
    if args.quiet:
        cmd.append("--quiet")
    build = subprocess.run(cmd, cwd=ROOT)
    if build.returncode != 0:
        print(f"build_ext exited {build.returncode}", file=sys.stderr)
        return build.returncode

    env = dict(os.environ)
    src = str(ROOT / "src")
    env["PYTHONPATH"] = (src + os.pathsep + env["PYTHONPATH"]
                         if env.get("PYTHONPATH") else src)
    probe = subprocess.run(
        [sys.executable, "-c",
         "from repro.sim.backend import (compiled_viable, "
         "compiled_unavailable_reason)\n"
         "import repro.sim._ckernel as ck\n"
         "assert compiled_viable(), compiled_unavailable_reason()\n"
         "print(ck.__file__)"],
        cwd=ROOT, env=env, capture_output=True, text=True)
    if probe.returncode != 0:
        print("compiled kernel did not import after the build:",
              file=sys.stderr)
        print(probe.stderr.strip(), file=sys.stderr)
        return 1
    print(f"compiled kernel ready: {probe.stdout.strip()}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
