#!/usr/bin/env python3
"""Build the optional compiled extensions in place and verify them.

Compiles ``src/repro/sim/_ckernel.c`` (event calendar) and
``src/repro/model/_cmodel.c`` (MDS-model hot spots) with the running
interpreter's toolchain (``setup.py build_ext --inplace``), then imports
both results and reports whether ``REPRO_KERNEL=compiled`` /
``REPRO_MODEL=compiled`` will actually select them.  Safe to run on
hosts without a C compiler: the extensions are declared optional, so the
build degrades to a warning and this script exits non-zero with the
reason instead of a traceback.

``--clean`` removes the ``build/`` tree and any previously built
``_ckernel``/``_cmodel`` shared objects first, so a rebuild never picks
up stale artifacts after a source or interpreter change.

Usage:
    python tools/build_kernel.py [--quiet] [--clean]
"""

from __future__ import annotations

import argparse
import os
import pathlib
import shutil
import subprocess
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent

#: (probe module, backend viability check) per extension
PROBES = [
    ("repro.sim._ckernel",
     "from repro.sim.backend import (compiled_viable, "
     "compiled_unavailable_reason)\n"
     "import repro.sim._ckernel as ext\n"
     "assert compiled_viable(), compiled_unavailable_reason()\n"
     "print(ext.__file__)"),
    ("repro.model._cmodel",
     "from repro.model.backend import (compiled_model_viable, "
     "compiled_model_unavailable_reason)\n"
     "import repro.model._cmodel as ext\n"
     "assert compiled_model_viable(), "
     "compiled_model_unavailable_reason()\n"
     "print(ext.__file__)"),
]


def clean(verbose: bool = True) -> None:
    """Remove the build tree and stale in-place shared objects."""
    build_dir = ROOT / "build"
    if build_dir.is_dir():
        if verbose:
            print(f"removing {build_dir}")
        shutil.rmtree(build_dir)
    for pattern in ("src/repro/sim/_ckernel.*.so",
                    "src/repro/sim/_ckernel.so",
                    "src/repro/model/_cmodel.*.so",
                    "src/repro/model/_cmodel.so"):
        for so in ROOT.glob(pattern):
            if verbose:
                print(f"removing {so}")
            so.unlink()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quiet", action="store_true",
                        help="suppress compiler output")
    parser.add_argument("--clean", action="store_true",
                        help="remove build/ and stale .so files first")
    args = parser.parse_args(argv)

    if args.clean:
        clean(verbose=not args.quiet)

    cmd = [sys.executable, "setup.py", "build_ext", "--inplace"]
    if args.quiet:
        cmd.append("--quiet")
    build = subprocess.run(cmd, cwd=ROOT)
    if build.returncode != 0:
        print(f"build_ext exited {build.returncode}", file=sys.stderr)
        return build.returncode

    env = dict(os.environ)
    src = str(ROOT / "src")
    env["PYTHONPATH"] = (src + os.pathsep + env["PYTHONPATH"]
                         if env.get("PYTHONPATH") else src)
    failures = 0
    for name, probe_src in PROBES:
        probe = subprocess.run(
            [sys.executable, "-c", probe_src],
            cwd=ROOT, env=env, capture_output=True, text=True)
        if probe.returncode != 0:
            print(f"{name} did not import after the build:",
                  file=sys.stderr)
            print(probe.stderr.strip(), file=sys.stderr)
            failures += 1
        else:
            print(f"{name} ready: {probe.stdout.strip()}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
