#!/usr/bin/env python3
"""Benchmark the request-path fast lane and write ``BENCH_request_path.json``.

Times the single-run workhorse configuration (DynamicSubtree, 4 MDS,
scale 0.2, seed 42 — the same run ``bench_sweep.py`` reports) with the
fast lane off (``REPRO_FASTPATH=0``) and on (default), best wall-clock of
``--repeat`` runs each, and checks that both modes produce bit-identical
summaries.  The fast lane must not change results — resolution memo,
settled-event fast lane, synchronous handoffs, pooling are all
behaviour-preserving — so any divergence is a bug, and the tool exits
non-zero on it.

The baseline is **read from the previously committed report** at ``--out``
(its ``fastpath_on.sim_ops_per_wall_s``), so every run is compared against
the last recorded state of the tree rather than a number frozen in the
source.  Each run appends to the report's ``trajectory`` list, keeping the
full history of recorded rates across PRs.  A >15% regression against the
prior baseline prints a warning but never fails the run: absolute ops/s
varies with hardware and load; the on/off speedup on the same box is the
portable signal.

Usage:
    PYTHONPATH=src python tools/bench_request_path.py [--quick] [--out PATH]
"""

from __future__ import annotations

import argparse
import os
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import bench_common  # noqa: E402  (tools-dir import)
from bench_common import REGRESSION_TOLERANCE, load_prior_report  # noqa: E402,F401

from repro._fastpath import FASTPATH_ENV  # noqa: E402
from repro.api import run_steady_state, scaling_config  # noqa: E402
from repro.experiments._build import build_simulation  # noqa: E402

#: single-run sim-ops/wall-s recorded at the parallel-executor PR
#: (pre-fast-lane) — used only when no prior report exists at ``--out``.
FALLBACK_BASELINE_SIM_OPS_PER_WALL_S = 13891.3


def baseline_from_prior(prior) -> float:
    """The prior report's recorded fast-lane rate (or the fallback)."""
    return bench_common.baseline_from_prior(
        prior, ("fastpath_on", "sim_ops_per_wall_s"),
        FALLBACK_BASELINE_SIM_OPS_PER_WALL_S)


def _seed_entry(prior) -> dict:
    """First trajectory entry for a report predating trajectory support."""
    return {
        "timestamp": prior.get("timestamp"),
        "fastpath_off_ops_per_wall_s":
            prior.get("fastpath_off", {}).get("sim_ops_per_wall_s"),
        "fastpath_on_ops_per_wall_s":
            prior.get("fastpath_on", {}).get("sim_ops_per_wall_s"),
        "speedup_on_vs_off": prior.get("speedup_on_vs_off"),
        "quick": prior.get("quick"),
    }


def trajectory_from_prior(prior) -> list:
    """The prior report's trajectory, seeded from its own headline numbers
    when it predates trajectory support."""
    return bench_common.trajectory_from_prior(prior, _seed_entry)


def bench_mode(cfg, fastpath: bool, repeat: int):
    """Best-of-``repeat`` wall time for one steady-state run."""
    os.environ[FASTPATH_ENV] = "1" if fastpath else "0"
    walls = []
    result = None
    for _ in range(max(1, repeat)):
        t0 = time.perf_counter()
        result = run_steady_state(cfg)
        walls.append(time.perf_counter() - t0)
    return result, min(walls)


def equivalence_check(cfg):
    """Full-summary comparison between the two modes.

    Returns ``(identical, memo_stats, kernel_by_mode)`` where
    ``kernel_by_mode`` holds each mode's event-kernel counters — the
    direct evidence of how many calendar events the fast lane elides.
    """
    summaries = {}
    memo_stats = None
    dist_stats = None
    kernel_by_mode = {}
    for fastpath in (False, True):
        os.environ[FASTPATH_ENV] = "1" if fastpath else "0"
        sim = build_simulation(cfg)
        sim.run_to(cfg.run_until_s)
        summaries[fastpath] = repr(sim.summary())
        kernel_by_mode["on" if fastpath else "off"] = sim.env.kernel_stats()
        if fastpath:
            memo = sim.cluster.ns.resolution_memo
            memo_stats = memo.stats() if memo is not None else None
            dist = sim.cluster._dist_memo
            dist_stats = dist.stats() if dist is not None else None
    return (summaries[False] == summaries[True],
            memo_stats, dist_stats, kernel_by_mode)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="fewer repeats for CI")
    parser.add_argument("--scale", type=float, default=0.2)
    parser.add_argument("--repeat", type=int, default=None,
                        help="timing repeats per mode (min wins; "
                             "default 2 quick, 3 full)")
    parser.add_argument("--out", default="BENCH_request_path.json")
    args = parser.parse_args(argv)
    repeat = args.repeat if args.repeat is not None else \
        (2 if args.quick else 3)

    prior = load_prior_report(args.out)
    baseline = baseline_from_prior(prior)
    trajectory = trajectory_from_prior(prior)

    from repro.model.backend import resolve_model
    from repro.sim.backend import resolve_kernel
    print(f"kernel backend: {resolve_kernel()} | model backend: "
          f"{resolve_model()} (recorded in the report's kernel_backend/"
          "model_backend fields)")
    cfg = scaling_config("DynamicSubtree", 4, args.scale, seed=42)
    prior_env = os.environ.get(FASTPATH_ENV)
    try:
        off, off_wall = bench_mode(cfg, False, repeat)
        print(f"fastpath off: {off.total_ops} ops in {off_wall:.3f}s "
              f"-> {off.total_ops / off_wall:.0f} sim-ops/wall-s")
        on, on_wall = bench_mode(cfg, True, repeat)
        print(f"fastpath on:  {on.total_ops} ops in {on_wall:.3f}s "
              f"-> {on.total_ops / on_wall:.0f} sim-ops/wall-s")
        identical, memo_stats, dist_stats, kernels = equivalence_check(cfg)
    finally:
        if prior_env is None:
            os.environ.pop(FASTPATH_ENV, None)
        else:
            os.environ[FASTPATH_ENV] = prior_env

    on_rate = on.total_ops / on_wall
    off_rate = off.total_ops / off_wall
    vs_baseline = on_rate / baseline
    print(f"on/off speedup {on_rate / off_rate:.2f}x   "
          f"vs prior recorded rate {vs_baseline:.2f}x   "
          f"identical summaries: {identical}")
    ev_off = kernels["off"]["events_scheduled"]
    ev_on = kernels["on"]["events_scheduled"]
    print(f"events scheduled: {ev_off} off -> {ev_on} on "
          f"({1 - ev_on / ev_off:.1%} elided), "
          f"{kernels['on']['fast_resumes']} fast-lane resumes, "
          f"pool reuse {kernels['on']['pool_reuse_rate']:.1%}")
    for label, stats in (("resolution memo", memo_stats),
                         ("distribution memo", dist_stats)):
        if stats is None:
            continue
        lookups = stats["hits"] + stats["misses"]
        rate = stats["hits"] / lookups if lookups else 0.0
        print(f"{label}: {stats['entries']} entries, "
              f"hit rate {rate:.1%}, "
              f"{stats['invalidations']} invalidations")

    regressed = bench_common.warn_if_regressed(
        on_rate, baseline, what="fastpath_on rate",
        hint="sim-ops/wall-s; informational: absolute rates depend on "
             "host load")

    entry = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "fastpath_off_ops_per_wall_s": round(off_rate, 1),
        "fastpath_on_ops_per_wall_s": round(on_rate, 1),
        "speedup_on_vs_off": round(on_rate / off_rate, 3),
        "quick": args.quick,
    }
    trajectory.append(entry)

    report = {
        "benchmark": "request-path fast lane",
        "quick": args.quick,
        "scale": args.scale,
        "repeats": repeat,
        **bench_common.host_fields(),
        "timestamp": entry["timestamp"],
        "baseline_sim_ops_per_wall_s": round(baseline, 1),
        "fastpath_off": {
            "total_ops": off.total_ops,
            "wall_s": round(off_wall, 3),
            "sim_ops_per_wall_s": round(off_rate, 1),
        },
        "fastpath_on": {
            "total_ops": on.total_ops,
            "wall_s": round(on_wall, 3),
            "sim_ops_per_wall_s": round(on_rate, 1),
        },
        "speedup_on_vs_off": round(on_rate / off_rate, 3),
        "speedup_vs_baseline": round(vs_baseline, 3),
        "regressed_vs_baseline": regressed,
        "identical_summaries": identical,
        "kernel": kernels,
        "resolution_memo": memo_stats,
        "distribution_memo": dist_stats,
        "trajectory": trajectory,
    }
    bench_common.write_report(args.out, report)
    if not identical:
        print("ERROR: fast-lane summaries diverged from the reference path")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
