#!/usr/bin/env python3
"""Benchmark the request-path fast lane and write ``BENCH_request_path.json``.

Times the single-run workhorse configuration (DynamicSubtree, 4 MDS,
scale 0.2, seed 42 — the same run ``bench_sweep.py`` reports) with the
fast lane off (``REPRO_FASTPATH=0``) and on (default), best wall-clock of
``--repeat`` runs each, and checks that both modes produce bit-identical
summaries.  The fast lane is pure memoisation — resolution memo, strategy
authority cache — so any divergence is a bug, and the tool exits non-zero
on it.

The headline number is ``fastpath_on.sim_ops_per_wall_s`` compared against
the recorded pre-fast-lane baseline (``BASELINE_SIM_OPS_PER_WALL_S``,
measured at the parallel-executor PR on the reference box).  Absolute
ops/s varies with hardware; the on/off speedup on the same box is the
portable signal.

Usage:
    PYTHONPATH=src python tools/bench_request_path.py [--quick] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time

from repro._fastpath import FASTPATH_ENV
from repro.api import run_steady_state, scaling_config
from repro.experiments._build import build_simulation

#: single-run sim-ops/wall-s recorded at the parallel-executor PR
#: (pre-fast-lane), same config and box as CI's bench job.
BASELINE_SIM_OPS_PER_WALL_S = 13891.3


def bench_mode(cfg, fastpath: bool, repeat: int):
    """Best-of-``repeat`` wall time for one steady-state run."""
    os.environ[FASTPATH_ENV] = "1" if fastpath else "0"
    walls = []
    result = None
    for _ in range(max(1, repeat)):
        t0 = time.perf_counter()
        result = run_steady_state(cfg)
        walls.append(time.perf_counter() - t0)
    return result, min(walls)


def equivalence_check(cfg):
    """Full-summary comparison between the two modes (plus memo stats)."""
    summaries = {}
    memo_stats = None
    for fastpath in (False, True):
        os.environ[FASTPATH_ENV] = "1" if fastpath else "0"
        sim = build_simulation(cfg)
        sim.run_to(cfg.run_until_s)
        summaries[fastpath] = repr(sim.summary())
        if fastpath:
            memo = sim.cluster.ns.resolution_memo
            memo_stats = memo.stats() if memo is not None else None
    return summaries[False] == summaries[True], memo_stats


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="fewer repeats for CI")
    parser.add_argument("--scale", type=float, default=0.2)
    parser.add_argument("--repeat", type=int, default=None,
                        help="timing repeats per mode (min wins; "
                             "default 2 quick, 3 full)")
    parser.add_argument("--out", default="BENCH_request_path.json")
    args = parser.parse_args(argv)
    repeat = args.repeat if args.repeat is not None else \
        (2 if args.quick else 3)

    cfg = scaling_config("DynamicSubtree", 4, args.scale, seed=42)
    prior_env = os.environ.get(FASTPATH_ENV)
    try:
        off, off_wall = bench_mode(cfg, False, repeat)
        print(f"fastpath off: {off.total_ops} ops in {off_wall:.3f}s "
              f"-> {off.total_ops / off_wall:.0f} sim-ops/wall-s")
        on, on_wall = bench_mode(cfg, True, repeat)
        print(f"fastpath on:  {on.total_ops} ops in {on_wall:.3f}s "
              f"-> {on.total_ops / on_wall:.0f} sim-ops/wall-s")
        identical, memo_stats = equivalence_check(cfg)
    finally:
        if prior_env is None:
            os.environ.pop(FASTPATH_ENV, None)
        else:
            os.environ[FASTPATH_ENV] = prior_env

    on_rate = on.total_ops / on_wall
    off_rate = off.total_ops / off_wall
    vs_baseline = on_rate / BASELINE_SIM_OPS_PER_WALL_S
    print(f"on/off speedup {on_rate / off_rate:.2f}x   "
          f"vs recorded baseline {vs_baseline:.2f}x   "
          f"identical summaries: {identical}")
    if memo_stats is not None:
        lookups = memo_stats["hits"] + memo_stats["misses"]
        rate = memo_stats["hits"] / lookups if lookups else 0.0
        print(f"resolution memo: {memo_stats['entries']} entries, "
              f"hit rate {rate:.1%}, "
              f"{memo_stats['invalidations']} invalidations")

    report = {
        "benchmark": "request-path fast lane",
        "quick": args.quick,
        "scale": args.scale,
        "repeats": repeat,
        "cpu_count": os.cpu_count() or 1,
        "platform": platform.platform(),
        "python": platform.python_version(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "baseline_sim_ops_per_wall_s": BASELINE_SIM_OPS_PER_WALL_S,
        "fastpath_off": {
            "total_ops": off.total_ops,
            "wall_s": round(off_wall, 3),
            "sim_ops_per_wall_s": round(off_rate, 1),
        },
        "fastpath_on": {
            "total_ops": on.total_ops,
            "wall_s": round(on_wall, 3),
            "sim_ops_per_wall_s": round(on_rate, 1),
        },
        "speedup_on_vs_off": round(on_rate / off_rate, 3),
        "speedup_vs_baseline": round(vs_baseline, 3),
        "identical_summaries": identical,
        "resolution_memo": memo_stats,
    }
    with open(args.out, "w", encoding="utf-8") as fp:
        json.dump(report, fp, indent=2)
        fp.write("\n")
    print(f"report written to {args.out}")
    if not identical:
        print("ERROR: fast-lane summaries diverged from the reference path")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
