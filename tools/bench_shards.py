#!/usr/bin/env python3
"""Benchmark sharded (within-experiment) execution; write ``BENCH_shards.json``.

Times one shardable steady-state experiment serially, then partitioned
across forked worker processes via :mod:`repro.shard` for each requested
shard count, and verifies the merged summaries are **bit-identical** to
the serial run (the hard determinism check — the tool exits non-zero on
any divergence).

On a single-CPU host the sharded timing is meaningless (workers only
time-slice one core), so the tool records the sequential-fallback result
instead of a speedup — but still runs one forced-shard equivalence
check, which is CPU-count-independent.  The baseline discipline follows
the other bench tools: read from the previously committed report,
trajectory appended per run, >15% regressions warn but never fail.

Usage:
    PYTHONPATH=src python tools/bench_shards.py [--quick] [--out PATH]
    PYTHONPATH=src python tools/bench_shards.py --shards 2 4 --scale 1.0
"""

from __future__ import annotations

import argparse
import os
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import bench_common  # noqa: E402  (tools-dir import)
from bench_common import load_prior_report  # noqa: E402,F401

from repro.api import (run_sharded_summary, shard_viability,  # noqa: E402
                       sharded_config)
from repro.experiments._build import build_simulation  # noqa: E402

#: used only when no prior report exists at ``--out``
FALLBACK_BASELINE_SIM_OPS_PER_WALL_S = 5000.0


def baseline_from_prior(prior) -> float:
    """The prior report's recorded serial rate (or the fallback)."""
    return bench_common.baseline_from_prior(
        prior, ("serial", "sim_ops_per_wall_s"),
        FALLBACK_BASELINE_SIM_OPS_PER_WALL_S)


def trajectory_from_prior(prior) -> list:
    return bench_common.trajectory_from_prior(prior)


def bench_config(scale: float, n_mds: int):
    return sharded_config(n_mds=n_mds, scale=scale, seed=42,
                          files_per_user=20, shared_tree_files=80,
                          warmup_s=0.5, duration_s=1.5, net_hop_s=0.001)


def time_serial(cfg, repeat: int):
    """Best-of-``repeat`` serial wall time plus the reference summary."""
    walls = []
    summary = None
    t0, t1 = cfg.measure_window
    for _ in range(max(1, repeat)):
        t = time.perf_counter()
        sim = build_simulation(cfg)
        sim.run_to(t1)
        summary = sim.summary(window=(t0, t1))
        walls.append(time.perf_counter() - t)
    return summary, min(walls)


def time_sharded(cfg, n_shards: int, repeat: int):
    walls = []
    summary = None
    for _ in range(max(1, repeat)):
        t = time.perf_counter()
        summary = run_sharded_summary(cfg, n_shards)
        walls.append(time.perf_counter() - t)
    return summary, min(walls)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smaller run and fewer repeats for CI")
    parser.add_argument("--scale", type=float, default=None,
                        help="experiment scale (default: 0.5 quick, 1.0 "
                             "full)")
    parser.add_argument("--n-mds", type=int, default=8)
    parser.add_argument("--shards", type=int, nargs="+", default=None,
                        help="shard counts to time (default: 2 and 4, "
                             "clamped to the host's cores)")
    parser.add_argument("--repeat", type=int, default=None,
                        help="timing repeats (min wins; default 1 quick, "
                             "2 full)")
    parser.add_argument("--out", default="BENCH_shards.json")
    args = parser.parse_args(argv)
    scale = args.scale if args.scale is not None else \
        (0.5 if args.quick else 1.0)
    repeat = args.repeat if args.repeat is not None else \
        (1 if args.quick else 2)
    cpus = os.cpu_count() or 1

    prior = load_prior_report(args.out)
    baseline = baseline_from_prior(prior)
    trajectory = trajectory_from_prior(prior)

    cfg = bench_config(scale, args.n_mds)
    reason = shard_viability(cfg, 2)
    if reason is not None:
        print(f"ERROR: bench config is not shardable: {reason}")
        return 1

    serial, serial_wall = time_serial(cfg, repeat)
    serial_rate = serial.total_ops / serial_wall
    print(f"serial: {serial.total_ops} ops in {serial_wall:.2f}s "
          f"-> {serial_rate:.0f} sim-ops/wall-s ({cpus} CPUs)")

    # Shard counts worth *timing*: more workers than cores only adds
    # scheduling overhead.  Equivalence is checked regardless below.
    multi_core = cpus > 1
    counts = args.shards if args.shards is not None else [2, 4]
    counts = sorted({n for n in counts if 2 <= n <= cfg.n_mds})
    timed = {}
    identical = True
    if multi_core:
        for n in (n for n in counts if n <= cpus):
            merged, wall = time_sharded(cfg, n, repeat)
            same = repr(merged) == repr(serial)
            identical = identical and same
            speedup = serial_wall / wall if wall > 0 else 0.0
            timed[str(n)] = {
                "wall_s": round(wall, 3),
                "sim_ops_per_wall_s": round(merged.total_ops / wall, 1),
                "speedup_vs_serial": round(speedup, 3),
                "identical_summaries": same,
            }
            print(f"shards={n}: {wall:.2f}s -> {speedup:.2f}x vs serial, "
                  f"identical: {same}")
    else:
        print("1 CPU: sharded timing skipped (workers would time-slice "
              "one core); recording the sequential-fallback result")

    # The determinism contract is host-independent: force one sharded run
    # (at reduced size on 1-CPU hosts, where it is pure overhead) and
    # compare bits.
    if not timed:
        eq_cfg = bench_config(min(scale, 0.25), 4)
        eq_serial, _ = time_serial(eq_cfg, 1)
        eq_merged, _ = time_sharded(eq_cfg, 2, 1)
        identical = repr(eq_serial) == repr(eq_merged)
        print(f"forced 2-shard equivalence (scale "
              f"{min(scale, 0.25)}): identical: {identical}")

    best_speedup = max((v["speedup_vs_serial"] for v in timed.values()),
                       default=None)
    regressed = bench_common.warn_if_regressed(
        serial_rate, baseline, what="serial rate",
        hint="sim-ops/wall-s; informational: absolute rates depend on "
             "host load")

    entry = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "serial_ops_per_wall_s": round(serial_rate, 1),
        "best_speedup_vs_serial": best_speedup,
        "mode": "sharded" if timed else "serial-fallback",
        "quick": args.quick,
    }
    trajectory.append(entry)

    report = {
        "benchmark": "sharded parallel simulation (repro.shard)",
        "quick": args.quick,
        "scale": scale,
        "n_mds": cfg.n_mds,
        "repeats": repeat,
        **bench_common.host_fields(),
        "timestamp": entry["timestamp"],
        "mode": entry["mode"],
        "baseline_sim_ops_per_wall_s": round(baseline, 1),
        "serial": {
            "total_ops": serial.total_ops,
            "wall_s": round(serial_wall, 3),
            "sim_ops_per_wall_s": round(serial_rate, 1),
        },
        "sharded": timed,
        "best_speedup_vs_serial": best_speedup,
        "regressed_vs_baseline": regressed,
        "identical_summaries": identical,
        "trajectory": trajectory,
    }
    bench_common.write_report(args.out, report)
    if not identical:
        print("ERROR: sharded summaries diverged from the serial run")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
