"""Average-latency disk device model.

The paper deliberately simplifies storage to "average disk latencies and
transactional throughputs only" (§5.1).  ``DiskDevice`` is exactly that: a
FIFO service station where each transaction holds the device for a fixed
mean service time.  Queueing delay emerges from contention; no seek or
rotational modelling is attempted (nor was it in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator

from ..sim import Environment, Event, Resource


@dataclass(slots=True)
class DiskStats:
    """Cumulative transaction counts and busy time for one device."""

    reads: int = 0
    writes: int = 0
    read_busy_s: float = 0.0
    write_busy_s: float = 0.0

    @property
    def transactions(self) -> int:
        return self.reads + self.writes

    @property
    def busy_s(self) -> float:
        return self.read_busy_s + self.write_busy_s


class DiskDevice:
    """One storage device with fixed mean read/write transaction times."""

    def __init__(self, env: Environment, *, read_s: float, write_s: float,
                 name: str = "disk") -> None:
        if read_s < 0 or write_s < 0:
            raise ValueError("latencies must be non-negative")
        self.env = env
        self.name = name
        self.read_s = read_s
        self.write_s = write_s
        self.stats = DiskStats()
        self._server = Resource(env, capacity=1)
        # In-flight (units, hold) of the flattened fast path.  Single slot is
        # safe: capacity is 1, so at most one collapsed transaction holds the
        # device, and the finish callback clears it before releasing.
        self._active: "tuple[int, float] | None" = None

    @property
    def queue_length(self) -> int:
        """Transactions currently waiting for the device."""
        return self._server.queue_length

    # -- flattened fast path --------------------------------------------------
    def read_event(self, units: int = 1) -> "Event | None":
        """Uncontended read collapsed to ONE timeout event, or ``None``.

        Stats and the device release are applied by a callback when the
        timeout fires (before the waiting process resumes), matching the
        reference sub-process ordering.  Callers fall back to
        ``yield from read(units)`` when this returns ``None`` (device busy,
        or fast lane off).
        """
        if units <= 0:
            raise ValueError(f"units must be positive, got {units}")
        env = self.env
        server = self._server
        if env._fastlane and server._in_use < server.capacity:
            server._in_use += 1
            hold = self.read_s * units
            timeout = env.timeout(hold)
            self._active = (units, hold)
            timeout.callbacks.append(self._finish_read)
            return timeout
        return None

    def write_event(self, units: int = 1) -> "Event | None":
        """Uncontended write collapsed to ONE timeout event, or ``None``."""
        if units <= 0:
            raise ValueError(f"units must be positive, got {units}")
        env = self.env
        server = self._server
        if env._fastlane and server._in_use < server.capacity:
            server._in_use += 1
            hold = self.write_s * units
            timeout = env.timeout(hold)
            self._active = (units, hold)
            timeout.callbacks.append(self._finish_write)
            return timeout
        return None

    def _finish_read(self, _event: Event) -> None:
        units, hold = self._active  # type: ignore[misc]
        self._active = None
        self.stats.reads += units
        self.stats.read_busy_s += hold
        self._server.release()

    def _finish_write(self, _event: Event) -> None:
        units, hold = self._active  # type: ignore[misc]
        self._active = None
        self.stats.writes += units
        self.stats.write_busy_s += hold
        self._server.release()

    # -- reference (queued) path ----------------------------------------------
    def read(self, units: int = 1) -> Generator[Event, Any, None]:
        """Perform ``units`` back-to-back read transactions (a sub-process)."""
        fast = self.read_event(units)  # validates units; None when queued
        if fast is not None:
            yield fast
            return
        yield self._server.request()
        try:
            hold = self.read_s * units
            yield self.env.timeout(hold)
            self.stats.reads += units
            self.stats.read_busy_s += hold
        finally:
            self._server.release()

    def write(self, units: int = 1) -> Generator[Event, Any, None]:
        """Perform ``units`` back-to-back write transactions (a sub-process)."""
        fast = self.write_event(units)
        if fast is not None:
            yield fast
            return
        yield self._server.request()
        try:
            hold = self.write_s * units
            yield self.env.timeout(hold)
            self.stats.writes += units
            self.stats.write_busy_s += hold
        finally:
            self._server.release()

    def utilization(self, elapsed_s: float) -> float:
        """Fraction of ``elapsed_s`` the device spent busy."""
        if elapsed_s <= 0:
            return 0.0
        return min(1.0, self.stats.busy_s / elapsed_s)
