"""Metadata storage substrate (S3 in DESIGN.md).

Two-tier model from §4.6: a bounded per-MDS journal for fast commits, and a
shared OSD pool holding directory objects (embedded inodes) for long-term
storage.  Fidelity matches the paper's stated simplification: average
latencies with FIFO queueing.
"""

from .disk import DiskDevice, DiskStats
from .journal import Journal, JournalStats
from .layout import DirectoryGrainLayout, InodeGrainLayout, Layout
from .objectstore import ObjectStore, ObjectStoreStats

__all__ = [
    "DirectoryGrainLayout",
    "DiskDevice",
    "DiskStats",
    "InodeGrainLayout",
    "Journal",
    "JournalStats",
    "Layout",
    "ObjectStore",
    "ObjectStoreStats",
]
