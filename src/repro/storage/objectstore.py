"""Shared object-storage pool for long-term metadata (§2.1.3, §4.6).

Directory contents — dentries plus their embedded inodes — are stored
together as variably-sized objects spread over a pool of OSDs.  An OSD is
picked per object by hashing the directory inode number, mirroring the
deterministic pseudo-random placement the paper's data path uses [11].

The store supports two access grains:

* **directory-grain** (embedded inodes, §4.5): one read transaction fetches
  an entire directory's entries and inodes — this is what subtree and
  directory-hash strategies use, and what enables prefetching;
* **inode-grain**: one read transaction per inode — what full-path hashing
  and Lazy Hybrid are stuck with, since a directory's inodes are scattered
  across servers and on-disk objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, List

from ..sim import Environment, Event
from .disk import DiskDevice


@dataclass(slots=True)
class ObjectStoreStats:
    dir_reads: int = 0
    inode_reads: int = 0
    dir_writes: int = 0
    inode_writes: int = 0


class ObjectStore:
    """A pool of OSD devices addressed by object (inode-number) hash.

    ``placement`` optionally overrides the default hash with an explicit
    ino -> device-index map (still taken modulo the pool size).  The MDS
    cluster uses it under ``SimParams.shard_affinity`` to pin every object
    onto a device owned by the inode's authority node.
    """

    def __init__(self, env: Environment, *, n_osds: int, read_s: float,
                 write_s: float, placement=None) -> None:
        if n_osds < 1:
            raise ValueError("need at least one OSD")
        self.env = env
        self.stats = ObjectStoreStats()
        self._placement = placement
        self.osds: List[DiskDevice] = [
            DiskDevice(env, read_s=read_s, write_s=write_s, name=f"osd{i}")
            for i in range(n_osds)
        ]

    def device_for(self, ino: int) -> DiskDevice:
        """OSD holding the object for ``ino`` (stable pseudo-random map)."""
        if self._placement is not None:
            return self.osds[self._placement(ino) % len(self.osds)]
        # Knuth multiplicative scramble decorrelates sequential inos.
        return self.osds[(ino * 2654435761) % len(self.osds)]

    # -- directory-grain ------------------------------------------------------
    def read_dir_object(self, dir_ino: int) -> Generator[Event, Any, None]:
        """Fetch a whole directory object (entries + embedded inodes)."""
        device = self.device_for(dir_ino)
        fast = device.read_event(1)  # single timeout when uncontended
        if fast is not None:
            yield fast
        else:
            yield from device.read(1)
        self.stats.dir_reads += 1

    def write_dir_object(self, dir_ino: int) -> Generator[Event, Any, None]:
        """Rewrite the changed B-tree nodes of a directory object."""
        device = self.device_for(dir_ino)
        fast = device.write_event(1)
        if fast is not None:
            yield fast
        else:
            yield from device.write(1)
        self.stats.dir_writes += 1

    # -- inode-grain ------------------------------------------------------------
    def read_inode(self, ino: int) -> Generator[Event, Any, None]:
        """Fetch a single inode record (no prefetch possible)."""
        device = self.device_for(ino)
        fast = device.read_event(1)
        if fast is not None:
            yield fast
        else:
            yield from device.read(1)
        self.stats.inode_reads += 1

    def write_inode(self, ino: int) -> Generator[Event, Any, None]:
        """Write back a single inode record."""
        device = self.device_for(ino)
        fast = device.write_event(1)
        if fast is not None:
            yield fast
        else:
            yield from device.write(1)
        self.stats.inode_writes += 1

    @property
    def total_reads(self) -> int:
        return self.stats.dir_reads + self.stats.inode_reads

    @property
    def total_writes(self) -> int:
        return self.stats.dir_writes + self.stats.inode_writes
