"""B-tree directory objects with copy-on-write updates (§4.6).

The paper stores directory contents — entries plus embedded inodes — "in a
B-tree-like structure (similar to XFS) that allows incremental updates
(small numbers of creates or deletes) with minimal modifications to
on-disk structures (rewriting changed B-tree nodes).  The tree structure
also facilitates copy-on-write techniques for safe updates and advanced
file system features like snapshots."

This module implements exactly that: an order-``t`` B-tree keyed by entry
name, with *path-copying* (copy-on-write) mutation — every insert/delete
returns a new root and reports how many nodes were written, which is the
incremental-update cost the storage model charges.  Because old nodes are
never modified, any previously-returned root remains a consistent snapshot
of the directory for free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, List, Optional, Tuple


@dataclass(frozen=True)
class BTreeNode:
    """An immutable B-tree node.

    ``keys`` are entry names; ``values`` the embedded inode payloads.
    ``children`` is empty for leaves, otherwise has ``len(keys) + 1``
    elements.
    """

    keys: Tuple[str, ...] = ()
    values: Tuple[Any, ...] = ()
    children: Tuple["BTreeNode", ...] = ()

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def __post_init__(self) -> None:
        if len(self.keys) != len(self.values):
            raise ValueError("keys/values length mismatch")
        if self.children and len(self.children) != len(self.keys) + 1:
            raise ValueError("children/keys arity mismatch")


@dataclass
class WriteStats:
    """Nodes written by one copy-on-write mutation."""

    nodes_written: int = 0


class DirectoryBTree:
    """A copy-on-write B-tree mapping entry name -> embedded inode payload.

    ``min_degree`` is the classic B-tree ``t``: nodes hold between ``t-1``
    and ``2t-1`` keys (except the root).  All mutations return the number
    of nodes written, the incremental I/O cost of the update.
    """

    def __init__(self, min_degree: int = 16,
                 root: Optional[BTreeNode] = None) -> None:
        if min_degree < 2:
            raise ValueError("min_degree must be >= 2")
        self.t = min_degree
        self.root: BTreeNode = root if root is not None else BTreeNode()
        self._count = sum(1 for _ in self.items()) if root is not None else 0

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._count

    def __contains__(self, key: str) -> bool:
        return self.get(key, default=_MISSING) is not _MISSING

    def get(self, key: str, default: Any = None) -> Any:
        """Look up an entry by name."""
        node = self.root
        while True:
            index = _search(node.keys, key)
            if index < len(node.keys) and node.keys[index] == key:
                return node.values[index]
            if node.is_leaf:
                return default
            node = node.children[index]

    def items(self) -> Iterator[Tuple[str, Any]]:
        """All entries in key order."""
        yield from _iter_node(self.root)

    def keys(self) -> Iterator[str]:
        for key, _value in self.items():
            yield key

    def depth(self) -> int:
        """Height of the tree (1 for a lone root leaf)."""
        depth, node = 1, self.root
        while not node.is_leaf:
            node = node.children[0]
            depth += 1
        return depth

    def snapshot(self) -> "DirectoryBTree":
        """An O(1) frozen copy (copy-on-write shares all nodes)."""
        clone = DirectoryBTree.__new__(DirectoryBTree)
        clone.t = self.t
        clone.root = self.root
        clone._count = self._count
        return clone

    # ------------------------------------------------------------------
    # mutations (path-copying: return nodes-written cost)
    # ------------------------------------------------------------------
    def insert(self, key: str, value: Any) -> int:
        """Insert or replace ``key``; returns B-tree nodes written."""
        stats = WriteStats()
        existed = key in self
        root = self.root
        if len(root.keys) == 2 * self.t - 1:
            # preemptive root split
            left, mid_key, mid_val, right = _split(root, self.t, stats)
            root = BTreeNode(keys=(mid_key,), values=(mid_val,),
                             children=(left, right))
            stats.nodes_written += 1
        self.root = self._insert_nonfull(root, key, value, stats)
        if not existed:
            self._count += 1
        return stats.nodes_written

    def _insert_nonfull(self, node: BTreeNode, key: str, value: Any,
                        stats: WriteStats) -> BTreeNode:
        index = _search(node.keys, key)
        if index < len(node.keys) and node.keys[index] == key:
            # replace in place (one rewritten node per level of the path)
            stats.nodes_written += 1
            return BTreeNode(
                keys=node.keys,
                values=node.values[:index] + (value,)
                + node.values[index + 1:],
                children=node.children)
        if node.is_leaf:
            stats.nodes_written += 1
            return BTreeNode(
                keys=node.keys[:index] + (key,) + node.keys[index:],
                values=node.values[:index] + (value,) + node.values[index:],
            )
        child = node.children[index]
        if len(child.keys) == 2 * self.t - 1:
            left, mid_key, mid_val, right = _split(child, self.t, stats)
            node = BTreeNode(
                keys=node.keys[:index] + (mid_key,) + node.keys[index:],
                values=node.values[:index] + (mid_val,)
                + node.values[index:],
                children=node.children[:index] + (left, right)
                + node.children[index + 1:])
            if key == mid_key:
                stats.nodes_written += 1
                # replace the separator's value
                return BTreeNode(
                    keys=node.keys,
                    values=node.values[:index] + (value,)
                    + node.values[index + 1:],
                    children=node.children)
            if key > mid_key:
                index += 1
            child = node.children[index]
        new_child = self._insert_nonfull(child, key, value, stats)
        stats.nodes_written += 1
        return BTreeNode(
            keys=node.keys,
            values=node.values,
            children=node.children[:index] + (new_child,)
            + node.children[index + 1:])

    def delete(self, key: str) -> int:
        """Remove ``key``; returns nodes written.  KeyError if missing."""
        if key not in self:
            raise KeyError(key)
        stats = WriteStats()
        root = self._delete(self.root, key, stats)
        if not root.is_leaf and not root.keys:
            root = root.children[0]  # shrink height
        self.root = root
        self._count -= 1
        return stats.nodes_written

    def _delete(self, node: BTreeNode, key: str,
                stats: WriteStats) -> BTreeNode:
        t = self.t
        index = _search(node.keys, key)
        if index < len(node.keys) and node.keys[index] == key:
            if node.is_leaf:
                stats.nodes_written += 1
                return BTreeNode(
                    keys=node.keys[:index] + node.keys[index + 1:],
                    values=node.values[:index] + node.values[index + 1:])
            # internal hit: replace with predecessor from the left child
            left = node.children[index]
            if len(left.keys) >= t:
                pred_key, pred_val = _rightmost(left)
                new_left = self._delete(left, pred_key, stats)
                stats.nodes_written += 1
                return BTreeNode(
                    keys=node.keys[:index] + (pred_key,)
                    + node.keys[index + 1:],
                    values=node.values[:index] + (pred_val,)
                    + node.values[index + 1:],
                    children=node.children[:index] + (new_left,)
                    + node.children[index + 1:])
            right = node.children[index + 1]
            if len(right.keys) >= t:
                succ_key, succ_val = _leftmost(right)
                new_right = self._delete(right, succ_key, stats)
                stats.nodes_written += 1
                return BTreeNode(
                    keys=node.keys[:index] + (succ_key,)
                    + node.keys[index + 1:],
                    values=node.values[:index] + (succ_val,)
                    + node.values[index + 1:],
                    children=node.children[:index + 1] + (new_right,)
                    + node.children[index + 2:])
            # both children minimal: merge then recurse
            merged, node = _merge_children(node, index, stats)
            new_merged = self._delete(merged, key, stats)
            stats.nodes_written += 1
            return BTreeNode(
                keys=node.keys, values=node.values,
                children=node.children[:index] + (new_merged,)
                + node.children[index + 1:])
        if node.is_leaf:
            raise KeyError(key)  # pragma: no cover - guarded by caller
        child = node.children[index]
        if len(child.keys) < t:
            node, index = _grow_child(node, index, t, stats)
            child = node.children[index]
        new_child = self._delete(child, key, stats)
        stats.nodes_written += 1
        return BTreeNode(
            keys=node.keys, values=node.values,
            children=node.children[:index] + (new_child,)
            + node.children[index + 1:])

    # ------------------------------------------------------------------
    # invariants (property tests)
    # ------------------------------------------------------------------
    def verify_invariants(self) -> None:
        keys = list(self.keys())
        assert keys == sorted(keys), "keys out of order"
        assert len(keys) == self._count, "count drift"
        _check_node(self.root, self.t, is_root=True)
        leaf_depths = set(_leaf_depths(self.root, 1))
        assert len(leaf_depths) <= 1, "leaves at unequal depth"


_MISSING = object()


def _search(keys: Tuple[str, ...], key: str) -> int:
    """Index of the first element >= key (linear is fine at B-tree widths)."""
    lo, hi = 0, len(keys)
    while lo < hi:
        mid = (lo + hi) // 2
        if keys[mid] < key:
            lo = mid + 1
        else:
            hi = mid
    return lo


def _split(node: BTreeNode, t: int,
           stats: WriteStats) -> Tuple[BTreeNode, str, Any, BTreeNode]:
    """Split a full node into (left, separator_key, separator_value, right)."""
    left = BTreeNode(keys=node.keys[:t - 1], values=node.values[:t - 1],
                     children=node.children[:t] if node.children else ())
    right = BTreeNode(keys=node.keys[t:], values=node.values[t:],
                      children=node.children[t:] if node.children else ())
    stats.nodes_written += 2
    return left, node.keys[t - 1], node.values[t - 1], right


def _rightmost(node: BTreeNode) -> Tuple[str, Any]:
    while not node.is_leaf:
        node = node.children[-1]
    return node.keys[-1], node.values[-1]


def _leftmost(node: BTreeNode) -> Tuple[str, Any]:
    while not node.is_leaf:
        node = node.children[0]
    return node.keys[0], node.values[0]


def _merge_children(node: BTreeNode, index: int,
                    stats: WriteStats) -> Tuple[BTreeNode, BTreeNode]:
    """Merge children[index] and children[index+1] around their separator."""
    left, right = node.children[index], node.children[index + 1]
    merged = BTreeNode(
        keys=left.keys + (node.keys[index],) + right.keys,
        values=left.values + (node.values[index],) + right.values,
        children=left.children + right.children)
    stats.nodes_written += 1
    parent = BTreeNode(
        keys=node.keys[:index] + node.keys[index + 1:],
        values=node.values[:index] + node.values[index + 1:],
        children=node.children[:index] + (merged,)
        + node.children[index + 2:])
    return merged, parent


def _grow_child(node: BTreeNode, index: int, t: int,
                stats: WriteStats) -> Tuple[BTreeNode, int]:
    """Ensure children[index] has >= t keys (borrow or merge)."""
    child = node.children[index]
    if index > 0 and len(node.children[index - 1].keys) >= t:
        left = node.children[index - 1]
        new_child = BTreeNode(
            keys=(node.keys[index - 1],) + child.keys,
            values=(node.values[index - 1],) + child.values,
            children=((left.children[-1],) + child.children
                      if child.children else ()))
        new_left = BTreeNode(
            keys=left.keys[:-1], values=left.values[:-1],
            children=left.children[:-1] if left.children else ())
        stats.nodes_written += 2
        return BTreeNode(
            keys=node.keys[:index - 1] + (left.keys[-1],)
            + node.keys[index:],
            values=node.values[:index - 1] + (left.values[-1],)
            + node.values[index:],
            children=node.children[:index - 1] + (new_left, new_child)
            + node.children[index + 1:]), index
    if (index < len(node.children) - 1
            and len(node.children[index + 1].keys) >= t):
        right = node.children[index + 1]
        new_child = BTreeNode(
            keys=child.keys + (node.keys[index],),
            values=child.values + (node.values[index],),
            children=(child.children + (right.children[0],)
                      if child.children else ()))
        new_right = BTreeNode(
            keys=right.keys[1:], values=right.values[1:],
            children=right.children[1:] if right.children else ())
        stats.nodes_written += 2
        return BTreeNode(
            keys=node.keys[:index] + (right.keys[0],)
            + node.keys[index + 1:],
            values=node.values[:index] + (right.values[0],)
            + node.values[index + 1:],
            children=node.children[:index] + (new_child, new_right)
            + node.children[index + 2:]), index
    # merge with a sibling
    if index == len(node.children) - 1:
        index -= 1
    _merged, parent = _merge_children(node, index, stats)
    return parent, index


def _iter_node(node: BTreeNode) -> Iterator[Tuple[str, Any]]:
    if node.is_leaf:
        yield from zip(node.keys, node.values)
        return
    for i, key in enumerate(node.keys):
        yield from _iter_node(node.children[i])
        yield key, node.values[i]
    yield from _iter_node(node.children[-1])


def _check_node(node: BTreeNode, t: int, is_root: bool) -> None:
    if not is_root:
        assert len(node.keys) >= t - 1, "underfull node"
    assert len(node.keys) <= 2 * t - 1, "overfull node"
    assert list(node.keys) == sorted(node.keys), "node keys unsorted"
    for child in node.children:
        _check_node(child, t, is_root=False)


def _leaf_depths(node: BTreeNode, depth: int):
    if node.is_leaf:
        yield depth
    else:
        for child in node.children:
            yield from _leaf_depths(child, depth + 1)
