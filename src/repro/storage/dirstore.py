"""Directory-object store: B-tree-backed directory contents with snapshots.

§4.6's long-term tier stores each directory's entries and embedded inodes
as a variably-sized object in a B-tree-like structure "that allows
incremental updates ... with minimal modifications to on-disk structures",
and whose copy-on-write form "facilitates ... advanced file system features
like snapshots".

:class:`DirectoryObjectStore` is that tier made concrete: it materializes
one :class:`~repro.storage.btree.DirectoryBTree` per directory, mirrors
namespace mutations into them (counting the B-tree nodes each update
rewrites — the real incremental write cost), and can take O(1) named
snapshots of any directory or of the whole store.

The discrete-event simulator's latency model intentionally stays at the
paper's "average transaction" fidelity; this store provides the faithful
on-disk *structure* underneath it, exercised by its own tests, benches and
the snapshot example.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, Optional, Tuple

from ..namespace import Inode, Namespace
from .btree import DirectoryBTree


@dataclass(frozen=True, slots=True)
class EmbeddedInode:
    """The payload stored with each dentry: the embedded inode (§4.5)."""

    ino: int
    is_dir: bool
    mode: int
    owner: int
    size: int
    mtime: float

    @classmethod
    def from_inode(cls, inode: Inode) -> "EmbeddedInode":
        return cls(ino=inode.ino, is_dir=inode.is_dir, mode=inode.mode,
                   owner=inode.owner, size=inode.size, mtime=inode.mtime)


@dataclass(slots=True)
class DirStoreStats:
    """Cumulative structural write costs."""

    updates: int = 0
    btree_nodes_written: int = 0
    snapshots_taken: int = 0


class DirectoryObjectStore:
    """B-tree directory objects, one per directory, with COW snapshots."""

    def __init__(self, min_degree: int = 16) -> None:
        if min_degree < 2:
            raise ValueError("min_degree must be >= 2")
        self.min_degree = min_degree
        self._objects: Dict[int, DirectoryBTree] = {}
        #: (dir_ino, snapshot_name) -> frozen tree
        self._snapshots: Dict[Tuple[int, str], DirectoryBTree] = {}
        self.stats = DirStoreStats()

    # ------------------------------------------------------------------
    # construction / sync
    # ------------------------------------------------------------------
    def load_from_namespace(self, ns: Namespace) -> int:
        """Materialize an object for every directory; returns node writes."""
        written = 0
        for node in ns.iter_subtree(1):
            if not node.is_dir:
                continue
            tree = self._object(node.ino)
            for name, child_ino in node.children.items():  # type: ignore[union-attr]
                written += tree.insert(
                    name, EmbeddedInode.from_inode(ns.inode(child_ino)))
        self.stats.btree_nodes_written += written
        return written

    def _object(self, dir_ino: int) -> DirectoryBTree:
        tree = self._objects.get(dir_ino)
        if tree is None:
            tree = DirectoryBTree(min_degree=self.min_degree)
            self._objects[dir_ino] = tree
        return tree

    # ------------------------------------------------------------------
    # incremental updates (cost = B-tree nodes rewritten)
    # ------------------------------------------------------------------
    def apply_create(self, dir_ino: int, name: str, inode: Inode) -> int:
        """Record a new dentry+embedded inode; returns nodes written."""
        written = self._object(dir_ino).insert(
            name, EmbeddedInode.from_inode(inode))
        self.stats.updates += 1
        self.stats.btree_nodes_written += written
        return written

    def apply_update(self, dir_ino: int, name: str, inode: Inode) -> int:
        """Rewrite an embedded inode in place (chmod/setattr)."""
        tree = self._object(dir_ino)
        if name not in tree:
            raise KeyError(f"{name!r} not in directory object {dir_ino}")
        written = tree.insert(name, EmbeddedInode.from_inode(inode))
        self.stats.updates += 1
        self.stats.btree_nodes_written += written
        return written

    def apply_unlink(self, dir_ino: int, name: str) -> int:
        """Remove a dentry; returns nodes written."""
        written = self._object(dir_ino).delete(name)
        self.stats.updates += 1
        self.stats.btree_nodes_written += written
        return written

    def apply_rename(self, src_dir: int, src_name: str, dst_dir: int,
                     dst_name: str) -> int:
        """Move a dentry between directory objects."""
        src_tree = self._object(src_dir)
        payload = src_tree.get(src_name, default=None)
        if payload is None:
            raise KeyError(f"{src_name!r} not in directory object {src_dir}")
        written = src_tree.delete(src_name)
        written += self._object(dst_dir).insert(dst_name, payload)
        self.stats.updates += 1
        self.stats.btree_nodes_written += written
        return written

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def lookup(self, dir_ino: int, name: str) -> Optional[EmbeddedInode]:
        tree = self._objects.get(dir_ino)
        return tree.get(name) if tree is not None else None

    def readdir(self, dir_ino: int) -> Iterator[Tuple[str, EmbeddedInode]]:
        tree = self._objects.get(dir_ino)
        if tree is not None:
            yield from tree.items()

    def entry_count(self, dir_ino: int) -> int:
        tree = self._objects.get(dir_ino)
        return len(tree) if tree is not None else 0

    def object_depth(self, dir_ino: int) -> int:
        tree = self._objects.get(dir_ino)
        return tree.depth() if tree is not None else 0

    # ------------------------------------------------------------------
    # snapshots (§4.6)
    # ------------------------------------------------------------------
    def snapshot_directory(self, dir_ino: int, name: str) -> None:
        """Freeze one directory's current contents under ``name`` (O(1))."""
        self._snapshots[(dir_ino, name)] = self._object(dir_ino).snapshot()
        self.stats.snapshots_taken += 1

    def snapshot_all(self, name: str) -> int:
        """Freeze every directory object; returns directories captured."""
        for dir_ino in list(self._objects):
            self.snapshot_directory(dir_ino, name)
        return len(self._objects)

    def read_snapshot(self, dir_ino: int,
                      name: str) -> Iterator[Tuple[str, EmbeddedInode]]:
        """Entries of ``dir_ino`` as of snapshot ``name``."""
        key = (dir_ino, name)
        if key not in self._snapshots:
            raise KeyError(f"no snapshot {name!r} for directory {dir_ino}")
        yield from self._snapshots[key].items()

    def drop_snapshot(self, dir_ino: int, name: str) -> None:
        self._snapshots.pop((dir_ino, name), None)

    def snapshot_names(self, dir_ino: int) -> Iterator[str]:
        for (ino, name) in self._snapshots:
            if ino == dir_ino:
                yield name

    # ------------------------------------------------------------------
    def verify_against(self, ns: Namespace) -> None:
        """Assert the store mirrors the live namespace exactly."""
        for node in ns.iter_subtree(1):
            if not node.is_dir:
                continue
            stored = dict(self.readdir(node.ino))
            live = {name: ns.inode(child)
                    for name, child in node.children.items()}  # type: ignore[union-attr]
            assert stored.keys() == live.keys(), (
                f"dir {node.ino}: entries differ")
            for name, inode in live.items():
                emb = stored[name]
                assert emb.ino == inode.ino and emb.size == inode.size \
                    and emb.mode == inode.mode, f"stale embed for {name!r}"
