"""Bounded per-MDS update journal (§4.6).

Every metadata update is appended to a bounded log for fast stable commits.
Entries that fall off the tail without having been re-modified are retired
to the second (object-store) tier.  Because the log is sized on the order of
MDS memory, its contents approximate the node's working set — which is why
:meth:`warm_inos` exists: on startup/failover the cache can be preloaded
from the log (§4.6).

Appends are modelled as cheap sequential writes on a dedicated journal
device (NVRAM-maskable); retirements cost a tier-2 write on the shared
object store, batched per directory.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Generator, List

from ..sim import Environment, Event
from .disk import DiskDevice


@dataclass(slots=True)
class JournalStats:
    appends: int = 0
    retirements: int = 0
    overwrites: int = 0  # re-modified while still in the log (absorbed)


class Journal:
    """Bounded log of recently-updated inodes."""

    def __init__(self, env: Environment, device: DiskDevice,
                 capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError("journal capacity must be >= 1")
        self.env = env
        self.device = device
        self.capacity = capacity
        self.stats = JournalStats()
        # ino -> insertion order; OrderedDict gives O(1) move-to-end, which
        # models "subsequent modification restarts the entry's lifetime".
        self._entries: "OrderedDict[int, None]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, ino: int) -> bool:
        return ino in self._entries

    def append(self, ino: int) -> Generator[Event, Any, List[int]]:
        """Log an update to ``ino``; returns inos retired by this append.

        A sub-process: holds the journal device for one sequential write.
        Retired inos must then be flushed to tier 2 by the caller (the MDS
        does this off the critical path).
        """
        fast = self.device.write_event(1)  # single timeout when uncontended
        if fast is not None:
            yield fast
        else:
            yield from self.device.write(1)
        self.stats.appends += 1
        if ino in self._entries:
            self._entries.move_to_end(ino)
            self.stats.overwrites += 1
            return []
        self._entries[ino] = None
        retired: List[int] = []
        while len(self._entries) > self.capacity:
            old_ino, _ = self._entries.popitem(last=False)
            retired.append(old_ino)
            self.stats.retirements += 1
        return retired

    def warm_inos(self) -> List[int]:
        """Inos currently in the log, oldest first (startup cache preload)."""
        return list(self._entries)

    def clear(self) -> None:
        self._entries.clear()
