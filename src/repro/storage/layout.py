"""On-disk layout policies: what one cache miss fetches.

This is the embedded-inode design choice (§4.5) factored out as a policy so
strategies — and the ablation benchmark — can swap it:

* :class:`DirectoryGrainLayout`: inodes are embedded in their directory;
  missing an inode fetches its whole directory in one transaction and yields
  every sibling for prefetching.
* :class:`InodeGrainLayout`: the traditional scattered-inode layout; one
  transaction per inode, nothing to prefetch.
"""

from __future__ import annotations

from typing import Any, Generator, List

from ..namespace import Inode, Namespace
from ..sim import Event
from .objectstore import ObjectStore


class Layout:
    """Interface: fetch the object(s) needed to load ``inode`` into cache."""

    #: True when a single miss brings in the containing directory's inodes.
    prefetches_directory: bool = False

    def fetch(self, store: ObjectStore, ns: Namespace,
              inode: Inode) -> Generator[Event, Any, List[int]]:
        """Sub-process performing the I/O; returns prefetchable sibling inos."""
        raise NotImplementedError

    def writeback(self, store: ObjectStore, ns: Namespace,
                  inode: Inode) -> Generator[Event, Any, None]:
        """Sub-process writing a retired dirty inode to tier 2."""
        raise NotImplementedError

    def writeback_batch(self, store: ObjectStore, ns: Namespace,
                        inodes: List[Inode]) -> Generator[Event, Any, int]:
        """Write a batch of retired inodes; returns transactions issued.

        Default: one transaction per inode (scattered layouts cannot do
        better).  Directory-grain layouts override to rewrite each affected
        directory object once (§4.6: incremental B-tree updates).
        """
        for inode in inodes:
            yield from self.writeback(store, ns, inode)
        return len(inodes)


class DirectoryGrainLayout(Layout):
    """Embedded inodes: one read per directory, siblings come along free."""

    prefetches_directory = True

    def fetch(self, store: ObjectStore, ns: Namespace,
              inode: Inode) -> Generator[Event, Any, List[int]]:
        # A directory inode is embedded in its parent's object; a file in its
        # own directory's object.  Either way one directory object is read.
        container_ino = inode.parent_ino if not inode.is_dir else inode.ino
        yield from store.read_dir_object(container_ino)
        container = ns.inode(container_ino)
        if container.is_dir and container.children:
            return [child for child in container.children.values()
                    if child != inode.ino]
        return []

    def writeback(self, store: ObjectStore, ns: Namespace,
                  inode: Inode) -> Generator[Event, Any, None]:
        container_ino = inode.parent_ino if not inode.is_dir else inode.ino
        yield from store.write_dir_object(container_ino)

    def writeback_batch(self, store: ObjectStore, ns: Namespace,
                        inodes: List[Inode]) -> Generator[Event, Any, int]:
        """Retired inodes sharing a directory cost one object rewrite."""
        containers = []
        seen = set()
        for inode in inodes:
            container = inode.parent_ino if not inode.is_dir else inode.ino
            if container not in seen:
                seen.add(container)
                containers.append(container)
        for container in containers:
            yield from store.write_dir_object(container)
        return len(containers)


class InodeGrainLayout(Layout):
    """Scattered inodes: every miss is its own transaction, no prefetch."""

    prefetches_directory = False

    def fetch(self, store: ObjectStore, ns: Namespace,
              inode: Inode) -> Generator[Event, Any, List[int]]:
        yield from store.read_inode(inode.ino)
        return []

    def writeback(self, store: ObjectStore, ns: Namespace,
                  inode: Inode) -> Generator[Event, Any, None]:
        yield from store.write_inode(inode.ino)
