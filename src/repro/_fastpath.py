"""Request-path fast-lane switch.

The fast lane — the namespace resolution memo and the partition-strategy
authority cache — is pure memoisation: with correct invalidation it changes
wall-clock cost only, never simulated behaviour.  ``REPRO_FASTPATH=0``
disables it so CI can assert that a fixed-seed run produces bit-identical
``Simulation.summary()`` metrics either way (the golden-equivalence check).

The switch is read when a simulation is wired up (``MdsCluster.__init__`` /
``Strategy.bind``), not per request: the hot path itself only ever does a
``is None`` check on the memo handle.
"""

from __future__ import annotations

import os

#: Environment switch: unset/"1"/"on" enables the fast lane (default),
#: "0"/"off"/"false"/"no" disables it for golden-equivalence runs.
FASTPATH_ENV = "REPRO_FASTPATH"

_OFF_TOKENS = frozenset({"0", "off", "false", "no", "serial"})


def fastpath_enabled() -> bool:
    """True unless ``REPRO_FASTPATH`` disables the request-path fast lane."""
    return os.environ.get(FASTPATH_ENV, "").strip().lower() not in _OFF_TOKENS


__all__ = ["FASTPATH_ENV", "fastpath_enabled"]
