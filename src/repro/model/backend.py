"""Model-backend selection: reference (pure python) vs compiled C.

PR 8 put the event calendar behind ``repro.sim.backend``; this module is
the same seam for the *model* hot spots — the metadata-cache LRU, the
resolution/ancestor memos, the epoch-keyed authority memo, and the
popularity decay counters.  The pure-python implementations in
``repro.cache.lru``, ``repro.namespace.memo`` and ``repro.mds.popularity``
are preserved byte-for-byte as the ``reference`` backend; the hand-written
C extension ``repro.model._cmodel`` is the ``compiled`` backend.

Selection mirrors ``REPRO_KERNEL`` exactly:

* ``REPRO_MODEL=reference`` — always the pure-python structures.
* ``REPRO_MODEL=compiled``  — the C structures; **silently falls back**
  to reference when the extension is not built (same contract as the
  kernel gate: an unbuilt optional extension must never break a run).
* ``REPRO_MODEL=auto``      — compiled when available, else reference.

Anything else raises ``ValueError`` (strict parsing, like every other
gate).  ``ExperimentConfig.model`` takes precedence over the environment
variable via :func:`repro.experiments.config.env_gates`.

Both backends are *behaviour-identical*: every counter, exception type,
exception message and float expression matches, so fixed-seed summaries
are bit-identical across backends (enforced by ``tests/model/``).

This module must not import any other ``repro`` module at import time —
it is imported by config/cache/namespace/mds call sites and must stay
cycle-free; the factory helpers lazy-import the reference classes.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Optional

MODEL_ENV = "REPRO_MODEL"

REFERENCE = "reference"
COMPILED = "compiled"
_MODEL_TOKENS = frozenset({REFERENCE, COMPILED, "auto"})

try:  # pragma: no cover - exercised only when the extension is built
    from . import _cmodel as _C
    _CMODEL_ERROR: Optional[str] = None
except ImportError as exc:  # pragma: no cover - default source checkout
    _C = None
    _CMODEL_ERROR = f"{type(exc).__name__}: {exc}"

#: has configure() been pushed into the extension yet?
_CONFIGURED = False

#: process-wide gate recorded by the last ``build_simulation`` call, so
#: runtime re-constructions (failover cache resets, proxy tiers spun up
#: mid-run) follow the same backend as the build that spawned them.
#: Last build wins; harmless because backends are behaviour-identical.
_GATE_OVERRIDE: Optional[str] = None


def compiled_model_viable() -> bool:
    """True when the ``repro.model._cmodel`` extension importable."""
    return _C is not None


def compiled_model_unavailable_reason() -> Optional[str]:
    """Why the compiled model cannot be used (None when it can)."""
    if _C is not None:
        return None
    return _CMODEL_ERROR or "repro.model._cmodel not built"


def parse_model_env(raw: Optional[str]) -> Optional[str]:
    """Validate a ``REPRO_MODEL`` value; ``None``/empty mean "unset".

    Raises ``ValueError`` on unknown tokens — misspelling a backend name
    must not silently select the default.
    """
    if raw is None:
        return None
    token = raw.strip().lower()
    if not token:
        return None
    if token not in _MODEL_TOKENS:
        raise ValueError(
            f"{MODEL_ENV}={raw!r} is not one of {sorted(_MODEL_TOKENS)}")
    return token


def set_model_gate(gate: Optional[str]) -> Optional[str]:
    """Record the resolved gate for this process; returns the previous one.

    Called by ``build_simulation`` so that model objects constructed later
    in the run (failover resets, proxies) pick the same backend.
    """
    global _GATE_OVERRIDE
    previous = _GATE_OVERRIDE
    _GATE_OVERRIDE = parse_model_env(gate)
    return previous


def resolve_model(gate: Optional[str] = None) -> str:
    """The backend a construction with ``gate`` would use.

    Precedence: explicit ``gate`` argument > the process gate recorded by
    ``set_model_gate`` > the ``REPRO_MODEL`` environment variable >
    ``reference``.  ``compiled``/``auto`` fall back silently to
    ``reference`` when the extension is not built.
    """
    token = parse_model_env(gate)
    if token is None:
        token = _GATE_OVERRIDE
    if token is None:
        token = parse_model_env(os.environ.get(MODEL_ENV))
    if token is None:
        token = REFERENCE
    if token == REFERENCE:
        return REFERENCE
    return COMPILED if _C is not None else REFERENCE


def model_info(backend: Optional[str] = None) -> dict:
    """Provenance fields for summaries and bench reports."""
    return {
        "model_backend": backend if backend is not None else resolve_model(),
        "compiled_model_viable": compiled_model_viable(),
    }


def _ensure_configured() -> Any:
    """The extension module, with the CacheCounters class installed."""
    global _CONFIGURED
    if _C is None:  # pragma: no cover - guarded by callers
        raise RuntimeError(
            "compiled model backend requested but repro.model._cmodel is "
            "not built; build it with `python tools/build_kernel.py`")
    if not _CONFIGURED:
        from ..cache.lru import CacheCounters
        _C.configure(CacheCounters)
        _CONFIGURED = True
    return _C


# ----------------------------------------------------------------------
# factories — the call sites (node, failover, proxy, tree, partition)
# construct through these so the gate applies uniformly
# ----------------------------------------------------------------------

def make_metadata_cache(capacity: int, *, model: Optional[str] = None):
    """A ``MetadataCache`` on the resolved backend."""
    if resolve_model(model) == COMPILED:
        return _ensure_configured().MetadataCache(capacity)
    from ..cache.lru import MetadataCache
    return MetadataCache(capacity)


def make_resolution_memo(capacity: int = 65536, *,
                         model: Optional[str] = None):
    """A ``ResolutionMemo`` on the resolved backend."""
    if resolve_model(model) == COMPILED:
        return _ensure_configured().ResolutionMemo(capacity)
    from ..namespace.memo import ResolutionMemo
    return ResolutionMemo(capacity)


def make_popularity_map(halflife_s: float, *, model: Optional[str] = None):
    """A ``PopularityMap`` on the resolved backend."""
    if resolve_model(model) == COMPILED:
        return _ensure_configured().PopularityMap(halflife_s)
    from ..mds.popularity import PopularityMap
    return PopularityMap(halflife_s)


def make_authority_memo(ns: Any, compute: Callable[[int], int], *,
                        model: Optional[str] = None):
    """An epoch-keyed authority memo, or ``None`` on the reference path.

    The reference implementation lives inline in
    ``repro.partition.base.Strategy`` (a plain dict plus epoch checks);
    returning ``None`` tells the strategy to keep that python path.
    """
    if resolve_model(model) == COMPILED:
        return _ensure_configured().AuthorityMemo(ns, compute)
    return None


__all__ = [
    "MODEL_ENV",
    "REFERENCE",
    "COMPILED",
    "compiled_model_viable",
    "compiled_model_unavailable_reason",
    "parse_model_env",
    "set_model_gate",
    "resolve_model",
    "model_info",
    "make_metadata_cache",
    "make_resolution_memo",
    "make_popularity_map",
    "make_authority_memo",
]
