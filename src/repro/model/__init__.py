"""Model-backend seam: reference (pure python) vs compiled C hot spots.

See :mod:`repro.model.backend` for the ``REPRO_MODEL`` gate and the
factories the cache/namespace/mds call sites construct through, and
``src/repro/model/_cmodel.c`` for the compiled implementations.
"""

from .backend import (
    COMPILED,
    MODEL_ENV,
    REFERENCE,
    compiled_model_unavailable_reason,
    compiled_model_viable,
    make_authority_memo,
    make_metadata_cache,
    make_popularity_map,
    make_resolution_memo,
    model_info,
    parse_model_env,
    resolve_model,
    set_model_gate,
)

__all__ = [
    "COMPILED",
    "MODEL_ENV",
    "REFERENCE",
    "compiled_model_unavailable_reason",
    "compiled_model_viable",
    "make_authority_memo",
    "make_metadata_cache",
    "make_popularity_map",
    "make_resolution_memo",
    "model_info",
    "parse_model_env",
    "resolve_model",
    "set_model_gate",
]
