/* _cmodel.c — compiled MDS-model hot spots behind `repro.model.backend`.
 *
 * Hand-written CPython extension mirroring the pure-python reference
 * implementations byte-for-byte in observable behaviour:
 *
 *   - CacheEntry / MetadataCache   <-> src/repro/cache/lru.py
 *   - ResolutionMemo               <-> src/repro/namespace/memo.py
 *   - DecayCounter / PopularityMap <-> src/repro/mds/popularity.py
 *   - AuthorityMemo                <-> the epoch-keyed dict memo in
 *                                      src/repro/partition/base.py
 *
 * Same idiom as src/repro/sim/_ckernel.c: freelists for the per-op
 * structs, identical counters, identical exception types and messages.
 * Bit-identity contract: every float expression keeps the exact shape of
 * the python source (notably the popularity decay
 * `value *= exp(-LN2 * (now - last_t) / halflife)`), so fixed-seed
 * summaries are indistinguishable across backends.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include "structmember.h"
#include <math.h>

#define CM_POOL_MAX 512

/* ------------------------------------------------------------------ */
/* module state                                                       */
/* ------------------------------------------------------------------ */

static PyObject *CacheCountersClass = NULL;  /* installed by configure() */
static PyObject *deepcopy_fn = NULL;         /* copy.deepcopy, lazy      */
static double CM_LN2 = 0.0;                  /* log(2.0), set at init    */

/* interned attribute / kwarg names */
static PyObject *S_touch, *S_replica, *S_prefetched, *S_ino,
    *S_structure_epoch, *S_values, *S_insertions, *S_evictions,
    *S_prefetch_insertions, *S_amount, *S_floor;

static int
kwname_is(PyObject *name, PyObject *interned)
{
    return name == interned || PyUnicode_Compare(name, interned) == 0;
}

static PyObject *
get_deepcopy(void)
{
    if (deepcopy_fn == NULL) {
        PyObject *mod = PyImport_ImportModule("copy");
        if (mod == NULL)
            return NULL;
        deepcopy_fn = PyObject_GetAttrString(mod, "deepcopy");
        Py_DECREF(mod);
    }
    return deepcopy_fn;
}

/* ------------------------------------------------------------------ */
/* CacheEntry                                                         */
/* ------------------------------------------------------------------ */

typedef struct CMEntry {
    PyObject_HEAD
    PyObject *ino_obj;          /* python int, dict key + attribute     */
    PyObject *parent_ino;       /* python int, or None for the root     */
    long long ino;              /* C mirror for hot comparisons         */
    long long pin_count;        /* cached children pinning this entry   */
    long long external_pins;    /* delegation anchors, in-flight ops    */
    char is_dir;
    char replica;
    char dirty;
    char in_lru;
    /* intrusive eviction-order links (borrowed: every listed entry is
     * owned by the cache dict, sentinels by the cache struct) */
    struct CMEntry *prv;
    struct CMEntry *nxt;
} CMEntry;

static PyTypeObject CMEntryType;

static CMEntry *entry_pool[CM_POOL_MAX];
static int entry_pool_len = 0;

static CMEntry *
entry_fresh(PyObject *ino_obj, PyObject *parent_ino, int is_dir, int replica)
{
    CMEntry *e;
    long long ino = PyLong_AsLongLong(ino_obj);
    if (ino == -1 && PyErr_Occurred())
        return NULL;
    if (entry_pool_len > 0) {
        e = entry_pool[--entry_pool_len];
        (void)PyObject_INIT((PyObject *)e, &CMEntryType);
    }
    else {
        e = PyObject_New(CMEntry, &CMEntryType);
        if (e == NULL)
            return NULL;
    }
    Py_INCREF(ino_obj);
    e->ino_obj = ino_obj;
    Py_INCREF(parent_ino);
    e->parent_ino = parent_ino;
    e->ino = ino;
    e->pin_count = 0;
    e->external_pins = 0;
    e->is_dir = (char)is_dir;
    e->replica = (char)replica;
    e->dirty = 0;
    e->in_lru = 0;
    e->prv = e->nxt = NULL;
    return e;
}

static void
CMEntry_dealloc(CMEntry *self)
{
    Py_CLEAR(self->ino_obj);
    Py_CLEAR(self->parent_ino);
    self->prv = self->nxt = NULL;
    if (entry_pool_len < CM_POOL_MAX)
        entry_pool[entry_pool_len++] = self;
    else
        PyObject_Del(self);
}

static PyObject *
CMEntry_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    PyErr_SetString(PyExc_TypeError,
                    "cannot construct CacheEntry directly; entries are "
                    "created by MetadataCache");
    return NULL;
}

static int
entry_pinned(CMEntry *e)
{
    return e->pin_count > 0 || e->external_pins > 0;
}

static PyObject *
CMEntry_get_pinned(CMEntry *self, void *closure)
{
    return PyBool_FromLong(entry_pinned(self));
}

static PyObject *
CMEntry_get_is_prefix(CMEntry *self, void *closure)
{
    return PyBool_FromLong(self->is_dir && entry_pinned(self));
}

static PyObject *
CMEntry_repr(CMEntry *self)
{
    /* matches the dataclass repr (lru fields are repr=False) */
    return PyUnicode_FromFormat(
        "CacheEntry(ino=%S, parent_ino=%S, is_dir=%s, replica=%s, "
        "pin_count=%lld, external_pins=%lld, dirty=%s)",
        self->ino_obj, self->parent_ino,
        self->is_dir ? "True" : "False",
        self->replica ? "True" : "False",
        self->pin_count, self->external_pins,
        self->dirty ? "True" : "False");
}

static PyObject *
CMEntry_richcompare(PyObject *a, PyObject *b, int op)
{
    CMEntry *x, *y;
    int eq;
    if (op != Py_EQ && op != Py_NE)
        Py_RETURN_NOTIMPLEMENTED;
    if (!PyObject_TypeCheck(a, &CMEntryType) ||
            !PyObject_TypeCheck(b, &CMEntryType))
        Py_RETURN_NOTIMPLEMENTED;
    x = (CMEntry *)a;
    y = (CMEntry *)b;
    /* dataclass eq over the compare fields (lru links excluded) */
    eq = (x->ino == y->ino && x->is_dir == y->is_dir &&
          x->replica == y->replica && x->pin_count == y->pin_count &&
          x->external_pins == y->external_pins && x->dirty == y->dirty);
    if (eq) {
        eq = PyObject_RichCompareBool(x->parent_ino, y->parent_ino, Py_EQ);
        if (eq < 0)
            return NULL;
    }
    if (op == Py_NE)
        eq = !eq;
    return PyBool_FromLong(eq);
}

static PyMemberDef CMEntry_members[] = {
    {"ino", T_LONGLONG, offsetof(CMEntry, ino), READONLY,
     "inode number"},
    {"parent_ino", T_OBJECT, offsetof(CMEntry, parent_ino), READONLY,
     "parent inode number (None only for the root)"},
    {"is_dir", T_BOOL, offsetof(CMEntry, is_dir), READONLY, NULL},
    {"replica", T_BOOL, offsetof(CMEntry, replica), 0,
     "cached copy of another MDS's metadata"},
    {"dirty", T_BOOL, offsetof(CMEntry, dirty), 0, NULL},
    {"pin_count", T_LONGLONG, offsetof(CMEntry, pin_count), READONLY,
     "cached children pinning this entry"},
    {"external_pins", T_LONGLONG, offsetof(CMEntry, external_pins), READONLY,
     "delegation anchors, in-flight operations"},
    {"in_lru", T_BOOL, offsetof(CMEntry, in_lru), READONLY, NULL},
    {NULL}
};

static PyGetSetDef CMEntry_getset[] = {
    {"pinned", (getter)CMEntry_get_pinned, NULL, NULL, NULL},
    {"is_prefix", (getter)CMEntry_get_is_prefix, NULL,
     "a directory held (at least in part) to anchor cached descendants",
     NULL},
    {NULL}
};

static PyTypeObject CMEntryType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.model._cmodel.CacheEntry",
    .tp_basicsize = sizeof(CMEntry),
    .tp_dealloc = (destructor)CMEntry_dealloc,
    .tp_repr = (reprfunc)CMEntry_repr,
    .tp_flags = Py_TPFLAGS_DEFAULT,
    .tp_doc = "One cached inode; doubles as its own LRU-list link.",
    .tp_richcompare = CMEntry_richcompare,
    .tp_members = CMEntry_members,
    .tp_getset = CMEntry_getset,
    .tp_new = CMEntry_new,
};

/* ------------------------------------------------------------------ */
/* DecayCounter                                                       */
/* ------------------------------------------------------------------ */

typedef struct {
    PyObject_HEAD
    double halflife_s;
    double value;
    double last_t;
} CMCounter;

static PyTypeObject CMCounterType;

static CMCounter *counter_pool[CM_POOL_MAX];
static int counter_pool_len = 0;

static CMCounter *
counter_fresh(double halflife_s, double value, double last_t)
{
    CMCounter *c;
    if (counter_pool_len > 0) {
        c = counter_pool[--counter_pool_len];
        (void)PyObject_INIT((PyObject *)c, &CMCounterType);
    }
    else {
        c = PyObject_New(CMCounter, &CMCounterType);
        if (c == NULL)
            return NULL;
    }
    c->halflife_s = halflife_s;
    c->value = value;
    c->last_t = last_t;
    return c;
}

static void
CMCounter_dealloc(CMCounter *self)
{
    if (counter_pool_len < CM_POOL_MAX)
        counter_pool[counter_pool_len++] = self;
    else
        PyObject_Del(self);
}

static int
CMCounter_init(CMCounter *self, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"halflife_s", "value", "last_t", NULL};
    double halflife_s, value = 0.0, last_t = 0.0;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "d|dd:DecayCounter", kwlist,
                                     &halflife_s, &value, &last_t))
        return -1;
    self->halflife_s = halflife_s;
    self->value = value;
    self->last_t = last_t;
    return 0;
}

/* exact expression shape of DecayCounter._decay_to — do not refactor */
static void
counter_decay_to(CMCounter *c, double now)
{
    if (now > c->last_t && c->value > 0.0)
        c->value *= exp(-CM_LN2 * (now - c->last_t) / c->halflife_s);
    if (now > c->last_t)
        c->last_t = now;      /* last_t = max(last_t, now) */
}

static PyObject *
CMCounter_add(CMCounter *self, PyObject *const *args, Py_ssize_t nargs,
              PyObject *kwnames)
{
    double now, amount = 1.0;
    Py_ssize_t nkw = kwnames ? PyTuple_GET_SIZE(kwnames) : 0;
    if (nargs < 1 || nargs > 2 || nargs + nkw > 2) {
        PyErr_SetString(PyExc_TypeError,
                        "add() takes 1 or 2 arguments (now, amount=1.0)");
        return NULL;
    }
    now = PyFloat_AsDouble(args[0]);
    if (now == -1.0 && PyErr_Occurred())
        return NULL;
    if (nargs == 2) {
        amount = PyFloat_AsDouble(args[1]);
        if (amount == -1.0 && PyErr_Occurred())
            return NULL;
    }
    if (nkw) {
        if (!kwname_is(PyTuple_GET_ITEM(kwnames, 0), S_amount)) {
            PyErr_SetString(PyExc_TypeError,
                            "add() got an unexpected keyword argument");
            return NULL;
        }
        amount = PyFloat_AsDouble(args[nargs]);
        if (amount == -1.0 && PyErr_Occurred())
            return NULL;
    }
    counter_decay_to(self, now);
    self->value += amount;
    return PyFloat_FromDouble(self->value);
}

static PyObject *
CMCounter_read(CMCounter *self, PyObject *now_obj)
{
    double now = PyFloat_AsDouble(now_obj);
    if (now == -1.0 && PyErr_Occurred())
        return NULL;
    counter_decay_to(self, now);
    return PyFloat_FromDouble(self->value);
}

static PyMethodDef CMCounter_methods[] = {
    {"add", (PyCFunction)(void (*)(void))CMCounter_add,
     METH_FASTCALL | METH_KEYWORDS,
     "Record ``amount`` accesses at time ``now``; returns the new value."},
    {"read", (PyCFunction)CMCounter_read, METH_O,
     "Current (decayed) value without recording an access."},
    {NULL}
};

static PyMemberDef CMCounter_members[] = {
    {"halflife_s", T_DOUBLE, offsetof(CMCounter, halflife_s), 0, NULL},
    {"value", T_DOUBLE, offsetof(CMCounter, value), 0, NULL},
    {"last_t", T_DOUBLE, offsetof(CMCounter, last_t), 0, NULL},
    {NULL}
};

static PyObject *
CMCounter_repr(CMCounter *self)
{
    PyObject *h = PyFloat_FromDouble(self->halflife_s);
    PyObject *v = PyFloat_FromDouble(self->value);
    PyObject *t = PyFloat_FromDouble(self->last_t);
    PyObject *out = NULL;
    if (h && v && t)
        out = PyUnicode_FromFormat(
            "DecayCounter(halflife_s=%R, value=%R, last_t=%R)", h, v, t);
    Py_XDECREF(h);
    Py_XDECREF(v);
    Py_XDECREF(t);
    return out;
}

static PyTypeObject CMCounterType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.model._cmodel.DecayCounter",
    .tp_basicsize = sizeof(CMCounter),
    .tp_dealloc = (destructor)CMCounter_dealloc,
    .tp_repr = (reprfunc)CMCounter_repr,
    .tp_flags = Py_TPFLAGS_DEFAULT,
    .tp_doc = "A counter whose value halves every ``halflife_s`` seconds.",
    .tp_methods = CMCounter_methods,
    .tp_members = CMCounter_members,
    .tp_init = (initproc)CMCounter_init,
    .tp_new = PyType_GenericNew,
};

/* ------------------------------------------------------------------ */
/* MetadataCache                                                      */
/* ------------------------------------------------------------------ */

typedef struct {
    PyObject_HEAD
    long long capacity;
    long long insertions;
    long long evictions;
    long long prefetch_insertions;
    PyObject *entries;          /* dict: ino -> CMEntry                 */
    CMEntry *head;              /* strong sentinel, head side = coldest */
    CMEntry *tail;              /* strong sentinel, tail side = hottest */
} CMCache;

static PyTypeObject CMCacheType;

/* intrusive-list primitives (python: _lru_unlink/_lru_append_*) */

static void
lru_unlink(CMEntry *e)
{
    CMEntry *prev = e->prv, *nxt = e->nxt;
    prev->nxt = nxt;
    nxt->prv = prev;
    e->prv = e->nxt = NULL;
    e->in_lru = 0;
}

static void
lru_append_hot(CMCache *c, CMEntry *e)
{
    CMEntry *tail = c->tail, *prev = tail->prv;
    e->prv = prev;
    e->nxt = tail;
    prev->nxt = e;
    tail->prv = e;
    e->in_lru = 1;
}

static void
lru_append_cold(CMCache *c, CMEntry *e)
{
    CMEntry *head = c->head, *nxt = head->nxt;
    e->prv = head;
    e->nxt = nxt;
    head->nxt = e;
    nxt->prv = e;
    e->in_lru = 1;
}

static void
lru_touch(CMCache *c, CMEntry *e)
{
    if (e->nxt == c->tail)
        return;                 /* already hottest */
    lru_unlink(e);
    lru_append_hot(c, e);
}

static void
cache_make_evictable(CMCache *c, CMEntry *e, int cold)
{
    if (e->in_lru)
        lru_unlink(e);
    if (cold)
        lru_append_cold(c, e);
    else
        lru_append_hot(c, e);
}

/* python: _unpin_parent */
static int
cache_unpin_parent(CMCache *c, CMEntry *child)
{
    CMEntry *parent;
    PyObject *p;
    if (child->parent_ino == Py_None)
        return 0;
    p = PyDict_GetItemWithError(c->entries, child->parent_ino);
    if (p == NULL)
        return PyErr_Occurred() ? -1 : 0;
    parent = (CMEntry *)p;
    parent->pin_count -= 1;
    if (!entry_pinned(parent))
        cache_make_evictable(c, parent, /*cold=*/1);
    return 0;
}

/* python: _evict_one; returns a NEW reference, NULL with no error set
 * when nothing is evictable, NULL with an error set on failure */
static CMEntry *
cache_evict_one(CMCache *c, int has_exclude, long long exclude)
{
    CMEntry *victim = c->head->nxt;
    while (victim != c->tail) {
        if (!has_exclude || victim->ino != exclude) {
            Py_INCREF(victim);
            if (PyDict_DelItem(c->entries, victim->ino_obj) < 0) {
                Py_DECREF(victim);
                return NULL;
            }
            lru_unlink(victim);
            if (cache_unpin_parent(c, victim) < 0) {
                Py_DECREF(victim);
                return NULL;
            }
            c->evictions += 1;
            return victim;
        }
        victim = victim->nxt;
    }
    return NULL;
}

/* python: _shrink; returns a new list of evicted entries */
static PyObject *
cache_shrink(CMCache *c, int has_exclude, long long exclude)
{
    PyObject *evicted = PyList_New(0);
    if (evicted == NULL)
        return NULL;
    while (PyDict_GET_SIZE(c->entries) > (Py_ssize_t)c->capacity) {
        CMEntry *victim = cache_evict_one(c, has_exclude, exclude);
        if (victim == NULL) {
            if (PyErr_Occurred()) {
                Py_DECREF(evicted);
                return NULL;
            }
            break;              /* everything pinned: tolerate overflow */
        }
        if (PyList_Append(evicted, (PyObject *)victim) < 0) {
            Py_DECREF(victim);
            Py_DECREF(evicted);
            return NULL;
        }
        Py_DECREF(victim);
    }
    return evicted;
}

/* type plumbing ---------------------------------------------------- */

static int
CMCache_traverse(CMCache *self, visitproc visit, void *arg)
{
    Py_VISIT(self->entries);
    Py_VISIT(self->head);
    Py_VISIT(self->tail);
    return 0;
}

static int
CMCache_clear_refs(CMCache *self)
{
    Py_CLEAR(self->entries);
    Py_CLEAR(self->head);
    Py_CLEAR(self->tail);
    return 0;
}

static void
CMCache_dealloc(CMCache *self)
{
    PyObject_GC_UnTrack(self);
    (void)CMCache_clear_refs(self);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static int
CMCache_init(CMCache *self, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"capacity", NULL};
    long long capacity;
    PyObject *entries, *minus1, *minus2;
    CMEntry *head = NULL, *tail = NULL;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "L:MetadataCache", kwlist,
                                     &capacity))
        return -1;
    if (capacity < 1) {
        PyErr_Format(PyExc_ValueError,
                     "capacity must be >= 1, got %lld", capacity);
        return -1;
    }
    entries = PyDict_New();
    if (entries == NULL)
        return -1;
    minus1 = PyLong_FromLong(-1);
    minus2 = PyLong_FromLong(-2);
    if (minus1 != NULL && minus2 != NULL) {
        head = entry_fresh(minus1, Py_None, 0, 0);
        if (head != NULL)
            tail = entry_fresh(minus2, Py_None, 0, 0);
    }
    Py_XDECREF(minus1);
    Py_XDECREF(minus2);
    if (head == NULL || tail == NULL) {
        Py_DECREF(entries);
        Py_XDECREF(head);
        return -1;
    }
    head->nxt = tail;
    tail->prv = head;
    self->capacity = capacity;
    self->insertions = self->evictions = self->prefetch_insertions = 0;
    Py_XSETREF(self->entries, entries);
    Py_XSETREF(self->head, head);
    Py_XSETREF(self->tail, tail);
    return 0;
}

/* queries ---------------------------------------------------------- */

static Py_ssize_t
CMCache_len(CMCache *self)
{
    return PyDict_GET_SIZE(self->entries);
}

static int
CMCache_contains(CMCache *self, PyObject *ino)
{
    return PyDict_Contains(self->entries, ino);
}

static PyObject *
CMCache_get(CMCache *self, PyObject *const *args, Py_ssize_t nargs,
            PyObject *kwnames)
{
    PyObject *found;
    int touch = 1;
    Py_ssize_t nkw = kwnames ? PyTuple_GET_SIZE(kwnames) : 0;
    if (nargs != 1 || nkw > 1) {
        PyErr_SetString(PyExc_TypeError,
                        "get() takes one positional argument and the "
                        "keyword-only ``touch``");
        return NULL;
    }
    if (nkw) {
        if (!kwname_is(PyTuple_GET_ITEM(kwnames, 0), S_touch)) {
            PyErr_SetString(PyExc_TypeError,
                            "get() got an unexpected keyword argument");
            return NULL;
        }
        touch = PyObject_IsTrue(args[1]);
        if (touch < 0)
            return NULL;
    }
    found = PyDict_GetItemWithError(self->entries, args[0]);
    if (found == NULL) {
        if (PyErr_Occurred())
            return NULL;
        Py_RETURN_NONE;
    }
    if (touch && ((CMEntry *)found)->in_lru)
        lru_touch(self, (CMEntry *)found);
    Py_INCREF(found);
    return found;
}

static PyObject *
CMCache_entries(CMCache *self, PyObject *Py_UNUSED(ignored))
{
    PyObject *values = PyObject_CallMethodNoArgs(self->entries, S_values);
    PyObject *it;
    if (values == NULL)
        return NULL;
    it = PyObject_GetIter(values);
    Py_DECREF(values);
    return it;
}

static PyObject *
CMCache_get_overflowed(CMCache *self, void *closure)
{
    return PyBool_FromLong(
        PyDict_GET_SIZE(self->entries) > (Py_ssize_t)self->capacity);
}

static PyObject *
CMCache_get_counters(CMCache *self, void *closure)
{
    PyObject *kwargs, *empty, *out;
    if (CacheCountersClass == NULL) {
        PyErr_SetString(PyExc_RuntimeError,
                        "_cmodel.configure() has not been called");
        return NULL;
    }
    kwargs = Py_BuildValue("{s:L,s:L,s:L}",
                           "insertions", self->insertions,
                           "evictions", self->evictions,
                           "prefetch_insertions", self->prefetch_insertions);
    if (kwargs == NULL)
        return NULL;
    empty = PyTuple_New(0);
    if (empty == NULL) {
        Py_DECREF(kwargs);
        return NULL;
    }
    out = PyObject_Call(CacheCountersClass, empty, kwargs);
    Py_DECREF(empty);
    Py_DECREF(kwargs);
    return out;
}

static PyObject *
CMCache_slot_census(CMCache *self, PyObject *Py_UNUSED(ignored))
{
    long long n[4] = {0, 0, 0, 0};   /* local_prefix, local_other,
                                        replica_prefix, replica_other */
    Py_ssize_t pos = 0;
    PyObject *key, *value;
    while (PyDict_Next(self->entries, &pos, &key, &value)) {
        CMEntry *e = (CMEntry *)value;
        int prefix = e->is_dir && entry_pinned(e);
        n[(e->replica ? 2 : 0) + (prefix ? 0 : 1)] += 1;
    }
    return Py_BuildValue("{s:L,s:L,s:L,s:L}",
                         "local_prefix", n[0], "local_other", n[1],
                         "replica_prefix", n[2], "replica_other", n[3]);
}

static PyObject *
CMCache_prefix_fraction(CMCache *self, PyObject *Py_UNUSED(ignored))
{
    Py_ssize_t pos = 0;
    PyObject *key, *value;
    long long prefixes = 0;
    Py_ssize_t total = PyDict_GET_SIZE(self->entries);
    if (total == 0)
        return PyFloat_FromDouble(0.0);
    while (PyDict_Next(self->entries, &pos, &key, &value)) {
        CMEntry *e = (CMEntry *)value;
        if (e->is_dir && entry_pinned(e))
            prefixes += 1;
    }
    return PyFloat_FromDouble((double)prefixes / (double)total);
}

static PyObject *
CMCache_replica_fraction(CMCache *self, PyObject *Py_UNUSED(ignored))
{
    Py_ssize_t pos = 0;
    PyObject *key, *value;
    long long replicas = 0;
    Py_ssize_t total = PyDict_GET_SIZE(self->entries);
    if (total == 0)
        return PyFloat_FromDouble(0.0);
    while (PyDict_Next(self->entries, &pos, &key, &value)) {
        if (((CMEntry *)value)->replica)
            replicas += 1;
    }
    return PyFloat_FromDouble((double)replicas / (double)total);
}

/* mutation ---------------------------------------------------------- */

static PyObject *
CMCache_insert(CMCache *self, PyObject *const *args, Py_ssize_t nargs,
               PyObject *kwnames)
{
    PyObject *ino, *parent_ino, *existing;
    int is_dir, replica = 0, prefetched = 0;
    CMEntry *entry;
    Py_ssize_t i, nkw = kwnames ? PyTuple_GET_SIZE(kwnames) : 0;
    if (nargs != 3) {
        PyErr_SetString(PyExc_TypeError,
                        "insert() takes exactly 3 positional arguments "
                        "(ino, parent_ino, is_dir)");
        return NULL;
    }
    ino = args[0];
    parent_ino = args[1];
    is_dir = PyObject_IsTrue(args[2]);
    if (is_dir < 0)
        return NULL;
    for (i = 0; i < nkw; i++) {
        PyObject *name = PyTuple_GET_ITEM(kwnames, i);
        int val = PyObject_IsTrue(args[nargs + i]);
        if (val < 0)
            return NULL;
        if (kwname_is(name, S_replica))
            replica = val;
        else if (kwname_is(name, S_prefetched))
            prefetched = val;
        else {
            PyErr_Format(PyExc_TypeError,
                         "insert() got an unexpected keyword argument %R",
                         name);
            return NULL;
        }
    }

    existing = PyDict_GetItemWithError(self->entries, ino);
    if (existing != NULL) {
        CMEntry *e = (CMEntry *)existing;
        if (!replica)
            e->replica = 0;
        if (e->in_lru && !prefetched)
            lru_touch(self, e);
        return PyList_New(0);
    }
    if (PyErr_Occurred())
        return NULL;

    if (parent_ino != Py_None) {
        PyObject *p = PyDict_GetItemWithError(self->entries, parent_ino);
        if (p == NULL) {
            if (!PyErr_Occurred())
                PyErr_Format(PyExc_KeyError,
                             "cannot cache ino %S: parent %S not cached"
                             " (hierarchical constraint)", ino, parent_ino);
            return NULL;
        }
        /* python: _pin_internal */
        ((CMEntry *)p)->pin_count += 1;
        if (((CMEntry *)p)->in_lru)
            lru_unlink((CMEntry *)p);
    }

    entry = entry_fresh(ino, parent_ino, is_dir, replica);
    if (entry == NULL)
        return NULL;
    if (PyDict_SetItem(self->entries, ino, (PyObject *)entry) < 0) {
        Py_DECREF(entry);
        return NULL;
    }
    if (prefetched) {
        /* cold-end insertion: first in line for eviction (§4.5) */
        lru_append_cold(self, entry);
        self->prefetch_insertions += 1;
    }
    else {
        lru_append_hot(self, entry);
    }
    self->insertions += 1;
    {
        long long exclude = entry->ino;
        Py_DECREF(entry);
        return cache_shrink(self, /*has_exclude=*/1, exclude);
    }
}

static CMEntry *
cache_lookup_or_keyerror(CMCache *self, PyObject *ino)
{
    PyObject *found = PyDict_GetItemWithError(self->entries, ino);
    if (found == NULL && !PyErr_Occurred())
        PyErr_SetObject(PyExc_KeyError, ino);   /* self._entries[ino] */
    return (CMEntry *)found;
}

static PyObject *
CMCache_pin(CMCache *self, PyObject *ino)
{
    CMEntry *entry = cache_lookup_or_keyerror(self, ino);
    if (entry == NULL)
        return NULL;
    entry->external_pins += 1;
    if (entry->in_lru)
        lru_unlink(entry);
    Py_RETURN_NONE;
}

static PyObject *
CMCache_unpin(CMCache *self, PyObject *ino)
{
    CMEntry *entry = cache_lookup_or_keyerror(self, ino);
    if (entry == NULL)
        return NULL;
    if (entry->external_pins <= 0) {
        PyErr_Format(PyExc_RuntimeError,
                     "unpin without pin for ino %S", ino);
        return NULL;
    }
    entry->external_pins -= 1;
    if (!entry_pinned(entry))
        cache_make_evictable(self, entry, /*cold=*/0);
    return cache_shrink(self, /*has_exclude=*/0, 0);
}

static PyObject *
CMCache_remove(CMCache *self, PyObject *ino)
{
    PyObject *found = PyDict_GetItemWithError(self->entries, ino);
    CMEntry *entry;
    if (found == NULL) {
        if (!PyErr_Occurred())
            PyErr_Format(PyExc_KeyError, "ino %S not cached", ino);
        return NULL;
    }
    entry = (CMEntry *)found;
    if (entry->pin_count > 0) {
        PyErr_Format(PyExc_RuntimeError,
                     "cannot remove ino %S: %lld cached children",
                     ino, entry->pin_count);
        return NULL;
    }
    if (entry->external_pins > 0) {
        PyErr_Format(PyExc_RuntimeError,
                     "cannot remove ino %S: %lld external "
                     "pins (open handles / delegation anchors)",
                     ino, entry->external_pins);
        return NULL;
    }
    Py_INCREF(entry);
    if (PyDict_DelItem(self->entries, ino) < 0) {
        Py_DECREF(entry);
        return NULL;
    }
    if (entry->in_lru)
        lru_unlink(entry);
    if (cache_unpin_parent(self, entry) < 0) {
        Py_DECREF(entry);
        return NULL;
    }
    return (PyObject *)entry;
}

static PyObject *
CMCache_collect_subtree(CMCache *self, PyObject *root_obj)
{
    long long root_ino, maxdepth = 0, d;
    int contains = PyDict_Contains(self->entries, root_obj);
    Py_ssize_t total, i, count = 0, pos = 0;
    PyObject *key, *value, *out;
    CMEntry **members = NULL;
    long long *depths = NULL;
    if (contains < 0)
        return NULL;
    if (!contains)
        return PyList_New(0);
    root_ino = PyLong_AsLongLong(root_obj);
    if (root_ino == -1 && PyErr_Occurred())
        return NULL;
    total = PyDict_GET_SIZE(self->entries);
    members = PyMem_New(CMEntry *, total ? total : 1);
    depths = PyMem_New(long long, total ? total : 1);
    if (members == NULL || depths == NULL) {
        PyMem_Free(members);
        PyMem_Free(depths);
        return PyErr_NoMemory();
    }
    while (PyDict_Next(self->entries, &pos, &key, &value)) {
        CMEntry *entry = (CMEntry *)value, *node = entry;
        long long depth = 0;
        int found = entry->ino == root_ino;
        while (!found && node != NULL && node->parent_ino != Py_None) {
            PyObject *p = PyDict_GetItemWithError(self->entries,
                                                  node->parent_ino);
            if (p == NULL && PyErr_Occurred()) {
                PyMem_Free(members);
                PyMem_Free(depths);
                return NULL;
            }
            node = (CMEntry *)p;
            depth += 1;
            if (node != NULL && node->ino == root_ino)
                found = 1;
        }
        if (found) {
            members[count] = entry;
            depths[count] = depth;
            if (depth > maxdepth)
                maxdepth = depth;
            count++;
        }
    }
    /* stable sort by descending depth (python: members.sort(-depth)) */
    out = PyList_New(count);
    if (out == NULL) {
        PyMem_Free(members);
        PyMem_Free(depths);
        return NULL;
    }
    i = 0;
    for (d = maxdepth; d >= 0; d--) {
        Py_ssize_t j;
        for (j = 0; j < count; j++) {
            if (depths[j] == d) {
                Py_INCREF(members[j]);
                PyList_SET_ITEM(out, i, (PyObject *)members[j]);
                i++;
            }
        }
    }
    PyMem_Free(members);
    PyMem_Free(depths);
    return out;
}

/* invariants (tests/introspection) ---------------------------------- */

static PyObject *
CMCache_lru_order(CMCache *self, PyObject *Py_UNUSED(ignored))
{
    PyObject *order = PyList_New(0);
    CMEntry *node;
    if (order == NULL)
        return NULL;
    for (node = self->head->nxt; node != self->tail; node = node->nxt) {
        if (PyList_Append(order, node->ino_obj) < 0) {
            Py_DECREF(order);
            return NULL;
        }
    }
    return order;
}

static PyObject *
CMCache_verify_invariants(CMCache *self, PyObject *Py_UNUSED(ignored))
{
    PyObject *pin_counts = NULL, *forward = NULL, *unpinned = NULL;
    PyObject *key, *value;
    Py_ssize_t pos;
    CMEntry *node, *prev;
    int cmp;

    pin_counts = PyDict_New();       /* ino -> cached-children count */
    if (pin_counts == NULL)
        goto error;
    pos = 0;
    while (PyDict_Next(self->entries, &pos, &key, &value)) {
        CMEntry *e = (CMEntry *)value;
        if (e->parent_ino != Py_None) {
            PyObject *cnt;
            int has = PyDict_Contains(self->entries, e->parent_ino);
            if (has < 0)
                goto error;
            if (!has) {
                PyErr_Format(PyExc_AssertionError,
                             "ino %S: parent %S not cached",
                             e->ino_obj, e->parent_ino);
                goto error;
            }
            cnt = PyDict_GetItemWithError(pin_counts, e->parent_ino);
            if (cnt == NULL && PyErr_Occurred())
                goto error;
            cnt = PyLong_FromLongLong(
                (cnt == NULL ? 0 : PyLong_AsLongLong(cnt)) + 1);
            if (cnt == NULL ||
                    PyDict_SetItem(pin_counts, e->parent_ino, cnt) < 0) {
                Py_XDECREF(cnt);
                goto error;
            }
            Py_DECREF(cnt);
        }
    }
    pos = 0;
    while (PyDict_Next(self->entries, &pos, &key, &value)) {
        CMEntry *e = (CMEntry *)value;
        PyObject *cnt = PyDict_GetItemWithError(pin_counts, e->ino_obj);
        long long expected;
        if (cnt == NULL && PyErr_Occurred())
            goto error;
        expected = cnt == NULL ? 0 : PyLong_AsLongLong(cnt);
        if (e->pin_count != expected) {
            PyErr_Format(PyExc_AssertionError,
                         "ino %S: pin_count %lld != %lld cached children",
                         e->ino_obj, e->pin_count, expected);
            goto error;
        }
        if ((e->in_lru != 0) != (entry_pinned(e) == 0)) {
            PyErr_Format(PyExc_AssertionError,
                         "ino %S: pinned=%s but in_lru=%s", e->ino_obj,
                         entry_pinned(e) ? "True" : "False",
                         e->in_lru ? "True" : "False");
            goto error;
        }
    }
    /* the intrusive list is consistent both ways and holds exactly the
     * unpinned entries */
    forward = PySet_New(NULL);
    if (forward == NULL)
        goto error;
    prev = self->head;
    for (node = self->head->nxt; node != self->tail; node = node->nxt) {
        int has;
        if (node == NULL || node->prv != prev) {
            PyErr_SetString(PyExc_AssertionError, "broken back-link");
            goto error;
        }
        if (!node->in_lru) {
            PyErr_Format(PyExc_AssertionError,
                         "listed entry %S not flagged in_lru", node->ino_obj);
            goto error;
        }
        has = PyDict_Contains(self->entries, node->ino_obj);
        if (has < 0)
            goto error;
        if (!has) {
            PyErr_Format(PyExc_AssertionError,
                         "listed entry %S not cached", node->ino_obj);
            goto error;
        }
        has = PySet_Contains(forward, node->ino_obj);
        if (has < 0)
            goto error;
        if (has) {
            PyErr_SetString(PyExc_AssertionError,
                            "duplicate entries in LRU list");
            goto error;
        }
        if (PySet_Add(forward, node->ino_obj) < 0)
            goto error;
        prev = node;
    }
    if (self->tail->prv != prev) {
        PyErr_SetString(PyExc_AssertionError, "broken tail back-link");
        goto error;
    }
    unpinned = PySet_New(NULL);
    if (unpinned == NULL)
        goto error;
    pos = 0;
    while (PyDict_Next(self->entries, &pos, &key, &value)) {
        CMEntry *e = (CMEntry *)value;
        if (!entry_pinned(e) && PySet_Add(unpinned, e->ino_obj) < 0)
            goto error;
    }
    cmp = PyObject_RichCompareBool(forward, unpinned, Py_EQ);
    if (cmp < 0)
        goto error;
    if (!cmp) {
        PyErr_Format(PyExc_AssertionError,
                     "LRU list %R != unpinned entries %R", forward, unpinned);
        goto error;
    }
    Py_DECREF(pin_counts);
    Py_DECREF(forward);
    Py_DECREF(unpinned);
    Py_RETURN_NONE;
error:
    Py_XDECREF(pin_counts);
    Py_XDECREF(forward);
    Py_XDECREF(unpinned);
    return NULL;
}

static PyMethodDef CMCache_methods[] = {
    {"get", (PyCFunction)(void (*)(void))CMCache_get,
     METH_FASTCALL | METH_KEYWORDS,
     "Entry for ``ino``, refreshing its recency unless ``touch=False``."},
    {"insert", (PyCFunction)(void (*)(void))CMCache_insert,
     METH_FASTCALL | METH_KEYWORDS,
     "Cache ``ino``; returns the entries evicted to make room."},
    {"pin", (PyCFunction)CMCache_pin, METH_O,
     "Add an external pin (delegation anchor / in-flight op)."},
    {"unpin", (PyCFunction)CMCache_unpin, METH_O,
     "Release an external pin."},
    {"remove", (PyCFunction)CMCache_remove, METH_O,
     "Forcibly drop an unpinned entry (migration / invalidation)."},
    {"collect_subtree", (PyCFunction)CMCache_collect_subtree, METH_O,
     "Cached entries at/under ``root_ino``, deepest first."},
    {"entries", (PyCFunction)CMCache_entries, METH_NOARGS, NULL},
    {"slot_census", (PyCFunction)CMCache_slot_census, METH_NOARGS,
     "Occupancy by category: local/replica x prefix/leaf."},
    {"prefix_fraction", (PyCFunction)CMCache_prefix_fraction, METH_NOARGS,
     "Fraction of occupied slots holding prefix (ancestor) inodes."},
    {"replica_fraction", (PyCFunction)CMCache_replica_fraction, METH_NOARGS,
     "Fraction of occupied slots holding replicated metadata."},
    {"_lru_order", (PyCFunction)CMCache_lru_order, METH_NOARGS,
     "Eviction order, coldest first (tests/introspection only)."},
    {"verify_invariants", (PyCFunction)CMCache_verify_invariants,
     METH_NOARGS, "Raise ``AssertionError`` on internal inconsistency."},
    {NULL}
};

static PyMemberDef CMCache_members[] = {
    {"capacity", T_LONGLONG, offsetof(CMCache, capacity), 0,
     "capacity in inode slots"},
    {"_entries", T_OBJECT, offsetof(CMCache, entries), READONLY, NULL},
    {NULL}
};

static PyGetSetDef CMCache_getset[] = {
    {"overflowed", (getter)CMCache_get_overflowed, NULL, NULL, NULL},
    {"counters", (getter)CMCache_get_counters, NULL,
     "Monotonic cache activity counters (snapshot).", NULL},
    {NULL}
};

static PySequenceMethods CMCache_as_sequence = {
    .sq_length = (lenfunc)CMCache_len,
    .sq_contains = (objobjproc)CMCache_contains,
};

static PyTypeObject CMCacheType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.model._cmodel.MetadataCache",
    .tp_basicsize = sizeof(CMCache),
    .tp_dealloc = (destructor)CMCache_dealloc,
    .tp_as_sequence = &CMCache_as_sequence,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Bounded inode cache with leaf-only eviction (compiled).",
    .tp_traverse = (traverseproc)CMCache_traverse,
    .tp_clear = (inquiry)CMCache_clear_refs,
    .tp_methods = CMCache_methods,
    .tp_members = CMCache_members,
    .tp_getset = CMCache_getset,
    .tp_init = (initproc)CMCache_init,
    .tp_new = PyType_GenericNew,
};

/* ------------------------------------------------------------------ */
/* ResolutionMemo                                                     */
/* ------------------------------------------------------------------ */

typedef struct {
    PyObject_HEAD
    long long capacity;
    long long hits;
    long long misses;
    long long invalidations;
    PyObject *paths;        /* dict: path tuple -> (target, walk)       */
    PyObject *chains;       /* dict: ino -> tuple of ancestor inodes    */
    PyObject *ino_chains;   /* dict: ino -> tuple of bare ancestor inos */
    PyObject *deps;         /* dict: ino -> set of dependent memo keys  */
} CMMemo;

static PyTypeObject CMMemoType;

static int
CMMemo_traverse(CMMemo *self, visitproc visit, void *arg)
{
    Py_VISIT(self->paths);
    Py_VISIT(self->chains);
    Py_VISIT(self->ino_chains);
    Py_VISIT(self->deps);
    return 0;
}

static int
CMMemo_clear_refs(CMMemo *self)
{
    Py_CLEAR(self->paths);
    Py_CLEAR(self->chains);
    Py_CLEAR(self->ino_chains);
    Py_CLEAR(self->deps);
    return 0;
}

static void
CMMemo_dealloc(CMMemo *self)
{
    PyObject_GC_UnTrack(self);
    (void)CMMemo_clear_refs(self);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static int
CMMemo_init(CMMemo *self, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"capacity", NULL};
    long long capacity = 65536;
    PyObject *d[4];
    int i;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "|L:ResolutionMemo", kwlist,
                                     &capacity))
        return -1;
    if (capacity < 1) {
        PyErr_Format(PyExc_ValueError,
                     "capacity must be >= 1, got %lld", capacity);
        return -1;
    }
    for (i = 0; i < 4; i++) {
        d[i] = PyDict_New();
        if (d[i] == NULL) {
            while (i > 0)
                Py_DECREF(d[--i]);
            return -1;
        }
    }
    self->capacity = capacity;
    self->hits = self->misses = self->invalidations = 0;
    Py_XSETREF(self->paths, d[0]);
    Py_XSETREF(self->chains, d[1]);
    Py_XSETREF(self->ino_chains, d[2]);
    Py_XSETREF(self->deps, d[3]);
    return 0;
}

static Py_ssize_t
CMMemo_len(CMMemo *self)
{
    return PyDict_GET_SIZE(self->paths) + PyDict_GET_SIZE(self->chains);
}

/* dep-bucket helper: deps[ino].add(key), creating the set on demand */
static int
memo_dep_add(CMMemo *self, PyObject *ino, PyObject *key)
{
    PyObject *bucket = PyDict_GetItemWithError(self->deps, ino);
    if (bucket == NULL) {
        if (PyErr_Occurred())
            return -1;
        bucket = PySet_New(NULL);
        if (bucket == NULL)
            return -1;
        if (PyDict_SetItem(self->deps, ino, bucket) < 0) {
            Py_DECREF(bucket);
            return -1;
        }
        Py_DECREF(bucket);
        bucket = PyDict_GetItemWithError(self->deps, ino);
        if (bucket == NULL)
            return -1;
    }
    return PySet_Add(bucket, key);
}

/* dep-bucket helper: deps[ino].discard(key), dropping empty buckets */
static int
memo_dep_discard(CMMemo *self, PyObject *ino, PyObject *key)
{
    PyObject *bucket = PyDict_GetItemWithError(self->deps, ino);
    if (bucket == NULL)
        return PyErr_Occurred() ? -1 : 0;
    if (PySet_Discard(bucket, key) < 0)
        return -1;
    if (PySet_GET_SIZE(bucket) == 0)
        return PyDict_DelItem(self->deps, ino);
    return 0;
}

/* python: _drop_path; 1 dropped, 0 absent, -1 error */
static int
memo_drop_path(CMMemo *self, PyObject *path)
{
    PyObject *entry, *walk;
    Py_ssize_t i, n;
    entry = PyDict_GetItemWithError(self->paths, path);
    if (entry == NULL)
        return PyErr_Occurred() ? -1 : 0;
    Py_INCREF(entry);
    if (PyDict_DelItem(self->paths, path) < 0) {
        Py_DECREF(entry);
        return -1;
    }
    walk = PyTuple_GET_ITEM(entry, 1);
    n = PyTuple_GET_SIZE(walk);
    for (i = 0; i < n; i++) {
        PyObject *ino = PyObject_GetAttr(PyTuple_GET_ITEM(walk, i), S_ino);
        int rc;
        if (ino == NULL) {
            Py_DECREF(entry);
            return -1;
        }
        rc = memo_dep_discard(self, ino, path);
        Py_DECREF(ino);
        if (rc < 0) {
            Py_DECREF(entry);
            return -1;
        }
    }
    Py_DECREF(entry);
    return 1;
}

/* python: _drop_chain; 1 dropped, 0 absent, -1 error */
static int
memo_drop_chain(CMMemo *self, PyObject *ino_key)
{
    PyObject *chain;
    Py_ssize_t i, n;
    int rc;
    chain = PyDict_GetItemWithError(self->chains, ino_key);
    if (chain == NULL)
        return PyErr_Occurred() ? -1 : 0;
    Py_INCREF(chain);
    if (PyDict_DelItem(self->chains, ino_key) < 0) {
        Py_DECREF(chain);
        return -1;
    }
    if (PyDict_GetItemWithError(self->ino_chains, ino_key) != NULL) {
        if (PyDict_DelItem(self->ino_chains, ino_key) < 0) {
            Py_DECREF(chain);
            return -1;
        }
    }
    else if (PyErr_Occurred()) {
        Py_DECREF(chain);
        return -1;
    }
    rc = memo_dep_discard(self, ino_key, ino_key);
    if (rc < 0) {
        Py_DECREF(chain);
        return -1;
    }
    n = PyTuple_GET_SIZE(chain);
    for (i = 1; i < n; i++) {     /* chain[0] is the immovable root */
        PyObject *dep = PyObject_GetAttr(PyTuple_GET_ITEM(chain, i), S_ino);
        if (dep == NULL) {
            Py_DECREF(chain);
            return -1;
        }
        rc = memo_dep_discard(self, dep, ino_key);
        Py_DECREF(dep);
        if (rc < 0) {
            Py_DECREF(chain);
            return -1;
        }
    }
    Py_DECREF(chain);
    return 1;
}

/* FIFO eviction: drop the oldest entry of ``which`` (insertion order) */
static int
memo_drop_first(CMMemo *self, PyObject *which,
                int (*dropper)(CMMemo *, PyObject *))
{
    Py_ssize_t pos = 0;
    PyObject *key, *value;
    int rc;
    if (!PyDict_Next(which, &pos, &key, &value))
        return 0;
    Py_INCREF(key);
    rc = dropper(self, key);
    Py_DECREF(key);
    return rc < 0 ? -1 : 0;
}

static PyObject *
CMMemo_store_path(CMMemo *self, PyObject *const *args, Py_ssize_t nargs)
{
    PyObject *path, *walk, *target, *val;
    Py_ssize_t i, n;
    int has;
    if (nargs != 2) {
        PyErr_SetString(PyExc_TypeError,
                        "store_path() takes exactly 2 arguments");
        return NULL;
    }
    path = args[0];
    walk = args[1];
    has = PyDict_Contains(self->paths, path);
    if (has < 0)
        return NULL;
    if (has)
        Py_RETURN_NONE;
    while (PyDict_GET_SIZE(self->paths) >= (Py_ssize_t)self->capacity) {
        if (memo_drop_first(self, self->paths, memo_drop_path) < 0)
            return NULL;
    }
    if (!PyTuple_Check(walk) || PyTuple_GET_SIZE(walk) == 0) {
        PyErr_SetString(PyExc_TypeError,
                        "store_path() expects a non-empty walk tuple");
        return NULL;
    }
    n = PyTuple_GET_SIZE(walk);
    target = PyTuple_GET_ITEM(walk, n - 1);      /* walk[-1] */
    val = PyTuple_Pack(2, target, walk);
    if (val == NULL)
        return NULL;
    if (PyDict_SetItem(self->paths, path, val) < 0) {
        Py_DECREF(val);
        return NULL;
    }
    Py_DECREF(val);
    for (i = 0; i < n; i++) {
        PyObject *ino = PyObject_GetAttr(PyTuple_GET_ITEM(walk, i), S_ino);
        int rc;
        if (ino == NULL)
            return NULL;
        rc = memo_dep_add(self, ino, path);
        Py_DECREF(ino);
        if (rc < 0)
            return NULL;
    }
    Py_RETURN_NONE;
}

static PyObject *
CMMemo_store_chain(CMMemo *self, PyObject *const *args, Py_ssize_t nargs)
{
    PyObject *ino, *chain, *bare;
    Py_ssize_t i, n;
    int has;
    if (nargs != 2) {
        PyErr_SetString(PyExc_TypeError,
                        "store_chain() takes exactly 2 arguments");
        return NULL;
    }
    ino = args[0];
    chain = args[1];
    has = PyDict_Contains(self->chains, ino);
    if (has < 0)
        return NULL;
    if (has)
        Py_RETURN_NONE;
    while (PyDict_GET_SIZE(self->chains) >= (Py_ssize_t)self->capacity) {
        if (memo_drop_first(self, self->chains, memo_drop_chain) < 0)
            return NULL;
    }
    if (!PyTuple_Check(chain)) {
        PyErr_SetString(PyExc_TypeError,
                        "store_chain() expects a chain tuple");
        return NULL;
    }
    if (PyDict_SetItem(self->chains, ino, chain) < 0)
        return NULL;
    n = PyTuple_GET_SIZE(chain);
    bare = PyTuple_New(n);
    if (bare == NULL)
        return NULL;
    for (i = 0; i < n; i++) {
        PyObject *node_ino = PyObject_GetAttr(PyTuple_GET_ITEM(chain, i),
                                              S_ino);
        if (node_ino == NULL) {
            Py_DECREF(bare);
            return NULL;
        }
        PyTuple_SET_ITEM(bare, i, node_ino);
    }
    if (PyDict_SetItem(self->ino_chains, ino, bare) < 0) {
        Py_DECREF(bare);
        return NULL;
    }
    /* the entry depends on ino itself (a rename/unlink of ino must kill
     * it) and on every non-root ancestor on the chain */
    if (memo_dep_add(self, ino, ino) < 0) {
        Py_DECREF(bare);
        return NULL;
    }
    for (i = 1; i < n; i++) {
        if (memo_dep_add(self, PyTuple_GET_ITEM(bare, i), ino) < 0) {
            Py_DECREF(bare);
            return NULL;
        }
    }
    Py_DECREF(bare);
    Py_RETURN_NONE;
}

static PyObject *
CMMemo_invalidate_ino(CMMemo *self, PyObject *ino)
{
    PyObject *keys, *as_list;
    Py_ssize_t i, n;
    long long dropped = 0;
    keys = PyDict_GetItemWithError(self->deps, ino);
    if (keys == NULL) {
        if (PyErr_Occurred())
            return NULL;
        return PyLong_FromLong(0);
    }
    Py_INCREF(keys);
    if (PyDict_DelItem(self->deps, ino) < 0) {
        Py_DECREF(keys);
        return NULL;
    }
    if (PySet_GET_SIZE(keys) == 0) {
        Py_DECREF(keys);
        return PyLong_FromLong(0);
    }
    as_list = PySequence_List(keys);
    Py_DECREF(keys);
    if (as_list == NULL)
        return NULL;
    n = PyList_GET_SIZE(as_list);
    for (i = 0; i < n; i++) {
        PyObject *key = PyList_GET_ITEM(as_list, i);
        int rc = PyTuple_Check(key) ? memo_drop_path(self, key)
                                    : memo_drop_chain(self, key);
        if (rc < 0) {
            Py_DECREF(as_list);
            return NULL;
        }
        dropped += rc;
    }
    Py_DECREF(as_list);
    self->invalidations += dropped;
    return PyLong_FromLongLong(dropped);
}

static PyObject *
CMMemo_drop_path_meth(CMMemo *self, PyObject *path)
{
    int rc = memo_drop_path(self, path);
    if (rc < 0)
        return NULL;
    return PyBool_FromLong(rc);
}

static PyObject *
CMMemo_drop_chain_meth(CMMemo *self, PyObject *ino)
{
    int rc = memo_drop_chain(self, ino);
    if (rc < 0)
        return NULL;
    return PyBool_FromLong(rc);
}

static PyObject *
CMMemo_clear(CMMemo *self, PyObject *Py_UNUSED(ignored))
{
    PyDict_Clear(self->paths);
    PyDict_Clear(self->chains);
    PyDict_Clear(self->ino_chains);
    PyDict_Clear(self->deps);
    Py_RETURN_NONE;
}

static PyObject *
CMMemo_stats(CMMemo *self, PyObject *Py_UNUSED(ignored))
{
    return Py_BuildValue("{s:n,s:L,s:L,s:L}",
                         "entries", CMMemo_len(self),
                         "hits", self->hits,
                         "misses", self->misses,
                         "invalidations", self->invalidations);
}

static PyObject *
CMMemo_verify_invariants(CMMemo *self, PyObject *Py_UNUSED(ignored))
{
    PyObject *expected = PyDict_New();
    PyObject *key, *value, *keys_a = NULL, *keys_b = NULL;
    Py_ssize_t pos, i, n;
    int cmp;
    if (expected == NULL)
        return NULL;
    /* rebuild the dependency index from scratch */
    pos = 0;
    while (PyDict_Next(self->paths, &pos, &key, &value)) {
        PyObject *walk = PyTuple_GET_ITEM(value, 1);
        n = PyTuple_GET_SIZE(walk);
        for (i = 0; i < n; i++) {
            PyObject *ino = PyObject_GetAttr(PyTuple_GET_ITEM(walk, i),
                                             S_ino);
            PyObject *bucket;
            if (ino == NULL)
                goto error;
            bucket = PyDict_GetItemWithError(expected, ino);
            if (bucket == NULL) {
                if (PyErr_Occurred()) {
                    Py_DECREF(ino);
                    goto error;
                }
                bucket = PySet_New(NULL);
                if (bucket == NULL ||
                        PyDict_SetItem(expected, ino, bucket) < 0) {
                    Py_XDECREF(bucket);
                    Py_DECREF(ino);
                    goto error;
                }
                Py_DECREF(bucket);
                bucket = PyDict_GetItemWithError(expected, ino);
            }
            Py_DECREF(ino);
            if (bucket == NULL || PySet_Add(bucket, key) < 0)
                goto error;
        }
    }
    pos = 0;
    while (PyDict_Next(self->chains, &pos, &key, &value)) {
        PyObject *bucket = PyDict_GetItemWithError(expected, key);
        if (bucket == NULL) {
            if (PyErr_Occurred())
                goto error;
            bucket = PySet_New(NULL);
            if (bucket == NULL || PyDict_SetItem(expected, key, bucket) < 0) {
                Py_XDECREF(bucket);
                goto error;
            }
            Py_DECREF(bucket);
            bucket = PyDict_GetItemWithError(expected, key);
        }
        if (bucket == NULL || PySet_Add(bucket, key) < 0)
            goto error;
        n = PyTuple_GET_SIZE(value);
        for (i = 1; i < n; i++) {
            PyObject *ino = PyObject_GetAttr(PyTuple_GET_ITEM(value, i),
                                             S_ino);
            if (ino == NULL)
                goto error;
            bucket = PyDict_GetItemWithError(expected, ino);
            if (bucket == NULL) {
                if (PyErr_Occurred()) {
                    Py_DECREF(ino);
                    goto error;
                }
                bucket = PySet_New(NULL);
                if (bucket == NULL ||
                        PyDict_SetItem(expected, ino, bucket) < 0) {
                    Py_XDECREF(bucket);
                    Py_DECREF(ino);
                    goto error;
                }
                Py_DECREF(bucket);
                bucket = PyDict_GetItemWithError(expected, ino);
            }
            Py_DECREF(ino);
            if (bucket == NULL || PySet_Add(bucket, key) < 0)
                goto error;
        }
    }
    cmp = PyObject_RichCompareBool(self->deps, expected, Py_EQ);
    if (cmp < 0)
        goto error;
    if (!cmp) {
        PyErr_Format(PyExc_AssertionError,
                     "dep index mismatch: %R != %R", self->deps, expected);
        goto error;
    }
    keys_a = PyObject_CallMethod(self->ino_chains, "keys", NULL);
    keys_b = PyObject_CallMethod(self->chains, "keys", NULL);
    if (keys_a == NULL || keys_b == NULL)
        goto error;
    cmp = PyObject_RichCompareBool(keys_a, keys_b, Py_EQ);
    if (cmp < 0)
        goto error;
    if (!cmp) {
        PyErr_SetString(PyExc_AssertionError,
                        "ino_chains out of sync with chains");
        goto error;
    }
    pos = 0;
    while (PyDict_Next(self->chains, &pos, &key, &value)) {
        PyObject *stored = PyDict_GetItemWithError(self->ino_chains, key);
        PyObject *fresh;
        if (stored == NULL)
            goto error;
        n = PyTuple_GET_SIZE(value);
        fresh = PyTuple_New(n);
        if (fresh == NULL)
            goto error;
        for (i = 0; i < n; i++) {
            PyObject *ino = PyObject_GetAttr(PyTuple_GET_ITEM(value, i),
                                             S_ino);
            if (ino == NULL) {
                Py_DECREF(fresh);
                goto error;
            }
            PyTuple_SET_ITEM(fresh, i, ino);
        }
        cmp = PyObject_RichCompareBool(stored, fresh, Py_EQ);
        Py_DECREF(fresh);
        if (cmp < 0)
            goto error;
        if (!cmp) {
            PyErr_Format(PyExc_AssertionError,
                         "ino_chains[%R] stale", key);
            goto error;
        }
    }
    Py_DECREF(expected);
    Py_DECREF(keys_a);
    Py_DECREF(keys_b);
    Py_RETURN_NONE;
error:
    Py_DECREF(expected);
    Py_XDECREF(keys_a);
    Py_XDECREF(keys_b);
    return NULL;
}

static PyObject *
CMMemo_deepcopy(CMMemo *self, PyObject *memo)
{
    CMMemo *fresh;
    PyObject *dc = get_deepcopy(), *ident = NULL;
    PyObject *src[4], *dst[4] = {NULL, NULL, NULL, NULL};
    int i;
    if (dc == NULL)
        return NULL;
    fresh = (CMMemo *)CMMemoType.tp_alloc(&CMMemoType, 0);
    if (fresh == NULL)
        return NULL;
    fresh->capacity = self->capacity;
    fresh->hits = self->hits;
    fresh->misses = self->misses;
    fresh->invalidations = self->invalidations;
    /* register before recursing so cyclic references resolve */
    ident = PyLong_FromVoidPtr((void *)self);
    if (ident == NULL || PyDict_SetItem(memo, ident, (PyObject *)fresh) < 0) {
        Py_XDECREF(ident);
        Py_DECREF(fresh);
        return NULL;
    }
    Py_DECREF(ident);
    src[0] = self->paths;
    src[1] = self->chains;
    src[2] = self->ino_chains;
    src[3] = self->deps;
    for (i = 0; i < 4; i++) {
        dst[i] = PyObject_CallFunctionObjArgs(dc, src[i], memo, NULL);
        if (dst[i] == NULL) {
            while (i > 0)
                Py_DECREF(dst[--i]);
            Py_DECREF(fresh);
            return NULL;
        }
    }
    fresh->paths = dst[0];
    fresh->chains = dst[1];
    fresh->ino_chains = dst[2];
    fresh->deps = dst[3];
    return (PyObject *)fresh;
}

static PyMethodDef CMMemo_methods[] = {
    {"store_path", (PyCFunction)(void (*)(void))CMMemo_store_path,
     METH_FASTCALL, "Memoise a *successful* resolution of ``path``."},
    {"store_chain", (PyCFunction)(void (*)(void))CMMemo_store_chain,
     METH_FASTCALL,
     "Memoise ``ancestors(ino)`` (root first, ``ino`` excluded)."},
    {"invalidate_ino", (PyCFunction)CMMemo_invalidate_ino, METH_O,
     "Drop every entry whose walk or chain passes through ``ino``."},
    {"clear", (PyCFunction)CMMemo_clear, METH_NOARGS, NULL},
    {"stats", (PyCFunction)CMMemo_stats, METH_NOARGS, NULL},
    {"verify_invariants", (PyCFunction)CMMemo_verify_invariants,
     METH_NOARGS,
     "Raise ``AssertionError`` on index inconsistency (tests only)."},
    {"_drop_path", (PyCFunction)CMMemo_drop_path_meth, METH_O, NULL},
    {"_drop_chain", (PyCFunction)CMMemo_drop_chain_meth, METH_O, NULL},
    {"__deepcopy__", (PyCFunction)CMMemo_deepcopy, METH_O, NULL},
    {NULL}
};

static PyMemberDef CMMemo_members[] = {
    {"capacity", T_LONGLONG, offsetof(CMMemo, capacity), 0, NULL},
    {"hits", T_LONGLONG, offsetof(CMMemo, hits), 0, NULL},
    {"misses", T_LONGLONG, offsetof(CMMemo, misses), 0, NULL},
    {"invalidations", T_LONGLONG, offsetof(CMMemo, invalidations), 0, NULL},
    {"paths", T_OBJECT, offsetof(CMMemo, paths), READONLY, NULL},
    {"chains", T_OBJECT, offsetof(CMMemo, chains), READONLY, NULL},
    {"ino_chains", T_OBJECT, offsetof(CMMemo, ino_chains), READONLY, NULL},
    {"_deps", T_OBJECT, offsetof(CMMemo, deps), READONLY, NULL},
    {NULL}
};

static PySequenceMethods CMMemo_as_sequence = {
    .sq_length = (lenfunc)CMMemo_len,
};

static PyTypeObject CMMemoType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.model._cmodel.ResolutionMemo",
    .tp_basicsize = sizeof(CMMemo),
    .tp_dealloc = (destructor)CMMemo_dealloc,
    .tp_as_sequence = &CMMemo_as_sequence,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Bounded memo of path resolutions and ancestor chains "
              "(compiled).",
    .tp_traverse = (traverseproc)CMMemo_traverse,
    .tp_clear = (inquiry)CMMemo_clear_refs,
    .tp_methods = CMMemo_methods,
    .tp_members = CMMemo_members,
    .tp_init = (initproc)CMMemo_init,
    .tp_new = PyType_GenericNew,
};

/* ------------------------------------------------------------------ */
/* PopularityMap                                                      */
/* ------------------------------------------------------------------ */

typedef struct {
    PyObject_HEAD
    double halflife_s;
    PyObject *counters;     /* dict: key (any hashable) -> DecayCounter */
} CMPop;

static PyTypeObject CMPopType;

static int
CMPop_traverse(CMPop *self, visitproc visit, void *arg)
{
    Py_VISIT(self->counters);
    return 0;
}

static int
CMPop_clear_refs(CMPop *self)
{
    Py_CLEAR(self->counters);
    return 0;
}

static void
CMPop_dealloc(CMPop *self)
{
    PyObject_GC_UnTrack(self);
    (void)CMPop_clear_refs(self);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static int
CMPop_init(CMPop *self, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"halflife_s", NULL};
    double halflife_s;
    PyObject *counters;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "d:PopularityMap", kwlist,
                                     &halflife_s))
        return -1;
    if (halflife_s <= 0) {
        PyErr_SetString(PyExc_ValueError, "halflife must be positive");
        return -1;
    }
    counters = PyDict_New();
    if (counters == NULL)
        return -1;
    self->halflife_s = halflife_s;
    Py_XSETREF(self->counters, counters);
    return 0;
}

static CMCounter *
pop_lookup(CMPop *self, PyObject *key)
{
    PyObject *c = PyDict_GetItemWithError(self->counters, key);
    if (c == NULL)
        return NULL;
    if (!PyObject_TypeCheck(c, &CMCounterType)) {
        PyErr_Format(PyExc_TypeError,
                     "PopularityMap counter for %R is not a DecayCounter",
                     key);
        return NULL;
    }
    return (CMCounter *)c;
}

static PyObject *
CMPop_add(CMPop *self, PyObject *const *args, Py_ssize_t nargs,
          PyObject *kwnames)
{
    double now, amount = 1.0;
    CMCounter *counter;
    Py_ssize_t nkw = kwnames ? PyTuple_GET_SIZE(kwnames) : 0;
    if (nargs < 2 || nargs > 3 || nargs + nkw > 3) {
        PyErr_SetString(PyExc_TypeError,
                        "add() takes (ino, now, amount=1.0)");
        return NULL;
    }
    now = PyFloat_AsDouble(args[1]);
    if (now == -1.0 && PyErr_Occurred())
        return NULL;
    if (nargs == 3) {
        amount = PyFloat_AsDouble(args[2]);
        if (amount == -1.0 && PyErr_Occurred())
            return NULL;
    }
    if (nkw) {
        if (!kwname_is(PyTuple_GET_ITEM(kwnames, 0), S_amount)) {
            PyErr_SetString(PyExc_TypeError,
                            "add() got an unexpected keyword argument");
            return NULL;
        }
        amount = PyFloat_AsDouble(args[nargs]);
        if (amount == -1.0 && PyErr_Occurred())
            return NULL;
    }
    counter = pop_lookup(self, args[0]);
    if (counter == NULL) {
        if (PyErr_Occurred())
            return NULL;
        counter = counter_fresh(self->halflife_s, 0.0, now);
        if (counter == NULL)
            return NULL;
        if (PyDict_SetItem(self->counters, args[0],
                           (PyObject *)counter) < 0) {
            Py_DECREF(counter);
            return NULL;
        }
        Py_DECREF(counter);
    }
    counter_decay_to(counter, now);
    counter->value += amount;
    return PyFloat_FromDouble(counter->value);
}

static PyObject *
CMPop_add_chain(CMPop *self, PyObject *const *args, Py_ssize_t nargs)
{
    double now;
    PyObject *it, *key;
    double halflife = self->halflife_s;
    if (nargs != 2) {
        PyErr_SetString(PyExc_TypeError, "add_chain() takes (inos, now)");
        return NULL;
    }
    now = PyFloat_AsDouble(args[1]);
    if (now == -1.0 && PyErr_Occurred())
        return NULL;
    it = PyObject_GetIter(args[0]);
    if (it == NULL)
        return NULL;
    while ((key = PyIter_Next(it)) != NULL) {
        CMCounter *counter = pop_lookup(self, key);
        if (counter == NULL) {
            if (PyErr_Occurred()) {
                Py_DECREF(key);
                Py_DECREF(it);
                return NULL;
            }
            /* fresh counter at `now`: no decay, first access counts 1 */
            counter = counter_fresh(halflife, 1.0, now);
            if (counter == NULL ||
                    PyDict_SetItem(self->counters, key,
                                   (PyObject *)counter) < 0) {
                Py_XDECREF(counter);
                Py_DECREF(key);
                Py_DECREF(it);
                return NULL;
            }
            Py_DECREF(counter);
            Py_DECREF(key);
            continue;
        }
        /* identical float semantics to DecayCounter._decay_to, inlined */
        if (now > counter->last_t) {
            if (counter->value > 0.0)
                counter->value *= exp(-CM_LN2 *
                                      (now - counter->last_t) / halflife);
            counter->last_t = now;
        }
        counter->value += 1.0;
        Py_DECREF(key);
    }
    Py_DECREF(it);
    if (PyErr_Occurred())
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *
CMPop_read(CMPop *self, PyObject *const *args, Py_ssize_t nargs)
{
    double now;
    CMCounter *counter;
    if (nargs != 2) {
        PyErr_SetString(PyExc_TypeError, "read() takes (ino, now)");
        return NULL;
    }
    now = PyFloat_AsDouble(args[1]);
    if (now == -1.0 && PyErr_Occurred())
        return NULL;
    counter = pop_lookup(self, args[0]);
    if (counter == NULL) {
        if (PyErr_Occurred())
            return NULL;
        return PyFloat_FromDouble(0.0);
    }
    counter_decay_to(counter, now);
    return PyFloat_FromDouble(counter->value);
}

static PyObject *
CMPop_prune(CMPop *self, PyObject *const *args, Py_ssize_t nargs,
            PyObject *kwnames)
{
    double now, floor_v = 0.01;
    PyObject *dead, *key, *value;
    Py_ssize_t pos = 0, i, ndead;
    Py_ssize_t nkw = kwnames ? PyTuple_GET_SIZE(kwnames) : 0;
    if (nargs < 1 || nargs > 2 || nargs + nkw > 2) {
        PyErr_SetString(PyExc_TypeError,
                        "prune() takes (now, floor=0.01)");
        return NULL;
    }
    now = PyFloat_AsDouble(args[0]);
    if (now == -1.0 && PyErr_Occurred())
        return NULL;
    if (nargs == 2) {
        floor_v = PyFloat_AsDouble(args[1]);
        if (floor_v == -1.0 && PyErr_Occurred())
            return NULL;
    }
    if (nkw) {
        if (!kwname_is(PyTuple_GET_ITEM(kwnames, 0), S_floor)) {
            PyErr_SetString(PyExc_TypeError,
                            "prune() got an unexpected keyword argument");
            return NULL;
        }
        floor_v = PyFloat_AsDouble(args[nargs]);
        if (floor_v == -1.0 && PyErr_Occurred())
            return NULL;
    }
    dead = PyList_New(0);
    if (dead == NULL)
        return NULL;
    while (PyDict_Next(self->counters, &pos, &key, &value)) {
        CMCounter *c;
        if (!PyObject_TypeCheck(value, &CMCounterType)) {
            Py_DECREF(dead);
            PyErr_SetString(PyExc_TypeError,
                            "PopularityMap holds a non-DecayCounter value");
            return NULL;
        }
        c = (CMCounter *)value;
        counter_decay_to(c, now);   /* python: c.read(now) mutates */
        if (c->value < floor_v && PyList_Append(dead, key) < 0) {
            Py_DECREF(dead);
            return NULL;
        }
    }
    ndead = PyList_GET_SIZE(dead);
    for (i = 0; i < ndead; i++) {
        if (PyDict_DelItem(self->counters, PyList_GET_ITEM(dead, i)) < 0) {
            Py_DECREF(dead);
            return NULL;
        }
    }
    Py_DECREF(dead);
    return PyLong_FromSsize_t(ndead);
}

static Py_ssize_t
CMPop_len(CMPop *self)
{
    return PyDict_GET_SIZE(self->counters);
}

static PyMethodDef CMPop_methods[] = {
    {"add", (PyCFunction)(void (*)(void))CMPop_add,
     METH_FASTCALL | METH_KEYWORDS, NULL},
    {"add_chain", (PyCFunction)(void (*)(void))CMPop_add_chain,
     METH_FASTCALL,
     "Record one access on every counter in ``inos`` at time ``now``."},
    {"read", (PyCFunction)(void (*)(void))CMPop_read, METH_FASTCALL, NULL},
    {"prune", (PyCFunction)(void (*)(void))CMPop_prune,
     METH_FASTCALL | METH_KEYWORDS,
     "Drop counters that decayed below ``floor``; returns count removed."},
    {NULL}
};

static PyMemberDef CMPop_members[] = {
    {"halflife_s", T_DOUBLE, offsetof(CMPop, halflife_s), 0, NULL},
    {"_counters", T_OBJECT, offsetof(CMPop, counters), READONLY, NULL},
    {NULL}
};

static PySequenceMethods CMPop_as_sequence = {
    .sq_length = (lenfunc)CMPop_len,
};

static PyTypeObject CMPopType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.model._cmodel.PopularityMap",
    .tp_basicsize = sizeof(CMPop),
    .tp_dealloc = (destructor)CMPop_dealloc,
    .tp_as_sequence = &CMPop_as_sequence,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Per-inode decay counters with shared half-life (compiled).",
    .tp_traverse = (traverseproc)CMPop_traverse,
    .tp_clear = (inquiry)CMPop_clear_refs,
    .tp_methods = CMPop_methods,
    .tp_members = CMPop_members,
    .tp_init = (initproc)CMPop_init,
    .tp_new = PyType_GenericNew,
};

/* ------------------------------------------------------------------ */
/* AuthorityMemo                                                      */
/* ------------------------------------------------------------------ */

typedef struct {
    PyObject_HEAD
    PyObject *ns;           /* namespace; read for ``structure_epoch``  */
    PyObject *compute;      /* bound Strategy._authority_of_ino         */
    PyObject *map;          /* dict: ino -> authority mds index         */
    long long epoch;
} CMAuth;

static PyTypeObject CMAuthType;

static int
CMAuth_traverse(CMAuth *self, visitproc visit, void *arg)
{
    Py_VISIT(self->ns);
    Py_VISIT(self->compute);
    Py_VISIT(self->map);
    return 0;
}

static int
CMAuth_clear_refs(CMAuth *self)
{
    Py_CLEAR(self->ns);
    Py_CLEAR(self->compute);
    Py_CLEAR(self->map);
    return 0;
}

static void
CMAuth_dealloc(CMAuth *self)
{
    PyObject_GC_UnTrack(self);
    (void)CMAuth_clear_refs(self);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static int
CMAuth_init(CMAuth *self, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"ns", "compute", NULL};
    PyObject *ns, *compute, *map;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "OO:AuthorityMemo", kwlist,
                                     &ns, &compute))
        return -1;
    map = PyDict_New();
    if (map == NULL)
        return -1;
    Py_INCREF(ns);
    Py_XSETREF(self->ns, ns);
    Py_INCREF(compute);
    Py_XSETREF(self->compute, compute);
    Py_XSETREF(self->map, map);
    self->epoch = -1;
    return 0;
}

static PyObject *
CMAuth_lookup(CMAuth *self, PyObject *ino)
{
    PyObject *epoch_obj, *found, *computed;
    long long epoch;
    epoch_obj = PyObject_GetAttr(self->ns, S_structure_epoch);
    if (epoch_obj == NULL)
        return NULL;
    epoch = PyLong_AsLongLong(epoch_obj);
    Py_DECREF(epoch_obj);
    if (epoch == -1 && PyErr_Occurred())
        return NULL;
    if (epoch != self->epoch) {
        PyDict_Clear(self->map);
        self->epoch = epoch;
    }
    found = PyDict_GetItemWithError(self->map, ino);
    if (found != NULL) {
        Py_INCREF(found);
        return found;
    }
    if (PyErr_Occurred())
        return NULL;
    computed = PyObject_CallOneArg(self->compute, ino);
    if (computed == NULL)
        return NULL;
    if (PyDict_SetItem(self->map, ino, computed) < 0) {
        Py_DECREF(computed);
        return NULL;
    }
    return computed;
}

static PyObject *
CMAuth_clear(CMAuth *self, PyObject *Py_UNUSED(ignored))
{
    PyDict_Clear(self->map);
    Py_RETURN_NONE;
}

static Py_ssize_t
CMAuth_len(CMAuth *self)
{
    return PyDict_GET_SIZE(self->map);
}

static PyMethodDef CMAuth_methods[] = {
    {"lookup", (PyCFunction)CMAuth_lookup, METH_O,
     "Authority of ``ino``, recomputed when ``ns.structure_epoch`` moves."},
    {"clear", (PyCFunction)CMAuth_clear, METH_NOARGS,
     "Drop all memoised authorities (authority table changed)."},
    {NULL}
};

static PyMemberDef CMAuth_members[] = {
    {"_map", T_OBJECT, offsetof(CMAuth, map), READONLY, NULL},
    {"_epoch", T_LONGLONG, offsetof(CMAuth, epoch), READONLY, NULL},
    {NULL}
};

static PySequenceMethods CMAuth_as_sequence = {
    .sq_length = (lenfunc)CMAuth_len,
};

static PyTypeObject CMAuthType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.model._cmodel.AuthorityMemo",
    .tp_basicsize = sizeof(CMAuth),
    .tp_dealloc = (destructor)CMAuth_dealloc,
    .tp_as_sequence = &CMAuth_as_sequence,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Epoch-keyed authority lookup memo (compiled).",
    .tp_traverse = (traverseproc)CMAuth_traverse,
    .tp_clear = (inquiry)CMAuth_clear_refs,
    .tp_methods = CMAuth_methods,
    .tp_members = CMAuth_members,
    .tp_init = (initproc)CMAuth_init,
    .tp_new = PyType_GenericNew,
};

/* ------------------------------------------------------------------ */
/* module                                                             */
/* ------------------------------------------------------------------ */

static PyObject *
cmodel_configure(PyObject *module, PyObject *counters_class)
{
    if (!PyCallable_Check(counters_class)) {
        PyErr_SetString(PyExc_TypeError,
                        "configure() expects the CacheCounters class");
        return NULL;
    }
    Py_INCREF(counters_class);
    Py_XSETREF(CacheCountersClass, counters_class);
    Py_RETURN_NONE;
}

static PyObject *
cmodel_pool_stats(PyObject *module, PyObject *Py_UNUSED(ignored))
{
    return Py_BuildValue("{s:i,s:i,s:i}",
                         "entry_pool", entry_pool_len,
                         "counter_pool", counter_pool_len,
                         "pool_max", CM_POOL_MAX);
}

static PyMethodDef cmodel_methods[] = {
    {"configure", cmodel_configure, METH_O,
     "Install the python CacheCounters class used by cache.counters."},
    {"pool_stats", cmodel_pool_stats, METH_NOARGS,
     "Current freelist occupancy (introspection only)."},
    {NULL}
};

static struct PyModuleDef cmodel_module = {
    PyModuleDef_HEAD_INIT,
    .m_name = "repro.model._cmodel",
    .m_doc = "Compiled MDS-model hot spots (cache LRU, resolution memo, "
             "popularity accounting).",
    .m_size = -1,
    .m_methods = cmodel_methods,
};

PyMODINIT_FUNC
PyInit__cmodel(void)
{
    PyObject *m;

    CM_LN2 = log(2.0);      /* matches python's math.log(2.0) */

    if ((S_touch = PyUnicode_InternFromString("touch")) == NULL ||
        (S_replica = PyUnicode_InternFromString("replica")) == NULL ||
        (S_prefetched = PyUnicode_InternFromString("prefetched")) == NULL ||
        (S_ino = PyUnicode_InternFromString("ino")) == NULL ||
        (S_structure_epoch =
             PyUnicode_InternFromString("structure_epoch")) == NULL ||
        (S_values = PyUnicode_InternFromString("values")) == NULL ||
        (S_insertions = PyUnicode_InternFromString("insertions")) == NULL ||
        (S_evictions = PyUnicode_InternFromString("evictions")) == NULL ||
        (S_prefetch_insertions =
             PyUnicode_InternFromString("prefetch_insertions")) == NULL ||
        (S_amount = PyUnicode_InternFromString("amount")) == NULL ||
        (S_floor = PyUnicode_InternFromString("floor")) == NULL)
        return NULL;

    if (PyType_Ready(&CMEntryType) < 0 ||
        PyType_Ready(&CMCounterType) < 0 ||
        PyType_Ready(&CMCacheType) < 0 ||
        PyType_Ready(&CMMemoType) < 0 ||
        PyType_Ready(&CMPopType) < 0 ||
        PyType_Ready(&CMAuthType) < 0)
        return NULL;

    m = PyModule_Create(&cmodel_module);
    if (m == NULL)
        return NULL;

    Py_INCREF(&CMEntryType);
    if (PyModule_AddObject(m, "CacheEntry", (PyObject *)&CMEntryType) < 0)
        goto fail;
    Py_INCREF(&CMCounterType);
    if (PyModule_AddObject(m, "DecayCounter",
                           (PyObject *)&CMCounterType) < 0)
        goto fail;
    Py_INCREF(&CMCacheType);
    if (PyModule_AddObject(m, "MetadataCache",
                           (PyObject *)&CMCacheType) < 0)
        goto fail;
    Py_INCREF(&CMMemoType);
    if (PyModule_AddObject(m, "ResolutionMemo",
                           (PyObject *)&CMMemoType) < 0)
        goto fail;
    Py_INCREF(&CMPopType);
    if (PyModule_AddObject(m, "PopularityMap", (PyObject *)&CMPopType) < 0)
        goto fail;
    Py_INCREF(&CMAuthType);
    if (PyModule_AddObject(m, "AuthorityMemo", (PyObject *)&CMAuthType) < 0)
        goto fail;
    if (PyModule_AddIntConstant(m, "POOL_MAX", CM_POOL_MAX) < 0)
        goto fail;
    return m;
fail:
    Py_DECREF(m);
    return NULL;
}
