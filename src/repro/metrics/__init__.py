"""Metrics collection, analysis, and reporting (S12 in DESIGN.md)."""

from .analysis import (Summary, moving_average, percentile, relative_change,
                       summarize, trim_warmup)
from .counters import DeltaTracker
from .histogram import EMPTY_SUMMARY, LatencyHistogram, LatencySummary
from .report import format_series, format_table
from .series import BucketCounter, TimeSeries

__all__ = [
    "BucketCounter",
    "DeltaTracker",
    "EMPTY_SUMMARY",
    "LatencyHistogram",
    "LatencySummary",
    "Summary",
    "TimeSeries",
    "format_series",
    "format_table",
    "moving_average",
    "percentile",
    "relative_change",
    "summarize",
    "trim_warmup",
]
