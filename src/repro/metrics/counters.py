"""Delta-snapshot counters for periodic load measurement."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


class DeltaTracker:
    """Named monotonic counters with "what changed since last snapshot".

    The load balancer's heartbeat wants per-interval rates; this gives them
    without per-event timestamping.
    """

    def __init__(self) -> None:
        self._counts: Dict[str, float] = {}
        self._last_snapshot: Dict[str, float] = {}

    def add(self, name: str, amount: float = 1.0) -> None:
        self._counts[name] = self._counts.get(name, 0.0) + amount

    def value(self, name: str) -> float:
        return self._counts.get(name, 0.0)

    def delta(self, name: str) -> float:
        """Change in ``name`` since the last :meth:`snapshot` (peek only)."""
        return self._counts.get(name, 0.0) - self._last_snapshot.get(name, 0.0)

    def snapshot(self) -> Dict[str, float]:
        """Return all deltas since the previous snapshot and reset baselines."""
        deltas = {name: self._counts[name] - self._last_snapshot.get(name, 0.0)
                  for name in self._counts}
        self._last_snapshot = dict(self._counts)
        return deltas
