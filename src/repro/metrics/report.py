"""Plain-text reporting helpers for the benchmark harness.

The paper's evaluation is all figures; the harness prints the same series
as aligned text tables so results are diffable and CI-friendly.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: str = "") -> str:
    """Render rows as an aligned monospace table."""
    str_rows: List[List[str]] = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.rjust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000:
            return f"{cell:.0f}"
        if abs(cell) >= 100:
            return f"{cell:.1f}"
        if abs(cell) >= 1:
            return f"{cell:.2f}"
        return f"{cell:.3f}"
    return str(cell)


def format_series(name: str, points: Sequence[tuple],
                  x_label: str = "t", y_label: str = "value") -> str:
    """Render one (x, y) series as a two-column table."""
    return format_table([x_label, y_label], points, title=name)
