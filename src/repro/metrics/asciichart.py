"""Terminal line charts for the figure drivers.

The paper's results are line plots; ``python -m repro.experiments fig2
--plot`` renders the same series as a Unicode chart so the shape — who is
on top, what degrades, where the crossover sits — is visible without
leaving the terminal.  Pure text, no dependencies.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

Series = Sequence[Tuple[float, float]]

#: assigned to series in order; visible in any terminal
MARKERS = "ox*+#@%&"


def render_chart(series: Dict[str, Series], *, width: int = 64,
                 height: int = 16, title: str = "", x_label: str = "",
                 y_label: str = "") -> str:
    """Render named (x, y) series as a text chart with a legend.

    Series share axes; each gets the next marker character.  Points are
    nearest-cell rasterized; later series overwrite earlier ones where
    they collide (collisions are rare at default resolution and the
    legend disambiguates).
    """
    if not series:
        raise ValueError("nothing to plot")
    if width < 16 or height < 4:
        raise ValueError("chart too small to be legible")
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        raise ValueError("all series are empty")
    xs = [x for x, _y in points]
    ys = [y for _x, y in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if math.isclose(x_hi, x_lo):
        x_hi = x_lo + 1.0
    if math.isclose(y_hi, y_lo):
        y_hi = y_lo + 1.0
    # a little headroom so the top curve isn't glued to the frame; never
    # invent a negative floor for all-non-negative data
    y_pad = 0.05 * (y_hi - y_lo)
    y_lo = max(0.0, y_lo - y_pad) if y_lo >= 0 else y_lo - y_pad
    y_hi += y_pad

    grid = [[" "] * width for _ in range(height)]

    def cell(x: float, y: float) -> Tuple[int, int]:
        col = round((x - x_lo) / (x_hi - x_lo) * (width - 1))
        row = round((y_hi - y) / (y_hi - y_lo) * (height - 1))
        return row, col

    for marker, (name, pts) in zip(_marker_cycle(), series.items()):
        previous = None
        for x, y in pts:
            row, col = cell(x, y)
            if previous is not None:
                _draw_segment(grid, previous, (row, col), marker)
            grid[row][col] = marker
            previous = (row, col)

    lines: List[str] = []
    if title:
        lines.append(title)
    label_width = max(len(_fmt(y_hi)), len(_fmt(y_lo)))
    for i, row in enumerate(grid):
        if i == 0:
            label = _fmt(y_hi)
        elif i == height - 1:
            label = _fmt(y_lo)
        elif i == height // 2:
            label = _fmt((y_hi + y_lo) / 2)
        else:
            label = ""
        lines.append(f"{label.rjust(label_width)} |{''.join(row)}")
    x_axis = " " * label_width + " +" + "-" * width
    lines.append(x_axis)
    left = _fmt(x_lo)
    right = _fmt(x_hi)
    gap = width - len(left) - len(right)
    lines.append(" " * (label_width + 2) + left + " " * max(1, gap) + right)
    if x_label:
        lines.append(" " * (label_width + 2)
                     + x_label.center(width))
    legend = "   ".join(f"{marker} {name}" for marker, name
                        in zip(_marker_cycle(), series))
    lines.append("")
    lines.append(legend if not y_label else f"{legend}   (y: {y_label})")
    return "\n".join(lines)


def _marker_cycle():
    while True:
        yield from MARKERS


def _draw_segment(grid, start, end, marker) -> None:
    """Light linear interpolation between consecutive points."""
    (r0, c0), (r1, c1) = start, end
    steps = max(abs(r1 - r0), abs(c1 - c0))
    if steps <= 1:
        return
    for step in range(1, steps):
        frac = step / steps
        row = round(r0 + (r1 - r0) * frac)
        col = round(c0 + (c1 - c0) * frac)
        if grid[row][col] == " ":
            grid[row][col] = "."


def _fmt(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 1000:
        return f"{value:.0f}"
    if abs(value) >= 10:
        return f"{value:.0f}"
    if abs(value) >= 1:
        return f"{value:.1f}"
    return f"{value:.2f}"


def render_timeline(spans: Sequence[Tuple[str, float, float]], *,
                    origin: float = 0.0, width: int = 64,
                    title: str = "") -> str:
    """Render (label, start, end) spans as a per-request ASCII timeline.

    One row per span, in the given order; each bar is positioned on a
    shared time axis starting at ``origin`` (typically the request's
    submit time).  Durations are annotated in microseconds so the
    sub-millisecond stages of a cache-hot request stay legible.
    """
    spans = list(spans)
    if not spans:
        raise ValueError("nothing to render")
    if width < 16:
        raise ValueError("timeline too narrow to be legible")
    t_lo = min(start for _label, start, _end in spans)
    t_hi = max(end for _label, _start, end in spans)
    t_lo = min(t_lo, origin)
    if math.isclose(t_hi, t_lo):
        t_hi = t_lo + 1e-9
    span_of = t_hi - t_lo

    def col(t: float) -> int:
        return round((t - t_lo) / span_of * (width - 1))

    label_width = max(len(label) for label, _s, _e in spans)
    lines: List[str] = []
    if title:
        lines.append(title)
    for label, start, end in spans:
        c0, c1 = col(start), col(end)
        bar = [" "] * width
        if c1 == c0:
            bar[c0] = "|"
        else:
            for c in range(c0, c1 + 1):
                bar[c] = "="
            bar[c0] = "["
            bar[c1] = "]"
        lines.append(f"{label.ljust(label_width)} {''.join(bar)} "
                     f"{(end - start) * 1e6:9.1f}us")
    axis_left = _fmt((t_lo - origin) * 1e3)
    axis_right = _fmt((t_hi - origin) * 1e3)
    gap = width - len(axis_left) - len(axis_right)
    lines.append(" " * (label_width + 1) + "-" * width)
    lines.append(" " * (label_width + 1) + axis_left
                 + " " * max(1, gap) + axis_right + "  (ms since submit)")
    return "\n".join(lines)
