"""Time-series collection for simulation metrics."""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, List, Tuple


class BucketCounter:
    """Counts events into fixed-width time buckets.

    Used to turn discrete completions into rate series (ops/sec per bucket)
    for the paper's time-axis figures (5, 6, 7).
    """

    def __init__(self, width_s: float) -> None:
        if width_s <= 0:
            raise ValueError("bucket width must be positive")
        self.width_s = width_s
        self._buckets: Dict[int, float] = {}
        self.total = 0.0

    def add(self, t: float, amount: float = 1.0) -> None:
        index = int(t // self.width_s)
        self._buckets[index] = self._buckets.get(index, 0.0) + amount
        self.total += amount

    def count_in(self, t_start: float, t_end: float) -> float:
        """Total events with bucket midpoints inside [t_start, t_end)."""
        total = 0.0
        for index, count in self._buckets.items():
            mid = (index + 0.5) * self.width_s
            if t_start <= mid < t_end:
                total += count
        return total

    def rate_series(self) -> List[Tuple[float, float]]:
        """(bucket midpoint, events per second) sorted by time."""
        return [((i + 0.5) * self.width_s, c / self.width_s)
                for i, c in sorted(self._buckets.items())]

    def rate_at(self, t: float) -> float:
        index = int(t // self.width_s)
        return self._buckets.get(index, 0.0) / self.width_s


@dataclass
class TimeSeries:
    """Explicitly sampled (t, value) pairs."""

    points: List[Tuple[float, float]] = field(default_factory=list)

    def record(self, t: float, value: float) -> None:
        if self.points and t < self.points[-1][0]:
            raise ValueError("samples must be recorded in time order")
        self.points.append((t, value))

    def __len__(self) -> int:
        return len(self.points)

    def values(self) -> List[float]:
        return [v for _t, v in self.points]

    def times(self) -> List[float]:
        return [t for t, _v in self.points]

    def value_at(self, t: float) -> float:
        """Most recent sample at or before ``t`` (0.0 before first sample)."""
        times = self.times()
        idx = bisect.bisect_right(times, t) - 1
        return self.points[idx][1] if idx >= 0 else 0.0

    def mean(self) -> float:
        vals = self.values()
        return sum(vals) / len(vals) if vals else 0.0
