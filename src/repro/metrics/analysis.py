"""Statistical helpers for interpreting simulation output."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile, ``q`` in [0, 100]."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    lo = int(math.floor(rank))
    hi = int(math.ceil(rank))
    if lo == hi:
        return ordered[lo]
    frac = rank - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample."""

    n: int
    mean: float
    std: float
    p50: float
    p95: float
    p99: float
    minimum: float
    maximum: float

    def format(self, unit: str = "", scale: float = 1.0) -> str:
        return (f"n={self.n} mean={self.mean * scale:.2f}{unit} "
                f"p50={self.p50 * scale:.2f}{unit} "
                f"p95={self.p95 * scale:.2f}{unit} "
                f"p99={self.p99 * scale:.2f}{unit} "
                f"max={self.maximum * scale:.2f}{unit}")


def summarize(values: Sequence[float]) -> Summary:
    """Summary statistics of a non-empty sample."""
    if not values:
        raise ValueError("cannot summarize an empty sample")
    n = len(values)
    mean = sum(values) / n
    variance = sum((v - mean) ** 2 for v in values) / n
    return Summary(
        n=n, mean=mean, std=math.sqrt(variance),
        p50=percentile(values, 50), p95=percentile(values, 95),
        p99=percentile(values, 99),
        minimum=min(values), maximum=max(values))


def trim_warmup(points: Sequence[Tuple[float, float]],
                warmup_s: float) -> List[Tuple[float, float]]:
    """Drop series samples from the warmup window."""
    return [(t, v) for t, v in points if t >= warmup_s]


def moving_average(points: Sequence[Tuple[float, float]],
                   window: int = 3) -> List[Tuple[float, float]]:
    """Centered moving average over a (t, v) series."""
    if window < 1:
        raise ValueError("window must be >= 1")
    if window == 1:
        return list(points)
    out: List[Tuple[float, float]] = []
    half = window // 2
    values = [v for _t, v in points]
    for i, (t, _v) in enumerate(points):
        lo = max(0, i - half)
        hi = min(len(values), i + half + 1)
        out.append((t, sum(values[lo:hi]) / (hi - lo)))
    return out


def relative_change(baseline: float, measured: float) -> float:
    """(measured - baseline) / baseline; 0 baseline with 0 measured is 0."""
    if baseline == 0:
        return 0.0 if measured == 0 else math.inf
    return (measured - baseline) / baseline
