"""Streaming latency histograms with fixed log-spaced buckets.

Per-op-type latency percentiles (p50/p95/p99) have to be available after a
run without retaining every sample: a paper-scale simulation completes
millions of requests.  :class:`LatencyHistogram` records each value in O(1)
into a fixed array of log-spaced buckets — bounded memory, deterministic,
and mergeable across nodes or runs.  Quantiles interpolate within the
matched bucket, so relative error is bounded by the bucket width
(``10**(1/buckets_per_decade)``, under 10% at the default resolution).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

_ceil = math.ceil
_log10 = math.log10


@dataclass(frozen=True)
class LatencySummary:
    """Percentile digest of one recorded distribution."""

    count: int
    mean_s: float
    p50_s: float
    p95_s: float
    p99_s: float
    min_s: float
    max_s: float

    def format(self, scale: float = 1e3, unit: str = "ms") -> str:
        return (f"n={self.count} mean={self.mean_s * scale:.3f}{unit} "
                f"p50={self.p50_s * scale:.3f}{unit} "
                f"p95={self.p95_s * scale:.3f}{unit} "
                f"p99={self.p99_s * scale:.3f}{unit}")


EMPTY_SUMMARY = LatencySummary(count=0, mean_s=0.0, p50_s=0.0, p95_s=0.0,
                               p99_s=0.0, min_s=0.0, max_s=0.0)


class LatencyHistogram:
    """Fixed-bucket log-spaced streaming histogram.

    Bucket ``i`` (1-based) covers ``(lo * r**(i-1), lo * r**i]`` with
    ``r = 10**(1/buckets_per_decade)``; bucket 0 holds underflow
    (``<= lo``), the last bucket overflow (``> hi``).  Exact ``min``,
    ``max``, ``count`` and ``sum`` are tracked on the side, so means are
    exact and quantiles are clamped to the observed range.
    """

    __slots__ = ("lo", "hi", "buckets_per_decade", "_log_lo", "_scale",
                 "_counts", "count", "total", "_min", "_max")

    def __init__(self, lo: float = 1e-6, hi: float = 100.0,
                 buckets_per_decade: int = 25) -> None:
        if lo <= 0 or hi <= lo:
            raise ValueError("need 0 < lo < hi")
        if buckets_per_decade < 1:
            raise ValueError("buckets_per_decade must be >= 1")
        self.lo = lo
        self.hi = hi
        self.buckets_per_decade = buckets_per_decade
        self._log_lo = math.log10(lo)
        self._scale = float(buckets_per_decade)
        n_interior = int(math.ceil(
            (math.log10(hi) - self._log_lo) * buckets_per_decade))
        # [underflow] + interior + [overflow]
        self._counts: List[int] = [0] * (n_interior + 2)
        self.count = 0
        self.total = 0.0
        self._min = math.inf
        self._max = -math.inf

    # -- recording ---------------------------------------------------------
    def _index(self, value: float) -> int:
        if value <= self.lo:
            return 0
        if value > self.hi:
            return len(self._counts) - 1
        idx = int(math.ceil((math.log10(value) - self._log_lo) * self._scale))
        return min(max(idx, 1), len(self._counts) - 2)

    def record(self, value: float) -> None:
        """Add one sample (negative values clamp to zero).

        ``_index`` is inlined here: this is called once per completed
        request (plus once more for the overall histogram), and the extra
        frame showed up in profiles.
        """
        if value < 0:
            value = 0.0
        counts = self._counts
        if value <= self.lo:
            idx = 0
        elif value > self.hi:
            idx = len(counts) - 1
        else:
            idx = int(_ceil((_log10(value) - self._log_lo) * self._scale))
            last_interior = len(counts) - 2
            if idx < 1:
                idx = 1
            elif idx > last_interior:
                idx = last_interior
        counts[idx] += 1
        self.count += 1
        self.total += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    # -- bucket geometry ---------------------------------------------------
    def _upper_edge(self, idx: int) -> float:
        if idx <= 0:
            return self.lo
        if idx >= len(self._counts) - 1:
            return self._max if self.count else self.hi
        return 10.0 ** (self._log_lo + idx / self._scale)

    def _lower_edge(self, idx: int) -> float:
        if idx <= 0:
            return 0.0
        return self._upper_edge(idx - 1)

    # -- queries -----------------------------------------------------------
    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def min(self) -> float:
        return self._min if self.count else 0.0

    @property
    def max(self) -> float:
        return self._max if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Value at quantile ``q`` in [0, 1], interpolated within buckets."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for idx, n in enumerate(self._counts):
            if n == 0:
                continue
            if seen + n >= rank:
                lo = self._lower_edge(idx)
                hi = self._upper_edge(idx)
                frac = (rank - seen) / n
                value = lo + (hi - lo) * frac
                return min(max(value, self._min), self._max)
            seen += n
        return self._max

    def percentile(self, p: float) -> float:
        """Value at percentile ``p`` in [0, 100]."""
        return self.quantile(p / 100.0)

    def summary(self) -> LatencySummary:
        if self.count == 0:
            return EMPTY_SUMMARY
        return LatencySummary(
            count=self.count, mean_s=self.mean,
            p50_s=self.quantile(0.50), p95_s=self.quantile(0.95),
            p99_s=self.quantile(0.99), min_s=self.min, max_s=self.max)

    # -- composition -------------------------------------------------------
    def _check_layout(self, other: "LatencyHistogram") -> None:
        if (other.lo != self.lo or other.hi != self.hi
                or other.buckets_per_decade != self.buckets_per_decade):
            raise ValueError("histogram bucket layouts differ")

    def merge(self, other: "LatencyHistogram") -> "LatencyHistogram":
        """Fold ``other``'s samples into this histogram (in place)."""
        self._check_layout(other)
        for i, n in enumerate(other._counts):
            self._counts[i] += n
        self.count += other.count
        self.total += other.total
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)
        return self

    def copy(self) -> "LatencyHistogram":
        clone = LatencyHistogram(self.lo, self.hi, self.buckets_per_decade)
        clone._counts = list(self._counts)
        clone.count = self.count
        clone.total = self.total
        clone._min = self._min
        clone._max = self._max
        return clone

    def subtract(self, baseline: Optional["LatencyHistogram"]
                 ) -> "LatencyHistogram":
        """Samples recorded since ``baseline`` (an earlier :meth:`copy`).

        Interval percentiles for a monotonically-growing histogram: the
        per-bucket difference is itself a histogram.  Exact min/max are not
        recoverable for the interval, so the result's extremes fall back to
        its bucket edges.
        """
        if baseline is None:
            return self.copy()
        self._check_layout(baseline)
        delta = LatencyHistogram(self.lo, self.hi, self.buckets_per_decade)
        lo_idx, hi_idx = None, 0
        for i in range(len(self._counts)):
            diff = self._counts[i] - baseline._counts[i]
            if diff < 0:
                raise ValueError("baseline is not a prefix of this histogram")
            delta._counts[i] = diff
            if diff:
                hi_idx = i
                if lo_idx is None:
                    lo_idx = i
        delta.count = self.count - baseline.count
        delta.total = self.total - baseline.total
        if delta.count:
            delta._min = delta._lower_edge(lo_idx)
            delta._max = min(delta._upper_edge(hi_idx), self._max)
        return delta
