"""MDS metadata cache: LRU with the hierarchical tree constraint (§4.1).

Each MDS caches a *connected* subset of the hierarchy: an inode may only be
cached while its parent directory is cached, and a directory may not be
evicted while any child is cached ("only leaf items may be expired").  The
constraint is enforced with per-entry pin counts: caching a child pins its
parent; eviction considers only unpinned entries.

Two paper-specific behaviours:

* **Mid-LRU insertion of prefetched inodes** (§4.5): entries brought in by a
  directory prefetch are placed at the cold end of the eviction order so
  speculative data cannot displace known-useful data.
* **Category accounting** (§5.3.1 / Fig. 3): the cache can report how many
  slots are devoted to prefix (ancestor) directory inodes, and how many hold
  replicas of metadata another MDS is authoritative for.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional


@dataclass
class CacheEntry:
    """One cached inode."""

    ino: int
    parent_ino: Optional[int]  # None only for the root
    is_dir: bool
    replica: bool = False      # cached copy of another MDS's metadata
    pin_count: int = 0         # cached children pinning this entry
    external_pins: int = 0     # delegation anchors, in-flight operations
    dirty: bool = False

    @property
    def pinned(self) -> bool:
        return self.pin_count > 0 or self.external_pins > 0

    @property
    def is_prefix(self) -> bool:
        """A directory held (at least in part) to anchor cached descendants."""
        return self.is_dir and self.pinned


@dataclass
class CacheCounters:
    """Monotonic cache activity counters."""

    insertions: int = 0
    evictions: int = 0
    prefetch_insertions: int = 0


class MetadataCache:
    """Bounded inode cache with leaf-only eviction.

    ``capacity`` is in inode slots — metadata records are near-uniform in
    size, so slot-counting matches the paper's "cache size relative to total
    metadata size" axis directly.

    If every entry is pinned the cache temporarily overflows rather than
    deadlocking; pressure resolves as pins are released.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.counters = CacheCounters()
        self._entries: Dict[int, CacheEntry] = {}
        #: eviction order over *unpinned* entries; first key = coldest.
        self._lru: "OrderedDict[int, None]" = OrderedDict()

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, ino: int) -> bool:
        return ino in self._entries

    def get(self, ino: int, *, touch: bool = True) -> Optional[CacheEntry]:
        """Entry for ``ino``, refreshing its recency unless ``touch=False``."""
        entry = self._entries.get(ino)
        if entry is not None and touch and ino in self._lru:
            self._lru.move_to_end(ino)
        return entry

    def entries(self) -> Iterator[CacheEntry]:
        return iter(self._entries.values())

    @property
    def overflowed(self) -> bool:
        return len(self._entries) > self.capacity

    # -- accounting (Fig. 3) ------------------------------------------------
    def slot_census(self) -> Dict[str, int]:
        """Occupancy by category: local/replica × prefix/leaf."""
        census = {"local_prefix": 0, "local_other": 0,
                  "replica_prefix": 0, "replica_other": 0}
        for entry in self._entries.values():
            kind = "replica" if entry.replica else "local"
            part = "prefix" if entry.is_prefix else "other"
            census[f"{kind}_{part}"] += 1
        return census

    def prefix_fraction(self) -> float:
        """Fraction of occupied slots holding prefix (ancestor) inodes."""
        if not self._entries:
            return 0.0
        prefixes = sum(1 for e in self._entries.values() if e.is_prefix)
        return prefixes / len(self._entries)

    def replica_fraction(self) -> float:
        """Fraction of occupied slots holding replicated metadata."""
        if not self._entries:
            return 0.0
        replicas = sum(1 for e in self._entries.values() if e.replica)
        return replicas / len(self._entries)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def insert(self, ino: int, parent_ino: Optional[int], is_dir: bool, *,
               replica: bool = False,
               prefetched: bool = False) -> List[CacheEntry]:
        """Cache ``ino``; returns the entries evicted to make room.

        The parent must already be cached (insert prefixes root-first); it
        gets pinned by this child.  Re-inserting an existing ino refreshes
        recency and downgrades ``replica`` status if the new insert is
        authoritative (an MDS can become the authority for metadata it
        already replicates, never the other way around implicitly).
        """
        existing = self._entries.get(ino)
        if existing is not None:
            if not replica:
                existing.replica = False
            if ino in self._lru and not prefetched:
                self._lru.move_to_end(ino)
            return []

        if parent_ino is not None:
            parent = self._entries.get(parent_ino)
            if parent is None:
                raise KeyError(
                    f"cannot cache ino {ino}: parent {parent_ino} not cached"
                    " (hierarchical constraint)")
            self._pin_internal(parent)

        entry = CacheEntry(ino=ino, parent_ino=parent_ino, is_dir=is_dir,
                           replica=replica)
        self._entries[ino] = entry
        self._lru[ino] = None
        if prefetched:
            # Cold-end insertion: first in line for eviction.
            self._lru.move_to_end(ino, last=False)
            self.counters.prefetch_insertions += 1
        self.counters.insertions += 1

        return self._shrink(exclude=ino)

    def pin(self, ino: int) -> None:
        """Add an external pin (delegation anchor / in-flight op)."""
        entry = self._entries[ino]
        entry.external_pins += 1
        if entry.external_pins == 1 and entry.pin_count == 0:
            self._lru.pop(ino, None)

    def unpin(self, ino: int) -> List[CacheEntry]:
        """Release an external pin.

        If the cache had overflowed while everything was pinned, releasing a
        pin resolves the pressure immediately; the evicted entries are
        returned so the caller can send any replica-drop notices.
        """
        entry = self._entries[ino]
        if entry.external_pins <= 0:
            raise RuntimeError(f"unpin without pin for ino {ino}")
        entry.external_pins -= 1
        if not entry.pinned:
            self._make_evictable(entry, cold=False)
        return self._shrink()

    def remove(self, ino: int) -> CacheEntry:
        """Forcibly drop an unpinned entry (migration / invalidation)."""
        entry = self._entries.get(ino)
        if entry is None:
            raise KeyError(f"ino {ino} not cached")
        if entry.pin_count > 0:
            raise RuntimeError(
                f"cannot remove ino {ino}: {entry.pin_count} cached children")
        if entry.external_pins > 0:
            raise RuntimeError(
                f"cannot remove ino {ino}: {entry.external_pins} external "
                "pins (open handles / delegation anchors)")
        del self._entries[ino]
        self._lru.pop(ino, None)
        self._unpin_parent(entry)
        return entry

    def collect_subtree(self, root_ino: int) -> List[CacheEntry]:
        """Cached entries at/under ``root_ino``, deepest first.

        Depth ordering means callers can remove them in sequence without
        violating the pin constraint.  Walks the *cached* parent pointers, so
        the result is exactly the cached fragment of the subtree.
        """
        if root_ino not in self._entries:
            return []
        members: List[tuple[int, CacheEntry]] = []
        for entry in self._entries.values():
            depth = 0
            node: Optional[CacheEntry] = entry
            found = entry.ino == root_ino
            while not found and node is not None and node.parent_ino is not None:
                node = self._entries.get(node.parent_ino)
                depth += 1
                if node is not None and node.ino == root_ino:
                    found = True
            if found:
                members.append((depth, entry))
        members.sort(key=lambda pair: -pair[0])
        return [entry for _depth, entry in members]

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _pin_internal(self, parent: CacheEntry) -> None:
        parent.pin_count += 1
        if parent.pin_count == 1 and parent.external_pins == 0:
            self._lru.pop(parent.ino, None)

    def _unpin_parent(self, child: CacheEntry) -> None:
        if child.parent_ino is None:
            return
        parent = self._entries.get(child.parent_ino)
        if parent is None:
            return
        parent.pin_count -= 1
        if not parent.pinned:
            # A directory whose last cached child left is cold: put it at
            # the eviction end so chains drain bottom-up.
            self._make_evictable(parent, cold=True)

    def _make_evictable(self, entry: CacheEntry, *, cold: bool) -> None:
        self._lru[entry.ino] = None
        if cold:
            self._lru.move_to_end(entry.ino, last=False)

    def _shrink(self, exclude: Optional[int] = None) -> List[CacheEntry]:
        """Evict until within capacity (or nothing evictable remains)."""
        evicted: List[CacheEntry] = []
        while len(self._entries) > self.capacity:
            victim = self._evict_one(exclude=exclude)
            if victim is None:
                break  # everything pinned: tolerate overflow
            evicted.append(victim)
        return evicted

    def _evict_one(self, exclude: Optional[int] = None) -> Optional[CacheEntry]:
        for ino in self._lru:
            if ino != exclude:
                victim = self._entries.pop(ino)
                del self._lru[ino]
                self._unpin_parent(victim)
                self.counters.evictions += 1
                return victim
        return None

    # ------------------------------------------------------------------
    # invariants (for property-based tests)
    # ------------------------------------------------------------------
    def verify_invariants(self) -> None:
        """Raise ``AssertionError`` on internal inconsistency."""
        pin_counts: Dict[int, int] = {}
        for entry in self._entries.values():
            if entry.parent_ino is not None:
                assert entry.parent_ino in self._entries, (
                    f"ino {entry.ino}: parent {entry.parent_ino} not cached")
                pin_counts[entry.parent_ino] = (
                    pin_counts.get(entry.parent_ino, 0) + 1)
        for entry in self._entries.values():
            assert entry.pin_count == pin_counts.get(entry.ino, 0), (
                f"ino {entry.ino}: pin_count {entry.pin_count} != "
                f"{pin_counts.get(entry.ino, 0)} cached children")
            in_lru = entry.ino in self._lru
            assert in_lru == (not entry.pinned), (
                f"ino {entry.ino}: pinned={entry.pinned} but in_lru={in_lru}")
