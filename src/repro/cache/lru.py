"""MDS metadata cache: LRU with the hierarchical tree constraint (§4.1).

Each MDS caches a *connected* subset of the hierarchy: an inode may only be
cached while its parent directory is cached, and a directory may not be
evicted while any child is cached ("only leaf items may be expired").  The
constraint is enforced with per-entry pin counts: caching a child pins its
parent; eviction considers only unpinned entries.

Two paper-specific behaviours:

* **Mid-LRU insertion of prefetched inodes** (§4.5): entries brought in by a
  directory prefetch are placed at the cold end of the eviction order so
  speculative data cannot displace known-useful data.
* **Category accounting** (§5.3.1 / Fig. 3): the cache can report how many
  slots are devoted to prefix (ancestor) directory inodes, and how many hold
  replicas of metadata another MDS is authoritative for.

The eviction order is an *intrusive* doubly-linked list threaded through the
entries themselves (``lru_prev``/``lru_next``): touch, cold-end insertion
and mid-list unlink are pointer swaps with no dict churn, which matters
because every single request serves several cache touches.  List order is
identical to the previous ``OrderedDict`` implementation: head = coldest
(evicted first), tail = hottest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional


@dataclass(slots=True)
class CacheEntry:
    """One cached inode; doubles as its own LRU-list link."""

    ino: int
    parent_ino: Optional[int]  # None only for the root
    is_dir: bool
    replica: bool = False      # cached copy of another MDS's metadata
    pin_count: int = 0         # cached children pinning this entry
    external_pins: int = 0     # delegation anchors, in-flight operations
    dirty: bool = False
    #: intrusive eviction-order links; ``None``-``None`` while pinned
    #: (pinned entries leave the eviction list entirely)
    lru_prev: Optional["CacheEntry"] = field(
        default=None, repr=False, compare=False)
    lru_next: Optional["CacheEntry"] = field(
        default=None, repr=False, compare=False)
    in_lru: bool = field(default=False, repr=False, compare=False)

    @property
    def pinned(self) -> bool:
        return self.pin_count > 0 or self.external_pins > 0

    @property
    def is_prefix(self) -> bool:
        """A directory held (at least in part) to anchor cached descendants."""
        return self.is_dir and self.pinned


@dataclass
class CacheCounters:
    """Monotonic cache activity counters."""

    insertions: int = 0
    evictions: int = 0
    prefetch_insertions: int = 0


class MetadataCache:
    """Bounded inode cache with leaf-only eviction.

    ``capacity`` is in inode slots — metadata records are near-uniform in
    size, so slot-counting matches the paper's "cache size relative to total
    metadata size" axis directly.

    If every entry is pinned the cache temporarily overflows rather than
    deadlocking; pressure resolves as pins are released.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.counters = CacheCounters()
        self._entries: Dict[int, CacheEntry] = {}
        # Eviction order over *unpinned* entries, threaded through the
        # entries: sentinel head/tail, head side = coldest.
        self._head = CacheEntry(ino=-1, parent_ino=None, is_dir=False)
        self._tail = CacheEntry(ino=-2, parent_ino=None, is_dir=False)
        self._head.lru_next = self._tail
        self._tail.lru_prev = self._head

    # ------------------------------------------------------------------
    # intrusive-list primitives
    # ------------------------------------------------------------------
    def _lru_unlink(self, entry: CacheEntry) -> None:
        prev, nxt = entry.lru_prev, entry.lru_next
        prev.lru_next = nxt  # type: ignore[union-attr]
        nxt.lru_prev = prev  # type: ignore[union-attr]
        entry.lru_prev = entry.lru_next = None
        entry.in_lru = False

    def _lru_append_hot(self, entry: CacheEntry) -> None:
        tail = self._tail
        prev = tail.lru_prev
        entry.lru_prev = prev
        entry.lru_next = tail
        prev.lru_next = entry  # type: ignore[union-attr]
        tail.lru_prev = entry
        entry.in_lru = True

    def _lru_append_cold(self, entry: CacheEntry) -> None:
        head = self._head
        nxt = head.lru_next
        entry.lru_prev = head
        entry.lru_next = nxt
        head.lru_next = entry
        nxt.lru_prev = entry  # type: ignore[union-attr]
        entry.in_lru = True

    def _lru_touch(self, entry: CacheEntry) -> None:
        """Move an in-list entry to the hot end (two pointer splices)."""
        if entry.lru_next is self._tail:
            return  # already hottest
        self._lru_unlink(entry)
        self._lru_append_hot(entry)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, ino: int) -> bool:
        return ino in self._entries

    def get(self, ino: int, *, touch: bool = True) -> Optional[CacheEntry]:
        """Entry for ``ino``, refreshing its recency unless ``touch=False``."""
        entry = self._entries.get(ino)
        if entry is not None and touch and entry.in_lru:
            self._lru_touch(entry)
        return entry

    def entries(self) -> Iterator[CacheEntry]:
        return iter(self._entries.values())

    @property
    def overflowed(self) -> bool:
        return len(self._entries) > self.capacity

    # -- accounting (Fig. 3) ------------------------------------------------
    def slot_census(self) -> Dict[str, int]:
        """Occupancy by category: local/replica × prefix/leaf."""
        census = {"local_prefix": 0, "local_other": 0,
                  "replica_prefix": 0, "replica_other": 0}
        for entry in self._entries.values():
            kind = "replica" if entry.replica else "local"
            part = "prefix" if entry.is_prefix else "other"
            census[f"{kind}_{part}"] += 1
        return census

    def prefix_fraction(self) -> float:
        """Fraction of occupied slots holding prefix (ancestor) inodes."""
        if not self._entries:
            return 0.0
        prefixes = sum(1 for e in self._entries.values() if e.is_prefix)
        return prefixes / len(self._entries)

    def replica_fraction(self) -> float:
        """Fraction of occupied slots holding replicated metadata."""
        if not self._entries:
            return 0.0
        replicas = sum(1 for e in self._entries.values() if e.replica)
        return replicas / len(self._entries)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def insert(self, ino: int, parent_ino: Optional[int], is_dir: bool, *,
               replica: bool = False,
               prefetched: bool = False) -> List[CacheEntry]:
        """Cache ``ino``; returns the entries evicted to make room.

        The parent must already be cached (insert prefixes root-first); it
        gets pinned by this child.  Re-inserting an existing ino refreshes
        recency and downgrades ``replica`` status if the new insert is
        authoritative (an MDS can become the authority for metadata it
        already replicates, never the other way around implicitly).
        """
        existing = self._entries.get(ino)
        if existing is not None:
            if not replica:
                existing.replica = False
            if existing.in_lru and not prefetched:
                self._lru_touch(existing)
            return []

        if parent_ino is not None:
            parent = self._entries.get(parent_ino)
            if parent is None:
                raise KeyError(
                    f"cannot cache ino {ino}: parent {parent_ino} not cached"
                    " (hierarchical constraint)")
            self._pin_internal(parent)

        entry = CacheEntry(ino=ino, parent_ino=parent_ino, is_dir=is_dir,
                           replica=replica)
        self._entries[ino] = entry
        if prefetched:
            # Cold-end insertion: first in line for eviction (§4.5).
            self._lru_append_cold(entry)
            self.counters.prefetch_insertions += 1
        else:
            self._lru_append_hot(entry)
        self.counters.insertions += 1

        return self._shrink(exclude=ino)

    def pin(self, ino: int) -> None:
        """Add an external pin (delegation anchor / in-flight op)."""
        entry = self._entries[ino]
        entry.external_pins += 1
        if entry.in_lru:
            self._lru_unlink(entry)

    def unpin(self, ino: int) -> List[CacheEntry]:
        """Release an external pin.

        If the cache had overflowed while everything was pinned, releasing a
        pin resolves the pressure immediately; the evicted entries are
        returned so the caller can send any replica-drop notices.
        """
        entry = self._entries[ino]
        if entry.external_pins <= 0:
            raise RuntimeError(f"unpin without pin for ino {ino}")
        entry.external_pins -= 1
        if not entry.pinned:
            self._make_evictable(entry, cold=False)
        return self._shrink()

    def remove(self, ino: int) -> CacheEntry:
        """Forcibly drop an unpinned entry (migration / invalidation)."""
        entry = self._entries.get(ino)
        if entry is None:
            raise KeyError(f"ino {ino} not cached")
        if entry.pin_count > 0:
            raise RuntimeError(
                f"cannot remove ino {ino}: {entry.pin_count} cached children")
        if entry.external_pins > 0:
            raise RuntimeError(
                f"cannot remove ino {ino}: {entry.external_pins} external "
                "pins (open handles / delegation anchors)")
        del self._entries[ino]
        if entry.in_lru:
            self._lru_unlink(entry)
        self._unpin_parent(entry)
        return entry

    def collect_subtree(self, root_ino: int) -> List[CacheEntry]:
        """Cached entries at/under ``root_ino``, deepest first.

        Depth ordering means callers can remove them in sequence without
        violating the pin constraint.  Walks the *cached* parent pointers, so
        the result is exactly the cached fragment of the subtree.
        """
        if root_ino not in self._entries:
            return []
        members: List[tuple[int, CacheEntry]] = []
        for entry in self._entries.values():
            depth = 0
            node: Optional[CacheEntry] = entry
            found = entry.ino == root_ino
            while not found and node is not None and node.parent_ino is not None:
                node = self._entries.get(node.parent_ino)
                depth += 1
                if node is not None and node.ino == root_ino:
                    found = True
            if found:
                members.append((depth, entry))
        members.sort(key=lambda pair: -pair[0])
        return [entry for _depth, entry in members]

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _pin_internal(self, parent: CacheEntry) -> None:
        parent.pin_count += 1
        if parent.in_lru:
            self._lru_unlink(parent)

    def _unpin_parent(self, child: CacheEntry) -> None:
        if child.parent_ino is None:
            return
        parent = self._entries.get(child.parent_ino)
        if parent is None:
            return
        parent.pin_count -= 1
        if not parent.pinned:
            # A directory whose last cached child left is cold: put it at
            # the eviction end so chains drain bottom-up.
            self._make_evictable(parent, cold=True)

    def _make_evictable(self, entry: CacheEntry, *, cold: bool) -> None:
        if entry.in_lru:
            self._lru_unlink(entry)
        if cold:
            self._lru_append_cold(entry)
        else:
            self._lru_append_hot(entry)

    def _shrink(self, exclude: Optional[int] = None) -> List[CacheEntry]:
        """Evict until within capacity (or nothing evictable remains)."""
        evicted: List[CacheEntry] = []
        while len(self._entries) > self.capacity:
            victim = self._evict_one(exclude=exclude)
            if victim is None:
                break  # everything pinned: tolerate overflow
            evicted.append(victim)
        return evicted

    def _evict_one(self, exclude: Optional[int] = None) -> Optional[CacheEntry]:
        victim = self._head.lru_next
        while victim is not self._tail:
            if victim.ino != exclude:  # type: ignore[union-attr]
                assert victim is not None
                del self._entries[victim.ino]
                self._lru_unlink(victim)
                self._unpin_parent(victim)
                self.counters.evictions += 1
                return victim
            victim = victim.lru_next  # type: ignore[union-attr]
        return None

    # ------------------------------------------------------------------
    # invariants (for property-based tests)
    # ------------------------------------------------------------------
    def _lru_order(self) -> List[int]:
        """Eviction order, coldest first (tests/introspection only)."""
        order: List[int] = []
        node = self._head.lru_next
        while node is not self._tail:
            assert node is not None
            order.append(node.ino)
            node = node.lru_next
        return order

    def verify_invariants(self) -> None:
        """Raise ``AssertionError`` on internal inconsistency."""
        pin_counts: Dict[int, int] = {}
        for entry in self._entries.values():
            if entry.parent_ino is not None:
                assert entry.parent_ino in self._entries, (
                    f"ino {entry.ino}: parent {entry.parent_ino} not cached")
                pin_counts[entry.parent_ino] = (
                    pin_counts.get(entry.parent_ino, 0) + 1)
        for entry in self._entries.values():
            assert entry.pin_count == pin_counts.get(entry.ino, 0), (
                f"ino {entry.ino}: pin_count {entry.pin_count} != "
                f"{pin_counts.get(entry.ino, 0)} cached children")
            assert entry.in_lru == (not entry.pinned), (
                f"ino {entry.ino}: pinned={entry.pinned} but "
                f"in_lru={entry.in_lru}")
        # the intrusive list is consistent both ways and holds exactly the
        # unpinned entries
        forward: List[int] = []
        node = self._head.lru_next
        prev = self._head
        while node is not self._tail:
            assert node is not None and node.lru_prev is prev, (
                f"broken back-link at ino {node.ino if node else '?'}")
            assert node.in_lru, f"listed entry {node.ino} not flagged in_lru"
            assert node.ino in self._entries, (
                f"listed entry {node.ino} not cached")
            forward.append(node.ino)
            prev, node = node, node.lru_next
        assert self._tail.lru_prev is prev, "broken tail back-link"
        unpinned = {e.ino for e in self._entries.values() if not e.pinned}
        assert set(forward) == unpinned, (
            f"LRU list {set(forward)} != unpinned entries {unpinned}")
        assert len(forward) == len(unpinned), "duplicate entries in LRU list"
