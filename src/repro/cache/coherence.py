"""Authority-side replica tracking for collaborative caching (§4.2).

The authoritative MDS for a piece of metadata must know which peers hold
replicas so it can (a) push invalidations/updates when the record changes
and (b) free its own copy only once no replica remains outstanding.  This
module is the bookkeeping only; the message costs live in the MDS layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Set


@dataclass
class ReplicaRegistry:
    """Tracks, per inode, which MDS nodes hold replicas."""

    _holders: Dict[int, Set[int]] = field(default_factory=dict)

    def register(self, ino: int, mds_id: int) -> None:
        """Record that ``mds_id`` now replicates ``ino``."""
        self._holders.setdefault(ino, set()).add(mds_id)

    def unregister(self, ino: int, mds_id: int) -> None:
        """Record that ``mds_id`` dropped its replica of ``ino``.

        Idempotent: peers may notify after a local eviction the authority
        already learned about through another path.
        """
        holders = self._holders.get(ino)
        if holders is None:
            return
        holders.discard(mds_id)
        if not holders:
            del self._holders[ino]

    def holders(self, ino: int) -> FrozenSet[int]:
        """Current replica holders of ``ino`` (possibly empty)."""
        return frozenset(self._holders.get(ino, ()))

    def is_replicated(self, ino: int) -> bool:
        return bool(self._holders.get(ino))

    def drop_ino(self, ino: int) -> FrozenSet[int]:
        """Forget all holders of ``ino`` (authority migrating it away)."""
        return frozenset(self._holders.pop(ino, ()))

    def replicated_inos(self) -> FrozenSet[int]:
        return frozenset(self._holders)

    def drop_all(self) -> None:
        """Forget everything (node failure loses volatile state)."""
        self._holders.clear()

    def __len__(self) -> int:
        return len(self._holders)
