"""MDS cache substrate (S4 in DESIGN.md).

:class:`MetadataCache` — LRU with the hierarchical leaf-only-eviction
constraint of §4.1, mid-LRU prefetch insertion of §4.5, and the slot census
behind Fig. 3.  :class:`ReplicaRegistry` — authority-side replica tracking
for the collaborative caching protocol of §4.2.
"""

from .coherence import ReplicaRegistry
from .lru import CacheCounters, CacheEntry, MetadataCache

__all__ = [
    "CacheCounters",
    "CacheEntry",
    "MetadataCache",
    "ReplicaRegistry",
]
