"""repro — reproduction of "Dynamic Metadata Management for Petabyte-Scale
File Systems" (Weil, Pollack, Brandt, Miller — SC 2004).

A deterministic discrete-event simulation of a metadata server (MDS)
cluster for an object-based storage system, implementing the paper's
dynamic subtree partitioning and the four competing metadata distribution
strategies it evaluates, plus every substrate the study depends on:

* :mod:`repro.sim`        — the discrete-event kernel
* :mod:`repro.namespace`  — the file-system hierarchy (embedded inodes,
  hard-link anchor table, permissions, snapshot generator)
* :mod:`repro.storage`    — journal + object-store tiers, COW B-tree
  directory objects with snapshots
* :mod:`repro.cache`      — hierarchical LRU and replica registry
* :mod:`repro.partition`  — the five partitioning strategies
* :mod:`repro.mds`        — MDS nodes/cluster: serving, traversal,
  traffic control, load balancing, migration, dirfrag, failover
* :mod:`repro.clients`    — client population and workload generators
* :mod:`repro.placement`  — client-recalculable file->object->OSD layout
* :mod:`repro.trace`      — workload trace record/replay
* :mod:`repro.metrics`    — counters, series, statistics, text tables
* :mod:`repro.experiments` — configs and drivers for Figures 2-7

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

__version__ = "0.1.0"

__all__ = ["__version__"]
