"""General-purpose workload (§5.2).

Clients behave like the paper's generated general-purpose clients: each
works inside a home subtree (the snapshot is "a large collection of home
directories"), operates mostly on its current directory with occasional
moves — the Floyd/Ellis directory-locality pattern [6] — and sometimes
touches the shared ``/usr`` software tree.  Op frequencies come from an
:class:`~repro.clients.opmix.OpMix` approximating Roselli et al. [19].
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..mds import MdsRequest, OpType
from ..namespace import Namespace
from ..namespace import path as pathmod
from ..namespace.path import Path
from .client import Client
from .opmix import GENERAL_MIX, OpMix


@dataclass
class GeneralWorkloadSpec:
    """Knobs of the general-purpose client behaviour."""

    think_time_s: float = 0.05
    move_dir_prob: float = 0.15     # chance to change cwd before an op
    shared_tree_prob: float = 0.05  # chance an op targets /usr instead
    dir_chmod_fraction: float = 0.10  # fraction of chmods aimed at dirs
    mkdir_fraction: float = 0.05    # fraction of creates that make dirs
    max_open_files: int = 6        # per-client fd-table bound: when full,
                                   # the oldest handle is closed before a
                                   # new open (opens never leak)
    op_weights: Dict[OpType, float] = field(
        default_factory=lambda: dict(GENERAL_MIX))


class GeneralWorkload:
    """Shared workload object; per-client state lives in ``client.scratch``."""

    def __init__(self, ns: Namespace, user_roots: List[Path],
                 spec: GeneralWorkloadSpec = GeneralWorkloadSpec(),
                 shared_roots: Optional[List[Path]] = None) -> None:
        if not user_roots:
            raise ValueError("need at least one user root")
        self.ns = ns
        self.user_roots = user_roots
        self.spec = spec
        self.mix = OpMix(spec.op_weights)
        self.shared_roots = shared_roots if shared_roots is not None else \
            self._discover_shared_roots()

    def _discover_shared_roots(self) -> List[Path]:
        usr = self.ns.try_resolve(("usr",))
        if usr is None:
            return []
        return [("usr", name) for name in usr.children]  # type: ignore[union-attr]

    # ------------------------------------------------------------------
    # Workload protocol
    # ------------------------------------------------------------------
    def next_delay(self, client: Client) -> float:
        return client.rng.expovariate(1.0 / self.spec.think_time_s)

    def next_op(self, client: Client) -> Optional[MdsRequest]:
        state = self._state(client)
        rng = client.rng
        # "readdir followed by many stats" is one of the two dominant
        # metadata sequences (§2.2): drain a pending stat burst first
        pending = state.get("pending_stats")
        if pending:
            return client.make_request(OpType.STAT, pending.pop())
        if rng.random() < self.spec.move_dir_prob:
            self._move_cwd(state, rng)
        cwd = self._valid_cwd(state)
        if (self.shared_roots
                and rng.random() < self.spec.shared_tree_prob):
            return self._shared_tree_op(rng, client)
        op = self.mix.sample(rng)
        return self._build(op, cwd, state, client)

    # ------------------------------------------------------------------
    # per-client state
    # ------------------------------------------------------------------
    def _state(self, client: Client) -> dict:
        state = client.scratch.get("general")
        if state is None:
            home = self.home_for(client)
            state = {"home": home, "cwd": home, "created": 0}
            client.scratch["general"] = state
        return state

    def home_for(self, client: Client) -> Path:
        return self.user_roots[client.client_id % len(self.user_roots)]

    def _valid_cwd(self, state: dict) -> Path:
        node = self.ns.try_resolve(state["cwd"])
        if node is None or not node.is_dir:
            state["cwd"] = state["home"]  # cwd vanished under us
        return state["cwd"]

    def _move_cwd(self, state: dict, rng: random.Random) -> None:
        cwd = self._valid_cwd(state)
        node = self.ns.try_resolve(cwd)
        if node is None:
            return
        subdirs = self.ns.subdir_names(node)
        roll = rng.random()
        if roll < 0.5 and subdirs:
            state["cwd"] = pathmod.join(cwd, rng.choice(subdirs))
        elif roll < 0.8 and len(cwd) > len(state["home"]):
            state["cwd"] = pathmod.parent(cwd)
        else:
            state["cwd"] = self._random_dir_under(state["home"], rng)

    def _random_dir_under(self, root: Path, rng: random.Random) -> Path:
        """Random descent: pick a directory somewhere under ``root``."""
        current = root
        for _ in range(8):
            node = self.ns.try_resolve(current)
            if node is None or not node.is_dir:
                return root
            subdirs = self.ns.subdir_names(node)
            if not subdirs or rng.random() < 0.4:
                return current
            current = pathmod.join(current, rng.choice(subdirs))
        return current

    # ------------------------------------------------------------------
    # operation construction
    # ------------------------------------------------------------------
    def _build(self, op: OpType, cwd: Path, state: dict,
               client: Client) -> Optional[MdsRequest]:
        rng = client.rng
        if op is OpType.READDIR:
            # queue the follow-up stat burst over the listed entries
            node = self.ns.try_resolve(cwd)
            if node is not None and node.is_dir and node.children:
                names = list(node.children)
                count = min(len(names), rng.randint(3, 10))
                picked = rng.sample(names, count)
                state["pending_stats"] = [pathmod.join(cwd, n)
                                          for n in picked]
            return client.make_request(op, cwd, dir_hint=True)
        if op is OpType.CLOSE:
            request = self._close_oldest(state, client)
            if request is not None:
                return request
            op = OpType.STAT  # nothing open: degrade to a stat
        if op in (OpType.CREATE, OpType.MKDIR):
            state["created"] += 1
            name = f"c{client.client_id}_{state['created']}"
            make_dir = rng.random() < self.spec.mkdir_fraction
            return client.make_request(
                OpType.MKDIR if make_dir else OpType.CREATE,
                pathmod.join(cwd, name + ("" if make_dir else ".dat")),
                size=None if make_dir else rng.randrange(1, 1 << 20))
        if op is OpType.CHMOD and rng.random() < self.spec.dir_chmod_fraction:
            mode = rng.choice([0o755, 0o750, 0o700])
            return client.make_request(op, cwd, mode=mode, dir_hint=True)

        target = self._pick_file(cwd, rng)
        if target is None:
            # empty directory: create something instead
            return self._build(OpType.CREATE, cwd, state, client)
        if op is OpType.RENAME:
            state["created"] += 1
            dst = pathmod.join(cwd, f"r{client.client_id}_{state['created']}")
            return client.make_request(op, target, dst_path=dst)
        if op is OpType.LINK:
            state["created"] += 1
            dst = pathmod.join(cwd, f"l{client.client_id}_{state['created']}")
            return client.make_request(op, target, dst_path=dst)
        if op is OpType.CHMOD:
            mode = rng.choice([0o644, 0o640, 0o600])
            return client.make_request(op, target, mode=mode)
        if op is OpType.SETATTR:
            return client.make_request(op, target,
                                       size=rng.randrange(1, 1 << 20))
        if op is OpType.OPEN:
            # bounded fd table: close the oldest handle when full
            stack = state.setdefault("open_stack", [])
            if len(stack) >= self.spec.max_open_files:
                return self._close_oldest(state, client)
            stack.append(target)
        return client.make_request(op, target)

    def _close_oldest(self, state: dict,
                      client: Client) -> Optional[MdsRequest]:
        """A CLOSE for the client's oldest tracked open handle."""
        stack = state.get("open_stack")
        if not stack:
            return None
        path = stack.pop(0)
        ino = (client.last_opened_ino
               if path == client.last_opened else None)
        return client.make_request(OpType.CLOSE, path, ino=ino)

    def _pick_file(self, cwd: Path, rng: random.Random) -> Optional[Path]:
        node = self.ns.try_resolve(cwd)
        if node is None or not node.is_dir or not node.children:
            return None
        files = self.ns.file_names(node)
        if not files:
            return None
        return pathmod.join(cwd, rng.choice(files))

    def _shared_tree_op(self, rng: random.Random,
                        client: Client) -> Optional[MdsRequest]:
        root = rng.choice(self.shared_roots)
        target = self._pick_file(root, rng)
        if target is None:
            return None
        op = OpType.OPEN if rng.random() < 0.7 else OpType.STAT
        return client.make_request(op, target)
