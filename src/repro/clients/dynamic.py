"""Workload that shifts mid-run (Fig. 5/6 scenario, §5.3.2).

A general-purpose population in which, at ``shift_time_s``, a fraction of
the clients "change their local region of activity and create new files in
portions of the hierarchy served by a single MDS".  Migrated clients move
their home to the victim subtree and switch to a create-heavy op mix; a
static subtree partition saturates the victim's MDS while the dynamic
partition re-delegates and recovers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..mds import MdsRequest, OpType
from ..namespace import Namespace
from ..namespace.path import Path
from .client import Client
from .general import GeneralWorkload, GeneralWorkloadSpec
from .opmix import OpMix


#: post-shift mix: migrated clients mostly create new files and revisit
#: their own recent creations (§5.3.2)
SHIFTED_MIX: Dict[OpType, float] = {
    OpType.CREATE: 0.35,
    OpType.OPEN: 0.20,
    OpType.CLOSE: 0.10,
    OpType.STAT: 0.15,
    OpType.SETATTR: 0.15,
    OpType.READDIR: 0.05,
}


@dataclass
class ShiftSpec:
    """When and how the workload shifts.

    ``victim_roots`` is the "new portion of the hierarchy served by a
    single MDS" (§5.3.2): typically every user subtree one MDS is initially
    authoritative for, so a static partition concentrates all migrated
    clients on that node while a dynamic partition can re-delegate the
    trees individually.
    """

    shift_time_s: float = 10.0
    migrate_fraction: float = 0.5
    victim_roots: Optional[List[Path]] = None  # default: first user root


class ShiftingWorkload(GeneralWorkload):
    """General workload whose clients partially migrate at a set time."""

    def __init__(self, ns: Namespace, user_roots: List[Path],
                 shift: ShiftSpec = ShiftSpec(),
                 spec: GeneralWorkloadSpec = GeneralWorkloadSpec()) -> None:
        super().__init__(ns, user_roots, spec)
        self.shift = shift
        self.victim_roots = shift.victim_roots or [user_roots[0]]
        self._shifted_mix = OpMix(dict(SHIFTED_MIX))

    def will_migrate(self, client: Client) -> bool:
        """Deterministic per-client choice of who migrates."""
        scrambled = (client.client_id * 2654435761) % (1 << 32)
        return scrambled / (1 << 32) < self.shift.migrate_fraction

    def next_op(self, client: Client) -> Optional[MdsRequest]:
        state = self._state(client)
        now = client.env.now
        if (now >= self.shift.shift_time_s and self.will_migrate(client)
                and not state.get("migrated")):
            state["migrated"] = True
            new_home = self.victim_roots[
                client.client_id % len(self.victim_roots)]
            state["home"] = new_home
            state["cwd"] = new_home
        if state.get("migrated"):
            return self._migrated_op(client, state)
        return super().next_op(client)

    def _migrated_op(self, client: Client,
                     state: dict) -> Optional[MdsRequest]:
        """Post-shift behaviour: create new files, revisit own creations.

        §5.3.2's migrated clients "create new files" in the victim region.
        Each first makes itself a working directory there and then fills
        it, so its active set is the files it is writing — the hot node's
        bottleneck is request volume (CPU/journal/queues), not old-data
        cache capacity, and re-delegating the victim's subtrees genuinely
        relieves it.
        """
        from ..namespace import path as pathmod

        rng = client.rng
        if "mig_dir" not in state:
            # first migrated op: carve out a private working directory
            state["mig_dir"] = pathmod.join(
                state["home"], f"mig{client.client_id}")
            return MdsRequest(op=OpType.MKDIR, path=state["mig_dir"],
                              client_id=client.client_id, dir_hint=True)
        # Exploration of the (to this client, unknown) victim region: these
        # requests are misdirected until the client learns the partition —
        # the forwarding spike of Fig. 6 — and go stale again when the
        # dynamic balancer migrates the trees.
        if rng.random() < 0.3:
            some_dir = self._random_dir_under(state["home"], rng)
            target = self._pick_file(some_dir, rng)
            if target is not None:
                op = OpType.OPEN if rng.random() < 0.6 else OpType.STAT
                return MdsRequest(op=op, path=target,
                                  client_id=client.client_id)
        cwd = state["mig_dir"]
        op = self._shifted_mix.sample(rng)
        last_created = state.get("last_created")
        if op is OpType.READDIR:
            return MdsRequest(op=op, path=cwd, client_id=client.client_id,
                              dir_hint=True)
        if op is OpType.CLOSE:
            request = self._close_oldest(state, client)
            if request is not None:
                return request
            op = OpType.STAT
        if op in (OpType.OPEN, OpType.STAT, OpType.SETATTR) \
                and last_created is not None:
            if op is OpType.OPEN:
                stack = state.setdefault("open_stack", [])
                if len(stack) >= self.spec.max_open_files:
                    return self._close_oldest(state, client)
                stack.append(last_created)
            kw = {}
            if op is OpType.SETATTR:
                kw["size"] = rng.randrange(1, 1 << 24)
            return MdsRequest(op=op, path=last_created,
                              client_id=client.client_id, **kw)
        state["created"] += 1
        new_path = pathmod.join(
            cwd, f"n{client.client_id}_{state['created']}.dat")
        state["last_created"] = new_path
        return MdsRequest(op=OpType.CREATE, path=new_path,
                          client_id=client.client_id,
                          size=rng.randrange(1, 1 << 24))
