"""Scientific-computing workload (§5.2).

Modelled on the LLNL trace analysis [26]: long compute phases punctuated by
bursts in which *every* node either opens the same input file or creates
its own checkpoint file in one shared directory.  The extreme concurrent
locality is what stresses a single authoritative MDS.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..mds import MdsRequest, OpType
from ..namespace import Namespace
from ..namespace import path as pathmod
from ..namespace.path import Path
from .client import Client


@dataclass
class ScientificSpec:
    """Phase timing and intensity of the scientific workload."""

    phase_len_s: float = 1.0        # duration of each phase
    burst_think_s: float = 0.002    # think time inside a burst
    compute_think_s: float = 0.25   # think time during compute phases
    checkpoint_stride: int = 4      # create a new checkpoint every N bursts


class ScientificWorkload:
    """Alternating read-burst / compute / create-burst / compute phases."""

    #: phase cycle: 0 = shared-file open burst, 1 = compute,
    #: 2 = per-client checkpoint creates, 3 = compute
    N_PHASES = 4

    def __init__(self, ns: Namespace, shared_dir: Path,
                 spec: ScientificSpec = ScientificSpec()) -> None:
        self.ns = ns
        self.spec = spec
        self.shared_dir = shared_dir
        dir_node = ns.try_resolve(shared_dir)
        if dir_node is None or not dir_node.is_dir:
            raise ValueError(
                f"shared dir {pathmod.format_path(shared_dir)} missing")
        self.input_file = self._ensure_input_file()

    def _ensure_input_file(self) -> Path:
        target = pathmod.join(self.shared_dir, "input.dat")
        if self.ns.try_resolve(target) is None:
            self.ns.create_file(target, size=1 << 30)
        return target

    def phase_at(self, now: float) -> int:
        return int(now / self.spec.phase_len_s) % self.N_PHASES

    # ------------------------------------------------------------------
    # Workload protocol
    # ------------------------------------------------------------------
    def next_delay(self, client: Client) -> float:
        phase = self.phase_at(client.env.now)
        think = (self.spec.burst_think_s if phase in (0, 2)
                 else self.spec.compute_think_s)
        return client.rng.expovariate(1.0 / think)

    def next_op(self, client: Client) -> Optional[MdsRequest]:
        now = client.env.now
        phase = self.phase_at(now)
        if phase == 0:
            # everyone opens (or re-stats) the same input file
            op = OpType.OPEN if client.rng.random() < 0.8 else OpType.STAT
            return MdsRequest(op=op, path=self.input_file,
                              client_id=client.client_id)
        if phase == 2:
            # everyone writes its own checkpoint into the shared directory
            burst_index = int(now / self.spec.phase_len_s) // self.N_PHASES
            state = client.scratch.setdefault("sci", {"last_burst": -1})
            if state["last_burst"] != burst_index:
                state["last_burst"] = burst_index
                name = f"ckpt.{burst_index}.{client.client_id}"
                return MdsRequest(op=OpType.CREATE,
                                  path=pathmod.join(self.shared_dir, name),
                                  client_id=client.client_id,
                                  size=1 << 26)
            # subsequent ops in the same burst grow the checkpoint
            name = f"ckpt.{burst_index}.{client.client_id}"
            return MdsRequest(op=OpType.SETATTR,
                              path=pathmod.join(self.shared_dir, name),
                              client_id=client.client_id,
                              size=client.rng.randrange(1, 1 << 28))
        # compute phase: an occasional stat of the input keeps caches warm
        if client.rng.random() < 0.2:
            return MdsRequest(op=OpType.STAT, path=self.input_file,
                              client_id=client.client_id)
        return None
