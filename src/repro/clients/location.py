"""Client-side knowledge of the metadata distribution (§4.4).

Clients start ignorant: they know only that the root is replicated
everywhere.  Every reply carries distribution info for the requested path
and its prefixes, which the client caches.  Requests are then directed
based on the *deepest known prefix* of the target path — the mechanism the
paper uses to steer traffic away from hot spots while keeping the common
case direct.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Tuple

from ..mds.messages import ANY_NODE
from ..namespace.path import Path


class LocationCache:
    """Maps path prefixes to an MDS id or :data:`ANY_NODE`."""

    def __init__(self) -> None:
        self._known: Dict[Path, int] = {(): ANY_NODE}

    def __len__(self) -> int:
        return len(self._known)

    def learn(self, path: Path, location: int) -> None:
        """Record distribution info from a reply."""
        self._known[path] = location

    def learn_all(self, locations: Dict[Path, int]) -> None:
        self._known.update(locations)

    def forget(self, path: Path) -> None:
        """Drop knowledge of one prefix (e.g. after repeated misdirects)."""
        if path:  # never forget the root
            self._known.pop(path, None)

    def deepest_known(self, path: Path) -> Tuple[Path, int]:
        """Deepest cached prefix of ``path`` and its location."""
        for i in range(len(path), -1, -1):
            prefix = path[:i]
            loc = self._known.get(prefix)
            if loc is not None:
                return prefix, loc
        return (), ANY_NODE  # root is always known

    def choose_destination(self, path: Path, rng: random.Random,
                           n_mds: int) -> int:
        """Pick the MDS to contact for ``path``.

        ``ANY_NODE`` knowledge (replicated metadata) resolves to a uniformly
        random node — exactly the load-spreading §4.4 wants for popular
        items.
        """
        _prefix, loc = self.deepest_known(path)
        if loc == ANY_NODE:
            return rng.randrange(n_mds)
        return loc
