"""Flash-crowd workload (Fig. 7 scenario, §5.4).

Thousands of clients request the *same file* nearly simultaneously, having
never seen it before — so under subtree partitioning their requests land on
random nodes (their only knowledge is that the root is everywhere).
Without traffic control every node forwards to the authority; with it, the
authority replicates the item cluster-wide and all nodes absorb the crowd.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..mds import MdsRequest, OpType
from ..namespace import Namespace
from ..namespace.path import Path
from .client import Client

#: sentinel "sleep forever" delay for clients that finished their burst
IDLE_S = 1e9


@dataclass
class FlashCrowdSpec:
    """Shape of the crowd."""

    start_s: float = 1.0          # when the crowd hits
    arrival_jitter_s: float = 0.05  # clients arrive within this window
    requests_per_client: int = 5  # opens each client performs
    repeat_think_s: float = 0.01  # think time between a client's repeats


class FlashCrowdWorkload:
    """Every client opens one target file in a tight window."""

    def __init__(self, ns: Namespace, target: Path,
                 spec: FlashCrowdSpec = FlashCrowdSpec()) -> None:
        node = ns.try_resolve(target)
        if node is None or not node.is_file:
            raise ValueError("flash-crowd target must be an existing file")
        self.ns = ns
        self.target = target
        self.spec = spec

    # ------------------------------------------------------------------
    # Workload protocol
    # ------------------------------------------------------------------
    def next_delay(self, client: Client) -> float:
        state = client.scratch.setdefault("flash", {"sent": 0})
        if state["sent"] >= self.spec.requests_per_client:
            return IDLE_S
        if state["sent"] == 0:
            offset = (self.spec.start_s - client.env.now
                      + client.rng.random() * self.spec.arrival_jitter_s)
            return max(0.0, offset)
        return client.rng.expovariate(1.0 / self.spec.repeat_think_s)

    def next_op(self, client: Client) -> Optional[MdsRequest]:
        state = client.scratch["flash"]
        if state["sent"] >= self.spec.requests_per_client:
            return None
        state["sent"] += 1
        return MdsRequest(op=OpType.OPEN, path=self.target,
                          client_id=client.client_id)
