"""Client population and workload generators (S11 in DESIGN.md)."""

from .client import Client, ClientStats, Workload
from .dynamic import SHIFTED_MIX, ShiftSpec, ShiftingWorkload
from .flashcrowd import FlashCrowdSpec, FlashCrowdWorkload
from .general import GeneralWorkload, GeneralWorkloadSpec
from .location import LocationCache
from .openloop import (BurstyArrivals, OpenLoopSource, OpenLoopStats,
                       OpenLoopWorkload, PoissonArrivals, make_arrivals)
from .opmix import GENERAL_MIX, SCALING_MIX, OpMix
from .scientific import ScientificSpec, ScientificWorkload

__all__ = [
    "BurstyArrivals",
    "Client",
    "ClientStats",
    "FlashCrowdSpec",
    "FlashCrowdWorkload",
    "GENERAL_MIX",
    "GeneralWorkload",
    "GeneralWorkloadSpec",
    "LocationCache",
    "OpMix",
    "OpenLoopSource",
    "OpenLoopStats",
    "OpenLoopWorkload",
    "PoissonArrivals",
    "SCALING_MIX",
    "SHIFTED_MIX",
    "ScientificSpec",
    "ScientificWorkload",
    "ShiftSpec",
    "ShiftingWorkload",
    "Workload",
    "make_arrivals",
]
