"""Open-loop load generation: arrivals at an offered rate, not a think loop.

A closed-loop client (:class:`~repro.clients.client.Client`) can never push
the cluster past saturation — each client waits for its reply, so offered
load self-limits to service capacity.  An :class:`OpenLoopSource` injects
requests at its configured arrival rate *regardless of completions*: it
never blocks on a reply, so queues (or, with admission control, drop
counters) absorb the difference between offered and served load.  This is
the "millions of users" load shape: each simulated source stands in for
thousands of nominal users whose aggregate request stream the arrival
process models.

Two arrival processes (:class:`~repro.experiments.workload.OpenLoopSpec`):

* ``poisson`` — memoryless interarrival gaps at the per-source rate.
* ``bursty`` — Poisson arrivals modulated by heavy-tailed (Pareto) on/off
  periods.  Aggregating many on/off sources with heavy-tailed period
  lengths is the classic construction of self-similar traffic; during ON
  periods the rate rises to ``rate / on_fraction`` so the long-run offered
  rate is preserved.

Everything is deterministic per seed: each source draws only from its own
named RNG stream (``source.<i>``), and completions are absorbed through
event callbacks, which the kernel dispatches in schedule order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, List, Optional, Tuple, TYPE_CHECKING

from ..metrics import BucketCounter
from ..mds.messages import OVERLOAD_ERROR, MdsRequest, OpType
from ..namespace.path import Path
from ..sim import Event
from .client import Client, ClientStats, Workload

if TYPE_CHECKING:  # pragma: no cover — avoids a clients<->experiments cycle
    from ..experiments.workload import OpenLoopSpec


@dataclass
class OpenLoopStats(ClientStats):
    """Per-source accounting: offered vs completed vs dropped vs good.

    ``ops_completed``/``errors``/latencies (inherited) count non-dropped
    completions; ``offered`` counts submissions; ``dropped`` counts
    admission-control rejections; ``good_by_time`` buckets completions
    that met the SLO, so goodput can be measured over a window.
    """

    offered: int = 0
    dropped: int = 0
    slo_violations: int = 0
    hotspot_ops: int = 0
    bucket_width_s: float = 0.1
    good_by_time: BucketCounter = field(init=False)
    #: (completion time, latency) of every ok completion — lets the
    #: summary compute latency percentiles *inside* the measure window
    #: (the run-wide tracer histogram would fold cold-start warmup
    #: latencies into an overload figure's tail)
    ok_latency_by_time: List[Tuple[float, float]] = field(
        default_factory=list)

    def __post_init__(self) -> None:
        self.good_by_time = BucketCounter(self.bucket_width_s)


class PoissonArrivals:
    """Memoryless interarrival gaps at ``rate_per_source`` ops/s."""

    def __init__(self, rate_per_source: float) -> None:
        if rate_per_source <= 0:
            raise ValueError("arrival rate must be positive")
        self.rate_per_source = rate_per_source

    def next_delay(self, source: "OpenLoopSource") -> float:
        return source.rng.expovariate(self.rate_per_source)


class BurstyArrivals:
    """Pareto-modulated on/off Poisson arrivals (self-similar aggregate).

    Period lengths are Pareto with tail index ``alpha`` scaled to the
    requested *means* (``on_s``/``off_s``); arrivals occur only during ON
    periods, at ``rate / on_fraction``.  A gap that would overrun the
    current ON period restarts in the next one, which thins the tail end
    of each burst slightly — an accepted approximation of the modulated
    process that keeps generation O(1) per arrival.
    """

    def __init__(self, rate_per_source: float, on_s: float, off_s: float,
                 alpha: float) -> None:
        if rate_per_source <= 0:
            raise ValueError("arrival rate must be positive")
        if alpha <= 1.0:
            raise ValueError("alpha must exceed 1 (finite mean periods)")
        self.on_s = on_s
        self.off_s = off_s
        self.alpha = alpha
        #: Pareto(alpha, xm=1) has mean alpha/(alpha-1); scale so the
        #: drawn period lengths average the configured means
        self._period_scale = (alpha - 1.0) / alpha
        on_fraction = on_s / (on_s + off_s)
        self.peak_rate = rate_per_source / on_fraction

    def next_delay(self, source: "OpenLoopSource") -> float:
        rng = source.rng
        state = source.scratch.get("burst")
        if state is None:
            state = source.scratch["burst"] = {"on_end": 0.0, "next_on": 0.0}
        t = source.env.now
        while True:
            if t >= state["on_end"]:
                start = max(t, state["next_on"])
                on_len = (self.on_s * self._period_scale
                          * rng.paretovariate(self.alpha))
                off_len = (self.off_s * self._period_scale
                           * rng.paretovariate(self.alpha))
                state["on_end"] = start + on_len
                state["next_on"] = start + on_len + off_len
                t = start
            gap = rng.expovariate(self.peak_rate)
            if t + gap <= state["on_end"]:
                return (t + gap) - source.env.now
            t = state["next_on"]


def make_arrivals(spec: OpenLoopSpec, n_sources: int):
    """The arrival process one source of ``n_sources`` should follow."""
    per_source = spec.offered_rate_ops_per_s / n_sources
    if spec.arrival == "poisson":
        return PoissonArrivals(per_source)
    if spec.arrival == "bursty":
        return BurstyArrivals(per_source, spec.burst_on_s, spec.burst_off_s,
                              spec.burst_alpha)
    raise ValueError(f"unknown arrival process {spec.arrival!r}")


class OpenLoopWorkload:
    """Arrival process + op model + optional flash-crowd overlay.

    Delegates op generation to an ``inner`` closed-style workload (the op
    *mix* is orthogonal to the arrival *process*); ``next_delay`` comes
    from the arrival process.  When a hotspot is configured, each op in
    the hotspot window is redirected to the hot target with probability
    ``spec.hotspot_prob`` — a flash crowd riding an open-loop stream.
    """

    def __init__(self, inner: Workload, arrivals, spec: OpenLoopSpec,
                 hot_target: Optional[Path] = None) -> None:
        self.inner = inner
        self.arrivals = arrivals
        self.spec = spec
        self.hot_target = hot_target if spec.hotspot_prob > 0 else None

    def next_delay(self, source: "OpenLoopSource") -> float:
        return self.arrivals.next_delay(source)

    def next_op(self, source: "OpenLoopSource") -> Optional[MdsRequest]:
        target = self.hot_target
        if target is not None:
            spec = self.spec
            now = source.env.now
            if (spec.hotspot_start_s <= now
                    < spec.hotspot_start_s + spec.hotspot_duration_s
                    and source.rng.random() < spec.hotspot_prob):
                source.stats.hotspot_ops += 1
                return source.make_request(OpType.OPEN, target)
        return self.inner.next_op(source)


class OpenLoopSource(Client):
    """A load generator that never waits for its own replies.

    Subclasses :class:`Client` for the routing/absorption machinery
    (location cache, stats, tracer integration) but replaces the closed
    request loop: submissions are paced purely by the arrival process and
    completions arrive via callbacks on the done event.
    """

    def __init__(self, env, client_id: int, cluster, workload: Workload,
                 rng, spec: OpenLoopSpec, uid: Optional[int] = None) -> None:
        super().__init__(env, client_id, cluster, workload, rng, uid=uid)
        self.spec = spec
        self.stats: OpenLoopStats = OpenLoopStats(
            bucket_width_s=cluster.params.stats_bucket_s)
        self._slo_s = spec.slo_latency_s

    def run(self) -> Generator[Event, Any, None]:
        env = self.env
        workload = self.workload
        cluster = self.cluster
        stats = self.stats
        complete = self._complete
        while True:
            delay = workload.next_delay(self)
            if delay > 0:
                yield env.timeout(delay)
            request = workload.next_op(self)
            if request is None:
                continue
            request.client_id = self.client_id
            request.uid = self.uid
            tracer = cluster.tracer
            if tracer is not None and tracer.enabled:
                request.trace = tracer.maybe_trace(
                    request.op, request.path, self.client_id, env.now)
            dest = self._destination(request)
            stats.offered += 1
            done = cluster.submit(dest, request)
            done.callbacks.append(
                lambda ev, req=request: complete(req, ev._value))

    def _complete(self, request: MdsRequest, reply) -> None:
        stats = self.stats
        if not reply.ok and reply.error == OVERLOAD_ERROR:
            # a deliberate shed, not an FS error: count it as a drop and
            # keep it out of the latency/location books (the fast reject
            # would otherwise *improve* the percentiles)
            stats.dropped += 1
            tracer = self.cluster.tracer
            if tracer is not None and request.trace is not None:
                tracer.finish(request.trace, now=self.env.now, ok=False)
            return
        self._absorb(request, reply)
        if reply.ok:
            stats.ok_latency_by_time.append((self.env.now, reply.latency_s))
            if reply.latency_s <= self._slo_s:
                stats.good_by_time.add(self.env.now)
            else:
                stats.slo_violations += 1


__all__ = [
    "BurstyArrivals",
    "OpenLoopSource",
    "OpenLoopStats",
    "OpenLoopWorkload",
    "PoissonArrivals",
    "make_arrivals",
]
