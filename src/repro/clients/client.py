"""The simulated client: a closed loop of think time and metadata requests.

Each client keeps one request outstanding (closed-loop), with exponential
think times between requests, so cluster throughput emerges from service
capacity rather than being injected.  Clients route requests themselves:
hash strategies let them compute the authority; subtree strategies leave
them to their :class:`~repro.clients.location.LocationCache` (deepest known
prefix), learning from the distribution info replies carry (§4.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from sys import getrefcount
from typing import Any, Generator, List, Optional, Protocol

from ..mds import MdsCluster, MdsReply, MdsRequest
from ..mds.messages import OpType
from ..namespace.path import Path
from ..sim import Environment, Event
from .location import LocationCache


@dataclass
class ClientStats:
    """Per-client activity record."""

    ops_completed: int = 0
    errors: int = 0
    forwards_seen: int = 0
    total_latency_s: float = 0.0
    latencies: List[float] = field(default_factory=list)

    @property
    def mean_latency_s(self) -> float:
        return (self.total_latency_s / self.ops_completed
                if self.ops_completed else 0.0)


class Workload(Protocol):
    """What a workload generator must provide."""

    def next_op(self, client: "Client") -> Optional[MdsRequest]:
        """The client's next request, or ``None`` to idle one think period."""

    def next_delay(self, client: "Client") -> float:
        """Think time before the next request."""


class Client:
    """One simulated file-system client."""

    def __init__(self, env: Environment, client_id: int, cluster: MdsCluster,
                 workload: Workload, rng, uid: Optional[int] = None) -> None:
        self.env = env
        self.client_id = client_id
        self.cluster = cluster
        self.workload = workload
        self.rng = rng
        self.uid = uid if uid is not None else client_id
        self.locations = LocationCache()
        self.stats = ClientStats()
        self.last_opened = None      # path of the most recent OPEN
        self.last_opened_ino = None  # its handle (passed back on CLOSE)
        self.scratch: dict = {}      # per-client workload state
        #: recycled request object (fast lane): a closed-loop client has at
        #: most one request in flight, so one spare slot absorbs the entire
        #: steady-state MdsRequest churn
        self._spare: Optional[MdsRequest] = None

    def start(self) -> None:
        self.env.process(self.run())

    def make_request(self, op: OpType, path: Path, *,
                     dst_path: Optional[Path] = None,
                     mode: Optional[int] = None,
                     size: Optional[int] = None,
                     ino: Optional[int] = None,
                     dir_hint: bool = False) -> MdsRequest:
        """Build the client's next request, reusing the spare slot if set.

        Workloads should construct requests through this so the per-op
        ``MdsRequest`` allocation disappears in steady state; a fresh object
        is returned whenever no recycled one is available.
        """
        spare = self._spare
        if spare is not None:
            self._spare = None
            spare.op = op
            spare.path = path
            spare.client_id = self.client_id
            spare.uid = self.uid
            spare.dst_path = dst_path
            spare.mode = mode
            spare.size = size
            spare.ino = ino
            spare.done = None
            spare.submitted_at = 0.0
            spare.hops = 0
            spare.enqueued_at = 0.0
            spare.trace = None
            spare.dir_hint = dir_hint
            spare.origin_shard = None
            spare.origin_key = None
            return spare
        return MdsRequest(op=op, path=path, client_id=self.client_id,
                          uid=self.uid, dst_path=dst_path, mode=mode,
                          size=size, ino=ino, dir_hint=dir_hint)

    def run(self) -> Generator[Event, Any, None]:
        env = self.env
        workload = self.workload
        cluster = self.cluster
        recycle = env.fastlane
        while True:
            delay = workload.next_delay(self)
            if delay > 0:
                yield env.timeout(delay)
            request = workload.next_op(self)
            if request is None:
                continue
            request.client_id = self.client_id
            request.uid = self.uid
            tracer = cluster.tracer
            if tracer is not None and tracer.enabled:
                request.trace = tracer.maybe_trace(
                    request.op, request.path, self.client_id, env.now)
            dest = self._destination(request)
            reply: MdsReply = yield cluster.submit(dest, request)
            self._absorb(request, reply)
            if recycle:
                request.done = None  # free the completion event for pooling
                if self._spare is None and getrefcount(request) == 2:
                    # only this frame still sees the object: safe to reuse
                    self._spare = request

    # ------------------------------------------------------------------
    def _destination(self, request: MdsRequest) -> int:
        computed = self.cluster.strategy.client_locate(
            request.path, dir_hint=request.dir_hint)
        if computed is not None:
            return computed
        return self.locations.choose_destination(
            request.path, self.rng, self.cluster.n_mds)

    def _absorb(self, request: MdsRequest, reply: MdsReply) -> None:
        self.stats.ops_completed += 1
        self.stats.total_latency_s += reply.latency_s
        self.stats.latencies.append(reply.latency_s)
        self.stats.forwards_seen += reply.forwarded
        tracer = self.cluster.tracer
        if tracer is not None:
            tracer.record_latency(request.op, reply.latency_s)
            if request.trace is not None:
                tracer.finish(request.trace, now=self.env.now, ok=reply.ok)
        if not reply.ok:
            self.stats.errors += 1
            # stale knowledge may have misrouted us; drop the deepest hint
            prefix, _loc = self.locations.deepest_known(request.path)
            self.locations.forget(prefix)
            return
        self.locations.learn_all(reply.locations)
        if request.op is OpType.OPEN:
            self.last_opened = request.path
            self.last_opened_ino = reply.target_ino
