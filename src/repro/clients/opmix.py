"""Metadata operation mixes.

The general-purpose frequencies approximate the workload characterization
the paper's generator is built on (Roselli et al. [19]): metadata traffic is
dominated by opens/stats, with directory reads common and namespace
mutations (rename, chmod, link) rare.  The exact trace percentages are not
published per-op in the paper, so the mix is exposed as data — experiments
can (and the ablations do) supply their own.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List

from ..mds.messages import OpType

#: General-purpose mix (see module docstring).
GENERAL_MIX: Dict[OpType, float] = {
    OpType.OPEN: 0.30,
    OpType.CLOSE: 0.20,
    OpType.STAT: 0.24,
    OpType.READDIR: 0.08,
    OpType.CREATE: 0.07,
    OpType.UNLINK: 0.04,
    OpType.SETATTR: 0.04,
    OpType.RENAME: 0.01,
    OpType.CHMOD: 0.01,
    OpType.LINK: 0.01,
}

#: Read-heavy mix for predominately static scaling runs (Fig. 2): mutation
#: ops are present but cannot reshape the namespace much over a short run.
SCALING_MIX: Dict[OpType, float] = {
    OpType.OPEN: 0.34,
    OpType.CLOSE: 0.22,
    OpType.STAT: 0.28,
    OpType.READDIR: 0.10,
    OpType.CREATE: 0.03,
    OpType.SETATTR: 0.02,
    OpType.RENAME: 0.005,
    OpType.CHMOD: 0.005,
}


@dataclass
class OpMix:
    """A sampleable categorical distribution over op types."""

    weights: Dict[OpType, float] = field(
        default_factory=lambda: dict(GENERAL_MIX))

    def __post_init__(self) -> None:
        if not self.weights:
            raise ValueError("op mix cannot be empty")
        total = sum(self.weights.values())
        if total <= 0:
            raise ValueError("op mix weights must sum to a positive value")
        self._ops: List[OpType] = list(self.weights)
        self._cum: List[float] = []
        acc = 0.0
        for op in self._ops:
            acc += self.weights[op] / total
            self._cum.append(acc)
        self._cum[-1] = 1.0  # guard against float drift

    def sample(self, rng: random.Random) -> OpType:
        """Draw one op type."""
        u = rng.random()
        for op, edge in zip(self._ops, self._cum):
            if u <= edge:
                return op
        return self._ops[-1]  # pragma: no cover - numeric safety net
