"""Recording wrapper: capture any workload's issued operations."""

from __future__ import annotations

from typing import IO, Iterable, List, Optional

from .events import TraceRecord


class Trace:
    """An in-memory operation trace with JSONL (de)serialization."""

    def __init__(self, records: Optional[List[TraceRecord]] = None) -> None:
        self.records: List[TraceRecord] = list(records or [])

    def __len__(self) -> int:
        return len(self.records)

    def append(self, record: TraceRecord) -> None:
        self.records.append(record)

    def clients(self) -> "set[int]":
        return {r.client_id for r in self.records}

    def duration(self) -> float:
        if not self.records:
            return 0.0
        times = [r.t for r in self.records]
        return max(times) - min(times)

    # -- serialization ------------------------------------------------------
    def dump(self, fp: IO[str]) -> int:
        """Write JSON lines; returns records written."""
        count = 0
        for record in self.records:
            fp.write(record.to_json())
            fp.write("\n")
            count += 1
        return count

    @classmethod
    def load(cls, fp: Iterable[str]) -> "Trace":
        records = [TraceRecord.from_json(line)
                   for line in fp if line.strip()]
        return cls(records)


class RecordingWorkload:
    """Wraps a workload; every generated request is logged to a trace."""

    def __init__(self, inner, trace: Optional[Trace] = None) -> None:
        self.inner = inner
        self.trace = trace if trace is not None else Trace()

    def next_delay(self, client) -> float:
        return self.inner.next_delay(client)

    def next_op(self, client):
        request = self.inner.next_op(client)
        if request is not None:
            self.trace.append(
                TraceRecord.from_request(client.env.now, request))
        return request
