"""Workload trace record/replay (the paper's future-work item §7)."""

from .events import TraceRecord
from .recorder import RecordingWorkload, Trace
from .replay import TraceReplayWorkload

__all__ = [
    "RecordingWorkload",
    "Trace",
    "TraceRecord",
    "TraceReplayWorkload",
]
