"""Trace records: a serializable log of client metadata operations.

The paper's future work calls for evaluation with "actual workload traces
with matching file system metadata snapshots".  This package provides the
infrastructure: any workload can be recorded while it runs, saved as JSON
lines, and replayed later — against the same snapshot seed — as a
deterministic workload of its own.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Optional

from ..mds.messages import MdsRequest, OpType
from ..namespace import path as pathmod
from ..namespace.path import Path


@dataclass(frozen=True)
class TraceRecord:
    """One issued metadata operation."""

    t: float
    client_id: int
    op: str
    path: str
    dst_path: Optional[str] = None
    mode: Optional[int] = None
    size: Optional[int] = None
    dir_hint: bool = False

    @classmethod
    def from_request(cls, t: float, request: MdsRequest) -> "TraceRecord":
        return cls(
            t=t,
            client_id=request.client_id,
            op=request.op.value,
            path=pathmod.format_path(request.path),
            dst_path=(pathmod.format_path(request.dst_path)
                      if request.dst_path is not None else None),
            mode=request.mode,
            size=request.size,
            dir_hint=request.dir_hint,
        )

    def to_request(self) -> MdsRequest:
        return MdsRequest(
            op=OpType(self.op),
            path=pathmod.parse(self.path),
            client_id=self.client_id,
            dst_path=(pathmod.parse(self.dst_path)
                      if self.dst_path is not None else None),
            mode=self.mode,
            size=self.size,
            dir_hint=self.dir_hint,
        )

    def to_json(self) -> str:
        payload = {k: v for k, v in asdict(self).items() if v is not None
                   and not (k == "dir_hint" and v is False)}
        return json.dumps(payload, sort_keys=True)

    @classmethod
    def from_json(cls, line: str) -> "TraceRecord":
        payload = json.loads(line)
        return cls(**payload)
