"""Replay a recorded trace as a workload.

Each client replays its own recorded operation stream with the original
inter-arrival gaps, so a trace captured under one partitioning strategy
can be re-driven against another — the apples-to-apples comparison the
paper's future-work section asks for.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional

from ..mds.messages import MdsRequest
from .events import TraceRecord
from .recorder import Trace

#: park exhausted clients effectively forever
IDLE_S = 1e9


class TraceReplayWorkload:
    """Workload that replays a :class:`Trace` per client."""

    def __init__(self, trace: Trace, time_scale: float = 1.0) -> None:
        if time_scale <= 0:
            raise ValueError("time_scale must be positive")
        self.time_scale = time_scale
        per_client: Dict[int, List[TraceRecord]] = defaultdict(list)
        for record in trace.records:
            per_client[record.client_id].append(record)
        for records in per_client.values():
            records.sort(key=lambda r: r.t)
        self._scripts: Dict[int, List[TraceRecord]] = dict(per_client)

    def remaining(self, client_id: int) -> int:
        state = self._scripts.get(client_id, [])
        return len(state)

    # -- Workload protocol ----------------------------------------------------
    def next_delay(self, client) -> float:
        script = self._scripts.get(client.client_id)
        if not script:
            return IDLE_S
        due = script[0].t * self.time_scale
        return max(0.0, due - client.env.now)

    def next_op(self, client) -> Optional[MdsRequest]:
        script = self._scripts.get(client.client_id)
        if not script:
            return None
        record = script.pop(0)
        return record.to_request()
