"""Strategy interface: how metadata is partitioned over the MDS cluster.

A strategy answers one central question — *which MDS is authoritative for
this inode?* — plus the strategy-specific properties the MDS node needs:
whether serving a request requires path traversal (Lazy Hybrid does not),
what one cache miss fetches from disk (directory-grain vs inode-grain
layout, §4.5), and whether clients can compute the authority themselves
(hash-based strategies) or must discover it (subtree strategies, §4.4).

Strategies also observe namespace mutations (rename/chmod) because two of
them — Lazy Hybrid most of all — owe deferred work when those happen.
"""

from __future__ import annotations

import abc
import zlib
from typing import ClassVar, Dict, Optional

from .._fastpath import fastpath_enabled
from ..namespace import Namespace
from ..namespace import path as pathmod
from ..namespace.path import Path
from ..storage import DirectoryGrainLayout, Layout


def stable_hash(path: Path, salt: int = 0) -> int:
    """Deterministic, platform-stable hash of a path (crc32-based).

    ``hash()`` is randomized per process; simulation runs must be exactly
    reproducible, so we use crc32 over the rendered path.
    """
    return zlib.crc32(f"{salt}:{pathmod.format_path(path)}".encode())


class Strategy(abc.ABC):
    """Base class for metadata partitioning strategies."""

    #: registry key, e.g. ``"DynamicSubtree"``
    name: ClassVar[str] = "abstract"
    #: does serving a request require checking ancestor directories?
    needs_path_traversal: ClassVar[bool] = True
    #: can the strategy's partition be adjusted at runtime?
    supports_rebalancing: ClassVar[bool] = False

    def __init__(self, n_mds: int) -> None:
        if n_mds < 1:
            raise ValueError("need at least one MDS")
        self.n_mds = n_mds
        self.ns: Optional[Namespace] = None
        self.layout: Layout = DirectoryGrainLayout()
        #: request-path fast lane: ino -> MDS memo, valid only while both
        #: the namespace ``structure_epoch`` and the strategy's own partition
        #: state are unchanged.  ``None`` when the fast lane is disabled; a
        #: compiled AuthorityMemo when REPRO_MODEL selects the C backend.
        self._auth_cache: Optional[Dict[int, int]] = None
        self._auth_epoch = -1
        #: monotonic generation counter bumped on every partition-state
        #: mutation — lets downstream memos (distribution info) key their
        #: validity on it without subscribing to strategy internals
        self._auth_gen = 0

    def bind(self, ns: Namespace) -> None:
        """Attach the namespace and build the initial partition."""
        self.ns = ns
        self.__dict__.pop("authority_of_ino", None)
        self._auth_cache = None
        self._auth_epoch = -1
        if fastpath_enabled():
            # Under REPRO_MODEL=compiled the memo is the C AuthorityMemo
            # and its lookup shadows the python method entirely (same
            # epoch-check-then-dict semantics, no interpreter dispatch);
            # on the reference path the memo is the inline dict below.
            from ..model.backend import make_authority_memo
            memo = make_authority_memo(ns, self._authority_of_ino)
            if memo is None:
                self._auth_cache = {}
            else:
                self._auth_cache = memo
                self.authority_of_ino = memo.lookup
        self._setup()

    def _setup(self) -> None:
        """Hook: build initial partition state.  Default: nothing."""

    # -- the core query -----------------------------------------------------
    def authority_of_ino(self, ino: int) -> int:
        """MDS id authoritative for the given inode.

        Memoised per inode while the namespace structure and the partition
        state stay put: any structural namespace mutation bumps
        ``Namespace.structure_epoch`` (checked here), and every
        partition-state mutation (delegate/undelegate/dirfrag/failover)
        calls :meth:`_authority_changed`.
        """
        cache = self._auth_cache
        if cache is None:
            return self._authority_of_ino(ino)
        epoch = self.ns.structure_epoch  # type: ignore[union-attr]
        if epoch != self._auth_epoch:
            cache.clear()
            self._auth_epoch = epoch
        mds = cache.get(ino)
        if mds is None:
            mds = cache[ino] = self._authority_of_ino(ino)
        return mds

    def _authority_changed(self) -> None:
        """Partition state mutated: drop every memoised authority."""
        self._auth_gen += 1
        if self._auth_cache is not None:
            self._auth_cache.clear()

    @abc.abstractmethod
    def _authority_of_ino(self, ino: int) -> int:
        """Compute the authoritative MDS for ``ino`` (uncached)."""

    def authority_of_path(self, path: Path) -> int:
        """Authority for the inode currently at ``path``."""
        assert self.ns is not None
        return self.authority_of_ino(self.ns.resolve(path).ino)

    def authority_of_new(self, path: Path, parent_ino: int) -> int:
        """Authority for an entry about to be created at ``path``.

        Default: creations happen where the parent directory lives (subtree
        and directory-hash semantics).  Full-path-hash strategies override.
        """
        return self.authority_of_ino(parent_ino)

    def client_locate(self, path: Path, *,
                      dir_hint: bool = False) -> Optional[int]:
        """Authority a *client* can compute on its own, or ``None``.

        Hash strategies return the hash target (clients know the function);
        subtree strategies return ``None`` — clients must rely on cached
        distribution info learned from replies (§4.4).  ``dir_hint`` tells
        directory-hash routing that the client knows ``path`` names a
        directory.
        """
        return None

    # -- mutation observers ---------------------------------------------------
    def on_rename(self, ino: int, old_path: Path, new_path: Path) -> int:
        """Notify of a rename; returns the number of *deferred* per-file
        updates this creates for the strategy (0 for most)."""
        return 0

    def on_chmod(self, ino: int) -> int:
        """Notify of a permission change; returns deferred update count."""
        return 0

    def take_pending(self, ino: int) -> bool:
        """Consume a deferred update owed for ``ino`` (Lazy Hybrid).

        Returns True when the caller must charge the lazy-update cost (one
        network round trip plus a metadata write) before serving.
        """
        return False

    def describe(self) -> str:
        return f"{self.name}(n_mds={self.n_mds})"
