"""Subtree partitioning: static and dynamic (§3.1.1, §4).

Authority is defined by a *delegation table* mapping subtree-root directory
inos to MDS ids; everything beneath a delegated directory belongs to that
MDS unless a nested delegation overrides it.  The initial partition follows
the paper's evaluation setup (§5.1): directories near the root are hashed
across the cluster.

``StaticSubtreePartition`` never changes after setup.
``DynamicSubtreePartition`` exposes ``delegate``/``undelegate`` for the load
balancer (§4.3) and per-directory fragmentation (dirfrag) hooks for giant or
scorching directories.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set

from ..namespace import ROOT_INO
from ..namespace import path as pathmod
from ..namespace.path import Path
from .base import Strategy, stable_hash


class SubtreePartition(Strategy):
    """Common machinery for subtree-delegation strategies."""

    #: directories at depth 1..split_depth get explicit hash delegations
    split_depth: int = 2

    def __init__(self, n_mds: int, split_depth: int = 2) -> None:
        super().__init__(n_mds)
        self.split_depth = split_depth
        #: subtree-root dir ino -> authoritative MDS
        self.delegations: Dict[int, int] = {}
        #: directories whose entries are hashed across the cluster (§4.3)
        self.fragmented: Set[int] = set()

    def _setup(self) -> None:
        """Initial partition: hash directories near the root (§5.1)."""
        assert self.ns is not None
        self._authority_changed()
        self.delegations = {ROOT_INO: 0}
        self.fragmented = set()
        for node in self.ns.iter_subtree(ROOT_INO):
            if not node.is_dir or node.ino == ROOT_INO:
                continue
            depth = len(self.ns.path_of(node.ino))
            if 1 <= depth <= self.split_depth:
                path = self.ns.path_of(node.ino)
                self.delegations[node.ino] = stable_hash(path) % self.n_mds

    # -- authority ------------------------------------------------------------
    def _authority_of_ino(self, ino: int) -> int:
        assert self.ns is not None
        node = self.ns.inode(ino)
        # Fragmented-directory override: a file's authority is defined by a
        # hash of its name and the directory ino (§4.3).
        if not node.is_dir and node.parent_ino in self.fragmented:
            parent = self.ns.inode(node.parent_ino)
            name = next((n for n, i in parent.children.items()  # type: ignore[union-attr]
                         if i == ino), "")
            return stable_hash((name,), salt=node.parent_ino) % self.n_mds
        while True:
            mds = self.delegations.get(node.ino)
            if mds is not None:
                return mds
            if node.ino == ROOT_INO:  # pragma: no cover - root always present
                raise RuntimeError("no delegation for root")
            node = self.ns.inode(node.parent_ino)

    def authority_of_new(self, path: Path, parent_ino: int) -> int:
        if parent_ino in self.fragmented:
            # New entries in a fragmented directory hash by name (§4.3).
            return stable_hash((pathmod.basename(path),),
                               salt=parent_ino) % self.n_mds
        return self.authority_of_ino(parent_ino)

    def delegation_root_of(self, ino: int) -> int:
        """The subtree-root ino whose delegation covers ``ino``."""
        assert self.ns is not None
        node = self.ns.inode(ino)
        if not node.is_dir:
            node = self.ns.inode(node.parent_ino)
        while node.ino not in self.delegations:
            node = self.ns.inode(node.parent_ino)
        return node.ino

    def subtrees_of(self, mds_id: int) -> List[int]:
        """Delegated subtree-root inos currently owned by ``mds_id``."""
        return [ino for ino, owner in self.delegations.items()
                if owner == mds_id]


class StaticSubtreePartition(SubtreePartition):
    """Fixed subtree assignment: no load balancing ever (§3.1.1)."""

    name = "StaticSubtree"
    needs_path_traversal = True
    supports_rebalancing = False


class DynamicSubtreePartition(SubtreePartition):
    """Subtree partition adjusted at runtime by the load balancer (§4.3)."""

    name = "DynamicSubtree"
    needs_path_traversal = True
    supports_rebalancing = True

    def delegate(self, subtree_ino: int, mds_id: int) -> None:
        """(Re-)delegate the subtree rooted at ``subtree_ino``.

        After the change, sibling delegations that became redundant — nested
        delegations now pointing at the same MDS as their covering
        delegation — are coalesced, keeping the partition simple (the paper
        notes each delegation costs prefix-caching overhead).
        """
        assert self.ns is not None
        if not (0 <= mds_id < self.n_mds):
            raise ValueError(f"mds_id {mds_id} out of range")
        if not self.ns.inode(subtree_ino).is_dir:
            raise ValueError("only directories can head a delegation")
        self.delegations[subtree_ino] = mds_id
        self._coalesce(subtree_ino)
        self._authority_changed()

    def undelegate(self, subtree_ino: int) -> None:
        """Remove a nested delegation (the covering one takes over)."""
        if subtree_ino == ROOT_INO:
            raise ValueError("cannot undelegate the root")
        self.delegations.pop(subtree_ino, None)
        self._authority_changed()

    def _coalesce(self, subtree_ino: int) -> None:
        """Drop nested delegations made redundant by a new delegation."""
        assert self.ns is not None
        owner = self.delegations[subtree_ino]
        redundant = []
        for other_ino, other_owner in self.delegations.items():
            if other_ino == subtree_ino or other_owner != owner:
                continue
            if self.ns.is_ancestor_ino(subtree_ino, other_ino):
                # covered by the new delegation and pointing the same way —
                # but only redundant if no *different* delegation sits between
                if self._nearest_delegation_above(other_ino) == subtree_ino:
                    redundant.append(other_ino)
        for ino in redundant:
            del self.delegations[ino]

    def _nearest_delegation_above(self, ino: int) -> int:
        assert self.ns is not None
        node = self.ns.inode(ino)
        while True:
            node = self.ns.inode(node.parent_ino)
            if node.ino in self.delegations:
                return node.ino

    # -- dirfrag (§4.3) -------------------------------------------------------
    def fragment_directory(self, dir_ino: int) -> None:
        """Hash a single directory's entries across the cluster."""
        assert self.ns is not None
        if not self.ns.inode(dir_ino).is_dir:
            raise ValueError("can only fragment directories")
        self.fragmented.add(dir_ino)
        self._authority_changed()

    def unfragment_directory(self, dir_ino: int) -> None:
        """Consolidate a previously fragmented directory (§4.3)."""
        self.fragmented.discard(dir_ino)
        self._authority_changed()
