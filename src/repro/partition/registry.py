"""Strategy registry: build a partition strategy by name."""

from __future__ import annotations

from typing import Callable, Dict, List

from .base import Strategy
from .hashing import DirHashPartition, FileHashPartition
from .lazyhybrid import LazyHybridPartition
from .subtree import DynamicSubtreePartition, StaticSubtreePartition

_REGISTRY: Dict[str, Callable[[int], Strategy]] = {
    StaticSubtreePartition.name: StaticSubtreePartition,
    DynamicSubtreePartition.name: DynamicSubtreePartition,
    DirHashPartition.name: DirHashPartition,
    FileHashPartition.name: FileHashPartition,
    LazyHybridPartition.name: LazyHybridPartition,
}


def strategy_names() -> List[str]:
    """All registered strategy names, in the paper's Figure-2 legend order."""
    return ["StaticSubtree", "DynamicSubtree", "DirHash", "LazyHybrid",
            "FileHash"]


def make_strategy(name: str, n_mds: int) -> Strategy:
    """Instantiate a strategy by registry name."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown strategy {name!r}; known: {sorted(_REGISTRY)}") from None
    return factory(n_mds)
