"""Lazy Hybrid metadata management (§3.1.3, after Brandt et al. [3]).

Full-path hashing like :class:`FileHashPartition`, but *without* path
traversal: every file record carries a dual-entry ACL holding the effective
access information for its whole path, so the serving MDS answers from the
one record.  The price is deferred maintenance:

* ``chmod`` on a directory invalidates the merged ACL of every file nested
  beneath it — one lazy update per file, applied on next access;
* ``rename``/``mv`` of a directory changes the path-hash (and thus the
  authoritative MDS) of everything nested beneath it — one lazy migration
  per file.

The strategy tracks the owed updates; the MDS charges one extra network
round trip plus a metadata write when it consumes one (the paper's
amortized "one network trip per affected file").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Set

from ..namespace import merge_path_acl
from ..namespace.path import Path
from ..storage import InodeGrainLayout
from .base import Strategy, stable_hash


@dataclass
class LazyUpdateStats:
    """How much deferred work the workload generated and consumed."""

    acl_updates_owed: int = 0
    migrations_owed: int = 0
    updates_applied: int = 0


class LazyHybridPartition(Strategy):
    """Path-hash distribution with merged per-file ACLs, no traversal."""

    name = "LazyHybrid"
    needs_path_traversal = False
    supports_rebalancing = False

    def __init__(self, n_mds: int) -> None:
        super().__init__(n_mds)
        self.layout = InodeGrainLayout()
        self._pending: Set[int] = set()
        self.stats = LazyUpdateStats()

    def _authority_of_ino(self, ino: int) -> int:
        assert self.ns is not None
        return stable_hash(self.ns.path_of(ino)) % self.n_mds

    def client_locate(self, path: Path, *,
                      dir_hint: bool = False) -> Optional[int]:
        return stable_hash(path) % self.n_mds

    def authority_of_new(self, path: Path, parent_ino: int) -> int:
        return stable_hash(path) % self.n_mds

    # -- effective permissions (what the merged record answers) -------------
    def effective_acl(self, ino: int):
        """Recompute the dual-entry ACL for ``ino`` from ground truth."""
        assert self.ns is not None
        node = self.ns.inode(ino)
        ancestry = [(a.mode, a.owner) for a in self.ns.ancestors(ino)]
        return merge_path_acl(ancestry, node.mode, node.owner)

    # -- deferred-work bookkeeping -------------------------------------------
    def on_chmod(self, ino: int) -> int:
        """A directory chmod owes one ACL update per nested file."""
        assert self.ns is not None
        node = self.ns.inode(ino)
        if not node.is_dir:
            return 0  # file chmod updates its own record in place
        affected = [n.ino for n in self.ns.iter_subtree(ino)
                    if n.ino != ino]
        self._pending.update(affected)
        self.stats.acl_updates_owed += len(affected)
        return len(affected)

    def on_rename(self, ino: int, old_path: Path, new_path: Path) -> int:
        """A rename owes one migration per nested inode (hash moved)."""
        assert self.ns is not None
        moved = [n.ino for n in self.ns.iter_subtree(ino)]
        self._pending.update(moved)
        self.stats.migrations_owed += len(moved)
        return len(moved)

    def take_pending(self, ino: int) -> bool:
        if ino in self._pending:
            self._pending.discard(ino)
            self.stats.updates_applied += 1
            return True
        return False

    def pop_pending_batch(self, limit: int) -> "list[int]":
        """Remove up to ``limit`` owed updates for background propagation.

        §3.1.3: each MDS can keep "a log of recent updates that have not
        fully propagated and then lazily update nested items" — draining
        the log in the background instead of only on access.  Returns the
        inos whose records were brought up to date.
        """
        if limit <= 0:
            return []
        batch = []
        while self._pending and len(batch) < limit:
            batch.append(self._pending.pop())
        self.stats.updates_applied += len(batch)
        return batch

    @property
    def pending_count(self) -> int:
        return len(self._pending)
