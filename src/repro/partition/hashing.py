"""Hash-based metadata distribution (§3.1.2).

``FileHashPartition`` hashes the full path of every file and directory —
the Vesta/RAMA/zFS approach.  Metadata for a directory's entries scatters
over the whole cluster, so inodes must be fetched one at a time
(inode-grain layout) and every node ends up replicating prefix directories
for path traversal.

``DirHashPartition`` hashes only the directory portion of a path, grouping
a directory's contents (and their embedded inodes) on one MDS and on disk —
retaining prefetch and directory-grain I/O while still scattering the
hierarchy.

Renames change hash inputs for everything nested beneath the renamed entry;
both strategies must migrate that metadata.  We account for it as deferred
per-inode work, charged on next access (the same bookkeeping Lazy Hybrid
uses, but *with* path traversal still required).
"""

from __future__ import annotations

from typing import Optional, Set

from ..namespace import path as pathmod
from ..namespace.path import Path
from ..storage import DirectoryGrainLayout, InodeGrainLayout
from .base import Strategy, stable_hash


class FileHashPartition(Strategy):
    """Authority = hash(full path).  Inode-grain storage, no locality."""

    name = "FileHash"
    needs_path_traversal = True
    supports_rebalancing = False

    def __init__(self, n_mds: int) -> None:
        super().__init__(n_mds)
        self.layout = InodeGrainLayout()
        self._pending_moves: Set[int] = set()

    def _authority_of_ino(self, ino: int) -> int:
        assert self.ns is not None
        return stable_hash(self.ns.path_of(ino)) % self.n_mds

    def client_locate(self, path: Path, *,
                      dir_hint: bool = False) -> Optional[int]:
        return stable_hash(path) % self.n_mds

    def authority_of_new(self, path: Path, parent_ino: int) -> int:
        return stable_hash(path) % self.n_mds

    def on_rename(self, ino: int, old_path: Path, new_path: Path) -> int:
        """Every inode beneath a renamed entry rehashes -> must migrate."""
        assert self.ns is not None
        moved = [n.ino for n in self.ns.iter_subtree(ino)]
        self._pending_moves.update(moved)
        return len(moved)

    def take_pending(self, ino: int) -> bool:
        if ino in self._pending_moves:
            self._pending_moves.discard(ino)
            return True
        return False

    @property
    def pending_count(self) -> int:
        return len(self._pending_moves)


class DirHashPartition(FileHashPartition):
    """Authority = hash(containing directory's path).

    A directory inode is grouped with its *contents*: the directory and its
    children all hash on the directory's own path, so one MDS serves whole
    directories and can store/prefetch them as single objects.
    """

    name = "DirHash"
    needs_path_traversal = True
    supports_rebalancing = False

    def __init__(self, n_mds: int) -> None:
        super().__init__(n_mds)
        self.layout = DirectoryGrainLayout()

    def _authority_of_ino(self, ino: int) -> int:
        assert self.ns is not None
        node = self.ns.inode(ino)
        if node.is_dir:
            dir_path = self.ns.path_of(ino)
        else:
            dir_path = self.ns.path_of(node.parent_ino)
        return stable_hash(dir_path) % self.n_mds

    def client_locate(self, path: Path, *,
                      dir_hint: bool = False) -> Optional[int]:
        # A directory groups with its own contents; a file with its parent's.
        # Clients usually cannot know which a path names before the lookup
        # and hash the parent (exact for files, one forward for directories)
        # — except when they already know the target is a directory (their
        # own cwd, a readdir target), signalled by ``dir_hint``.
        if dir_hint:
            return stable_hash(path) % self.n_mds
        return stable_hash(pathmod.parent(path)) % self.n_mds

    def on_rename(self, ino: int, old_path: Path, new_path: Path) -> int:
        """Directories beneath the rename rehash; files move with them.

        Under dir-hashing a file's location depends only on its directory's
        path, so the deferred work is per *directory object*, files included
        implicitly with their directory.  We still mark every inode (the
        migration touches them all) — matching the paper's observation that
        the update cost is proportional to the nested metadata.
        """
        return super().on_rename(ino, old_path, new_path)
