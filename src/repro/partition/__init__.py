"""Metadata partitioning strategies (S6 in DESIGN.md).

The five strategies the paper evaluates against each other:
StaticSubtree, DynamicSubtree (the contribution), DirHash, FileHash, and
LazyHybrid.
"""

from .base import Strategy, stable_hash
from .hashing import DirHashPartition, FileHashPartition
from .lazyhybrid import LazyHybridPartition, LazyUpdateStats
from .registry import make_strategy, strategy_names
from .subtree import (DynamicSubtreePartition, StaticSubtreePartition,
                      SubtreePartition)

__all__ = [
    "DirHashPartition",
    "DynamicSubtreePartition",
    "FileHashPartition",
    "LazyHybridPartition",
    "LazyUpdateStats",
    "StaticSubtreePartition",
    "Strategy",
    "SubtreePartition",
    "make_strategy",
    "stable_hash",
    "strategy_names",
]
