"""Build a runnable simulation from an :class:`ExperimentConfig`.

Internal module: the public import surface is :mod:`repro.api` (the old
``repro.experiments.builder`` path remains as a deprecation shim).
"""

from __future__ import annotations

import copy
from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ..clients import (Client, FlashCrowdSpec, FlashCrowdWorkload,
                       GeneralWorkload, GeneralWorkloadSpec, OpenLoopSource,
                       OpenLoopWorkload, SCALING_MIX, ScientificSpec,
                       ScientificWorkload, ShiftSpec, ShiftingWorkload,
                       make_arrivals)
from ..mds import MdsCluster
from ..model.backend import resolve_model, set_model_gate
from ..namespace import Namespace, SnapshotSpec, SnapshotStats, \
    generate_snapshot
from ..namespace import path as pathmod
from ..obs import RingBufferSink, Trace, Tracer
from ..partition import make_strategy
from ..proxy import ProxyTier
from ..sim import Environment, RngStreams
from ..sim.backend import make_environment
from .config import ExperimentConfig, env_gates
from .workload import ClosedLoopSpec, OpenLoopSpec, WorkloadSpec

if TYPE_CHECKING:  # pragma: no cover
    from .summary import ClusterSummary


@dataclass
class Simulation:
    """A fully wired simulation ready to ``env.run()``."""

    config: ExperimentConfig
    env: Environment
    streams: RngStreams
    ns: Namespace
    snapshot: SnapshotStats
    cluster: MdsCluster
    clients: List[Client]
    workload: object
    tracer: Optional[Tracer] = None
    #: the adaptive proxy tier fronting the cluster, when configured
    proxy: Optional[ProxyTier] = None
    #: model backend this simulation was built on (provenance; the
    #: backends are behaviour-identical by contract)
    model_backend: str = "reference"

    def run_to(self, t: float) -> None:
        self.env.run(until=t)

    @property
    def total_metadata(self) -> int:
        return len(self.ns)

    def summary(self, window: Optional[Tuple[float, float]] = None
                ) -> "ClusterSummary":
        """Typed aggregate of the run so far (see :class:`ClusterSummary`).

        ``window`` bounds the throughput measurement; it defaults to the
        config's post-warmup measure window, clamped to the time actually
        simulated.
        """
        from .summary import summarize_simulation

        return summarize_simulation(self, window)

    def traces(self) -> List[Trace]:
        """Sampled traces collected so far (newest-last, ring-bounded)."""
        if self.tracer is None or not isinstance(self.tracer.sink,
                                                 RingBufferSink):
            return []
        return self.tracer.sink.traces


# ---------------------------------------------------------------------------
# Namespace-snapshot memo
#
# Snapshot generation is a pure function of (seed, SnapshotSpec): it draws
# only from the "snapshot.*" named RNG streams, which nothing else in a run
# reads, and every stream is derived statelessly from (seed, name).  A sweep
# whose configs share (scale, snapshot seed) therefore regenerates the exact
# same tree over and over.  When the memo is enabled — sweep workers turn it
# on; plain ``build_simulation`` calls leave it off — the pristine generated
# tree is cached per key and each run receives a deep copy, which is
# bit-identical to regenerating (enforced by the serial/parallel equivalence
# tests).
# ---------------------------------------------------------------------------
_SnapshotKey = Tuple[int, SnapshotSpec]
_SNAPSHOT_MEMO: Dict[_SnapshotKey, Tuple[Namespace, SnapshotStats]] = {}
_SNAPSHOT_MEMO_MAX = 8
_snapshot_memo_enabled = False


def enable_snapshot_memo(enabled: bool = True) -> None:
    """Turn the per-process snapshot memo on or off (off clears it)."""
    global _snapshot_memo_enabled
    _snapshot_memo_enabled = bool(enabled)
    if not enabled:
        _SNAPSHOT_MEMO.clear()


def snapshot_memo_enabled() -> bool:
    return _snapshot_memo_enabled


@contextmanager
def snapshot_memo(enabled: bool = True):
    """Scoped snapshot-memo switch; restores the previous state on exit.

    Cached trees are kept across uses (the memo is bounded); only an
    explicit ``enable_snapshot_memo(False)`` clears them.
    """
    global _snapshot_memo_enabled
    prev = _snapshot_memo_enabled
    _snapshot_memo_enabled = bool(enabled)
    try:
        yield
    finally:
        _snapshot_memo_enabled = prev


def _make_snapshot(config: ExperimentConfig,
                   streams: RngStreams) -> Tuple[Namespace, SnapshotStats]:
    spec = SnapshotSpec(n_users=config.n_users,
                        files_per_user=config.n_files_per_user,
                        shared_tree_files=config.shared_tree_files)
    if not _snapshot_memo_enabled:
        ns = Namespace()
        return ns, generate_snapshot(ns, spec, streams)
    key: _SnapshotKey = (config.seed, spec)
    cached = _SNAPSHOT_MEMO.get(key)
    if cached is None:
        ns = Namespace()
        # Generate from a fresh stream factory so the memo entry does not
        # depend on the caller's stream state; named streams are derived
        # purely from (seed, name), so the tree is identical either way.
        snapshot = generate_snapshot(ns, spec, RngStreams(config.seed))
        while len(_SNAPSHOT_MEMO) >= _SNAPSHOT_MEMO_MAX:
            _SNAPSHOT_MEMO.pop(next(iter(_SNAPSHOT_MEMO)))
        _SNAPSHOT_MEMO[key] = (ns, snapshot)
        cached = (ns, snapshot)
    return copy.deepcopy(cached)


def build_simulation(config: ExperimentConfig, *,
                     shard=None) -> Simulation:
    """Construct namespace, cluster, clients and tracer per the config.

    ``shard`` (a :class:`repro.shard.runtime.ShardContext`) builds the
    shard-local slice of the experiment instead: the full namespace and
    node array (peers stay inert), but only this shard's workers and
    clients — with the shard transport spliced in before ``start()``.
    """
    gates = env_gates(config)
    env = make_environment(kernel=gates.kernel)
    # Record the resolved model gate process-wide so structures built
    # later in the run (failover cache resets, proxy tiers) follow the
    # same backend as the ones built here.
    set_model_gate(gates.model)
    model_backend = resolve_model(gates.model)
    streams = RngStreams(config.seed)

    ns, snapshot = _make_snapshot(config, streams)

    strategy = make_strategy(config.strategy, config.n_mds)
    strategy.bind(ns)
    params = _size_cache(config, len(ns))
    if shard is None:
        tracer = Tracer(sample_rate=config.trace_sample_rate,
                        sink=RingBufferSink(config.trace_buffer),
                        seed=config.seed)
    else:
        tracer = shard.make_tracer(env, config)
    cluster = MdsCluster(env, ns, strategy, params, tracer=tracer)
    if shard is not None:
        shard.bind(cluster, snapshot, config)
    cluster.start()

    spec = config.workload_spec()
    workload = _make_workload(config, spec, ns, snapshot, strategy)

    # clients talk to the proxy tier when one is configured, otherwise
    # straight to the cluster — the two expose the same submit() surface
    proxy = None
    front = cluster
    if config.proxy is not None:
        proxy = ProxyTier(env, cluster, config.proxy)
        front = proxy

    clients = []
    if isinstance(spec, OpenLoopSpec):
        for i in range(spec.resolved_sources(config.n_clients)):
            source = OpenLoopSource(env, i, front, workload,
                                    streams.py_stream(f"source.{i}"), spec)
            source.start()
            clients.append(source)
    else:
        for i in range(config.n_clients):
            if shard is not None and not shard.owns_client(i):
                # a peer shard builds this client; its RNG stream is
                # derived purely from (seed, name), so skipping it here
                # cannot perturb anyone else's draws
                continue
            client = Client(env, i, front, workload,
                            streams.py_stream(f"client.{i}"))
            client.start()
            clients.append(client)

    return Simulation(config=config, env=env, streams=streams, ns=ns,
                      snapshot=snapshot, cluster=cluster, clients=clients,
                      workload=workload, tracer=tracer, proxy=proxy,
                      model_backend=model_backend)


def _size_cache(config: ExperimentConfig, total_metadata: int):
    """Apply the config's cache-sizing rule to the SimParams."""
    import dataclasses

    params = config.params
    if config.cache_fraction is not None:
        capacity = max(16, int(config.cache_fraction * total_metadata))
    elif config.cache_capacity_per_mds is not None:
        capacity = config.cache_capacity_per_mds
    else:
        return params
    return dataclasses.replace(params, cache_capacity=capacity,
                               journal_capacity=capacity)


def _make_workload(config: ExperimentConfig, spec: WorkloadSpec,
                   ns: Namespace, snapshot: SnapshotStats, strategy=None):
    if isinstance(spec, OpenLoopSpec):
        # the op *mix* is orthogonal to the arrival *process*: reuse the
        # closed-loop generator for ops (its next_delay is never called)
        # and pace submissions with the configured arrival process
        inner = _make_workload(
            config,
            ClosedLoopSpec(kind=spec.kind, think_time_s=1.0,
                           args=spec.args, op_weights=spec.op_weights),
            ns, snapshot, strategy)
        n_sources = spec.resolved_sources(config.n_clients)
        hot_target = (_flash_target(ns, snapshot)
                      if spec.hotspot_prob > 0 else None)
        return OpenLoopWorkload(inner, make_arrivals(spec, n_sources),
                                spec, hot_target)

    args = dict(spec.args)
    kind = spec.kind

    if kind in ("general", "scaling"):
        weights = spec.op_weights or (
            dict(SCALING_MIX) if kind == "scaling" else None)
        spec_kw = dict(think_time_s=spec.think_time_s)
        if weights is not None:
            spec_kw["op_weights"] = weights
        for key in ("move_dir_prob", "shared_tree_prob",
                    "dir_chmod_fraction", "mkdir_fraction"):
            if key in args:
                spec_kw[key] = args[key]
        return GeneralWorkload(ns, snapshot.user_roots,
                               GeneralWorkloadSpec(**spec_kw))

    if kind == "shifting":
        # The "new portion of the hierarchy served by a single MDS"
        # (§5.3.2): every user subtree the victim node initially owns.
        victim_node = int(args.get("victim_node", 0))
        victim_roots = None
        if strategy is not None:
            victim_roots = [
                root for root in snapshot.user_roots
                if strategy.authority_of_ino(ns.resolve(root).ino)
                == victim_node] or None
        shift = ShiftSpec(
            shift_time_s=args.get("shift_time_s", 10.0),
            migrate_fraction=args.get("migrate_fraction", 0.5),
            victim_roots=victim_roots)
        spec_kw = dict(think_time_s=spec.think_time_s)
        if spec.op_weights is not None:
            spec_kw["op_weights"] = spec.op_weights
        return ShiftingWorkload(ns, snapshot.user_roots, shift,
                                GeneralWorkloadSpec(**spec_kw))

    if kind == "scientific":
        shared = snapshot.user_roots[0]
        return ScientificWorkload(
            ns, shared,
            ScientificSpec(phase_len_s=args.get("phase_len_s", 1.0)))

    if kind == "flash":
        target = _flash_target(ns, snapshot)
        return FlashCrowdWorkload(
            ns, target,
            FlashCrowdSpec(
                start_s=args.get("start_s", 1.0),
                arrival_jitter_s=args.get("arrival_jitter_s", 0.05),
                requests_per_client=int(args.get("requests_per_client", 5)),
                repeat_think_s=args.get("repeat_think_s", 0.01)))

    raise ValueError(f"unknown workload kind {kind!r}")


def _flash_target(ns: Namespace, snapshot: SnapshotStats):
    """Pick a deep, previously-unknown file as the flash-crowd target.

    The choice must be stable under snapshot-generator changes, so it is
    explicit: the *lexicographically-last named* file child of the last
    user root (not whatever dict iteration order happens to yield).  If
    that root has no file children, a synthetic one is created.
    """
    root = snapshot.user_roots[-1]
    node = ns.resolve(root)
    best = None
    for name in sorted(node.children):  # type: ignore[union-attr]
        child = ns.inode(node.children[name])  # type: ignore[union-attr]
        if child.is_file:
            best = pathmod.join(root, name)
    if best is None:
        best = pathmod.join(root, "hotfile.dat")
        ns.create_file(best, size=1 << 30)
    return best
