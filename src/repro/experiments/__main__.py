"""Command-line driver: regenerate any figure from the paper.

Usage::

    python -m repro.experiments fig2 [--scale 1.0] [--seeds 2]
    python -m repro.experiments all  [--scale 0.5]

Prints the figure's series as an aligned text table (the same rows the
paper plots).  Larger ``--scale`` values use bigger namespaces, client
populations and durations.
"""

from __future__ import annotations

import argparse
import sys
import time

from .config import env_scale
from .extensions import extA_scientific
from .figures import FIGURES, fig5, fig6, run_shift_experiment
from .overload import fig_hotspot, fig_overload

#: extension experiments (not in the paper) selectable from the CLI
EXTENSIONS = {"extA": extA_scientific, "overload": fig_overload,
              "hotspot": fig_hotspot}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce figures from 'Dynamic Metadata Management "
                    "for Petabyte-Scale File Systems' (SC 2004)")
    parser.add_argument("figure",
                        choices=sorted(FIGURES) + sorted(EXTENSIONS)
                        + ["all"],
                        help="which figure to regenerate ('all' runs the "
                             "paper's figures; ext* are extension "
                             "experiments)")
    parser.add_argument("--scale", type=float, default=None,
                        help="experiment scale factor (default: REPRO_SCALE "
                             "env var or 0.5)")
    parser.add_argument("--seeds", type=int, default=None,
                        help="seeds to average for fig2/fig3/fig4")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress progress lines")
    parser.add_argument("--plot", action="store_true",
                        help="also render each figure as a terminal chart")
    parser.add_argument("--csv", metavar="DIR",
                        help="also write each figure's rows to DIR/figN.csv")
    args = parser.parse_args(argv)

    scale = args.scale if args.scale is not None else env_scale(0.5)
    progress = (lambda msg: None) if args.quiet else (
        lambda msg: print(f"  .. {msg}", file=sys.stderr))

    names = sorted(FIGURES) if args.figure == "all" else [args.figure]
    shift = None
    for name in names:
        start = time.time()
        if name in EXTENSIONS:
            result = EXTENSIONS[name](scale=scale, progress=progress)
        elif name in ("fig5", "fig6") and args.figure == "all":
            # the two figures share one experiment; run it once
            if shift is None:
                shift = run_shift_experiment(scale, progress)
            result = (fig5 if name == "fig5" else fig6)(
                scale, shift_results=shift)
        else:
            kwargs = {"scale": scale, "progress": progress}
            if args.seeds is not None and name in ("fig2", "fig3", "fig4"):
                kwargs["seeds"] = args.seeds
            result = FIGURES[name](**kwargs)
        print(result.format())
        if args.plot:
            print()
            print(result.plot())
        if args.csv:
            path = result.save_csv(args.csv)
            print(f"[rows written to {path}]")
        print(f"[{name} completed in {time.time() - start:.1f}s]\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
