"""Experiment configuration.

One :class:`ExperimentConfig` describes a complete simulation: cluster size
and strategy, namespace scale, client population, workload, and durations.
The paper's scaling methodology (§5.3) — fix per-MDS memory, scale file
system size and client base with the cluster — is captured by the
``*_per_mds`` knobs, so a sweep over ``n_mds`` automatically scales the
whole system.

``scale`` multiplies the expensive dimensions (namespace, clients,
duration) so the same experiment code serves quick CI benches and full
paper-scale runs (set ``REPRO_SCALE`` or pass ``--scale``).
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple, Union

from .._fastpath import FASTPATH_ENV, fastpath_enabled
from ..mds import SimParams
from ..mds.messages import OpType
from ..model.backend import MODEL_ENV, parse_model_env
from ..proxy import ProxySpec
from ..sim.backend import KERNEL_ENV, parse_kernel_env
from .workload import WorkloadSpec, normalize_workload

#: Experiment scale factor: multiplies namespace, population and duration.
SCALE_ENV = "REPRO_SCALE"

#: Sweep execution switch: unset/"auto" picks parallel when it can help,
#: "0"/"off"/"serial"/"false" forces serial, an integer pins worker count.
PARALLEL_ENV = "REPRO_PARALLEL"

#: Within-experiment sharding switch (repro.shard): unset/"0"/"off" runs
#: serial, "on"/"auto" shards viable experiments across available cores,
#: an integer >= 2 pins the shard count.
SHARDS_ENV = "REPRO_SHARDS"

_PARALLEL_SERIAL_TOKENS = frozenset({"0", "off", "serial", "false", "no"})
_PARALLEL_AUTO_TOKENS = frozenset({"", "1", "on", "auto", "true", "yes"})

_SHARDS_OFF_TOKENS = frozenset({"0", "1", "off", "serial", "false", "no"})
_SHARDS_AUTO_TOKENS = frozenset({"", "on", "auto", "true", "yes"})


def env_scale(default: float = 1.0) -> float:
    """Experiment scale factor from the REPRO_SCALE environment variable."""
    raw = os.environ.get(SCALE_ENV)
    if raw is None:
        return default
    value = float(raw)
    if value <= 0:
        raise ValueError(f"{SCALE_ENV} must be positive, got {raw!r}")
    return value


def parse_parallel_env(raw: Optional[str]) -> "Tuple[Optional[bool], Optional[int]]":
    """Interpret a ``REPRO_PARALLEL`` value.

    Returns ``(decision, pinned_workers)``: decision ``False`` forces
    serial, ``True`` means parallel with ``pinned_workers`` processes, and
    ``None`` leaves the choice to the auto heuristic.  Raises on tokens
    that are neither a mode word nor a worker count.
    """
    if raw is None:
        return None, None
    token = raw.strip().lower()
    if token in _PARALLEL_SERIAL_TOKENS:
        return False, None
    if token in _PARALLEL_AUTO_TOKENS:
        return None, None
    try:
        pinned = int(token)
    except ValueError:
        raise ValueError(
            f"{PARALLEL_ENV}={raw!r} is neither a mode token nor a "
            "worker count") from None
    if pinned <= 1:
        return False, None
    return True, pinned


def parse_shards_env(raw: Optional[str]) -> "Union[None, int, str]":
    """Interpret a ``REPRO_SHARDS`` value.

    Returns ``None`` when the variable is unset (no gate), ``0`` to force
    serial, the string ``"auto"`` to shard viable experiments across
    available cores, or a pinned shard count ``>= 2``.  Raises on tokens
    that are neither a mode word nor an integer.
    """
    if raw is None:
        return None
    token = raw.strip().lower()
    if token in _SHARDS_OFF_TOKENS:
        return 0
    if token in _SHARDS_AUTO_TOKENS:
        return "auto"
    try:
        count = int(token)
    except ValueError:
        raise ValueError(
            f"{SHARDS_ENV}={raw!r} is neither a mode token nor a shard "
            "count") from None
    return count if count >= 2 else 0


@dataclass(frozen=True)
class EnvGates:
    """Resolved values of the runtime environment gates.

    ``parallel`` is ``None`` when the decision is left to the sweep
    executor's auto heuristic; ``parallel_workers`` is the pinned worker
    count when ``REPRO_PARALLEL=<n>`` named one.  ``shards`` is the
    resolved within-experiment sharding gate (:func:`parse_shards_env`
    semantics: ``None`` unset, ``0`` serial, ``"auto"``, or a count).
    """

    fastpath: bool
    parallel: Optional[bool]
    parallel_workers: Optional[int]
    scale: float
    shards: "Union[None, int, str]" = None
    #: kernel backend gate (:func:`repro.sim.backend.parse_kernel_env`
    #: semantics: ``None`` default-reference, ``"reference"``,
    #: ``"compiled"`` or ``"auto"``)
    kernel: Optional[str] = None
    #: model backend gate (:func:`repro.model.backend.parse_model_env`
    #: semantics, same token set as ``kernel``)
    model: Optional[str] = None


def env_gates(config: "Optional[ExperimentConfig]" = None, *,
              default_scale: float = 1.0) -> EnvGates:
    """Resolve every runtime gate in one documented place.

    Precedence, per gate: **explicit config field > env var > default**.

    * ``fastpath`` — no config field exists (the fast lane is pure
      memoisation, never a per-experiment knob): ``REPRO_FASTPATH``
      (default on, see :data:`repro._fastpath.FASTPATH_ENV`).
    * ``parallel`` — ``config.parallel`` when set, else ``REPRO_PARALLEL``
      (:func:`parse_parallel_env`), else ``None`` (auto).
    * ``scale`` — ``config.scale`` when a config is given (the field is
      always explicit on a config), else ``REPRO_SCALE``, else
      ``default_scale``.
    * ``shards`` — ``config.shards`` when set, else ``REPRO_SHARDS``
      (:func:`parse_shards_env`), else ``None`` (serial).
    * ``kernel`` — ``config.kernel`` when set, else ``REPRO_KERNEL``
      (:func:`repro.sim.backend.parse_kernel_env`), else ``None``
      (reference).  ``compiled``/``auto`` still degrade silently to the
      reference kernel when the extension is unavailable — resolution to
      an actual backend happens in :func:`repro.sim.backend.resolve_kernel`.
    * ``model`` — ``config.model`` when set, else ``REPRO_MODEL``
      (:func:`repro.model.backend.parse_model_env`), else ``None``
      (reference).  Same silent-fallback contract as ``kernel``;
      resolution happens in :func:`repro.model.backend.resolve_model`.
    """
    parallel, workers = parse_parallel_env(os.environ.get(PARALLEL_ENV))
    if config is not None and config.parallel is not None:
        parallel = config.parallel
    scale = config.scale if config is not None else env_scale(default_scale)
    shards = parse_shards_env(os.environ.get(SHARDS_ENV))
    if config is not None and config.shards is not None:
        shards = config.shards if config.shards >= 2 else 0
    kernel = parse_kernel_env(os.environ.get(KERNEL_ENV))
    if config is not None and config.kernel is not None:
        kernel = parse_kernel_env(config.kernel)
    model = parse_model_env(os.environ.get(MODEL_ENV))
    if config is not None and config.model is not None:
        model = parse_model_env(config.model)
    return EnvGates(fastpath=fastpath_enabled(), parallel=parallel,
                    parallel_workers=workers, scale=scale, shards=shards,
                    kernel=kernel, model=model)


def resolve_shard_count(config: "ExperimentConfig") -> Optional[int]:
    """The effective shard count for one run, or ``None`` for serial.

    ``"auto"`` shards only on multi-core hosts (one core gains nothing
    from process parallelism); an explicit count is honored regardless so
    equivalence tests can force sharding anywhere.  The count is clamped
    to ``n_mds`` — a shard must own at least one node.
    """
    gate = env_gates(config).shards
    if gate is None or gate == 0:
        return None
    if gate == "auto":
        cpus = os.cpu_count() or 1
        if cpus <= 1:
            return None
        count = min(config.n_mds, cpus)
    else:
        count = min(config.n_mds, int(gate))
    return count if count >= 2 else None


@dataclass(frozen=True)
class ExperimentConfig:
    """Everything needed to build and run one simulation."""

    strategy: str = "DynamicSubtree"
    n_mds: int = 4
    seed: int = 42

    # namespace scale (×n_mds, ×scale)
    users_per_mds: int = 4
    files_per_user: int = 120
    shared_tree_files: int = 200

    # client population (×n_mds, ×scale)
    clients_per_mds: int = 24
    think_time_s: float = 0.006  # keeps the cluster near saturation (§5.3)

    # per-MDS cache sizing: exactly one mechanism applies.
    #   cache_fraction — slots = fraction × total metadata (Fig. 4 axis);
    #   cache_capacity_per_mds — fixed absolute slots (Fig. 2 scaling:
    #     "fixing MDS memory and scaling the entire system").
    cache_fraction: Optional[float] = None
    cache_capacity_per_mds: Optional[int] = 400

    # run timing (×scale for duration)
    warmup_s: float = 2.0
    duration_s: float = 4.0

    # workload: a typed spec (ClosedLoopSpec / OpenLoopSpec), or — legacy,
    # deprecated — a kind string combined with the flat knobs below
    # (think_time_s / workload_args / op_weights), which maps onto an
    # equivalent ClosedLoopSpec via the warn-once shim in
    # repro.experiments.workload.
    workload: Union[str, WorkloadSpec] = "general"
    workload_args: Dict[str, float] = field(default_factory=dict)
    op_weights: Optional[Dict[OpType, float]] = None

    # adaptive proxy tier in front of the cluster (None = clients talk to
    # the MDS nodes directly, exactly the pre-proxy wiring)
    proxy: Optional[ProxySpec] = None

    # observability: fraction of requests carrying a span trace (0.0 keeps
    # the hot path untraced and event-for-event identical to an untraced
    # run; latency histograms are recorded regardless), and the capacity
    # of the in-memory trace ring buffer.
    trace_sample_rate: float = 0.0
    trace_buffer: int = 4096

    params: SimParams = field(default_factory=SimParams)
    scale: float = 1.0

    # sweep execution: None lets repro.parallel decide (REPRO_PARALLEL /
    # auto); False forces any sweep containing this config to run serially
    # in-process (debugging, CI reproducibility).  Never affects results —
    # serial and parallel runs are bit-identical by contract.
    parallel: Optional[bool] = None

    # within-experiment sharding (repro.shard): None defers to the
    # REPRO_SHARDS env gate, <2 forces serial, >=2 requests that many
    # logical processes.  Like ``parallel``, never affects results —
    # sharded runs are bit-identical to serial by contract (and fall back
    # to serial when the config is outside the shardable class).
    shards: Optional[int] = None

    # event-kernel backend (repro.sim.backend): None defers to the
    # REPRO_KERNEL env gate; "reference" pins the pure-python kernel,
    # "compiled"/"auto" prefer the C extension.  Never affects results —
    # the compiled kernel is bit-identical to the reference by contract
    # (and falls back to it when the extension is unavailable).
    kernel: Optional[str] = None

    # model backend (repro.model.backend): None defers to the REPRO_MODEL
    # env gate; "reference" pins the pure-python cache/memo/popularity
    # structures, "compiled"/"auto" prefer the C extension.  Same
    # bit-identity and silent-fallback contract as ``kernel``.
    model: Optional[str] = None

    # -- derived ------------------------------------------------------------
    @property
    def n_users(self) -> int:
        return max(1, round(self.users_per_mds * self.n_mds * self.scale))

    @property
    def n_files_per_user(self) -> int:
        return max(5, round(self.files_per_user * min(1.0, self.scale * 2)))

    @property
    def n_clients(self) -> int:
        return max(1, round(self.clients_per_mds * self.n_mds * self.scale))

    @property
    def run_until_s(self) -> float:
        return self.warmup_s + self.duration_s * max(0.25, self.scale)

    @property
    def measure_window(self) -> "tuple[float, float]":
        return (self.warmup_s, self.run_until_s)

    def workload_spec(self) -> WorkloadSpec:
        """The workload as a validated typed spec.

        Folds the legacy flat-knob form (string ``workload`` plus
        ``think_time_s``/``workload_args``/``op_weights``) into the
        equivalent :class:`~repro.experiments.workload.ClosedLoopSpec`,
        warning once per process; typed specs validate and pass through.
        """
        return normalize_workload(self.workload,
                                  think_time_s=self.think_time_s,
                                  workload_args=self.workload_args,
                                  op_weights=self.op_weights)

    def replace(self, **kw) -> "ExperimentConfig":
        return dataclasses.replace(self, **kw)
