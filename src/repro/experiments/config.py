"""Experiment configuration.

One :class:`ExperimentConfig` describes a complete simulation: cluster size
and strategy, namespace scale, client population, workload, and durations.
The paper's scaling methodology (§5.3) — fix per-MDS memory, scale file
system size and client base with the cluster — is captured by the
``*_per_mds`` knobs, so a sweep over ``n_mds`` automatically scales the
whole system.

``scale`` multiplies the expensive dimensions (namespace, clients,
duration) so the same experiment code serves quick CI benches and full
paper-scale runs (set ``REPRO_SCALE`` or pass ``--scale``).
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..mds import SimParams
from ..mds.messages import OpType


def env_scale(default: float = 1.0) -> float:
    """Experiment scale factor from the REPRO_SCALE environment variable."""
    raw = os.environ.get("REPRO_SCALE")
    if raw is None:
        return default
    value = float(raw)
    if value <= 0:
        raise ValueError(f"REPRO_SCALE must be positive, got {raw!r}")
    return value


@dataclass(frozen=True)
class ExperimentConfig:
    """Everything needed to build and run one simulation."""

    strategy: str = "DynamicSubtree"
    n_mds: int = 4
    seed: int = 42

    # namespace scale (×n_mds, ×scale)
    users_per_mds: int = 4
    files_per_user: int = 120
    shared_tree_files: int = 200

    # client population (×n_mds, ×scale)
    clients_per_mds: int = 24
    think_time_s: float = 0.006  # keeps the cluster near saturation (§5.3)

    # per-MDS cache sizing: exactly one mechanism applies.
    #   cache_fraction — slots = fraction × total metadata (Fig. 4 axis);
    #   cache_capacity_per_mds — fixed absolute slots (Fig. 2 scaling:
    #     "fixing MDS memory and scaling the entire system").
    cache_fraction: Optional[float] = None
    cache_capacity_per_mds: Optional[int] = 400

    # run timing (×scale for duration)
    warmup_s: float = 2.0
    duration_s: float = 4.0

    # workload
    workload: str = "general"  # general | scaling | shifting | scientific | flash
    workload_args: Dict[str, float] = field(default_factory=dict)
    op_weights: Optional[Dict[OpType, float]] = None

    # observability: fraction of requests carrying a span trace (0.0 keeps
    # the hot path untraced and event-for-event identical to an untraced
    # run; latency histograms are recorded regardless), and the capacity
    # of the in-memory trace ring buffer.
    trace_sample_rate: float = 0.0
    trace_buffer: int = 4096

    params: SimParams = field(default_factory=SimParams)
    scale: float = 1.0

    # sweep execution: None lets repro.parallel decide (REPRO_PARALLEL /
    # auto); False forces any sweep containing this config to run serially
    # in-process (debugging, CI reproducibility).  Never affects results —
    # serial and parallel runs are bit-identical by contract.
    parallel: Optional[bool] = None

    # -- derived ------------------------------------------------------------
    @property
    def n_users(self) -> int:
        return max(1, round(self.users_per_mds * self.n_mds * self.scale))

    @property
    def n_files_per_user(self) -> int:
        return max(5, round(self.files_per_user * min(1.0, self.scale * 2)))

    @property
    def n_clients(self) -> int:
        return max(1, round(self.clients_per_mds * self.n_mds * self.scale))

    @property
    def run_until_s(self) -> float:
        return self.warmup_s + self.duration_s * max(0.25, self.scale)

    @property
    def measure_window(self) -> "tuple[float, float]":
        return (self.warmup_s, self.run_until_s)

    def replace(self, **kw) -> "ExperimentConfig":
        return dataclasses.replace(self, **kw)
