"""One experiment per figure in the paper's evaluation (§5, Figs. 2-7).

Each ``fig*`` function runs the simulations and returns a
:class:`FigureResult` whose rows are the same series the paper plots.
``scale`` trades fidelity for wall-clock time: the benchmark suite uses the
small default, a full run (``REPRO_SCALE=1`` or ``--scale 1``) uses larger
namespaces, populations and durations.

Shared methodology (§5.1/§5.3): per-MDS cache is fixed while file-system
size, client base and cluster size scale together; the initial subtree
partition hashes directories near the root; the load metric is a weighted
combination of throughput and cache misses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..mds import SimParams
from ..metrics import format_table
from ..partition import strategy_names
from .config import ExperimentConfig
from .runner import (SteadyStateResult, TimelineResult, run_steady_state,
                     run_timeline)

#: cluster sizes swept by the scaling experiments, by scale regime
SIZES_SMALL = [4, 6, 8]
SIZES_MEDIUM = [4, 6, 8, 10, 12]
SIZES_FULL = [5, 10, 15, 20, 25, 30]


@dataclass
class FigureResult:
    """A reproduced figure: named columns plus the raw row data."""

    figure: str
    title: str
    headers: List[str]
    rows: List[Sequence[object]]
    notes: str = ""
    series: Dict[str, object] = field(default_factory=dict)

    def format(self) -> str:
        text = format_table(self.headers, self.rows,
                            title=f"{self.figure}: {self.title}")
        if self.notes:
            text += f"\n({self.notes})"
        return text

    def plottable(self) -> "Dict[str, List[tuple]]":
        """The series reduced to (x, y) pairs for the ASCII chart.

        Time-series figures carry richer tuples: Fig. 5's
        ``(t, min, avg, max)`` plots the average; Fig. 7's
        ``(t, replies, forwards)`` expands into two curves per run.
        """
        out: Dict[str, List[tuple]] = {}
        for name, points in self.series.items():
            points = list(points)
            if not points:
                continue
            arity = len(points[0])
            if arity == 2:
                out[str(name)] = points
            elif arity == 4:  # (t, min, avg, max) -> average
                out[f"{name} avg"] = [(t, avg) for t, _mn, avg, _mx in points]
            elif arity == 3:  # (t, replies, forwards)
                out[f"{name} replies"] = [(t, r) for t, r, _f in points]
                out[f"{name} forwards"] = [(t, f) for t, _r, f in points]
        return out

    def plot(self, width: int = 64, height: int = 16) -> str:
        """Render the figure as a terminal line chart."""
        from ..metrics.asciichart import render_chart

        return render_chart(self.plottable(), width=width, height=height,
                            title=f"{self.figure}: {self.title}",
                            x_label=self.headers[0])

    def to_csv(self) -> str:
        """The figure's rows as CSV (headers first)."""
        import csv
        import io

        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(self.headers)
        writer.writerows(self.rows)
        return buffer.getvalue()

    def save_csv(self, directory) -> str:
        """Write ``<figN>.csv`` into ``directory``; returns the path."""
        import os

        os.makedirs(directory, exist_ok=True)
        name = self.figure.lower().replace(" ", "").replace("figure", "fig")
        path = os.path.join(directory, f"{name}.csv")
        with open(path, "w", encoding="utf-8") as fp:
            fp.write(self.to_csv())
        return path


def _sizes_for(scale: float) -> List[int]:
    if scale >= 1.0:
        return SIZES_FULL
    if scale >= 0.4:
        return SIZES_MEDIUM
    return SIZES_SMALL


def scaling_config(strategy: str, n_mds: int, scale: float,
                   seed: int = 42, **overrides) -> ExperimentConfig:
    """The Fig. 2/3 configuration: fixed MDS memory, everything else scales."""
    base = dict(
        strategy=strategy,
        n_mds=n_mds,
        seed=seed,
        scale=scale,
        workload="scaling",
        users_per_mds=10,
        files_per_user=55,
        clients_per_mds=40,
        think_time_s=0.002,
        cache_capacity_per_mds=250,
        warmup_s=1.5,
        duration_s=4.0,
        params=SimParams(osds_per_mds=1),
        workload_args={"move_dir_prob": 0.3},
    )
    base.update(overrides)
    return ExperimentConfig(**base)


def _averaged_steady(configs: List[ExperimentConfig]) -> SteadyStateResult:
    """Run several seeds of one configuration and average the aggregates.

    The configs are submitted through :mod:`repro.parallel` (imported
    lazily: the executor's canonical tasks live in the runner module, so a
    module-level import here would be circular), which fans them across
    worker processes unless ``REPRO_PARALLEL`` or the configs force serial
    mode.  Results are identical either way.
    """
    from ..parallel import require_ok, run_many

    return _average_results(
        require_ok(run_many(configs, task=run_steady_state)))


def _average_results(results: List[SteadyStateResult]) -> SteadyStateResult:
    """Average the aggregates of several seeds of one configuration."""
    n = len(results)
    first = results[0]
    return SteadyStateResult(
        config=first.config,
        mean_node_throughput=sum(r.mean_node_throughput for r in results) / n,
        node_throughputs=first.node_throughputs,
        hit_rate=sum(r.hit_rate for r in results) / n,
        prefix_fraction=sum(r.prefix_fraction for r in results) / n,
        forward_fraction=sum(r.forward_fraction for r in results) / n,
        total_ops=sum(r.total_ops for r in results),
        client_mean_latency_s=sum(r.client_mean_latency_s
                                  for r in results) / n,
        errors=sum(r.errors for r in results),
        total_metadata=first.total_metadata,
        latency_p50_s=sum(r.latency_p50_s for r in results) / n,
        latency_p95_s=sum(r.latency_p95_s for r in results) / n,
        latency_p99_s=sum(r.latency_p99_s for r in results) / n,
        offered_ops=sum(r.offered_ops for r in results),
        dropped_ops=sum(r.dropped_ops for r in results),
        slo_violations=sum(r.slo_violations for r in results),
        goodput_ops_per_s=sum(r.goodput_ops_per_s for r in results) / n,
    )


def _scaling_sweep(scale: float, seeds: int,
                   strategies: Optional[List[str]] = None,
                   sizes: Optional[List[int]] = None,
                   progress: Optional[Callable[[str], None]] = None,
                   ) -> Dict[str, Dict[int, SteadyStateResult]]:
    from ..parallel import require_ok, run_many

    strategies = strategies or strategy_names()
    sizes = sizes or _sizes_for(scale)
    # One flat submission for the whole sweep: strategies × sizes × seeds
    # tasks fan out together instead of one seed-batch at a time.
    cells = [(name, n_mds) for name in strategies for n_mds in sizes]
    configs = [scaling_config(name, n_mds, scale, seed=42 + 7 * s)
               for name, n_mds in cells for s in range(seeds)]
    flat = require_ok(run_many(configs, task=run_steady_state))
    out: Dict[str, Dict[int, SteadyStateResult]] = {}
    for j, (name, n_mds) in enumerate(cells):
        out.setdefault(name, {})[n_mds] = _average_results(
            flat[j * seeds:(j + 1) * seeds])
        if progress:
            progress(f"{name} n_mds={n_mds} done")
    return out


# ---------------------------------------------------------------------------
# Figure 2: MDS throughput as the whole system scales
# ---------------------------------------------------------------------------
def fig2(scale: float = 0.5, seeds: int = 2,
         progress: Optional[Callable[[str], None]] = None) -> FigureResult:
    """Average per-MDS throughput vs cluster size, five strategies."""
    sweep = _scaling_sweep(scale, seeds, progress=progress)
    sizes = sorted(next(iter(sweep.values())).keys())
    headers = ["mds_cluster_size"] + strategy_names()
    rows = []
    for n in sizes:
        rows.append([n] + [round(sweep[s][n].mean_node_throughput, 1)
                           for s in strategy_names()])
    return FigureResult(
        figure="Figure 2",
        title="Average MDS throughput (ops/sec) as file system, cluster "
              "size, and client base are scaled",
        headers=headers, rows=rows,
        notes="expected shape: subtree strategies highest; DirHash below; "
              "FileHash lowest and degrading; LazyHybrid flat (§5.3)",
        series={s: [(n, sweep[s][n].mean_node_throughput) for n in sizes]
                for s in strategy_names()})


# ---------------------------------------------------------------------------
# Figure 3: cache consumed by prefix inodes
# ---------------------------------------------------------------------------
def fig3(scale: float = 0.5, seeds: int = 2,
         progress: Optional[Callable[[str], None]] = None) -> FigureResult:
    """Percentage of MDS cache devoted to prefix inodes vs cluster size.

    The paper plots four strategies; Lazy Hybrid is excluded because it
    caches no prefixes by design (no path traversal).
    """
    strategies = ["DynamicSubtree", "StaticSubtree", "DirHash", "FileHash"]
    sweep = _scaling_sweep(scale, seeds, strategies=strategies,
                           progress=progress)
    sizes = sorted(next(iter(sweep.values())).keys())
    headers = ["mds_cluster_size"] + [f"{s}_pct" for s in strategies]
    rows = []
    for n in sizes:
        rows.append([n] + [round(100 * sweep[s][n].prefix_fraction, 1)
                           for s in strategies])
    return FigureResult(
        figure="Figure 3",
        title="Percentage of cache devoted to prefix inodes as the system "
              "scales",
        headers=headers, rows=rows,
        notes="expected shape: hashed distributions devote much larger and "
              "growing cache fractions to prefixes; dynamic subtree "
              "slightly above static (re-delegation anchors) (§5.3.1)",
        series={s: [(n, sweep[s][n].prefix_fraction) for n in sizes]
                for s in strategies})


# ---------------------------------------------------------------------------
# Figure 4: cache hit rate vs cache size
# ---------------------------------------------------------------------------
def fig4(scale: float = 0.5, n_mds: int = 8, seeds: int = 1,
         fractions: Optional[List[float]] = None,
         progress: Optional[Callable[[str], None]] = None) -> FigureResult:
    """Cache hit rate as a function of per-node cache size / total metadata."""
    from ..parallel import require_ok, run_many

    fractions = fractions or [0.05, 0.1, 0.2, 0.3, 0.45, 0.6]
    cells = [(name, frac) for name in strategy_names() for frac in fractions]
    configs = [scaling_config(name, n_mds, scale, seed=42 + 7 * s,
                              cache_capacity_per_mds=None,
                              cache_fraction=frac)
               for name, frac in cells for s in range(seeds)]
    flat = require_ok(run_many(configs, task=run_steady_state))
    results: Dict[str, List[float]] = {}
    for j, (name, frac) in enumerate(cells):
        averaged = _average_results(flat[j * seeds:(j + 1) * seeds])
        results.setdefault(name, []).append(averaged.hit_rate)
        if progress:
            progress(f"{name} fraction={frac} done")
    headers = ["cache_fraction"] + strategy_names()
    rows = []
    for i, frac in enumerate(fractions):
        rows.append([frac] + [round(results[s][i], 4)
                              for s in strategy_names()])
    return FigureResult(
        figure="Figure 4",
        title="Cache hit rate as a function of cache size (fraction of "
              "total metadata)",
        headers=headers, rows=rows,
        notes="expected shape: hit rates converge as the cache grows; "
              "replicated prefixes depress hashed strategies at small "
              "caches; LazyHybrid lowest (no prefetch) (§5.3.1)",
        series={s: list(zip(fractions, results[s]))
                for s in strategy_names()})


# ---------------------------------------------------------------------------
# Figures 5 & 6 share one experiment: the workload shift
# ---------------------------------------------------------------------------
def shift_config(strategy: str, scale: float, seed: int = 42,
                 **overrides) -> ExperimentConfig:
    """Fig. 5/6 configuration: general workload that shifts mid-run."""
    # A lightly-loaded baseline so the post-shift hot spot — half the
    # clients converging on one subtree — saturates its authority's CPU,
    # which is the §5.3.2 scenario.  Ample cache and OSDs keep disk noise
    # from masking the imbalance signal.
    shift_time = 10.0 * max(0.5, scale)
    base = dict(
        strategy=strategy,
        n_mds=6,
        seed=seed,
        scale=scale,
        workload="shifting",
        users_per_mds=10,
        files_per_user=55,
        clients_per_mds=40,
        think_time_s=0.01,
        cache_capacity_per_mds=800,
        warmup_s=0.0,
        duration_s=26.0,
        params=SimParams(osds_per_mds=2),
        workload_args={"shift_time_s": shift_time, "migrate_fraction": 0.5},
    )
    base.update(overrides)
    return ExperimentConfig(**base)


def run_shift_experiment(scale: float = 0.5,
                         progress: Optional[Callable[[str], None]] = None,
                         ) -> Dict[str, TimelineResult]:
    """Dynamic vs static subtree under the §5.3.2 workload shift."""
    from ..parallel import require_ok, run_many_timeline

    strategies = ("DynamicSubtree", "StaticSubtree")
    configs = [shift_config(strategy, scale) for strategy in strategies]
    runs = require_ok(run_many_timeline(configs, sample_interval_s=1.0,
                                        task=run_timeline))
    out = {}
    for strategy, run in zip(strategies, runs):
        out[strategy] = run
        if progress:
            progress(f"{strategy} shift run done")
    return out


def fig5(scale: float = 0.5,
         progress: Optional[Callable[[str], None]] = None,
         shift_results: Optional[Dict[str, TimelineResult]] = None,
         ) -> FigureResult:
    """Range and average MDS throughput under a dynamic workload."""
    results = shift_results or run_shift_experiment(scale, progress)
    dyn = results["DynamicSubtree"].throughput_series
    sta = results["StaticSubtree"].throughput_series
    headers = ["time", "dyn_min", "dyn_avg", "dyn_max",
               "static_min", "static_avg", "static_max"]
    rows = []
    for (t, dmin, davg, dmax), (_t, smin, savg, smax) in zip(dyn, sta):
        rows.append([round(t, 1), round(dmin, 1), round(davg, 1),
                     round(dmax, 1), round(smin, 1), round(savg, 1),
                     round(smax, 1)])
    shift_t = results["DynamicSubtree"].config.workload_args["shift_time_s"]
    return FigureResult(
        figure="Figure 5",
        title="Range and average MDS throughput under a workload shift "
              f"(clients migrate at t={shift_t:.0f}s)",
        headers=headers, rows=rows,
        notes="expected shape: after the shift the static partition stays "
              "unbalanced (wide min-max range, lower average); the dynamic "
              "partition re-delegates and recovers higher average "
              "throughput (§5.3.2)",
        series={k: v.throughput_series for k, v in results.items()})


def fig6(scale: float = 0.5,
         progress: Optional[Callable[[str], None]] = None,
         shift_results: Optional[Dict[str, TimelineResult]] = None,
         ) -> FigureResult:
    """Portion of requests forwarded under the same workload shift."""
    results = shift_results or run_shift_experiment(scale, progress)
    dyn = results["DynamicSubtree"].forward_series
    sta = results["StaticSubtree"].forward_series
    headers = ["time", "dynamic_forwarded", "static_forwarded"]
    rows = [[round(t, 1), round(d, 4), round(s, 4)]
            for (t, d), (_t, s) in zip(dyn, sta)]
    return FigureResult(
        figure="Figure 6",
        title="Forwarded requests for static and dynamic partitioning "
              "under a dynamic workload",
        headers=headers, rows=rows,
        notes="expected shape: a spike when clients move to unexplored "
              "territory, then a higher residual level for dynamic "
              "partitioning (clients must rediscover migrated metadata) "
              "(§5.3.3)",
        series={k: v.forward_series for k, v in results.items()})


# ---------------------------------------------------------------------------
# Figure 7: flash crowd with and without traffic control
# ---------------------------------------------------------------------------
def flash_config(traffic_control: bool, scale: float,
                 seed: int = 42, **overrides) -> ExperimentConfig:
    # One request per client: it is the clients' *ignorance* of the
    # partition that spreads the crowd over random nodes (§4.4); repeat
    # requests would learn the authority and change the scenario.
    base = dict(
        strategy="DynamicSubtree",
        n_mds=6,
        seed=seed,
        scale=scale,
        workload="flash",
        users_per_mds=6,
        files_per_user=30,
        clients_per_mds=300,     # ×6 MDS ×scale -> ~1000-2000 clients
        think_time_s=0.01,
        cache_capacity_per_mds=400,
        warmup_s=0.0,
        duration_s=3.0,
        params=SimParams(
            traffic_control=traffic_control,
            osds_per_mds=2,
            replicate_threshold=60.0,
            popularity_halflife_s=0.5,
            balance_interval_s=1e9,  # isolate traffic control from balancing
        ),
        workload_args={"start_s": 0.3, "arrival_jitter_s": 0.15,
                       "requests_per_client": 1},
    )
    base.update(overrides)
    return ExperimentConfig(**base)


def fig7(scale: float = 0.5,
         progress: Optional[Callable[[str], None]] = None) -> FigureResult:
    """Flash crowd: replies/forwards per second, traffic control off vs on."""
    from ..parallel import require_ok, run_many_timeline

    settings = (False, True)
    configs = [flash_config(enabled, scale) for enabled in settings]
    runs = require_ok(run_many_timeline(configs, sample_interval_s=0.1,
                                        task=run_timeline))
    results = {}
    for enabled, run in zip(settings, runs):
        results[enabled] = run
        if progress:
            progress(f"traffic_control={enabled} done")
    headers = ["time", "tc_off_replies", "tc_off_forwards",
               "tc_on_replies", "tc_on_forwards"]
    rows = []
    for (t, off_r, off_f), (_t, on_r, on_f) in zip(
            results[False].rate_series, results[True].rate_series):
        rows.append([round(t, 2), round(off_r, 0), round(off_f, 0),
                     round(on_r, 0), round(on_f, 0)])
    return FigureResult(
        figure="Figure 7",
        title="Flash crowd: cluster request rates without (top) and with "
              "(bottom) traffic control",
        headers=headers, rows=rows,
        notes="expected shape: without traffic control forwards dominate "
              "(every node relays to the one authority, which throttles "
              "replies); with it the item replicates quickly and replies "
              "vastly outnumber forwards (§5.4)",
        series={("off" if not k else "on"): v.rate_series
                for k, v in results.items()})


FIGURES: Dict[str, Callable[..., FigureResult]] = {
    "fig2": fig2,
    "fig3": fig3,
    "fig4": fig4,
    "fig5": fig5,
    "fig6": fig6,
    "fig7": fig7,
}
