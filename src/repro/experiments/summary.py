"""Typed run summaries: one object instead of scattered ``aggregate_*`` calls.

:func:`summarize_simulation` (surfaced as ``Simulation.summary()``) folds
the cluster counters, client stats and tracer histograms into a single
:class:`ClusterSummary`, so benchmarks and figure drivers stop reaching
into ``sim.cluster.nodes[*].stats`` by hand.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ..metrics import (EMPTY_SUMMARY, LatencyHistogram, LatencySummary,
                       format_table)
from ..model.backend import model_info
from ..sim.backend import kernel_info

if TYPE_CHECKING:  # pragma: no cover
    from ._build import Simulation


@dataclass(frozen=True)
class ClusterSummary:
    """Aggregates of one simulation run.

    Throughput is measured over ``window``; everything else is cumulative
    since the start of the run (matching the paper's methodology, where
    rate metrics use the post-warmup window but hit rates are whole-run).
    """

    n_mds: int
    window: Tuple[float, float]
    total_ops: int               # requests completed by clients
    total_served: int            # replies sent by MDS nodes
    total_forwards: int          # intra-cluster forwards
    errors: int
    throughput_ops_per_s: float  # mean per-MDS reply rate over the window
    node_throughputs: List[float]
    hit_rate: float
    forward_fraction: float
    prefix_fraction: float
    mean_latency_s: float
    latency: LatencySummary                  # all ops pooled
    latency_by_op: Dict[str, LatencySummary]  # op name -> digest
    total_metadata: int
    #: event-kernel counters (events scheduled, fast-lane resumes, pool
    #: reuse) from :meth:`Environment.kernel_stats`.  Excluded from repr
    #: and comparison: they describe how the run was *executed*, not what
    #: it computed, and must not break the fast-lane equivalence contract
    #: (identical summary reprs in both modes).
    kernel: Optional[Dict[str, float]] = field(default=None, repr=False,
                                               compare=False)
    #: overload accounting (open-loop generators / bounded inboxes).  All
    #: zero for classic closed-loop runs; excluded from repr so those
    #: summaries stay byte-identical to their pre-overload form.  The
    #: values themselves are deterministic and mode-invariant (they DO
    #: participate in ``==``).
    offered_ops: int = field(default=0, repr=False)
    dropped_ops: int = field(default=0, repr=False)
    slo_violations: int = field(default=0, repr=False)
    #: within-SLO completions per second over the window
    goodput_ops_per_s: float = field(default=0.0, repr=False)
    #: aggregated proxy-tier counters, when a proxy fronted the cluster
    proxy: Optional[Dict[str, int]] = field(default=None, repr=False)

    @property
    def latency_p50_s(self) -> float:
        return self.latency.p50_s

    @property
    def latency_p95_s(self) -> float:
        return self.latency.p95_s

    @property
    def latency_p99_s(self) -> float:
        return self.latency.p99_s

    def format(self) -> str:
        """Human-readable two-part report: aggregates, then per-op latency."""
        t0, t1 = self.window
        rows = [
            ("mds nodes", self.n_mds),
            ("total metadata", self.total_metadata),
            ("window (s)", f"{t0:.1f}-{t1:.1f}"),
            ("client ops", self.total_ops),
            ("errors", self.errors),
            ("per-MDS throughput (ops/s)",
             round(self.throughput_ops_per_s, 1)),
            ("cache hit rate", round(self.hit_rate, 4)),
            ("forward fraction", round(self.forward_fraction, 4)),
            ("prefix cache fraction", round(self.prefix_fraction, 4)),
            ("mean latency (ms)", round(self.mean_latency_s * 1e3, 3)),
            ("p50/p95/p99 latency (ms)",
             f"{self.latency.p50_s * 1e3:.3f}/"
             f"{self.latency.p95_s * 1e3:.3f}/"
             f"{self.latency.p99_s * 1e3:.3f}"),
        ]
        if self.offered_ops or self.dropped_ops or self.slo_violations:
            rows.extend([
                ("offered ops", self.offered_ops),
                ("dropped ops", self.dropped_ops),
                ("slo violations", self.slo_violations),
                ("goodput (ops/s)", round(self.goodput_ops_per_s, 1)),
            ])
        text = format_table(["metric", "value"], rows,
                            title="cluster summary")
        if self.proxy:
            proxy_rows = sorted(self.proxy.items())
            text += "\n" + format_table(["counter", "value"], proxy_rows,
                                        title="proxy tier")
        if self.latency_by_op:
            op_rows = [
                (op, s.count, round(s.mean_s * 1e3, 3),
                 round(s.p50_s * 1e3, 3), round(s.p95_s * 1e3, 3),
                 round(s.p99_s * 1e3, 3))
                for op, s in self.latency_by_op.items()]
            text += "\n" + format_table(
                ["op", "count", "mean_ms", "p50_ms", "p95_ms", "p99_ms"],
                op_rows, title="latency by op type")
        return text


def summarize_simulation(sim: "Simulation",
                         window: Optional[Tuple[float, float]] = None
                         ) -> ClusterSummary:
    """Build a :class:`ClusterSummary` from a (partially) run simulation."""
    cluster = sim.cluster
    if window is None:
        t0, t1 = sim.config.measure_window
        t1 = min(t1, sim.env.now)
        t0 = min(t0, t1)
        window = (t0, t1)
    ops = sum(c.stats.ops_completed for c in sim.clients)
    lat = [c.stats.mean_latency_s for c in sim.clients
           if c.stats.ops_completed]
    stats = cluster.node_stats()
    # overload accounting: open-loop sources carry the extra counters;
    # duck-typing keeps classic closed-loop clients zero-cost
    offered = 0
    slo_viol = 0
    good = 0
    open_latencies: List[float] = []
    for c in sim.clients:
        cs = c.stats
        offered += getattr(cs, "offered", 0)
        slo_viol += getattr(cs, "slo_violations", 0)
        buckets = getattr(cs, "good_by_time", None)
        if buckets is not None:
            good += buckets.count_in(*window)
        samples = getattr(cs, "ok_latency_by_time", None)
        if samples:
            open_latencies.extend(
                l for t, l in samples if window[0] <= t < window[1])
    width = window[1] - window[0]
    goodput = good / width if width > 0 else 0.0
    dropped = sum(s.drops for s in stats)
    proxy_stats = sim.proxy.stats_dict() if sim.proxy is not None else None
    if sim.tracer is not None:
        overall = sim.tracer.latency_overall.summary()
        by_op = sim.tracer.latency_summaries()
    else:
        overall = EMPTY_SUMMARY
        by_op = {}
    if open_latencies:
        # open-loop runs report the measure-window tail: the run-wide
        # tracer histogram folds cold-start (warmup) latencies into p99,
        # which is exactly what an overload figure must not measure
        hist = LatencyHistogram()
        for latency in open_latencies:
            hist.record(latency)
        overall = hist.summary()
    return ClusterSummary(
        n_mds=cluster.n_mds,
        window=window,
        total_ops=ops,
        total_served=sum(s.ops_served for s in stats),
        total_forwards=sum(s.forwards for s in stats),
        errors=sum(c.stats.errors for c in sim.clients),
        throughput_ops_per_s=cluster.mean_node_throughput(*window),
        node_throughputs=cluster.node_throughputs(*window),
        hit_rate=cluster.cluster_hit_rate(),
        forward_fraction=cluster.forward_fraction(),
        prefix_fraction=cluster.mean_prefix_fraction(),
        mean_latency_s=sum(lat) / len(lat) if lat else 0.0,
        latency=overall,
        latency_by_op=by_op,
        total_metadata=sim.total_metadata,
        kernel={**sim.env.kernel_stats(), **kernel_info(sim.env),
                **model_info(sim.model_backend)},
        offered_ops=offered,
        dropped_ops=dropped,
        slo_violations=slo_viol,
        goodput_ops_per_s=goodput,
        proxy=proxy_stats,
    )
