"""Extension experiments beyond the paper's figures.

The paper's workload section (§5.2) motivates scientific-computing bursts
— every compute node opening the same input file or checkpointing into one
shared directory — but the evaluation only shows the general-purpose
scaling and the synthetic flash crowd.  ``extA_scientific`` closes that
gap: it runs the LLNL-style burst workload against every partitioning
strategy and measures how much of the burst each can absorb.

Expected outcome, from the paper's arguments: only the dynamic subtree
partition can replicate the burst target on demand (§4.4), so it should
absorb shared-file bursts at cluster bandwidth while every other strategy
funnels them through one authority.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..mds import SimParams
from ..partition import strategy_names
from ._build import build_simulation
from .config import ExperimentConfig
from .figures import FigureResult


def scientific_config(strategy: str, scale: float = 0.5,
                      seed: int = 42, **overrides) -> ExperimentConfig:
    """Burst-heavy scientific workload on a mid-size cluster."""
    base = dict(
        strategy=strategy,
        n_mds=6,
        seed=seed,
        scale=scale,
        workload="scientific",
        users_per_mds=6,
        files_per_user=40,
        clients_per_mds=60,
        think_time_s=0.002,
        cache_capacity_per_mds=500,
        warmup_s=0.0,
        duration_s=8.0,
        params=SimParams(
            replicate_threshold=120.0,
            popularity_halflife_s=0.5,
        ),
        workload_args={"phase_len_s": 1.0},
    )
    base.update(overrides)
    return ExperimentConfig(**base)


def extA_scientific(scale: float = 0.5,
                    progress: Optional[Callable[[str], None]] = None,
                    ) -> FigureResult:
    """Shared-file burst absorption per strategy (extension experiment A)."""
    rows: List[List[object]] = []
    series: Dict[str, object] = {}
    for name in strategy_names():
        cfg = scientific_config(name, scale)
        sim = build_simulation(cfg)
        sim.run_to(cfg.run_until_s)
        cluster = sim.cluster
        served = [n.stats.ops_served for n in cluster.nodes]
        total_ops = sum(c.stats.ops_completed for c in sim.clients)
        latencies = sorted(l for c in sim.clients
                           for l in c.stats.latencies)
        p99 = latencies[int(0.99 * (len(latencies) - 1))] if latencies \
            else 0.0
        busiest_share = max(served) / max(1, sum(served))
        rows.append([
            name,
            round(total_ops / cfg.run_until_s, 1),
            round(100 * busiest_share, 1),
            round(1000 * p99, 2),
            sum(n.stats.replications_pushed for n in cluster.nodes),
        ])
        series[name] = {"served": served, "total_ops": total_ops}
        if progress:
            progress(f"{name} done")
    return FigureResult(
        figure="Extension A",
        title="Scientific burst workload (LLNL-style, §5.2) across "
              "strategies",
        headers=["strategy", "cluster_ops_per_s", "busiest_node_share_pct",
                 "client_p99_ms", "replications"],
        rows=rows,
        notes="expected shape: dynamic subtree absorbs shared-file bursts "
              "by replicating the hot input (lowest busiest-node share and "
              "p99); static/hashed strategies funnel the burst through one "
              "authority",
        series=series)
