"""Overload experiments: open-loop load, admission control, proxy tier.

The paper's evaluation drives the cluster with closed-loop clients, which
by construction cannot offer more load than the cluster absorbs.  These
extension figures use the open-loop generators
(:class:`~repro.experiments.workload.OpenLoopSpec`) to push *past*
saturation — the "millions of users" regime — and measure what the paper's
mechanisms do about it:

* :func:`fig_overload` — goodput (within-SLO completions/s) versus offered
  load.  Without admission control an overloaded node queues without bound
  and goodput collapses past the knee; with bounded inboxes the excess is
  shed with explicit overload replies and goodput stays pinned near
  capacity.  Compared across static subtree, dynamic subtree, and dynamic
  subtree fronted by the adaptive proxy tier.
* :func:`fig_hotspot` — a flash-crowd hotspot riding bursty open-loop
  traffic near saturation.  Head-to-head: the paper's §4.4 traffic control
  (replicate the hot inode across the MDS cluster) versus the MIDAS-style
  proxy tier (absorb and coalesce hot reads *before* they reach the
  cluster), versus no countermeasure.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..mds import SimParams
from ..proxy import ProxySpec
from .config import ExperimentConfig
from .figures import FigureResult
from .runner import run_steady_state
from .workload import OpenLoopSpec

#: cluster size for every overload scenario
OVERLOAD_N_MDS = 4

#: nominal service capacity of that cluster: each MDS burns ``cpu_op_s``
#: (0.3 ms) per op, so 4 nodes serve ~13,333 ops/s when every op hits cache
NOMINAL_CAPACITY_OPS_S = OVERLOAD_N_MDS / 0.0003

#: each nominal user issues metadata ops at this rate; the offered load of
#: a scenario is written down as a user population (fraction × capacity /
#: this rate ≈ 1.3 M users at the knee)
PER_USER_OPS_S = 0.01

#: offered-load fractions of nominal capacity swept by fig_overload
OVERLOAD_FRACTIONS = [0.5, 0.8, 1.0, 1.25, 1.6]

#: bounded-inbox depth when admission control is on.  Worst-case queueing
#: behind 24 outstanding ops is ~24 × 0.3 ms ≈ 7 ms — inside the 10 ms
#: SLO, so every *admitted* request can still complete as goodput.
ADMISSION_INBOX = 24

#: client-observed latency SLO defining goodput
SLO_LATENCY_S = 0.010


def overload_config(offered_fraction: float, *,
                    strategy: str = "DynamicSubtree",
                    admission: bool = True,
                    proxy: bool = False,
                    arrival: str = "poisson",
                    hotspot: bool = False,
                    scale: float = 0.5,
                    seed: int = 42,
                    **overrides) -> ExperimentConfig:
    """An open-loop scenario offering ``offered_fraction`` × capacity.

    ``admission`` bounds every MDS inbox (excess load is shed with explicit
    overload replies); ``proxy`` fronts the cluster with the adaptive
    proxy tier; ``hotspot`` adds the flash-crowd overlay used by
    :func:`fig_hotspot`.
    """
    users = max(1, round(offered_fraction * NOMINAL_CAPACITY_OPS_S
                         / PER_USER_OPS_S))
    workload = OpenLoopSpec(
        kind="general",
        arrival=arrival,
        nominal_users=users,
        per_user_ops_per_s=PER_USER_OPS_S,
        sources=64,
        slo_latency_s=SLO_LATENCY_S,
        # the hotspot rides inside the measure window (which is
        # ``duration_s * scale`` wide) and covers a fixed ~70% of it at
        # every scale, so the tail the figure reports is shaped by the
        # flash crowd rather than by background queueing
        hotspot_prob=0.5 if hotspot else 0.0,
        hotspot_start_s=0.6,
        hotspot_duration_s=1.4 * scale,
    )
    base = dict(
        strategy=strategy,
        n_mds=OVERLOAD_N_MDS,
        seed=seed,
        scale=scale,
        workload=workload,
        users_per_mds=4,
        # enough files that background mutations only rarely land on the
        # flash-crowd target (a tiny namespace would shred the proxy's
        # hot cache entry by accident), small enough that directory ops
        # stay cheap and the capacity knee sits where the figure says
        files_per_user=80,
        # big caches: keep per-op service time near cpu_op_s so the knee
        # sits at the nominal capacity instead of drifting with miss rate
        cache_capacity_per_mds=6000,
        warmup_s=0.5,
        duration_s=2.0,
        params=SimParams(
            inbox_capacity=ADMISSION_INBOX if admission else None,
            osds_per_mds=2,
        ),
        proxy=ProxySpec() if proxy else None,
    )
    base.update(overrides)
    return ExperimentConfig(**base)


#: the goodput-vs-offered-load variants, in plot order
OVERLOAD_VARIANTS = [
    ("dynamic no-AC", dict(strategy="DynamicSubtree", admission=False)),
    ("dynamic AC", dict(strategy="DynamicSubtree", admission=True)),
    ("static AC", dict(strategy="StaticSubtree", admission=True)),
    ("dynamic AC+proxy", dict(strategy="DynamicSubtree", admission=True,
                              proxy=True)),
]


def fig_overload(scale: float = 0.5,
                 progress: Optional[Callable[[str], None]] = None,
                 fractions: Optional[List[float]] = None) -> FigureResult:
    """Goodput vs offered load, with and without admission control."""
    from ..parallel import require_ok, run_many

    fractions = fractions or OVERLOAD_FRACTIONS
    cells = [(name, frac) for name, kw in OVERLOAD_VARIANTS
             for frac in fractions]
    configs = [overload_config(frac, scale=scale, **kw)
               for name, kw in OVERLOAD_VARIANTS for frac in fractions]
    results = require_ok(run_many(configs, task=run_steady_state))

    rows: List[List[object]] = []
    series: Dict[str, object] = {name: [] for name, _kw in OVERLOAD_VARIANTS}
    for (name, frac), res in zip(cells, results):
        offered = frac * NOMINAL_CAPACITY_OPS_S
        rows.append([
            name,
            round(offered, 0),
            round(res.goodput_ops_per_s, 1),
            res.dropped_ops,
            res.slo_violations,
            round(res.latency_p99_s * 1e3, 2),
        ])
        series[name].append((offered, res.goodput_ops_per_s))
        if progress:
            progress(f"{name} @ {frac:.2f}x done")
    return FigureResult(
        figure="Overload",
        title="Goodput vs offered load (open-loop, "
              f"{NOMINAL_CAPACITY_OPS_S:.0f} ops/s nominal capacity)",
        headers=["variant", "offered_ops_per_s", "goodput_ops_per_s",
                 "dropped", "slo_violations", "p99_ms"],
        rows=rows,
        notes="expected shape: without admission control goodput collapses "
              "past the knee (unbounded queues blow the SLO); bounded "
              "inboxes shed the excess and keep goodput pinned near "
              "capacity; the proxy tier adds headroom by absorbing "
              "repeated hot reads",
        series=series)


#: the hotspot countermeasure variants, in plot order
HOTSPOT_VARIANTS = [
    ("traffic-control", dict(tc=True, proxy=False)),
    ("proxy", dict(tc=False, proxy=True)),
    ("neither", dict(tc=False, proxy=False)),
]


#: baseline offered fraction for the hotspot scenario: comfortable on its
#: own, so the tail is shaped by the flash crowd, not background queueing
HOTSPOT_BASE_FRACTION = 0.6

#: inbox depth for the hotspot head-to-head.  Deeper than
#: :data:`ADMISSION_INBOX`: queues may stretch well past the SLO before
#: shedding starts, so the tail can actually *express* how long each
#: countermeasure lets the hot node's queue grow — with the tight
#: overload-figure inbox every variant's p99 is pinned at the same
#: admission bound and the comparison degenerates to noise
HOTSPOT_INBOX = 64


def hotspot_config(tc: bool, proxy: bool, scale: float = 0.5,
                   seed: int = 42, **overrides) -> ExperimentConfig:
    """Bursty moderate load with a flash-crowd hotspot overlay."""
    return overload_config(
        HOTSPOT_BASE_FRACTION, admission=True, proxy=proxy,
        arrival="bursty", hotspot=True,
        scale=scale, seed=seed,
        params=SimParams(
            inbox_capacity=HOTSPOT_INBOX,
            osds_per_mds=2,
            traffic_control=tc,
            # the §4.4 flash-crowd tuning (cf. flash_config):
            replicate_threshold=60.0,
            popularity_halflife_s=0.5,
            balance_interval_s=1e9,  # isolate the countermeasure
        ),
        **overrides)


def fig_hotspot(scale: float = 0.5,
                progress: Optional[Callable[[str], None]] = None,
                ) -> FigureResult:
    """Flash-crowd hotspot: §4.4 traffic control vs the proxy tier."""
    from ..parallel import require_ok, run_many

    configs = [hotspot_config(scale=scale, **kw)
               for _name, kw in HOTSPOT_VARIANTS]
    results = require_ok(run_many(configs, task=run_steady_state))

    rows: List[List[object]] = []
    series: Dict[str, object] = {}
    for (name, _kw), res in zip(HOTSPOT_VARIANTS, results):
        rows.append([
            name,
            round(res.goodput_ops_per_s, 1),
            round(res.latency_p99_s * 1e3, 2),
            res.dropped_ops,
            res.slo_violations,
        ])
        series[name] = [(0, res.goodput_ops_per_s)]
        if progress:
            progress(f"{name} done")
    return FigureResult(
        figure="Hotspot",
        title="Flash-crowd hotspot under bursty open-loop load "
              f"({HOTSPOT_BASE_FRACTION:.1f}x capacity baseline)",
        headers=["variant", "goodput_ops_per_s", "p99_ms", "dropped",
                 "slo_violations"],
        rows=rows,
        notes="expected shape: the proxy tier absorbs hot reads before "
              "they reach the cluster (best p99 and goodput); traffic "
              "control (§4.4) spreads the hot reads across the MDS nodes "
              "but every request still burns MDS cpu, so it trails the "
              "proxy on both while beating no countermeasure",
        series=series)


__all__ = [
    "ADMISSION_INBOX",
    "HOTSPOT_INBOX",
    "HOTSPOT_VARIANTS",
    "NOMINAL_CAPACITY_OPS_S",
    "OVERLOAD_FRACTIONS",
    "OVERLOAD_VARIANTS",
    "fig_hotspot",
    "fig_overload",
    "hotspot_config",
    "overload_config",
]
