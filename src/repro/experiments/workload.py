"""Typed workload specifications: the ``ExperimentConfig.workload`` API.

Historically a workload was described by flat knobs scattered over the
config — ``workload`` (a kind string), ``think_time_s``, ``workload_args``,
``op_weights``.  That shape cannot express an *open-loop* generator (arrival
process, offered rate, burst shape), so the config now carries one typed
spec instead:

* :class:`ClosedLoopSpec` — today's clients: one outstanding request per
  client, exponential think times between requests.  Throughput emerges
  from service capacity (§5.1 methodology).
* :class:`OpenLoopSpec` — arrivals are injected at a configured offered
  rate regardless of completions (Poisson, or bursty Pareto-modulated
  on/off), the load shape of "millions of users" that can push the cluster
  past saturation.

The legacy flat knobs keep working: a plain string ``workload`` is mapped
onto an equivalent :class:`ClosedLoopSpec` by :func:`normalize_workload`
(bit-identical behaviour, one :class:`DeprecationWarning` per process —
mirroring the ``repro.experiments.builder`` shim).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, Optional, Union

from ..mds.messages import OpType

#: workload kinds understood by the simulation builder
WORKLOAD_KINDS = ("general", "scaling", "shifting", "scientific", "flash")

#: arrival processes an :class:`OpenLoopSpec` can request
ARRIVAL_PROCESSES = ("poisson", "bursty")


@dataclass(frozen=True)
class ClosedLoopSpec:
    """A closed-loop client population (the paper's load model).

    Every client keeps exactly one request outstanding and thinks for an
    exponential ``think_time_s`` between requests; the op stream itself is
    produced by the ``kind`` generator (general/scaling/shifting/
    scientific/flash) parameterised by ``args`` and ``op_weights``.
    """

    kind: str = "general"
    think_time_s: float = 0.006
    args: Dict[str, float] = field(default_factory=dict)
    op_weights: Optional[Dict[OpType, float]] = None

    def validate(self) -> "ClosedLoopSpec":
        if self.kind not in WORKLOAD_KINDS:
            raise ValueError(f"unknown workload kind {self.kind!r}; "
                             f"expected one of {WORKLOAD_KINDS}")
        if self.think_time_s <= 0:
            raise ValueError("think_time_s must be positive")
        return self


@dataclass(frozen=True)
class OpenLoopSpec:
    """An open-loop arrival stream: load is *offered*, not admitted.

    The offered rate is either explicit (``rate_ops_per_s``) or derived
    from a nominal user population (``nominal_users`` ×
    ``per_user_ops_per_s`` — how "2 million users at 0.008 ops/s each"
    is written down).  ``sources`` simulated generator processes share the
    rate; each draws interarrival gaps from its own RNG stream, so runs
    are deterministic per seed.

    ``arrival='poisson'`` gives memoryless arrivals; ``'bursty'`` modulates
    the Poisson stream with heavy-tailed (Pareto) on/off periods — the
    aggregate of many such sources is the self-similar load shape real
    metadata traffic exhibits.  During ON periods the rate rises to
    ``rate / on_fraction`` so the long-run offered rate is preserved.

    ``slo_latency_s`` defines goodput: completed requests whose
    client-observed latency meets the SLO.  The optional hotspot overlay
    redirects ``hotspot_prob`` of ops to one deep file during
    ``[hotspot_start_s, hotspot_start_s + hotspot_duration_s)`` — the
    flash-crowd scenario under open-loop load.
    """

    kind: str = "general"              # op model feeding the stream
    arrival: str = "poisson"           # poisson | bursty
    rate_ops_per_s: Optional[float] = None
    nominal_users: Optional[int] = None
    per_user_ops_per_s: float = 0.01
    sources: Optional[int] = None      # default: the config's n_clients
    slo_latency_s: float = 0.010

    # bursty arrivals: mean Pareto on/off period lengths and tail index
    burst_on_s: float = 0.2
    burst_off_s: float = 0.8
    burst_alpha: float = 1.5

    # flash-crowd overlay (0.0 disables it)
    hotspot_prob: float = 0.0
    hotspot_start_s: float = 1.0
    hotspot_duration_s: float = 1.0

    args: Dict[str, float] = field(default_factory=dict)
    op_weights: Optional[Dict[OpType, float]] = None

    def validate(self) -> "OpenLoopSpec":
        if self.kind not in WORKLOAD_KINDS:
            raise ValueError(f"unknown workload kind {self.kind!r}; "
                             f"expected one of {WORKLOAD_KINDS}")
        if self.arrival not in ARRIVAL_PROCESSES:
            raise ValueError(f"unknown arrival process {self.arrival!r}; "
                             f"expected one of {ARRIVAL_PROCESSES}")
        if self.rate_ops_per_s is None and self.nominal_users is None:
            raise ValueError(
                "OpenLoopSpec needs rate_ops_per_s or nominal_users")
        if self.rate_ops_per_s is not None and self.rate_ops_per_s <= 0:
            raise ValueError("rate_ops_per_s must be positive")
        if self.nominal_users is not None and self.nominal_users <= 0:
            raise ValueError("nominal_users must be positive")
        if self.per_user_ops_per_s <= 0:
            raise ValueError("per_user_ops_per_s must be positive")
        if self.sources is not None and self.sources < 1:
            raise ValueError("sources must be >= 1")
        if self.slo_latency_s <= 0:
            raise ValueError("slo_latency_s must be positive")
        if self.burst_on_s <= 0 or self.burst_off_s <= 0:
            raise ValueError("burst periods must be positive")
        if self.burst_alpha <= 1.0:
            raise ValueError("burst_alpha must exceed 1 (finite mean)")
        if not 0.0 <= self.hotspot_prob <= 1.0:
            raise ValueError("hotspot_prob must be in [0, 1]")
        return self

    @property
    def offered_rate_ops_per_s(self) -> float:
        """Total offered load, whichever way it was expressed."""
        if self.rate_ops_per_s is not None:
            return self.rate_ops_per_s
        assert self.nominal_users is not None
        return self.nominal_users * self.per_user_ops_per_s

    @property
    def implied_users(self) -> int:
        """The nominal user population this stream stands in for."""
        if self.nominal_users is not None:
            return self.nominal_users
        return max(1, round(self.offered_rate_ops_per_s
                            / self.per_user_ops_per_s))

    def resolved_sources(self, default: int) -> int:
        """Number of generator processes to simulate."""
        return self.sources if self.sources is not None else max(1, default)


WorkloadSpec = Union[ClosedLoopSpec, OpenLoopSpec]

_legacy_warned = False


def normalize_workload(workload: Union[str, WorkloadSpec], *,
                       think_time_s: float,
                       workload_args: Dict[str, float],
                       op_weights: Optional[Dict[OpType, float]],
                       ) -> WorkloadSpec:
    """Map a config's ``workload`` field to a validated spec.

    A string is the legacy flat-knob form: it is folded together with the
    legacy companion knobs into the equivalent :class:`ClosedLoopSpec`
    (bit-identical behaviour) and a :class:`DeprecationWarning` is emitted
    once per process.  Typed specs pass through validation unchanged.
    """
    if isinstance(workload, (ClosedLoopSpec, OpenLoopSpec)):
        return workload.validate()
    if isinstance(workload, str):
        global _legacy_warned
        if not _legacy_warned:
            _legacy_warned = True
            warnings.warn(
                "string ExperimentConfig.workload with flat knobs "
                "(think_time_s/workload_args/op_weights) is deprecated; "
                "pass a ClosedLoopSpec or OpenLoopSpec instead",
                DeprecationWarning, stacklevel=3)
        return ClosedLoopSpec(kind=workload, think_time_s=think_time_s,
                              args=dict(workload_args),
                              op_weights=op_weights).validate()
    raise TypeError(f"workload must be a str, ClosedLoopSpec or "
                    f"OpenLoopSpec, got {type(workload).__name__}")


__all__ = [
    "ARRIVAL_PROCESSES",
    "ClosedLoopSpec",
    "OpenLoopSpec",
    "WORKLOAD_KINDS",
    "WorkloadSpec",
    "normalize_workload",
]
