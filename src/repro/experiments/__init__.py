"""Experiment harness (S13 in DESIGN.md): configs, builders, figure drivers."""

from ._build import Simulation, build_simulation
from .config import (EnvGates, ExperimentConfig, env_gates, env_scale,
                     parse_parallel_env)
from .extensions import extA_scientific, scientific_config
from .figures import (FIGURES, FigureResult, fig2, fig3, fig4, fig5, fig6,
                      fig7, flash_config, run_shift_experiment,
                      scaling_config, shift_config)
from .overload import (fig_hotspot, fig_overload, hotspot_config,
                       overload_config)
from .runner import (SteadyStateResult, TimelineResult, run_steady_state,
                     run_timeline)
from .summary import ClusterSummary, summarize_simulation
from .workload import (ClosedLoopSpec, OpenLoopSpec, WorkloadSpec,
                       normalize_workload)

__all__ = [
    "ClosedLoopSpec",
    "ClusterSummary",
    "EnvGates",
    "ExperimentConfig",
    "FIGURES",
    "FigureResult",
    "OpenLoopSpec",
    "Simulation",
    "SteadyStateResult",
    "TimelineResult",
    "WorkloadSpec",
    "build_simulation",
    "env_gates",
    "env_scale",
    "extA_scientific",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig_hotspot",
    "fig_overload",
    "flash_config",
    "hotspot_config",
    "normalize_workload",
    "overload_config",
    "parse_parallel_env",
    "run_shift_experiment",
    "scientific_config",
    "run_steady_state",
    "run_timeline",
    "scaling_config",
    "shift_config",
    "summarize_simulation",
]
