"""Experiment harness (S13 in DESIGN.md): configs, builders, figure drivers."""

from ._build import Simulation, build_simulation
from .config import ExperimentConfig, env_scale
from .extensions import extA_scientific, scientific_config
from .figures import (FIGURES, FigureResult, fig2, fig3, fig4, fig5, fig6,
                      fig7, flash_config, run_shift_experiment,
                      scaling_config, shift_config)
from .runner import (SteadyStateResult, TimelineResult, run_steady_state,
                     run_timeline)
from .summary import ClusterSummary, summarize_simulation

__all__ = [
    "ClusterSummary",
    "ExperimentConfig",
    "FIGURES",
    "FigureResult",
    "Simulation",
    "SteadyStateResult",
    "TimelineResult",
    "build_simulation",
    "env_scale",
    "extA_scientific",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "flash_config",
    "run_shift_experiment",
    "scientific_config",
    "run_steady_state",
    "run_timeline",
    "scaling_config",
    "shift_config",
    "summarize_simulation",
]
