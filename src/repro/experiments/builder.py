"""Deprecated import path — use :mod:`repro.api` instead.

Kept as a shim so old call sites (``from repro.experiments.builder import
build_simulation``) keep working; they now emit a ``DeprecationWarning``.
"""

from __future__ import annotations

import warnings

warnings.warn(
    "repro.experiments.builder is deprecated; import ExperimentConfig, "
    "build_simulation and Simulation from repro.api instead",
    DeprecationWarning, stacklevel=2)

from ._build import (Simulation, build_simulation,  # noqa: E402,F401
                     _flash_target, _make_workload, _size_cache)

__all__ = ["Simulation", "build_simulation"]
