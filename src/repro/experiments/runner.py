"""Run simulations and extract the measurements the figures need."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ._build import Simulation, build_simulation
from .config import ExperimentConfig


@dataclass
class SteadyStateResult:
    """Aggregates over the post-warmup measurement window."""

    config: ExperimentConfig
    mean_node_throughput: float       # ops/sec per MDS (Fig. 2 y-axis)
    node_throughputs: List[float]
    hit_rate: float                   # cluster-wide (Fig. 4 y-axis)
    prefix_fraction: float            # mean over nodes (Fig. 3 y-axis)
    forward_fraction: float
    total_ops: int
    client_mean_latency_s: float
    errors: int
    total_metadata: int
    # client-observed latency percentiles (streaming histograms, all ops)
    latency_p50_s: float = 0.0
    latency_p95_s: float = 0.0
    latency_p99_s: float = 0.0
    # overload accounting (zero for classic closed-loop runs)
    offered_ops: int = 0
    dropped_ops: int = 0
    slo_violations: int = 0
    goodput_ops_per_s: float = 0.0


def run_steady_state(config: ExperimentConfig) -> SteadyStateResult:
    """Build, warm up, measure.

    When the ``REPRO_SHARDS`` gate (or ``config.shards``) requests it and
    the config is in the shardable class, the experiment runs partitioned
    across processes via :mod:`repro.shard` — bit-identical results,
    multi-core wall-clock.  Anything else silently takes the serial path.
    """
    from .config import resolve_shard_count

    n_shards = resolve_shard_count(config)
    if n_shards is not None:
        from ..shard import run_sharded_summary, shard_viability

        if shard_viability(config, n_shards) is None:
            return _result_from_summary(
                config, run_sharded_summary(config, n_shards))
    sim = build_simulation(config)
    t0, t1 = config.measure_window
    sim.run_to(t1)
    summary = sim.summary(window=(t0, t1))
    return _result_from_summary(config, summary)


def _result_from_summary(config: ExperimentConfig,
                         summary) -> SteadyStateResult:
    """Flatten a :class:`ClusterSummary` into the figure-facing result."""
    return SteadyStateResult(
        config=config,
        mean_node_throughput=summary.throughput_ops_per_s,
        node_throughputs=summary.node_throughputs,
        hit_rate=summary.hit_rate,
        prefix_fraction=summary.prefix_fraction,
        forward_fraction=summary.forward_fraction,
        total_ops=summary.total_ops,
        client_mean_latency_s=summary.mean_latency_s,
        errors=summary.errors,
        total_metadata=summary.total_metadata,
        latency_p50_s=summary.latency_p50_s,
        latency_p95_s=summary.latency_p95_s,
        latency_p99_s=summary.latency_p99_s,
        offered_ops=summary.offered_ops,
        dropped_ops=summary.dropped_ops,
        slo_violations=summary.slo_violations,
        goodput_ops_per_s=summary.goodput_ops_per_s,
    )


@dataclass
class TimelineResult:
    """Per-interval series over a whole run (Figs. 5, 6, 7)."""

    config: ExperimentConfig
    #: (t, min, mean, max) per-node throughput per sampling interval
    throughput_series: List[Tuple[float, float, float, float]] = field(
        default_factory=list)
    #: (t, fraction of requests forwarded) per interval
    forward_series: List[Tuple[float, float]] = field(default_factory=list)
    #: (t, cluster replies/sec, cluster forwards/sec) per interval
    rate_series: List[Tuple[float, float, float]] = field(
        default_factory=list)
    final_hit_rate: float = 0.0


def run_timeline(config: ExperimentConfig,
                 sample_interval_s: float = 1.0) -> TimelineResult:
    """Run to completion, sampling per-interval rates."""
    sim = build_simulation(config)
    bucket = config.params.stats_bucket_s
    ratio = sample_interval_s / bucket
    if abs(ratio - round(ratio)) > 1e-9:
        raise ValueError(
            f"sample interval {sample_interval_s} must be a multiple of the "
            f"stats bucket width {bucket} (SimParams.stats_bucket_s)")
    result = TimelineResult(config=config)
    t = 0.0
    end = config.run_until_s
    while t < end:
        t_next = min(end, t + sample_interval_s)
        sim.run_to(t_next)
        rates = sim.cluster.node_throughputs(t, t_next)
        replies = sum(s.served_by_time.count_in(t, t_next)
                      for s in sim.cluster.node_stats())
        forwards = sum(s.forwards_by_time.count_in(t, t_next)
                       for s in sim.cluster.node_stats())
        width = t_next - t
        mid = (t + t_next) / 2
        result.throughput_series.append(
            (mid, min(rates), sum(rates) / len(rates), max(rates)))
        total = replies + forwards
        result.forward_series.append(
            (mid, forwards / total if total else 0.0))
        result.rate_series.append((mid, replies / width, forwards / width))
        t = t_next
    result.final_hit_rate = sim.cluster.cluster_hit_rate()
    return result
