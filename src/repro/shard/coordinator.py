"""The barrier coordinator: fork workers, step windows, merge summaries.

Conservative time-stepped protocol with lookahead ``L = net_hop_s``:

1. every worker simulates its strict window ``[B, B+L)`` and drains its
   outbound cross-shard messages;
2. the coordinator routes each drained message (already timestamped with
   its arrival) to the destination shard's inbox;
3. the barrier advances.  Any message sent inside ``[B, B+L)`` arrives in
   ``[B+L, B+2L)`` — inside the *next* window — so it is always injected
   before the window containing its arrival runs.

The final ``finish`` round runs the inclusive instant ``t == end`` that
the strict windows exclude, matching ``Environment.run(until=end)``.
"""

from __future__ import annotations

import heapq
import multiprocessing
from typing import Dict, List, Optional

from ..experiments.config import ExperimentConfig
from ..experiments.summary import ClusterSummary
from ..metrics import LatencyHistogram
from .runtime import ShardPartial, _shard_worker_main
from .viability import ShardingUnsupported, shard_viability


def run_sharded_summary(config: ExperimentConfig,
                        n_shards: int) -> ClusterSummary:
    """Run ``config`` split ``n_shards`` ways; merged, serial-identical
    summary.  Raises :class:`ShardingUnsupported` on non-viable configs."""
    reason = shard_viability(config, n_shards)
    if reason is not None:
        raise ShardingUnsupported(reason)
    partials = _run_workers(config, n_shards)
    return merge_partials(config, partials)


def run_sharded(config: ExperimentConfig, n_shards: int):
    """Sharded counterpart of :func:`repro.experiments.run_steady_state`."""
    from ..experiments.runner import _result_from_summary

    return _result_from_summary(config,
                                run_sharded_summary(config, n_shards))


def _run_workers(config: ExperimentConfig,
                 n_shards: int) -> List[ShardPartial]:
    ctx = multiprocessing.get_context("fork")
    conns = []
    procs = []
    try:
        for shard_id in range(n_shards):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_shard_worker_main,
                args=(child_conn, config, shard_id, n_shards),
                daemon=True)
            proc.start()
            child_conn.close()
            conns.append(parent_conn)
            procs.append(proc)
        return _drive(config, n_shards, conns)
    finally:
        for conn in conns:
            conn.close()
        for proc in procs:
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - cleanup path
                proc.terminate()
                proc.join(timeout=5)


def _drive(config: ExperimentConfig, n_shards: int,
           conns) -> List[ShardPartial]:
    lookahead = config.params.net_hop_s
    end = config.run_until_s
    inboxes: Dict[int, list] = {s: [] for s in range(n_shards)}
    barrier = 0.0
    while barrier < end:
        target = min(barrier + lookahead, end)
        if not target > barrier:  # pragma: no cover - fp-underflow guard
            raise RuntimeError(
                f"barrier stalled at {barrier!r} (lookahead {lookahead!r})")
        _exchange(conns, ("step", target, None), inboxes)
        barrier = target
    # the strict windows stopped just short of t == end; run that last
    # inclusive instant everywhere (messages it emits would arrive past
    # the end of the run, as they would in the serial run — discarded)
    partials: List[Optional[ShardPartial]] = [None] * n_shards
    for shard_id, conn in enumerate(conns):
        conn.send(("finish", end, sorted(inboxes[shard_id])))
    for shard_id, conn in enumerate(conns):
        msg = conn.recv()
        if msg[0] == "error":
            raise RuntimeError(f"shard {shard_id} failed:\n{msg[1]}")
        assert msg[0] == "done"
        partials[shard_id] = msg[1]
    return partials  # type: ignore[return-value]


def _exchange(conns, message, inboxes: Dict[int, list]) -> None:
    """One barrier round: deliver inboxes, run the window, collect drains."""
    kind, target, _ = message
    for shard_id, conn in enumerate(conns):
        batch = sorted(inboxes[shard_id])
        inboxes[shard_id] = []
        conn.send((kind, target, batch))
    for src_shard, conn in enumerate(conns):
        msg = conn.recv()
        if msg[0] == "error":
            raise RuntimeError(f"shard {src_shard} failed:\n{msg[1]}")
        assert msg[0] == "out"
        for dst_shard, arrival, seq, payload in msg[1]:
            inboxes[dst_shard].append((arrival, src_shard, seq, payload))


def merge_partials(config: ExperimentConfig,
                   partials: List[ShardPartial]) -> ClusterSummary:
    """Fold per-shard partials into the summary the serial run produces.

    Every reduction replays the serial arithmetic in the serial order:
    node vectors in node-id order, client means in client-id order, and
    latency histograms by re-recording the globally time-ordered sample
    stream (float accumulation is order-sensitive).
    """
    n_mds = config.n_mds
    window = config.measure_window
    nodes: Dict[int, tuple] = {}
    clients: Dict[int, tuple] = {}
    for p in partials:
        nodes.update(p.nodes)
        clients.update(p.clients)
    if len(nodes) != n_mds:
        raise RuntimeError(
            f"merge covers {len(nodes)}/{n_mds} nodes; partials overlap "
            "or a shard went missing")

    node_rows = [nodes[i] for i in range(n_mds)]
    rates = [row[0] for row in node_rows]
    served = sum(row[1] for row in node_rows)
    forwards = sum(row[2] for row in node_rows)
    drops = sum(row[3] for row in node_rows)
    hits = sum(row[4] for row in node_rows)
    lookups = sum(row[4] + row[5] for row in node_rows)
    fracs = [row[6] for row in node_rows]

    client_rows = [clients[i] for i in sorted(clients)]
    ops = sum(row[0] for row in client_rows)
    errors = sum(row[1] for row in client_rows)
    lat = [row[2] for row in client_rows if row[0]]

    overall, by_op = _merge_latency(partials)
    forwarded_total = served + forwards
    return ClusterSummary(
        n_mds=n_mds,
        window=window,
        total_ops=ops,
        total_served=served,
        total_forwards=forwards,
        errors=errors,
        throughput_ops_per_s=sum(rates) / len(rates),
        node_throughputs=rates,
        hit_rate=hits / lookups if lookups else 0.0,
        forward_fraction=forwards / forwarded_total if forwarded_total
        else 0.0,
        prefix_fraction=sum(fracs) / len(fracs),
        mean_latency_s=sum(lat) / len(lat) if lat else 0.0,
        latency=overall,
        latency_by_op=by_op,
        total_metadata=(partials[0].snapshot_len
                        + sum(p.ns_len - p.snapshot_len for p in partials)),
        kernel=_merge_kernel(partials),
        offered_ops=0,
        dropped_ops=drops,
        slo_violations=0,
        goodput_ops_per_s=0.0,
        proxy=None,
    )


def _merge_latency(partials: List[ShardPartial]):
    """Replay all shards' samples in global time order into fresh
    histograms — bit-identical to the serial tracer's accumulation."""
    streams = [
        [(t, p.shard_id, idx, name, latency)
         for idx, (t, name, latency) in enumerate(p.samples)]
        for p in partials]
    overall = LatencyHistogram()
    by_op_hists: Dict[str, LatencyHistogram] = {}
    for _t, _shard, _idx, name, latency in heapq.merge(*streams):
        hist = by_op_hists.get(name)
        if hist is None:
            hist = by_op_hists[name] = LatencyHistogram()
        hist.record(latency)
        overall.record(latency)
    by_op = {name: hist.summary()
             for name, hist in sorted(by_op_hists.items())}
    return overall.summary(), by_op


def _merge_kernel(partials: List[ShardPartial]) -> Dict[str, float]:
    merged: Dict[str, float] = dict(partials[0].kernel)
    for p in partials[1:]:
        for key, value in p.kernel.items():
            if key in ("fastlane", "pool_reuse_rate", "kernel_backend",
                       "compiled_viable", "model_backend",
                       "compiled_model_viable"):
                # mode/provenance fields: identical on every shard (same
                # gates cross the fork), so shard 0's copy stands
                continue
            merged[key] = merged.get(key, 0) + value
    pooled = merged.get("pool_hits", 0) + merged.get("pool_allocs", 0)
    merged["pool_reuse_rate"] = (merged.get("pool_hits", 0) / pooled
                                 if pooled else 0.0)
    merged["messages_crossing_shards"] = sum(p.messages_sent
                                             for p in partials)
    return merged
