"""Is this experiment safely shardable?  One predicate, one reason string.

Sharding is bit-identical to the serial run only for a well-understood
class of experiments (static partitioning, closed-loop clients homed on
their own shard, no proxy tier, no admission control, no span sampling).
Anything outside that class falls back to the serial path — silently in
:func:`repro.experiments.runner.run_steady_state`, loudly (via
:class:`ShardingUnsupported`) when sharding is requested directly.
"""

from __future__ import annotations

import multiprocessing
from typing import Optional

from ..mds import SimParams
from ..experiments.config import ExperimentConfig
from ..experiments.workload import ClosedLoopSpec


class ShardingUnsupported(RuntimeError):
    """Raised when a sharded run is requested for a non-viable config."""


#: Workload kinds whose clients only ever touch their own user subtree and
#: the (read-only past warmup, never mutated) shared tree — the property
#: that keeps cross-shard traffic down to snapshot-path reads.
_VIABLE_KINDS = frozenset({"general", "scaling"})


def shard_viability(config: ExperimentConfig,
                    n_shards: int) -> Optional[str]:
    """``None`` when ``config`` may be sharded ``n_shards`` ways,
    else a short human-readable reason it may not."""
    if n_shards < 2:
        return f"n_shards={n_shards} < 2"
    if n_shards > config.n_mds:
        return f"n_shards={n_shards} exceeds n_mds={config.n_mds}"
    if config.strategy != "StaticSubtree":
        return (f"strategy {config.strategy!r} migrates authority at "
                "runtime; only StaticSubtree is shardable")
    spec = config.workload_spec()
    if not isinstance(spec, ClosedLoopSpec):
        return "only closed-loop workloads are shardable"
    if spec.kind not in _VIABLE_KINDS:
        return (f"workload kind {spec.kind!r} is not in the shardable "
                f"class {sorted(_VIABLE_KINDS)}")
    if config.proxy is not None:
        return "proxy tier routes across shard boundaries"
    if config.trace_sample_rate != 0:
        return "span sampling draws from a global RNG stream"
    if config.params.inbox_capacity is not None:
        return "bounded inboxes (admission control) are not shardable"
    if not config.params.shard_affinity:
        return "params.shard_affinity must be enabled (partition-affine " \
               "ino allocation and OSD placement)"
    if config.params.net_hop_s <= 0:
        return "net_hop_s must be positive (it is the lookahead window)"
    if config.n_clients > config.n_users:
        return (f"n_clients={config.n_clients} > n_users={config.n_users}: "
                "clients sharing a home root contend across shards")
    if "fork" not in multiprocessing.get_all_start_methods():
        return "platform lacks fork start method"
    return None


def sharded_config(n_mds: int = 8, scale: float = 1.0, *,
                   seed: int = 42,
                   net_hop_s: float = 0.001,
                   users_per_mds: int = 8,
                   clients_per_mds: int = 8,
                   files_per_user: int = 40,
                   shared_tree_files: int = 100,
                   think_time_s: float = 0.006,
                   warmup_s: float = 2.0,
                   duration_s: float = 4.0,
                   workload: str = "general",
                   **params_kw) -> ExperimentConfig:
    """A ready-to-shard :class:`ExperimentConfig` (also runs serially).

    Keeps ``users_per_mds == clients_per_mds`` by default so every client
    owns its home root exclusively — the no-cross-shard-contention
    requirement of :func:`shard_viability`.
    """
    params = SimParams(net_hop_s=net_hop_s, shard_affinity=True,
                       **params_kw)
    return ExperimentConfig(
        strategy="StaticSubtree", n_mds=n_mds, seed=seed,
        users_per_mds=users_per_mds, clients_per_mds=clients_per_mds,
        files_per_user=files_per_user, shared_tree_files=shared_tree_files,
        think_time_s=think_time_s, warmup_s=warmup_s, duration_s=duration_s,
        workload=workload, params=params, scale=scale)
