"""Sharded parallel execution of one experiment (conservative PDES).

The cluster is partitioned into logical processes — each worker owns a
contiguous range of MDS nodes plus the clients homed on them — and the
partitions run on private event kernels in forked processes, synchronized
by a conservative time-stepped protocol whose lookahead is the network
hop latency.  Results are bit-identical to the serial run for the
experiment class :func:`shard_viability` admits (enforced by the
``tests/shard`` equivalence suite).
"""

from .coordinator import merge_partials, run_sharded, run_sharded_summary
from .plan import ShardPlan, compute_plan
from .runtime import ShardContext, ShardPartial, ShardTransport
from .viability import ShardingUnsupported, shard_viability, sharded_config

__all__ = [
    "ShardContext",
    "ShardPartial",
    "ShardPlan",
    "ShardTransport",
    "ShardingUnsupported",
    "compute_plan",
    "merge_partials",
    "run_sharded",
    "run_sharded_summary",
    "shard_viability",
    "sharded_config",
]
