"""Partitioning plan: which shard owns which MDS nodes and clients.

A plan splits the cluster's node ids into ``n_shards`` contiguous ranges
(logical processes in PDES terms) and homes every client on the shard that
owns the authority of its user root.  With ``StaticSubtree`` partitioning
the mapping from user root to authority is fixed for the whole run, so the
plan is computable up front and identical on every worker.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Sequence, Tuple


@dataclass(frozen=True)
class ShardPlan:
    """Static ownership map for one sharded run."""

    n_shards: int
    n_mds: int
    #: ``bounds[s] .. bounds[s+1]-1`` are the node ids owned by shard ``s``
    bounds: Tuple[int, ...]
    #: node id -> owning shard
    shard_of_node: Tuple[int, ...]
    #: client id -> owning shard (the shard of its home root's authority)
    client_shards: Tuple[int, ...]

    def nodes_of(self, shard_id: int) -> range:
        return range(self.bounds[shard_id], self.bounds[shard_id + 1])

    def clients_of(self, shard_id: int) -> Tuple[int, ...]:
        return tuple(i for i, s in enumerate(self.client_shards)
                     if s == shard_id)


def _node_bounds(n_mds: int, n_shards: int) -> Tuple[int, ...]:
    return tuple(s * n_mds // n_shards for s in range(n_shards + 1))


def compute_plan(config, ns, strategy, user_roots: Sequence,
                 n_shards: int) -> ShardPlan:
    """Build the ownership plan for ``config`` split ``n_shards`` ways.

    Deterministic in all inputs: every worker (and the coordinator) computes
    the same plan from its own copy of the namespace snapshot.
    """
    n_mds = config.n_mds
    if not 2 <= n_shards <= n_mds:
        raise ValueError(
            f"n_shards={n_shards} must be in [2, n_mds={n_mds}]")
    bounds = _node_bounds(n_mds, n_shards)
    shard_of_node = tuple(
        bisect.bisect_right(bounds, node) - 1 for node in range(n_mds))
    home_shards = [
        shard_of_node[strategy.authority_of_ino(ns.resolve(root).ino)]
        for root in user_roots]
    n_users = len(home_shards)
    client_shards = tuple(
        home_shards[i % n_users] for i in range(config.n_clients))
    return ShardPlan(n_shards=n_shards, n_mds=n_mds, bounds=bounds,
                     shard_of_node=shard_of_node,
                     client_shards=client_shards)
