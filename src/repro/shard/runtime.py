"""Per-shard runtime: the transport seam, worker loop and result capture.

One worker process owns one :class:`~repro.shard.plan.ShardPlan` range of
MDS nodes plus the clients homed on them, runs them on a private
:class:`~repro.sim.engine.Environment`, and exchanges timestamped messages
with its peers through :class:`ShardTransport`.  The transport plugs into
the seams :class:`~repro.mds.cluster.MdsCluster` and
:class:`~repro.mds.node.MdsNode` expose (``deliver_later`` /
``_send_reply`` / ``_fetch_from_peer`` / eviction + coherence
notifications); every local interaction keeps the exact serial code path.

Conservative synchronization: every cross-shard message takes one network
hop (``net_hop_s``), so a message sent inside the window ``[B, B+L)``
arrives no earlier than ``B+L`` — the coordinator can safely let every
shard simulate a full lookahead window before exchanging.
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, Tuple

from ..mds.messages import MdsReply, MdsRequest
from ..obs import RingBufferSink, Tracer
from ..obs.tracer import _op_name
from ..sim import Environment
from ..model.backend import model_info
from ..sim.backend import kernel_info
from .plan import ShardPlan, compute_plan

#: wire tags (first element of every cross-shard payload tuple)
REQ = "req"
REPLY = "reply"
FETCH = "fetch"
FETCH_REPLY = "fetchreply"
INVALIDATE = "inval"
UNREGISTER = "unreg"


@dataclass
class ShardPartial:
    """Everything a worker ships back for summary merging (picklable)."""

    shard_id: int
    #: node id -> (throughput, ops_served, forwards, drops, cache_hits,
    #:             cache_misses, prefix_fraction) — owned nodes only
    nodes: Dict[int, Tuple[float, int, int, int, int, int, float]]
    #: client id -> (ops_completed, errors, mean_latency_s)
    clients: Dict[int, Tuple[int, int, float]]
    #: ordered latency samples (sim_time, op_name, latency_s)
    samples: List[Tuple[float, str, float]]
    ns_len: int
    snapshot_len: int
    kernel: Dict[str, float] = field(default_factory=dict)
    messages_sent: int = 0
    messages_received: int = 0


class _SamplingTracer(Tracer):
    """A tracer that additionally journals latency samples with timestamps.

    Histograms accumulate floating-point sums in record order, so merging
    per-shard histograms directly would not reproduce the serial bits.
    Instead each shard journals ``(sim_time, op, latency)`` and the merge
    replays the globally time-ordered stream into fresh histograms.
    """

    def __init__(self, env: Environment, **kwargs) -> None:
        super().__init__(**kwargs)
        self._env = env
        self.samples: List[Tuple[float, str, float]] = []

    def record_latency(self, op, seconds: float) -> None:
        self.samples.append((self._env._now, _op_name(op), seconds))
        super().record_latency(op, seconds)


class ShardTransport:
    """Cross-shard messaging for one worker.

    Outbound messages are buffered (``drain`` hands them to the
    coordinator at each barrier); inbound payloads are injected onto the
    local calendar at their precomputed arrival times, mirroring the
    event the serial run would have scheduled.
    """

    def __init__(self, env: Environment, shard_id: int, plan: ShardPlan,
                 cluster, net_hop_s: float) -> None:
        self.env = env
        self.shard_id = shard_id
        self.plan = plan
        self.cluster = cluster
        self.net_hop_s = net_hop_s
        self._out: List[Tuple[int, float, int, tuple]] = []
        self._seq = 0
        #: completion events (and fetch waiters) keyed by origin key
        self._pending: Dict[int, Any] = {}
        self._next_key = 0
        self.sent = 0
        self.received = 0

    # -- identity ------------------------------------------------------
    def owns(self, node_id: int) -> bool:
        return self.plan.shard_of_node[node_id] == self.shard_id

    # -- outbound ------------------------------------------------------
    def drain(self) -> List[Tuple[int, float, int, tuple]]:
        out, self._out = self._out, []
        return out

    def _enqueue(self, dst_shard: int, arrival: float,
                 payload: tuple) -> None:
        self._seq += 1
        self.sent += 1
        self._out.append((dst_shard, arrival, self._seq, payload))

    def _new_key(self) -> int:
        self._next_key += 1
        return self._next_key

    def send_request(self, node_id: int, request: MdsRequest) -> None:
        """Divert from ``deliver_later``: the destination is foreign."""
        if request.origin_shard is None:
            # first boundary crossing: park the completion event locally
            # and tag the request so the eventual reply finds its way home
            key = self._new_key()
            request.origin_shard = self.shard_id
            request.origin_key = key
            self._pending[key] = request.done
        arrival = self.env._now + self.net_hop_s
        self._enqueue(
            self.plan.shard_of_node[node_id], arrival,
            (REQ, node_id, arrival, request.origin_shard,
             request.origin_key,
             (request.op, request.path, request.client_id, request.uid,
              request.dst_path, request.mode, request.size, request.ino,
              request.submitted_at, request.hops, request.dir_hint)))

    def send_reply(self, request: MdsRequest, reply: MdsReply) -> None:
        """Divert from ``_send_reply``: the requester lives elsewhere."""
        arrival = self.env._now + self.net_hop_s
        self._enqueue(
            request.origin_shard, arrival,
            (REPLY, request.origin_key, arrival,
             (reply.ok, reply.served_by, reply.op, reply.path, reply.error,
              reply.target_ino, dict(reply.locations), reply.forwarded,
              reply.latency_s)))

    def fetch_from_peer(self, node, inode, authority: int,
                        trace) -> Generator:
        """Replica fetch whose authority lives on another shard.

        Same observable timeline as the serial ``_fetch_from_peer``: one
        hop out, the authority's cache/disk work, one hop back.
        """
        env = self.env
        t0 = env._now
        key = self._new_key()
        pending = env.event()
        self._pending[key] = pending
        self._enqueue(
            self.plan.shard_of_node[authority], t0 + self.net_hop_s,
            (FETCH, authority, node.node_id, self.shard_id, key, inode.ino,
             t0 + self.net_hop_s))
        peer_missed = yield pending
        if trace is not None:
            trace.add("peer.fetch", t0, env._now, node=node.node_id,
                      detail=f"from={authority}"
                             + (" peer-miss" if peer_missed else ""))
        node._insert(inode, replica=True)
        node.stats.remote_fetches += 1

    def send_unregister(self, authority: int, ino: int,
                        holder_node_id: int) -> None:
        """Divert from ``_notify_evictions``: the authority is foreign.

        Applied immediately on injection — registry shrinkage can only
        suppress a future invalidation hop to a replica already gone, and
        in the shardable class replicas of mutable inodes never cross
        shard boundaries, so timing slack here is unobservable.
        """
        self._enqueue(self.plan.shard_of_node[authority], self.env._now,
                      (UNREGISTER, authority, ino, holder_node_id))

    def send_invalidations(self, sorted_foreign_holders, ino: int) -> None:
        """Divert from ``_invalidate_replicas`` for foreign holders."""
        arrival = self.env._now + self.net_hop_s
        for holder in sorted_foreign_holders:
            self._enqueue(self.plan.shard_of_node[holder], arrival,
                          (INVALIDATE, holder, ino, arrival))

    # -- inbound -------------------------------------------------------
    def inject(self, payload: tuple) -> None:
        self.received += 1
        kind = payload[0]
        if kind == REQ:
            self._inject_request(payload)
        elif kind == REPLY:
            self._inject_reply(payload)
        elif kind == FETCH:
            self._inject_fetch(payload)
        elif kind == FETCH_REPLY:
            self._inject_fetch_reply(payload)
        elif kind == INVALIDATE:
            self._inject_invalidate(payload)
        elif kind == UNREGISTER:
            _tag, authority, ino, holder = payload
            self.cluster.nodes[authority].replicas.unregister(ino, holder)
        else:
            raise RuntimeError(f"unknown shard payload {kind!r}")

    def _carrier(self, value, arrival: float):
        """A pre-settled event at ``arrival`` — the injected twin of the
        ``env.timeout(hop, value)`` the serial sender would have used."""
        env = self.env
        carrier = env.event()
        carrier._triggered = True
        carrier._ok = True
        carrier._value = value
        env.schedule_at(carrier, arrival)
        return carrier

    def _inject_request(self, payload: tuple) -> None:
        (_tag, dst_node, arrival, origin_shard, origin_key,
         (op, path, client_id, uid, dst_path, mode, size, ino,
          submitted_at, hops, dir_hint)) = payload
        request = MdsRequest(op=op, path=path, client_id=client_id,
                             uid=uid, dst_path=dst_path, mode=mode,
                             size=size, ino=ino, dir_hint=dir_hint)
        request.submitted_at = submitted_at
        request.hops = hops
        request.enqueued_at = arrival
        if origin_shard == self.shard_id:
            # forwarded back home: reattach the parked completion event and
            # drop the tag — replies now take the local path again
            request.done = self._pending.pop(origin_key)
        else:
            request.origin_shard = origin_shard
            request.origin_key = origin_key
        carrier = self._carrier(request, arrival)
        carrier.callbacks.append(
            self.cluster.nodes[dst_node].inbox._put_from_event)

    def _inject_reply(self, payload: tuple) -> None:
        (_tag, key, arrival,
         (ok, served_by, op, path, error, target_ino, locations,
          forwarded, latency_s)) = payload
        done = self._pending.pop(key)
        reply = MdsReply(ok=ok, served_by=served_by, op=op, path=path,
                         error=error, target_ino=target_ino,
                         locations=locations, forwarded=forwarded,
                         latency_s=latency_s)
        self._settle(done, reply, arrival)

    def _settle(self, done, value, arrival: float) -> None:
        """Trigger ``done`` with ``value`` at ``arrival`` — the injected
        twin of the serial ``_send_reply`` delivery."""
        env = self.env
        if env.fastlane:
            done._triggered = True
            done._ok = True
            done._value = value
            env.schedule_at(done, arrival)
        else:
            carrier = env.event()
            carrier._triggered = True
            carrier._ok = True
            carrier._value = None
            env.schedule_at(carrier, arrival)
            carrier.callbacks.append(
                lambda _ev, d=done, v=value: d.succeed(v))

    def _inject_fetch(self, payload: tuple) -> None:
        _tag, authority, requester_node, src_shard, key, ino, arrival = \
            payload
        carrier = self._carrier(None, arrival)
        carrier.callbacks.append(
            lambda _ev: self.env.process(self._serve_fetch(
                authority, requester_node, src_shard, key, ino)))

    def _serve_fetch(self, authority: int, requester_node: int,
                     src_shard: int, key: int, ino: int) -> Generator:
        """Authority-side half of a cross-shard replica fetch.

        Mirrors the peer-side work of the serial ``_fetch_from_peer``; the
        requester side resumes from the FETCH_REPLY one hop after this
        completes, exactly one RTT (plus any disk time) after it asked.
        """
        peer = self.cluster.nodes[authority]
        inode = self.cluster.ns.inode(ino)
        if ino not in peer.cache:
            peer.stats.record_miss()
            peer_missed = True
            yield from peer._fetch_from_disk(inode)
        else:
            peer.cache.get(ino)  # refresh recency at the authority
            peer_missed = False
        peer.replicas.register(ino, requester_node)
        self._enqueue(src_shard, self.env._now + self.net_hop_s,
                      (FETCH_REPLY, key, self.env._now + self.net_hop_s,
                       peer_missed))

    def _inject_fetch_reply(self, payload: tuple) -> None:
        _tag, key, arrival, peer_missed = payload
        self._settle(self._pending.pop(key), peer_missed, arrival)

    def _inject_invalidate(self, payload: tuple) -> None:
        _tag, holder, ino, arrival = payload
        carrier = self._carrier(None, arrival)
        carrier.callbacks.append(
            lambda _ev, h=holder, i=ino: self._apply_invalidate(h, i))

    def _apply_invalidate(self, holder: int, ino: int) -> None:
        peer = self.cluster.nodes[holder]
        entry = peer.cache.get(ino, touch=False)
        if entry is not None and entry.replica and not entry.pinned:
            peer.cache.remove(ino)


class ShardContext:
    """What :func:`repro.experiments._build.build_simulation` needs to
    build the shard-local slice of an experiment."""

    def __init__(self, shard_id: int, n_shards: int) -> None:
        self.shard_id = shard_id
        self.n_shards = n_shards
        self.plan: Optional[ShardPlan] = None
        self.transport: Optional[ShardTransport] = None

    def make_tracer(self, env: Environment, config) -> _SamplingTracer:
        return _SamplingTracer(env,
                               sample_rate=config.trace_sample_rate,
                               sink=RingBufferSink(config.trace_buffer),
                               seed=config.seed)

    def bind(self, cluster, snapshot, config) -> None:
        """Compute the plan and splice the transport into the cluster
        (called between cluster construction and ``start()``)."""
        self.plan = compute_plan(config, cluster.ns, cluster.strategy,
                                 snapshot.user_roots, self.n_shards)
        self.transport = ShardTransport(cluster.env, self.shard_id,
                                        self.plan, cluster,
                                        cluster.params.net_hop_s)
        cluster.attach_transport(self.transport)

    def owns_client(self, client_id: int) -> bool:
        return self.plan.client_shards[client_id] == self.shard_id


def _collect_partial(sim, ctx: ShardContext,
                     snapshot_len: int) -> ShardPartial:
    plan = ctx.plan
    t0, t1 = sim.config.measure_window
    nodes = {}
    for node_id in plan.nodes_of(ctx.shard_id):
        node = sim.cluster.nodes[node_id]
        s = node.stats
        nodes[node_id] = (s.throughput(t0, t1), s.ops_served, s.forwards,
                          s.drops, s.cache_hits, s.cache_misses,
                          node.cache.prefix_fraction())
    clients = {c.client_id: (c.stats.ops_completed, c.stats.errors,
                             c.stats.mean_latency_s)
               for c in sim.clients}
    return ShardPartial(shard_id=ctx.shard_id, nodes=nodes,
                        clients=clients, samples=sim.tracer.samples,
                        ns_len=len(sim.ns), snapshot_len=snapshot_len,
                        kernel={**sim.env.kernel_stats(),
                                **kernel_info(sim.env),
                                **model_info(sim.model_backend)},
                        messages_sent=ctx.transport.sent,
                        messages_received=ctx.transport.received)


def _shard_worker_main(conn, config, shard_id: int,
                       n_shards: int) -> None:
    """Worker-process entry point: build the shard slice, then serve the
    coordinator's barrier protocol until the ``finish`` message."""
    try:
        from ..experiments._build import build_simulation

        ctx = ShardContext(shard_id, n_shards)
        sim = build_simulation(config, shard=ctx)
        env = sim.env
        transport = ctx.transport
        snapshot_len = len(sim.ns)
        while True:
            msg = conn.recv()
            kind = msg[0]
            if kind == "step":
                target, inbox = msg[1], msg[2]
                for _arrival, _src, _seq, payload in inbox:
                    transport.inject(payload)
                env.run_window(target)
                conn.send(("out", transport.drain()))
            elif kind == "finish":
                end, inbox = msg[1], msg[2]
                for _arrival, _src, _seq, payload in inbox:
                    transport.inject(payload)
                env.run(until=end)
                conn.send(("done", _collect_partial(sim, ctx, snapshot_len),
                           transport.drain()))
                return
            else:
                raise RuntimeError(f"unknown coordinator message {kind!r}")
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except Exception:
            pass
    finally:
        conn.close()
