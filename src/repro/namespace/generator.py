"""Synthetic file-system snapshot generation.

The paper runs generated client workloads against snapshots of real file
systems (§5.2); its scaling experiments describe the namespace as "a large
collection of home directories".  We generate an equivalent synthetic
snapshot: ``/home/u<NNN>`` per user, each a private subtree with nested
project/mail/src-style directories, plus a shared ``/usr`` software tree that
every client occasionally touches.  Directory sizes are log-normal (heavy
tail — most directories small, a few huge), matching published namespace
studies; depth decays geometrically.

All randomness comes from named :class:`~repro.sim.rng.RngStreams` children,
so a spec + seed pair always yields byte-identical namespaces.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Union

from ..sim.rng import RngStreams
from . import path as pathmod
from .inode import Inode
from .tree import Namespace


@dataclass(frozen=True)
class SnapshotSpec:
    """Parameters of a synthetic namespace.

    ``files_per_user`` is a *mean*; actual per-user counts vary log-normally
    with ``user_size_sigma``.  ``dir_chain`` controls expected subdirectories
    per directory at the top of a user tree; it decays by ``branch_decay``
    per level so trees stay bounded by ``max_depth``.
    """

    n_users: int = 20
    files_per_user: int = 200
    user_size_sigma: float = 0.6
    subdirs_per_dir: float = 3.0
    branch_decay: float = 0.55
    max_depth: int = 6
    files_per_dir_sigma: float = 1.0
    mean_file_size: int = 16 * 1024
    file_size_sigma: float = 1.8
    shared_tree_files: int = 400
    shared_tree_dirs: int = 40


@dataclass
class SnapshotStats:
    """What was actually generated."""

    n_files: int = 0
    n_dirs: int = 0
    max_depth_seen: int = 0
    user_roots: "list[pathmod.Path]" = field(default_factory=list)

    @property
    def n_inodes(self) -> int:
        return self.n_files + self.n_dirs


_DIR_WORDS = ("src", "doc", "data", "mail", "proj", "tmp", "pub", "lib",
              "test", "old", "img", "notes")
_FILE_EXTS = (".txt", ".c", ".h", ".dat", ".log", ".tex", ".out", ".gz")


def generate_snapshot(ns: Namespace, spec: SnapshotSpec,
                      streams: RngStreams) -> SnapshotStats:
    """Populate ``ns`` with a home-directory-collection snapshot.

    Returns generation statistics; the namespace must be empty (fresh).
    """
    if len(ns) != 1:
        raise ValueError("generate_snapshot requires a fresh namespace")
    stats = SnapshotStats()
    home = pathmod.parse("/home")
    ns.mkdir(home)
    stats.n_dirs += 1

    sizes_rng = streams.np_stream("snapshot.user_sizes")
    # Log-normal per-user file budgets with the requested mean.
    mu = math.log(spec.files_per_user) - spec.user_size_sigma ** 2 / 2
    budgets = sizes_rng.lognormal(mu, spec.user_size_sigma, spec.n_users)

    for u in range(spec.n_users):
        user_rng = streams.py_stream(f"snapshot.user.{u}")
        root = pathmod.join(home, f"u{u:04d}")
        ns.mkdir(root, owner=u)
        stats.n_dirs += 1
        stats.user_roots.append(root)
        budget = max(1, int(round(budgets[u])))
        _grow_tree(ns, root, owner=u, budget=budget, depth=1, spec=spec,
                   rng=user_rng, stats=stats)

    _grow_shared_tree(ns, spec, streams, stats)
    return stats


def _grow_tree(ns: Namespace, at: pathmod.Path, owner: int, budget: int,
               depth: int, spec: SnapshotSpec, rng, stats: SnapshotStats) -> int:
    """Recursively fill ``at`` with files and subdirectories.

    Returns the number of files created (≤ budget).
    """
    stats.max_depth_seen = max(stats.max_depth_seen, len(at))
    created = 0

    # How many subdirectories at this level?
    mean_dirs = spec.subdirs_per_dir * (spec.branch_decay ** (depth - 1))
    n_dirs = 0
    if depth < spec.max_depth and budget > 4:
        n_dirs = min(_poissonish(rng, mean_dirs), budget // 3, len(_DIR_WORDS))

    # Split the budget: subdirectories get a share, the rest become local files.
    sub_share = 0.65 if n_dirs else 0.0
    sub_budget_total = int(budget * sub_share)
    local_files = budget - sub_budget_total

    for i in range(local_files):
        name = f"f{i:04d}{rng.choice(_FILE_EXTS)}"
        size = int(rng.lognormvariate(
            math.log(spec.mean_file_size) - spec.file_size_sigma ** 2 / 2,
            spec.file_size_sigma))
        ns.create_file(pathmod.join(at, name), owner=owner, size=size)
        stats.n_files += 1
        created += 1

    if n_dirs:
        names = rng.sample(_DIR_WORDS, n_dirs)
        # Uneven split so some subtrees are much bigger than others.
        weights = [rng.random() + 0.1 for _ in range(n_dirs)]
        total_w = sum(weights)
        for name, w in zip(names, weights):
            sub_budget = max(1, int(sub_budget_total * w / total_w))
            sub = pathmod.join(at, name)
            ns.mkdir(sub, owner=owner)
            stats.n_dirs += 1
            created += _grow_tree(ns, sub, owner, sub_budget, depth + 1,
                                  spec, rng, stats)
    return created


def _grow_shared_tree(ns: Namespace, spec: SnapshotSpec,
                      streams: RngStreams, stats: SnapshotStats) -> None:
    """Build ``/usr``: a wide shared software tree all clients may read."""
    if spec.shared_tree_files <= 0:
        return
    rng = streams.py_stream("snapshot.shared")
    usr = pathmod.parse("/usr")
    ns.mkdir(usr)
    stats.n_dirs += 1
    n_dirs = max(1, spec.shared_tree_dirs)
    per_dir = max(1, spec.shared_tree_files // n_dirs)
    for d in range(n_dirs):
        sub = pathmod.join(usr, f"pkg{d:03d}")
        ns.mkdir(sub)
        stats.n_dirs += 1
        for f in range(per_dir):
            name = f"bin{f:03d}"
            size = int(rng.lognormvariate(math.log(64 * 1024), 1.0))
            ns.create_file(pathmod.join(sub, name), size=size)
            stats.n_files += 1


def _poissonish(rng, mean: float) -> int:
    """Small-mean Poisson sample via inversion (stdlib ``random`` has none)."""
    if mean <= 0:
        return 0
    threshold = math.exp(-mean)
    k, p = 0, 1.0
    while True:
        p *= rng.random()
        if p <= threshold:
            return k
        k += 1


TreeSpec = Dict[str, Union["TreeSpec", int]]


def build_tree(ns: Namespace, spec: TreeSpec,
               at: pathmod.Path = pathmod.ROOT, owner: int = 0) -> None:
    """Build an explicit namespace from nested dicts (test helper).

    ``{"home": {"alice": {"notes.txt": 120}}}`` creates directories for dict
    values and files (with the given size) for int values.
    """
    for name, value in spec.items():
        child = pathmod.join(at, name)
        if isinstance(value, dict):
            ns.mkdir(child, owner=owner)
            build_tree(ns, value, child, owner)
        else:
            ns.create_file(child, owner=owner, size=int(value))
