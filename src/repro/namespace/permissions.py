"""Minimal POSIX-flavoured permission model.

The paper's strategies differ in *where* the permission check happens (path
traversal for subtree/hash strategies, a merged dual-entry ACL for Lazy
Hybrid, §3.1.3) rather than in the richness of the permission model itself,
so we model two principals — the owner and everyone else — with read/write/
execute bits each, which is enough to make "effective access along a path"
a real computation.
"""

from __future__ import annotations

from dataclasses import dataclass

# Bit layout mirrors the low 6 bits of a Unix mode word.
OWNER_R = 0o400
OWNER_W = 0o200
OWNER_X = 0o100
OTHER_R = 0o004
OTHER_W = 0o002
OTHER_X = 0o001

DEFAULT_DIR_MODE = 0o755
DEFAULT_FILE_MODE = 0o644


@dataclass(frozen=True)
class Access:
    """Effective rights for one principal."""

    read: bool
    write: bool
    execute: bool

    def __and__(self, other: "Access") -> "Access":
        return Access(self.read and other.read,
                      self.write and other.write,
                      self.execute and other.execute)


def access_for(mode: int, uid: int, owner: int) -> Access:
    """Rights ``uid`` gets from ``mode`` on an object owned by ``owner``."""
    if uid == owner:
        return Access(bool(mode & OWNER_R), bool(mode & OWNER_W),
                      bool(mode & OWNER_X))
    return Access(bool(mode & OTHER_R), bool(mode & OTHER_W),
                  bool(mode & OTHER_X))


def can_traverse(mode: int, uid: int, owner: int) -> bool:
    """Whether ``uid`` may descend *through* a directory (execute bit)."""
    return access_for(mode, uid, owner).execute


@dataclass(frozen=True)
class DualEntryACL:
    """Lazy Hybrid's per-file merged access-control entry (§3.1.3).

    Stores, for the owner principal and for everyone else, the effective
    rights after AND-ing traversal permission over every ancestor directory
    with the file's own bits.  Having this on the file record lets an MDS
    grant or deny access without touching any ancestor inode.
    """

    owner_uid: int
    owner: Access
    other: Access

    def access(self, uid: int) -> Access:
        return self.owner if uid == self.owner_uid else self.other


def merge_path_acl(modes_and_owners: "list[tuple[int, int]]",
                   file_mode: int, file_owner: int) -> DualEntryACL:
    """Compute the dual-entry ACL for a file.

    ``modes_and_owners`` lists ``(mode, owner_uid)`` of every ancestor
    directory, root first.  A principal's effective rights are the file's
    own rights gated by execute permission on every ancestor.
    """
    owner_ok = True
    other_ok = True
    for mode, owner in modes_and_owners:
        owner_ok = owner_ok and can_traverse(mode, file_owner, owner)
        other_ok = other_ok and can_traverse(mode, -1, owner)
    owner_bits = access_for(file_mode, file_owner, file_owner)
    other_bits = access_for(file_mode, -1, file_owner)
    gate = Access(True, True, True)
    none = Access(False, False, False)
    return DualEntryACL(
        owner_uid=file_owner,
        owner=(owner_bits & gate) if owner_ok else none,
        other=(other_bits & gate) if other_ok else none,
    )
