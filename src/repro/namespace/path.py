"""Path utilities.

Paths are represented internally as tuples of name components, rooted at the
file-system root: ``()`` is ``/``, ``("usr", "local")`` is ``/usr/local``.
Tuples are hashable (usable as dict keys for client location caches and
hash-based partitions), cheap to slice for prefix walks, and unambiguous.
"""

from __future__ import annotations

from typing import Iterator, Tuple

Path = Tuple[str, ...]

ROOT: Path = ()


def parse(text: str) -> Path:
    """Parse ``"/usr/local"`` into ``("usr", "local")``.

    Accepts redundant slashes; rejects empty or relative inputs and ``.``/
    ``..`` components (the simulator namespace is always absolute and
    normalized).
    """
    if not text.startswith("/"):
        raise ValueError(f"paths must be absolute, got {text!r}")
    parts = tuple(p for p in text.split("/") if p)
    for part in parts:
        if part in (".", ".."):
            raise ValueError(f"path component {part!r} not allowed in {text!r}")
    return parts


def format_path(path: Path) -> str:
    """Render a component tuple as a conventional slash string."""
    return "/" + "/".join(path)


def parent(path: Path) -> Path:
    """The containing directory's path. The root is its own parent."""
    return path[:-1] if path else ROOT


def basename(path: Path) -> str:
    """Final component; empty string for the root."""
    return path[-1] if path else ""


def is_ancestor(candidate: Path, path: Path) -> bool:
    """True if ``candidate`` is a proper ancestor of ``path``."""
    return len(candidate) < len(path) and path[: len(candidate)] == candidate


def is_prefix(candidate: Path, path: Path) -> bool:
    """True if ``candidate`` is ``path`` or one of its ancestors."""
    return path[: len(candidate)] == candidate


def prefixes(path: Path) -> Iterator[Path]:
    """Yield every proper ancestor of ``path``, root first.

    ``prefixes(("a", "b", "c"))`` yields ``()``, ``("a",)``, ``("a", "b")``.
    """
    for i in range(len(path)):
        yield path[:i]


def join(path: Path, name: str) -> Path:
    """Append one component."""
    if not name or "/" in name:
        raise ValueError(f"invalid path component {name!r}")
    return path + (name,)


def depth(path: Path) -> int:
    """Number of components below the root."""
    return len(path)
