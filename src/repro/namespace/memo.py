"""O(1) path-resolution memo for the request hot path.

Every MDS request re-resolves its full path component-by-component against
the shared ground-truth namespace, and the serving path then walks the
target's ancestor chain again (traversal, popularity accounting,
distribution info).  Both walks are pure functions of the namespace
structure, so :class:`ResolutionMemo` caches them:

* **path entries** — ``path -> (target inode, walk inodes)`` where the walk
  is the inode at each path depth (root excluded).  A hit turns
  ``Namespace.resolve`` into one dict lookup.
* **chain entries** — ``ino -> ancestor inodes (root first)``, backing
  ``Namespace.ancestors``.

Entries store *references* to live :class:`~repro.namespace.inode.Inode`
objects, so in-place attribute mutations (chmod, setattr, mtime) are always
visible; only *structural* mutations can make an entry stale.  Invalidation
is precise: every entry is indexed by each inode on its walk/chain, and
``invalidate_ino`` — called by :class:`~repro.namespace.tree.Namespace` on
``unlink``/``rename``/orphan release — drops exactly the entries whose walk
passes through the mutated inode (a renamed directory therefore invalidates
its whole cached subtree in one call).  Creations and hard-link additions
never invalidate: negative lookups are never cached, and a new dentry
cannot change the meaning of an existing one.

The memo is bounded; when full, the oldest path entry is dropped (plain
FIFO — the workload's locality makes anything fancier irrelevant here, and
the backing namespace walk is always correct).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple, Union

from .inode import Inode
from .path import Path

#: A dependency-index key: a memoised path (tuple of components) or a
#: memoised ancestor chain (the int ino it is keyed by).
_MemoKey = Union[Path, int]


class ResolutionMemo:
    """Bounded memo of path resolutions and ancestor chains."""

    __slots__ = ("capacity", "paths", "chains", "ino_chains", "_deps",
                 "hits", "misses", "invalidations")

    def __init__(self, capacity: int = 65536) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        #: path -> (target, walk); walk[i] is the inode at depth i+1, so
        #: walk[-1] is the target itself (root excluded).
        self.paths: Dict[Path, Tuple[Inode, Tuple[Inode, ...]]] = {}
        #: ino -> ancestors of ino, root first (excluding ino itself).
        self.chains: Dict[int, Tuple[Inode, ...]] = {}
        #: ino -> the same chain as bare inos (shared immutable tuple);
        #: derived from ``chains`` and dropped with it.
        self.ino_chains: Dict[int, Tuple[int, ...]] = {}
        #: ino -> keys of entries whose walk/chain passes through it.
        self._deps: Dict[int, Set[_MemoKey]] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self.paths) + len(self.chains)

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def store_path(self, path: Path, walk: Tuple[Inode, ...]) -> None:
        """Memoise a *successful* resolution of ``path``."""
        if path in self.paths:
            return
        while len(self.paths) >= self.capacity:
            self._drop_path(next(iter(self.paths)))
        self.paths[path] = (walk[-1], walk)
        deps = self._deps
        for node in walk:
            bucket = deps.get(node.ino)
            if bucket is None:
                bucket = deps[node.ino] = set()
            bucket.add(path)

    def store_chain(self, ino: int, chain: Tuple[Inode, ...]) -> None:
        """Memoise ``ancestors(ino)`` (root first, ``ino`` excluded)."""
        if ino in self.chains:
            return
        while len(self.chains) >= self.capacity:
            self._drop_chain(next(iter(self.chains)))
        self.chains[ino] = chain
        self.ino_chains[ino] = tuple(node.ino for node in chain)
        deps = self._deps
        # the entry depends on ino itself (a rename/unlink of ino must kill
        # it) and on every non-root ancestor on the chain
        bucket = deps.get(ino)
        if bucket is None:
            bucket = deps[ino] = set()
        bucket.add(ino)
        for node in chain[1:]:  # chain[0] is the immovable root
            bucket = deps.get(node.ino)
            if bucket is None:
                bucket = deps[node.ino] = set()
            bucket.add(ino)

    # ------------------------------------------------------------------
    # invalidation
    # ------------------------------------------------------------------
    def invalidate_ino(self, ino: int) -> int:
        """Drop every entry whose walk or chain passes through ``ino``.

        Returns the number of entries dropped.  Called on ``unlink``,
        ``rename`` and orphan release — the only namespace mutations that
        can change what an existing path resolves to.
        """
        keys = self._deps.pop(ino, None)
        if not keys:
            return 0
        dropped = 0
        for key in list(keys):
            if isinstance(key, tuple):
                if self._drop_path(key):
                    dropped += 1
            else:
                if self._drop_chain(key):
                    dropped += 1
        self.invalidations += dropped
        return dropped

    def clear(self) -> None:
        self.paths.clear()
        self.chains.clear()
        self.ino_chains.clear()
        self._deps.clear()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _drop_path(self, path: Path) -> bool:
        entry = self.paths.pop(path, None)
        if entry is None:
            return False
        deps = self._deps
        for node in entry[1]:
            bucket = deps.get(node.ino)
            if bucket is not None:
                bucket.discard(path)
                if not bucket:
                    del deps[node.ino]
        return True

    def _drop_chain(self, ino: int) -> bool:
        chain = self.chains.pop(ino, None)
        if chain is None:
            return False
        self.ino_chains.pop(ino, None)
        deps = self._deps
        for dep_ino in (ino, *(node.ino for node in chain[1:])):
            bucket = deps.get(dep_ino)
            if bucket is not None:
                bucket.discard(ino)
                if not bucket:
                    del deps[dep_ino]
        return True

    # ------------------------------------------------------------------
    # introspection (tests, reports)
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        return {"entries": len(self), "hits": self.hits,
                "misses": self.misses, "invalidations": self.invalidations}

    def verify_invariants(self) -> None:
        """Raise ``AssertionError`` on index inconsistency (tests only)."""
        expected: Dict[int, Set[_MemoKey]] = {}
        for path, (_target, walk) in self.paths.items():
            for node in walk:
                expected.setdefault(node.ino, set()).add(path)
        for ino, chain in self.chains.items():
            expected.setdefault(ino, set()).add(ino)
            for node in chain[1:]:
                expected.setdefault(node.ino, set()).add(ino)
        assert self._deps == expected, (
            f"dep index mismatch: {self._deps} != {expected}")
        assert self.ino_chains.keys() == self.chains.keys(), (
            "ino_chains out of sync with chains")
        for ino, chain in self.chains.items():
            assert self.ino_chains[ino] == tuple(n.ino for n in chain)


__all__ = ["ResolutionMemo"]
