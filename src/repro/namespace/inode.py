"""Inode records.

Inodes are *embedded*: they live with (one of) their directory entries
(§4.5), so there is no global inode table.  ``parent_ino`` records the
directory holding the embedding dentry; multiply-linked files additionally
appear in the :class:`~repro.namespace.anchor.AnchorTable`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from .permissions import DEFAULT_DIR_MODE, DEFAULT_FILE_MODE


class InodeType(enum.Enum):
    FILE = "file"
    DIR = "dir"


@dataclass
class Inode:
    """One metadata record (file or directory).

    ``children`` is populated only for directories and maps entry name →
    child ino; for files it stays ``None`` so that a namespace with millions
    of files does not pay a dict per file.
    """

    ino: int
    itype: InodeType
    parent_ino: int
    mode: int = 0
    owner: int = 0
    size: int = 0
    mtime: float = 0.0
    nlink: int = 1
    children: "dict[str, int] | None" = field(default=None, repr=False)
    # plain attributes, not properties: type checks dominate the request
    # hot path (~1M reads per simulated minute) and itype never changes
    is_dir: bool = field(init=False, repr=False, compare=False)
    is_file: bool = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        self.is_dir = self.itype is InodeType.DIR
        self.is_file = self.itype is InodeType.FILE
        if self.mode == 0:
            self.mode = (DEFAULT_DIR_MODE if self.itype is InodeType.DIR
                         else DEFAULT_FILE_MODE)
        if self.itype is InodeType.DIR and self.children is None:
            self.children = {}
        if self.itype is InodeType.FILE and self.children is not None:
            raise ValueError("file inodes cannot have children")

    @property
    def entry_count(self) -> int:
        """Number of directory entries (0 for files)."""
        return len(self.children) if self.children is not None else 0
