"""Namespace error types, mirroring the POSIX failures clients can observe."""

from __future__ import annotations


class FsError(Exception):
    """Base class for namespace failures."""


class FileNotFound(FsError):
    """No entry at the requested path."""


class NotADirectory(FsError):
    """A non-final path component resolved to a file."""


class IsADirectory(FsError):
    """A file operation was attempted on a directory."""


class NotEmpty(FsError):
    """Attempt to remove a directory that still has entries."""


class AlreadyExists(FsError):
    """Attempt to create an entry over an existing name."""


class InvalidOperation(FsError):
    """Structurally invalid request (hard-linking a directory, renaming a
    directory into its own subtree, unlinking the root, ...)."""
