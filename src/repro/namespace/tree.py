"""The shared file-system namespace.

One :class:`Namespace` instance is the ground truth that every simulated MDS
serves a partition of.  It provides POSIX-shaped mutations (create, unlink,
rename, link, chmod) and the ancestry queries that path traversal, permission
checks and the partitioning strategies are built on.

Inodes are embedded (§4.5): each lives with its *primary* dentry, recorded by
``Inode.parent_ino``.  Extra hard links are tracked separately, and files
with ``nlink > 1`` — together with their ancestor directories — appear in the
:class:`~repro.namespace.anchor.AnchorTable` so they remain locatable without
a global inode table.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

from . import path as pathmod
from .anchor import AnchorTable
from .errors import (AlreadyExists, FileNotFound, InvalidOperation,
                     IsADirectory, NotADirectory, NotEmpty)
from .inode import Inode, InodeType
from .memo import ResolutionMemo
from .path import Path

ROOT_INO = 1


class _ArenaAllocator:
    """Partition-affine inode numbering (``SimParams.shard_affinity``).

    New inodes draw from per-subtree *arenas* keyed on the first two path
    components, laid out as interleaved strided sequences
    (``base + arena_index + k * stride``): which number a create receives
    depends only on the create's position within its own subtree, never on
    how creates in different subtrees interleave.  That makes inode numbers
    invariant under any partitioning of the workload — the property the
    sharded executor's bit-identity contract rests on.  Paths outside the
    enable-time arena inventory share a catch-all arena.
    """

    __slots__ = ("base", "index", "stride", "catch_all", "counters")

    def __init__(self, base: int, keys: List[Path]) -> None:
        self.base = base
        self.index: Dict[Path, int] = {key: i for i, key in enumerate(keys)}
        self.catch_all = len(keys)
        self.stride = len(keys) + 1
        self.counters: Dict[int, int] = {}

    def allocate(self, path: Path) -> int:
        idx = self.index.get(path[:2], self.catch_all)
        k = self.counters.get(idx, 0)
        self.counters[idx] = k + 1
        return self.base + idx + k * self.stride


class Namespace:
    """An in-memory hierarchical namespace with embedded inodes."""

    def __init__(self) -> None:
        self._inodes: Dict[int, Inode] = {}
        self._next_ino = ROOT_INO
        self.anchors = AnchorTable()
        #: non-primary hard links: ino -> set of (parent_ino, name)
        self._extra_links: Dict[int, Set[Tuple[int, str]]] = {}
        #: unlinked-while-open inodes, retained until released (§4.5)
        self._orphans: Dict[int, Inode] = {}
        #: request-path fast lane (attached by the cluster when the fast
        #: path is enabled); ``None`` means every resolve walks the tree
        self._memo: Optional[ResolutionMemo] = None
        #: partition-affine ino numbering (attached by the cluster under
        #: ``shard_affinity``); ``None`` means the global sequential counter
        self._arena_alloc: Optional[_ArenaAllocator] = None
        #: optional second precise-invalidation consumer (the cluster's
        #: distribution-info memo); duck-typed ``invalidate_ino(ino)``
        self._structure_watcher = None
        #: bumped on every structural mutation (unlink/rename/orphan
        #: release); consumers with coarse-grained caches keyed on
        #: namespace structure (partition authority caches) compare it
        #: instead of registering callbacks — an int survives ``deepcopy``
        #: where a listener list would drag its subscribers along.
        self.structure_epoch = 0
        #: bumped on every dentry *addition* (create/mkdir/link).  Additions
        #: deliberately do not bump ``structure_epoch`` — they cannot stale a
        #: cached successful resolution or a per-ino authority — but they CAN
        #: extend a previously truncated path walk, so caches that memoise
        #: walks ending at an unresolvable component (the distribution-info
        #: memo) must key on this too.
        self.dentry_add_epoch = 0
        root = self._new_inode(InodeType.DIR, parent_ino=ROOT_INO)
        assert root.ino == ROOT_INO
        self.root = root

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Total number of inodes (files + directories)."""
        return len(self._inodes)

    def __contains__(self, ino: int) -> bool:
        return ino in self._inodes

    def inode(self, ino: int) -> Inode:
        """Look up an inode by number."""
        try:
            return self._inodes[ino]
        except KeyError:
            raise FileNotFound(f"no inode {ino}") from None

    def count_dirs(self) -> int:
        return sum(1 for i in self._inodes.values() if i.is_dir)

    def count_files(self) -> int:
        return sum(1 for i in self._inodes.values() if i.is_file)

    def resolve(self, path: Path) -> Inode:
        """Walk ``path`` from the root, returning the final inode.

        With the fast lane attached (:meth:`enable_resolution_memo`) a
        repeated resolution is one dict hit; the memo stores only
        *successful* full resolutions, so error behaviour is untouched.
        """
        memo = self._memo
        if memo is None:
            node = self.root
            for i, name in enumerate(path):
                if not node.is_dir:
                    raise NotADirectory(
                        f"{pathmod.format_path(path[:i])} is not a directory")
                child_ino = node.children.get(name)  # type: ignore[union-attr]
                if child_ino is None:
                    raise FileNotFound(pathmod.format_path(path[: i + 1]))
                node = self._inodes[child_ino]
            return node
        hit = memo.paths.get(path)
        if hit is not None:
            memo.hits += 1
            return hit[0]
        memo.misses += 1
        node = self.root
        walk: List[Inode] = []
        for i, name in enumerate(path):
            if not node.is_dir:
                raise NotADirectory(
                    f"{pathmod.format_path(path[:i])} is not a directory")
            child_ino = node.children.get(name)  # type: ignore[union-attr]
            if child_ino is None:
                raise FileNotFound(pathmod.format_path(path[: i + 1]))
            node = self._inodes[child_ino]
            walk.append(node)
        if walk:  # the root itself is never memoised (nor invalidated)
            memo.store_path(path, tuple(walk))
        return node

    def try_resolve(self, path: Path) -> Optional[Inode]:
        """Like :meth:`resolve` but returns ``None`` instead of raising."""
        memo = self._memo
        if memo is not None:
            hit = memo.paths.get(path)
            if hit is not None:
                memo.hits += 1
                return hit[0]
        try:
            return self.resolve(path)
        except (FileNotFound, NotADirectory):
            return None

    def subdir_names(self, node: Inode) -> List[str]:
        """Names of ``node``'s directory children, in entry order."""
        inodes = self._inodes
        return [name for name, ino in node.children.items()  # type: ignore[union-attr]
                if inodes[ino].is_dir]

    def file_names(self, node: Inode) -> List[str]:
        """Names of ``node``'s file children, in entry order."""
        inodes = self._inodes
        return [name for name, ino in node.children.items()  # type: ignore[union-attr]
                if inodes[ino].is_file]

    def path_of(self, ino: int) -> Path:
        """Primary path of an inode (via embedding parents)."""
        parts: List[str] = []
        node = self.inode(ino)
        while node.ino != ROOT_INO:
            parent = self._inodes[node.parent_ino]
            name = self._name_in(parent, node.ino)
            parts.append(name)
            node = parent
        return tuple(reversed(parts))

    def ancestors(self, ino: int) -> List[Inode]:
        """Ancestor directories of ``ino``, root first (excludes ``ino``).

        Returns a fresh list on every call (callers extend it); with the
        fast lane attached the chain itself comes from the memo.
        """
        memo = self._memo
        if memo is not None:
            cached = memo.chains.get(ino)
            if cached is not None:
                memo.hits += 1
                return list(cached)
            memo.misses += 1
        chain: List[Inode] = []
        node = self.inode(ino)
        while node.ino != ROOT_INO:
            node = self._inodes[node.parent_ino]
            chain.append(node)
        chain.reverse()
        if memo is not None:
            memo.store_chain(ino, tuple(chain))
        return chain

    def ancestor_inos(self, ino: int) -> Tuple[int, ...]:
        """Ancestor inos of ``ino``, root first (excludes ``ino``).

        Ino-only twin of :meth:`ancestors` for callers that never touch
        the inode objects; memo hits return a shared immutable tuple with
        no per-call copy.  Do not mutate the result.
        """
        memo = self._memo
        if memo is not None:
            cached = memo.ino_chains.get(ino)
            if cached is not None:
                memo.hits += 1
                return cached
            self.ancestors(ino)  # miss: populate both chain caches
            return memo.ino_chains[ino]
        return tuple(node.ino for node in self.ancestors(ino))

    def is_ancestor_ino(self, candidate: int, ino: int) -> bool:
        """True if ``candidate`` is a proper ancestor directory of ``ino``."""
        node = self.inode(ino)
        while node.ino != ROOT_INO:
            node = self._inodes[node.parent_ino]
            if node.ino == candidate:
                return True
        return False

    def readdir(self, path: Path) -> List[str]:
        """Entry names of a directory, in stable (insertion) order."""
        node = self.resolve(path)
        if not node.is_dir:
            raise NotADirectory(pathmod.format_path(path))
        return list(node.children)  # type: ignore[arg-type]

    def iter_subtree(self, ino: int) -> Iterator[Inode]:
        """Depth-first iteration over ``ino`` and everything beneath it."""
        stack = [ino]
        while stack:
            node = self._inodes[stack.pop()]
            yield node
            if node.is_dir:
                # reversed so iteration order matches insertion order
                stack.extend(reversed(list(node.children.values())))  # type: ignore[union-attr]

    def subtree_inode_count(self, ino: int) -> int:
        """Number of inodes in the subtree rooted at ``ino`` (inclusive)."""
        return sum(1 for _ in self.iter_subtree(ino))

    # ------------------------------------------------------------------
    # request-path fast lane
    # ------------------------------------------------------------------
    @property
    def resolution_memo(self) -> Optional[ResolutionMemo]:
        """The attached fast-lane memo, or ``None`` when disabled."""
        return self._memo

    def enable_resolution_memo(self,
                               capacity: int = 65536) -> ResolutionMemo:
        """Attach (or return the existing) path-resolution memo.

        Constructed through the model-backend factory, so under
        ``REPRO_MODEL=compiled`` this is the C implementation (identical
        behaviour, identical counters).
        """
        if self._memo is None:
            from ..model.backend import make_resolution_memo
            self._memo = make_resolution_memo(capacity)
        return self._memo

    def disable_resolution_memo(self) -> None:
        self._memo = None

    def enable_arena_ino_allocation(self) -> None:
        """Switch new-inode numbering to per-subtree strided arenas.

        The arena inventory is the set of directories at depth one and two
        at enable time (sorted by path, so the numbering is a pure function
        of the namespace content, not of construction order).  Idempotent;
        meant to be called once, before any workload-driven creates.
        """
        if self._arena_alloc is not None:
            return
        keys = sorted(
            path for path in (self.path_of(node.ino)
                              for node in self.iter_subtree(ROOT_INO)
                              if node.is_dir and node.ino != ROOT_INO)
            if len(path) <= 2)
        self._arena_alloc = _ArenaAllocator(self._next_ino, keys)

    def attach_structure_watcher(self, watcher) -> None:
        """Attach one extra precise-invalidation consumer (duck-typed:
        anything with ``invalidate_ino(ino)``, e.g. the cluster's
        distribution-info memo).  Same lifecycle as the resolution memo."""
        self._structure_watcher = watcher

    def _structure_changed(self, ino: int) -> None:
        """One dentry/chain mutation happened at ``ino``: precise-invalidate
        the memos and bump the coarse epoch."""
        self.structure_epoch += 1
        if self._memo is not None:
            self._memo.invalidate_ino(ino)
        if self._structure_watcher is not None:
            self._structure_watcher.invalidate_ino(ino)

    # ------------------------------------------------------------------
    # orphans (unlinked while open, §4.5)
    # ------------------------------------------------------------------
    def is_orphan(self, ino: int) -> bool:
        return ino in self._orphans

    def orphan_count(self) -> int:
        return len(self._orphans)

    def release_orphan(self, ino: int) -> None:
        """Drop a retained orphan (the last open handle closed)."""
        inode = self._orphans.pop(ino, None)
        if inode is None:
            raise KeyError(f"ino {ino} is not an orphan")
        del self._inodes[ino]
        self._structure_changed(ino)

    # ------------------------------------------------------------------
    # mutations
    # ------------------------------------------------------------------
    def mkdir(self, path: Path, mode: int = 0, owner: int = 0,
              mtime: float = 0.0) -> Inode:
        """Create a directory at ``path``."""
        return self._create(path, InodeType.DIR, mode, owner, 0, mtime)

    def create_file(self, path: Path, mode: int = 0, owner: int = 0,
                    size: int = 0, mtime: float = 0.0) -> Inode:
        """Create a regular file at ``path``."""
        return self._create(path, InodeType.FILE, mode, owner, size, mtime)

    def _create(self, path: Path, itype: InodeType, mode: int, owner: int,
                size: int, mtime: float) -> Inode:
        if not path:
            raise InvalidOperation("cannot create the root")
        parent = self.resolve(pathmod.parent(path))
        if not parent.is_dir:
            raise NotADirectory(pathmod.format_path(pathmod.parent(path)))
        name = pathmod.basename(path)
        if name in parent.children:  # type: ignore[operator]
            raise AlreadyExists(pathmod.format_path(path))
        alloc = self._arena_alloc
        inode = self._new_inode(itype, parent_ino=parent.ino, mode=mode,
                                owner=owner, size=size, mtime=mtime,
                                ino=alloc.allocate(path) if alloc else None)
        parent.children[name] = inode.ino  # type: ignore[index]
        parent.mtime = max(parent.mtime, mtime)
        self.dentry_add_epoch += 1
        return inode

    def link(self, target: Path, new_path: Path, mtime: float = 0.0) -> Inode:
        """Create a hard link ``new_path`` to the file at ``target``."""
        inode = self.resolve(target)
        if inode.is_dir:
            raise InvalidOperation("hard links to directories are not allowed")
        new_parent = self.resolve(pathmod.parent(new_path))
        if not new_parent.is_dir:
            raise NotADirectory(pathmod.format_path(pathmod.parent(new_path)))
        name = pathmod.basename(new_path)
        if name in new_parent.children:  # type: ignore[operator]
            raise AlreadyExists(pathmod.format_path(new_path))
        new_parent.children[name] = inode.ino  # type: ignore[index]
        new_parent.mtime = max(new_parent.mtime, mtime)
        self.dentry_add_epoch += 1
        self._extra_links.setdefault(inode.ino, set()).add(
            (new_parent.ino, name))
        inode.nlink += 1
        if inode.nlink == 2:
            # Newly multiply-linked: register its embedding chain.
            self.anchors.add_anchor(inode.ino, self._ancestry_pairs(inode.ino))
        return inode

    def unlink(self, path: Path, mtime: float = 0.0,
               retain_inode: bool = False) -> None:
        """Remove the dentry at ``path`` (files and empty directories).

        With ``retain_inode`` a file whose last link is removed becomes an
        *orphan*: unreachable by path but still addressable by inode number
        (§4.5's deleted-while-open case) until :meth:`release_orphan`.
        """
        if not path:
            raise InvalidOperation("cannot unlink the root")
        parent = self.resolve(pathmod.parent(path))
        name = pathmod.basename(path)
        child_ino = parent.children.get(name)  # type: ignore[union-attr]
        if child_ino is None:
            raise FileNotFound(pathmod.format_path(path))
        inode = self._inodes[child_ino]
        if inode.is_dir:
            if inode.entry_count:
                raise NotEmpty(pathmod.format_path(path))
            del parent.children[name]  # type: ignore[union-attr]
            del self._inodes[child_ino]
            parent.mtime = max(parent.mtime, mtime)
            self._structure_changed(child_ino)
            return
        # file unlink
        is_primary = (inode.parent_ino == parent.ino
                      and self._name_in(parent, child_ino) == name
                      and (parent.ino, name) not in
                      self._extra_links.get(child_ino, ()))
        del parent.children[name]  # type: ignore[union-attr]
        parent.mtime = max(parent.mtime, mtime)
        if inode.nlink > 1:
            was_anchored_pairs = None
            if is_primary:
                was_anchored_pairs = self._ancestry_pairs(child_ino)
            inode.nlink -= 1
            if is_primary:
                # Promote a surviving link to be the embedding dentry.
                new_parent_ino, _new_name = self._promote_link(child_ino)
                self.anchors.remove_anchor(child_ino, was_anchored_pairs)
                if inode.nlink > 1:
                    self.anchors.add_anchor(
                        child_ino, self._ancestry_pairs(child_ino))
                _ = new_parent_ino
            else:
                self._extra_links[child_ino].discard((parent.ino, name))
                if not self._extra_links[child_ino]:
                    del self._extra_links[child_ino]
                if inode.nlink == 1:
                    self.anchors.remove_anchor(
                        child_ino, self._ancestry_pairs(child_ino))
        elif retain_inode:
            # deleted while open: keep the record addressable by ino
            inode.nlink = 0
            self._orphans[child_ino] = inode
        else:
            del self._inodes[child_ino]
        self._structure_changed(child_ino)

    def rename(self, old: Path, new: Path, mtime: float = 0.0) -> Inode:
        """Move/rename the entry at ``old`` to ``new``.

        ``new`` must not exist (no overwriting rename, which keeps the
        workload model simple and deterministic).  Renaming a directory into
        its own subtree is rejected.
        """
        if not old:
            raise InvalidOperation("cannot rename the root")
        if pathmod.is_prefix(old, new):
            raise InvalidOperation(
                f"cannot rename {pathmod.format_path(old)} into itself")
        old_parent = self.resolve(pathmod.parent(old))
        old_name = pathmod.basename(old)
        child_ino = old_parent.children.get(old_name)  # type: ignore[union-attr]
        if child_ino is None:
            raise FileNotFound(pathmod.format_path(old))
        new_parent = self.resolve(pathmod.parent(new))
        if not new_parent.is_dir:
            raise NotADirectory(pathmod.format_path(pathmod.parent(new)))
        new_name = pathmod.basename(new)
        if new_name in new_parent.children:  # type: ignore[operator]
            raise AlreadyExists(pathmod.format_path(new))
        inode = self._inodes[child_ino]

        is_primary_dentry = (inode.parent_ino == old_parent.ino and
                             (old_parent.ino, old_name) not in
                             self._extra_links.get(child_ino, ()))
        anchored = child_ino in self.anchors
        old_pairs = (self._ancestry_pairs(child_ino)
                     if anchored and is_primary_dentry else None)

        del old_parent.children[old_name]  # type: ignore[union-attr]
        new_parent.children[new_name] = child_ino  # type: ignore[index]
        old_parent.mtime = max(old_parent.mtime, mtime)
        new_parent.mtime = max(new_parent.mtime, mtime)

        if is_primary_dentry:
            inode.parent_ino = new_parent.ino
            if anchored:
                count = self.anchors.entry(child_ino).refcount
                # Re-point the moved entry and shift ancestor references
                # from the old chain to the new one.
                self.anchors.move(child_ino, new_parent.ino)
                assert old_pairs is not None
                self.anchors.remove_refs(old_pairs[1:], count)
                self.anchors.add_refs(
                    self._ancestry_pairs(child_ino)[1:], count)
        else:
            links = self._extra_links[child_ino]
            links.discard((old_parent.ino, old_name))
            links.add((new_parent.ino, new_name))
        self._structure_changed(child_ino)
        return inode

    def chmod(self, path: Path, mode: int, mtime: float = 0.0) -> Inode:
        """Change permission bits on the entry at ``path``."""
        inode = self.resolve(path)
        inode.mode = mode
        inode.mtime = max(inode.mtime, mtime)
        return inode

    def setattr(self, path: Path, *, size: Optional[int] = None,
                mtime: float = 0.0) -> Inode:
        """Update file attributes (used by the workload's setattr ops)."""
        inode = self.resolve(path)
        if size is not None:
            if inode.is_dir:
                raise IsADirectory(pathmod.format_path(path))
            inode.size = size
        inode.mtime = max(inode.mtime, mtime)
        return inode

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _new_inode(self, itype: InodeType, parent_ino: int, mode: int = 0,
                   owner: int = 0, size: int = 0, mtime: float = 0.0, *,
                   ino: Optional[int] = None) -> Inode:
        if ino is None:
            ino = self._next_ino
            self._next_ino += 1
        elif ino in self._inodes:
            raise InvalidOperation(f"ino {ino} already allocated")
        inode = Inode(ino=ino, itype=itype, parent_ino=parent_ino, mode=mode,
                      owner=owner, size=size, mtime=mtime)
        self._inodes[ino] = inode
        return inode

    def _name_in(self, parent: Inode, child_ino: int) -> str:
        """Name of ``child_ino``'s primary dentry inside ``parent``."""
        extra = self._extra_links.get(child_ino, set())
        for name, ino in parent.children.items():  # type: ignore[union-attr]
            if ino == child_ino and (parent.ino, name) not in extra:
                return name
        raise FileNotFound(
            f"ino {child_ino} has no primary dentry in dir {parent.ino}")

    def _ancestry_pairs(self, ino: int) -> List[Tuple[int, int]]:
        """``(node, parent)`` pairs from ``ino`` up to (excluding) the root."""
        pairs: List[Tuple[int, int]] = []
        node = self.inode(ino)
        while node.ino != ROOT_INO:
            pairs.append((node.ino, node.parent_ino))
            node = self._inodes[node.parent_ino]
        return pairs

    def _promote_link(self, ino: int) -> Tuple[int, str]:
        """Make one surviving extra link the primary dentry of ``ino``."""
        links = self._extra_links.get(ino)
        if not links:
            raise RuntimeError(f"ino {ino} has nlink>1 but no extra links")
        parent_ino, name = min(links)  # deterministic choice
        links.discard((parent_ino, name))
        if not links:
            del self._extra_links[ino]
        self._inodes[ino].parent_ino = parent_ino
        return parent_ino, name

    # ------------------------------------------------------------------
    # invariants (used by property-based tests)
    # ------------------------------------------------------------------
    def verify_invariants(self) -> None:
        """Raise ``AssertionError`` if internal bookkeeping is inconsistent."""
        # 1. every child pointer refers to a live inode; primary parents match
        dentry_counts: Dict[int, int] = {}
        for node in self._inodes.values():
            if not node.is_dir:
                continue
            for name, child_ino in node.children.items():  # type: ignore[union-attr]
                assert child_ino in self._inodes, (
                    f"dangling dentry {name!r} -> {child_ino}")
                dentry_counts[child_ino] = dentry_counts.get(child_ino, 0) + 1
        # 2. nlink matches dentry count for files; dirs have exactly one
        #    dentry; orphans are unreachable by construction
        for node in self._inodes.values():
            if node.ino == ROOT_INO:
                continue
            if node.ino in self._orphans:
                assert node.nlink == 0 and node.is_file, (
                    f"orphan {node.ino} inconsistent")
                assert node.ino not in dentry_counts, (
                    f"orphan {node.ino} still linked")
                continue
            have = dentry_counts.get(node.ino, 0)
            if node.is_dir:
                assert have == 1, f"dir {node.ino} has {have} dentries"
            else:
                assert have == node.nlink, (
                    f"file {node.ino}: nlink={node.nlink} but {have} dentries")
            parent = self._inodes.get(node.parent_ino)
            assert parent is not None and parent.is_dir, (
                f"ino {node.ino} has bad parent {node.parent_ino}")
            assert node.ino in parent.children.values(), (  # type: ignore[union-attr]
                f"ino {node.ino} missing from its primary parent")
        # 3. anchor table holds exactly the multiply-linked files, and
        #    refcounts equal the number of anchored inodes beneath each entry
        multi = {i.ino for i in self._inodes.values()
                 if i.is_file and i.nlink > 1}
        expected: Dict[int, int] = {}
        for ino in multi:
            for node_ino, _parent in self._ancestry_pairs(ino):
                expected[node_ino] = expected.get(node_ino, 0) + 1
        actual = {e.ino: e.refcount for e in self.anchors._entries.values()}
        assert actual == expected, (
            f"anchor table mismatch: expected {expected}, got {actual}")
        for entry in self.anchors._entries.values():
            assert entry.parent_ino == self._inodes[entry.ino].parent_ino, (
                f"anchor parent stale for ino {entry.ino}")
