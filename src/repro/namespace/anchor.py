"""Anchor table for multiply-linked inodes (§4.5).

With embedded inodes there is no global inode table, so a file reachable
through several hard links needs an auxiliary structure: a table mapping
the inode number of every *multiply-linked* inode to its embedding parent
directory, plus reference-counted entries for the ancestor directories of
those inodes so the embedding location can be found by walking the table
recursively.  The reference counts let the table hold only the directories
it actually needs (the paper contrasts this with C-FFS, which must include
all directories).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List


@dataclass
class AnchorEntry:
    """One row: ``ino`` is embedded/contained in directory ``parent_ino``."""

    ino: int
    parent_ino: int
    refcount: int = 1


@dataclass
class AnchorTable:
    """Global lookup table for multiply-linked inodes and their ancestors."""

    _entries: Dict[int, AnchorEntry] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, ino: int) -> bool:
        return ino in self._entries

    def entry(self, ino: int) -> AnchorEntry:
        return self._entries[ino]

    # -- maintenance --------------------------------------------------------
    def add_refs(self, ancestry: Iterable[tuple[int, int]],
                 count: int = 1) -> None:
        """Add ``count`` references along an ancestor chain.

        ``ancestry`` lists ``(node_ino, its_parent_ino)`` pairs walking
        upward; entries are created on first reference.
        """
        for node_ino, parent_ino in ancestry:
            entry = self._entries.get(node_ino)
            if entry is None:
                self._entries[node_ino] = AnchorEntry(node_ino, parent_ino,
                                                      refcount=count)
            else:
                entry.refcount += count
                if entry.parent_ino != parent_ino:
                    raise ValueError(
                        f"conflicting parent for ino {node_ino}: table has "
                        f"{entry.parent_ino}, caller says {parent_ino}")

    def remove_refs(self, ancestry: Iterable[tuple[int, int]],
                    count: int = 1) -> None:
        """Drop ``count`` references along a chain (reverse of add_refs)."""
        for node_ino, _parent_ino in ancestry:
            entry = self._entries.get(node_ino)
            if entry is None:
                raise KeyError(f"ino {node_ino} not in anchor table")
            entry.refcount -= count
            if entry.refcount < 0:
                raise ValueError(f"refcount underflow for ino {node_ino}")
            if entry.refcount == 0:
                del self._entries[node_ino]

    def add_anchor(self, ino: int, ancestry: Iterable[tuple[int, int]]) -> None:
        """Register a newly multiply-linked ``ino`` via its embedding chain.

        The anchored inode's own ``(ino, parent)`` pair must come first in
        ``ancestry``.
        """
        self.add_refs(ancestry, 1)

    def remove_anchor(self, ino: int, ancestry: Iterable[tuple[int, int]]) -> None:
        """Drop one reference along ``ino``'s ancestor chain (reverse of add)."""
        self.remove_refs(ancestry, 1)

    def move(self, ino: int, new_parent_ino: int) -> None:
        """Record that a tracked inode's embedding directory changed.

        Called when a tracked directory (or anchored file) is renamed into a
        different directory.  Only the one entry changes; descendants keep
        their rows — that locality is the point of the design.
        """
        entry = self._entries.get(ino)
        if entry is None:
            raise KeyError(f"ino {ino} not in anchor table")
        entry.parent_ino = new_parent_ino

    # -- lookup --------------------------------------------------------------
    def locate(self, ino: int, max_hops: int = 1024) -> List[int]:
        """Return the chain of parent directories from ``ino`` to the root.

        The returned list starts with ``ino``'s embedding parent and walks
        upward for as long as ancestors are present in the table (ancestors
        stop being tracked once the chain reaches directories that the table
        does not need).
        """
        chain: List[int] = []
        current = ino
        for _ in range(max_hops):
            entry = self._entries.get(current)
            if entry is None:
                break
            chain.append(entry.parent_ino)
            current = entry.parent_ino
        else:
            raise RuntimeError(f"anchor chain for ino {ino} exceeds {max_hops} hops")
        if not chain:
            raise KeyError(f"ino {ino} not in anchor table")
        return chain
