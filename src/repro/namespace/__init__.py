"""File-system namespace substrate (S2/S10 in DESIGN.md).

The ground-truth hierarchy the MDS cluster serves: embedded inodes,
POSIX-shaped mutations, hard-link anchor table, a permission model rich
enough to exercise path-traversal vs. dual-entry-ACL checking, and a
deterministic synthetic snapshot generator.
"""

from . import path
from .anchor import AnchorEntry, AnchorTable
from .errors import (AlreadyExists, FileNotFound, FsError, InvalidOperation,
                     IsADirectory, NotADirectory, NotEmpty)
from .generator import (SnapshotSpec, SnapshotStats, build_tree,
                        generate_snapshot)
from .inode import Inode, InodeType
from .memo import ResolutionMemo
from .permissions import (Access, DualEntryACL, access_for, can_traverse,
                          merge_path_acl)
from .tree import Namespace, ROOT_INO

__all__ = [
    "Access",
    "AlreadyExists",
    "AnchorEntry",
    "AnchorTable",
    "DualEntryACL",
    "FileNotFound",
    "FsError",
    "Inode",
    "InodeType",
    "InvalidOperation",
    "IsADirectory",
    "Namespace",
    "NotADirectory",
    "NotEmpty",
    "ROOT_INO",
    "ResolutionMemo",
    "SnapshotSpec",
    "SnapshotStats",
    "access_for",
    "build_tree",
    "can_traverse",
    "generate_snapshot",
    "merge_path_acl",
    "path",
]
