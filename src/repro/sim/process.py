"""Generator-coroutine processes for the simulation kernel.

A process wraps a Python generator that ``yield``\\ s :class:`~repro.sim.engine.Event`
instances.  Each yielded event suspends the process until the event settles;
a succeeded event's value is sent back into the generator, a failed event's
exception is thrown into it.  The process itself is an event that settles
with the generator's return value, so processes compose: one process can
``yield`` another to wait for it.
"""

from __future__ import annotations

from sys import getrefcount
from typing import Any, Generator

from .backend import EVENT_TYPES
from .engine import Environment, Event, NORMAL, URGENT, _POOL_MAX
from .errors import SimulationError, StopSimulation
from .resources import Request

ProcessGenerator = Generator[Event, Any, Any]


class Interrupt(SimulationError):
    """Thrown into a process generator by :meth:`Process.interrupt`."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Process(Event):
    """A running simulation process.

    Instances are created through :meth:`Environment.process`; the wrapped
    generator is started on the next kernel step (an "initialize" event), so
    a process body never runs re-entrantly inside its creator.
    """

    __slots__ = ("_generator", "_waiting_on", "name")

    def __init__(self, env: Environment, generator: ProcessGenerator,
                 name: str | None = None) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(
                f"Process() requires a generator, got {type(generator).__name__}"
                " (did you call a plain function instead of a generator"
                " function?)")
        super().__init__(env)
        self._generator = generator
        self._waiting_on: Event | None = None
        self.name = name or getattr(generator, "__name__", "process")
        boot = Event(env)
        boot.callbacks.append(self._resume)
        boot.succeed(priority=URGENT)

    @property
    def is_alive(self) -> bool:
        """True while the wrapped generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        The event the process was waiting on is detached; if it later fires
        it is simply ignored by this process.
        """
        if self.triggered:
            raise RuntimeError(f"cannot interrupt finished process {self.name!r}")
        target = self._waiting_on
        if target is not None and not target.processed:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:  # pragma: no cover - defensive
                pass
        self._waiting_on = None
        kick = Event(self.env)
        kick.callbacks.append(self._resume_with_interrupt(cause))
        kick.succeed(priority=URGENT)

    def _resume_with_interrupt(self, cause: Any):
        def _cb(_event: Event) -> None:
            self._advance(throw=Interrupt(cause))

        return _cb

    # -- kernel interface ---------------------------------------------------
    def _resume(self, event: Event) -> None:
        # Hot path: one call per process hop.  Slot reads are kept to a
        # minimum and the settled event's frozen fields are read directly.
        if self._triggered:
            return  # stale wakeup after the process already finished
        waiting_on = self._waiting_on
        if waiting_on is not None and event is not waiting_on:
            return  # stale wakeup after an interrupt re-armed the process
        self._waiting_on = None
        if event._ok:
            self._advance(send=event._value)
        else:
            event._defused = True
            self._advance(throw=event._value)

    def _advance(self, *, send: Any = None, throw: BaseException | None = None) -> None:
        # The loop exists for the settled-event fast lane: when the yielded
        # event was settled inline (uncontended resource grant, buffered
        # store item — triggered, value frozen, never on the calendar) the
        # generator is resumed immediately instead of via a heap round-trip,
        # and the consumed event is recycled onto its freelist once its
        # refcount proves nobody else can observe it.  Dispatch order is
        # unchanged: an inline grant is exactly the URGENT event the heap
        # would have delivered before any NORMAL event at the same instant
        # (golden-ordering tests in tests/sim/ lock this down).
        generator = self._generator
        env = self.env
        while True:
            try:
                if throw is not None:
                    target = generator.throw(throw)
                else:
                    target = generator.send(send)
            except StopIteration as stop:
                self.succeed(stop.value, priority=NORMAL)
                return
            except StopSimulation:
                # run(until=<event>) stop raised inside a synchronous
                # handoff chain: let it reach the kernel loop untouched.
                raise
            except BaseException as exc:
                # Propagate to anyone waiting on this process; if nobody is,
                # the kernel will re-raise when it processes the failure.
                self.fail(exc, priority=NORMAL)
                return
            if not isinstance(target, EVENT_TYPES):
                crash = TypeError(
                    f"process {self.name!r} yielded {target!r}; processes must"
                    " yield Event instances")
                generator.close()
                self.fail(crash)
                return
            if target._inline and target.callbacks is not None:
                # Settled inline: consume synchronously, no heap round-trip.
                target.callbacks = None  # mark processed
                env.fast_resumes += 1
                if target._ok:
                    send = target._value
                    throw = None
                else:
                    target._defused = True
                    send = None
                    throw = target._value
                cls = target.__class__
                if cls is Request:
                    pool = env._request_pool
                    if len(pool) < _POOL_MAX and getrefcount(target) == 2:
                        target._value = None
                        pool.append(target)
                elif cls is Event:
                    pool = env._event_pool
                    if len(pool) < _POOL_MAX and getrefcount(target) == 2:
                        target._value = None
                        pool.append(target)
                continue
            if target.callbacks is None:  # processed: resume on the next step
                relay = Event(env)
                relay.callbacks.append(self._resume)
                self._waiting_on = relay
                if target._ok:
                    relay.succeed(target._value, priority=URGENT)
                else:
                    relay.fail(target._value, priority=URGENT)
            else:
                self._waiting_on = target
                target.callbacks.append(self._resume)
            return
