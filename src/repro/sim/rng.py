"""Deterministic named random-number streams.

Every stochastic component of the simulator draws from its own child stream
derived from a single master seed and a stable string name.  This keeps runs
reproducible regardless of the order in which components are constructed or
scheduled — adding a new client must not perturb the workload of existing
ones.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict

import numpy as np


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from ``(master_seed, name)``.

    Uses SHA-256 so that distinct names give statistically independent
    streams and the mapping is stable across Python versions and platforms
    (unlike ``hash()``, which is salted).
    """
    digest = hashlib.sha256(f"{master_seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "little")


class RngStreams:
    """Factory for named, reproducible random streams.

    >>> streams = RngStreams(42)
    >>> a = streams.py_stream("client.0")
    >>> b = streams.py_stream("client.1")

    Streams are cached: requesting the same name twice returns the same
    generator object, so components may share a stream by name when that is
    the intent.
    """

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = int(master_seed)
        self._py: Dict[str, random.Random] = {}
        self._np: Dict[str, np.random.Generator] = {}

    def py_stream(self, name: str) -> random.Random:
        """A ``random.Random`` seeded for ``name`` (cached)."""
        rng = self._py.get(name)
        if rng is None:
            rng = random.Random(derive_seed(self.master_seed, name))
            self._py[name] = rng
        return rng

    def np_stream(self, name: str) -> np.random.Generator:
        """A NumPy ``Generator`` seeded for ``name`` (cached)."""
        rng = self._np.get(name)
        if rng is None:
            rng = np.random.default_rng(derive_seed(self.master_seed, name))
            self._np[name] = rng
        return rng

    def spawn(self, name: str) -> "RngStreams":
        """A child factory whose streams are independent of the parent's."""
        return RngStreams(derive_seed(self.master_seed, f"spawn:{name}"))
