"""Discrete-event simulation kernel (substrate S1 in DESIGN.md).

A small, deterministic, dependency-free simpy-like kernel:

* :class:`Environment` — event calendar and clock.
* :class:`Event` / :class:`Timeout` — triggerable conditions.
* :class:`Process` — generator-coroutine processes that ``yield`` events.
* :class:`Resource` / :class:`Store` — FIFO servers and blocking buffers.
* :class:`RngStreams` — named reproducible random streams.
"""

from .engine import Environment, Event, Timeout, NORMAL, URGENT
from .errors import EventAlreadyTriggered, ProcessCrashed, SimulationError
from .process import Interrupt, Process
from .resources import Request, Resource, Store
from .rng import RngStreams, derive_seed

__all__ = [
    "Environment",
    "Event",
    "EventAlreadyTriggered",
    "Interrupt",
    "NORMAL",
    "Process",
    "ProcessCrashed",
    "Request",
    "Resource",
    "RngStreams",
    "SimulationError",
    "Store",
    "Timeout",
    "URGENT",
    "derive_seed",
]
