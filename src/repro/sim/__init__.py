"""Discrete-event simulation kernel (substrate S1 in DESIGN.md).

A small, deterministic, dependency-free simpy-like kernel:

* :class:`Environment` — event calendar and clock.
* :class:`Event` / :class:`Timeout` — triggerable conditions.
* :class:`Process` — generator-coroutine processes that ``yield`` events.
* :class:`Resource` / :class:`Store` — FIFO servers and blocking buffers.
* :class:`RngStreams` — named reproducible random streams.

The calendar itself is swappable (:mod:`repro.sim.backend`): the
pure-python reference kernel above, or a bit-identical compiled C kernel
selected by the ``REPRO_KERNEL`` gate — :func:`make_environment` is the
backend-aware constructor.
"""

from .backend import (CompiledEnvironment, EVENT_TYPES, KERNEL_ENV,
                      backend_of, compiled_viable, kernel_info,
                      make_environment, parse_kernel_env, resolve_kernel)
from .engine import Environment, Event, Timeout, NORMAL, URGENT
from .errors import EventAlreadyTriggered, ProcessCrashed, SimulationError
from .process import Interrupt, Process
from .resources import Request, Resource, Store
from .rng import RngStreams, derive_seed

__all__ = [
    "CompiledEnvironment",
    "EVENT_TYPES",
    "Environment",
    "Event",
    "EventAlreadyTriggered",
    "Interrupt",
    "KERNEL_ENV",
    "NORMAL",
    "Process",
    "ProcessCrashed",
    "Request",
    "Resource",
    "RngStreams",
    "SimulationError",
    "Store",
    "Timeout",
    "URGENT",
    "backend_of",
    "compiled_viable",
    "derive_seed",
    "kernel_info",
    "make_environment",
    "parse_kernel_env",
    "resolve_kernel",
]
