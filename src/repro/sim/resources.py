"""Shared resources for simulation processes: FIFO servers and stores.

``Resource`` models a multi-server station with FIFO queueing (an MDS CPU,
a disk spindle).  ``Store`` is an unbounded FIFO buffer of items with
blocking ``get`` (an MDS request inbox).  Both are deliberately simple: the
paper's storage model only needs average latencies with queueing (§5.1).

With the environment's settled-event fast lane on, the uncontended
``Resource.request()`` and item-available ``Store.get()`` return
*inline-settled* events (value frozen, never on the calendar) that the
process layer consumes without a heap round-trip, and
:meth:`Resource.acquire` collapses the whole uncontended
request/hold/release dance into a single timeout.  The contended paths are
byte-for-byte the reference implementation in both modes, so FIFO queueing
order never changes.
"""

from __future__ import annotations

from collections import deque
from sys import getrefcount
from typing import Any, Deque, Generator

from .engine import Environment, Event, URGENT, _POOL_MAX


class Request(Event):
    """A pending claim on a :class:`Resource` slot.

    Yield it from a process to block until granted, then call
    :meth:`Resource.release` (or use :meth:`Resource.use`).
    """

    __slots__ = ()


class Resource:
    """``capacity`` identical servers with a FIFO wait queue."""

    def __init__(self, env: Environment, capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._in_use = 0
        self._waiting: Deque[Request] = deque()

    @property
    def in_use(self) -> int:
        """Number of currently-held slots."""
        return self._in_use

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._waiting)

    def request(self) -> Request:
        """Claim a slot; the returned event fires when the claim is granted."""
        env = self.env
        if self._in_use < self.capacity:
            self._in_use += 1
            if env._fastlane:
                # Inline-settled grant: the answer was known synchronously,
                # so skip the calendar entirely.  An uncontended grant was
                # an URGENT event — dispatched before any NORMAL event at
                # the same instant — so resuming the requester immediately
                # preserves the reference dispatch order.
                pool = env._request_pool
                if pool:
                    env.pool_hits += 1
                    req = pool.pop()
                    req.callbacks = []
                    req._ok = True
                    req._defused = False
                else:
                    env.pool_allocs += 1
                    req = Request(env)
                req._triggered = True
                req._scheduled_at = env._now
                req._inline = True
                return req
            req = Request(env)
            req.succeed(priority=URGENT)
            return req
        req = Request(env)
        self._waiting.append(req)
        return req

    def try_acquire(self) -> bool:
        """Claim a slot synchronously; True on success (caller must release)."""
        if self._in_use < self.capacity:
            self._in_use += 1
            return True
        return False

    def release(self) -> None:
        """Return a slot, handing it to the oldest waiter if any."""
        if self._in_use <= 0:
            raise RuntimeError("release() without a matching granted request")
        if self._waiting:
            nxt = self._waiting.popleft()  # slot transfers; _in_use unchanged
            env = self.env
            if env._fastlane:
                # Synchronous handoff: the waiter resumes right here
                # instead of via an URGENT heap round-trip, then its
                # Request is recycled once nothing else can see it.
                env.fast_resumes += 1
                nxt._settle_inline(None)
                pool = env._request_pool
                if len(pool) < _POOL_MAX and getrefcount(nxt) == 2:
                    nxt._value = None
                    pool.append(nxt)
            else:
                nxt.succeed(priority=URGENT)
        else:
            self._in_use -= 1

    def cancel(self, req: Request) -> bool:
        """Withdraw a not-yet-granted request. Returns True if it was queued."""
        try:
            self._waiting.remove(req)
            return True
        except ValueError:
            return False

    def acquire(self, hold_time: float) -> "Event | None":
        """Collapsed :meth:`use`: uncontended claim + hold as ONE timeout.

        Returns a timeout whose dispatch releases the slot (the release
        callback was appended first, so it runs before the waiting process
        resumes — exactly when the reference ``use`` path released), or
        ``None`` when the resource is contended or the fast lane is off;
        callers fall back to ``yield from use(...)`` in that case.
        """
        env = self.env
        if env._fastlane and self._in_use < self.capacity:
            self._in_use += 1
            hold = env.timeout(hold_time)
            hold.callbacks.append(self._on_hold_done)
            return hold
        return None

    def _on_hold_done(self, _event: Event) -> None:
        self.release()

    def use(self, hold_time: float) -> Generator[Event, Any, None]:
        """Sub-process: acquire a slot, hold it ``hold_time``, release it.

        Usage from a process body::

            yield from disk.use(cfg.disk_read_s)

        Uncontended with the fast lane on this is a single timeout event
        (via :meth:`acquire`); otherwise it is the reference
        request/hold/release event sequence.
        """
        hold = self.acquire(hold_time)
        if hold is not None:
            yield hold
            return
        yield self.request()
        try:
            yield self.env.timeout(hold_time)
        finally:
            self.release()


class Store:
    """Unbounded FIFO buffer with blocking ``get``.

    ``put`` never blocks; ``get`` returns an event carrying the next item.
    Waiting getters are served strictly in arrival order.
    """

    def __init__(self, env: Environment) -> None:
        self.env = env
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Add ``item``; wakes the oldest blocked getter, if any."""
        if self._getters:
            getter = self._getters.popleft()
            env = self.env
            if env._fastlane:
                # Synchronous handoff: the blocked getter resumes right
                # here with the item, no URGENT heap round-trip.
                env.fast_resumes += 1
                getter._settle_inline(item)
                pool = env._event_pool
                if len(pool) < _POOL_MAX and getrefcount(getter) == 2:
                    getter._value = None
                    pool.append(getter)
            else:
                getter.succeed(item, priority=URGENT)
        else:
            self._items.append(item)

    def _put_from_event(self, event: Event) -> None:
        """Timeout callback adapter: put the event's value into the store.

        Lets a delayed delivery ride the delivering timeout itself (the
        payload travels as the timeout value) instead of allocating a
        fresh closure per message.
        """
        self.put(event._value)

    def get(self) -> Event:
        """Event that fires with the next item (immediately if available)."""
        env = self.env
        if self._items:
            if env._fastlane:
                # Inline-settled: the item is handed over synchronously
                # (the reference path's URGENT wakeup, minus the calendar).
                pool = env._event_pool
                if pool:
                    env.pool_hits += 1
                    ev = pool.pop()
                    ev.callbacks = []
                    ev._ok = True
                    ev._defused = False
                else:
                    env.pool_allocs += 1
                    ev = Event(env)
                ev._value = self._items.popleft()
                ev._triggered = True
                ev._scheduled_at = env._now
                ev._inline = True
                return ev
            ev = Event(env)
            ev.succeed(self._items.popleft(), priority=URGENT)
            return ev
        ev = Event(env)
        self._getters.append(ev)
        return ev

    def get_nowait(self) -> Any:
        """Next item, or ``None`` if the buffer is empty (never blocks).

        Lets a consumer drain every already-queued item in one wakeup
        instead of paying one event per item (batch inbox draining).
        """
        return self._items.popleft() if self._items else None
