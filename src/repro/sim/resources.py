"""Shared resources for simulation processes: FIFO servers and stores.

``Resource`` models a multi-server station with FIFO queueing (an MDS CPU,
a disk spindle).  ``Store`` is an unbounded FIFO buffer of items with
blocking ``get`` (an MDS request inbox).  Both are deliberately simple: the
paper's storage model only needs average latencies with queueing (§5.1).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator

from .engine import Environment, Event, URGENT


class Request(Event):
    """A pending claim on a :class:`Resource` slot.

    Yield it from a process to block until granted, then call
    :meth:`Resource.release` (or use :meth:`Resource.use`).
    """

    __slots__ = ()


class Resource:
    """``capacity`` identical servers with a FIFO wait queue."""

    def __init__(self, env: Environment, capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._in_use = 0
        self._waiting: Deque[Request] = deque()

    @property
    def in_use(self) -> int:
        """Number of currently-held slots."""
        return self._in_use

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._waiting)

    def request(self) -> Request:
        """Claim a slot; the returned event fires when the claim is granted."""
        req = Request(self.env)
        if self._in_use < self.capacity:
            self._in_use += 1
            req.succeed(priority=URGENT)
        else:
            self._waiting.append(req)
        return req

    def release(self) -> None:
        """Return a slot, handing it to the oldest waiter if any."""
        if self._in_use <= 0:
            raise RuntimeError("release() without a matching granted request")
        if self._waiting:
            nxt = self._waiting.popleft()
            nxt.succeed(priority=URGENT)  # slot transfers; _in_use unchanged
        else:
            self._in_use -= 1

    def cancel(self, req: Request) -> bool:
        """Withdraw a not-yet-granted request. Returns True if it was queued."""
        try:
            self._waiting.remove(req)
            return True
        except ValueError:
            return False

    def use(self, hold_time: float) -> Generator[Event, Any, None]:
        """Sub-process: acquire a slot, hold it ``hold_time``, release it.

        Usage from a process body::

            yield from disk.use(cfg.disk_read_s)
        """
        yield self.request()
        try:
            yield self.env.timeout(hold_time)
        finally:
            self.release()


class Store:
    """Unbounded FIFO buffer with blocking ``get``.

    ``put`` never blocks; ``get`` returns an event carrying the next item.
    Waiting getters are served strictly in arrival order.
    """

    def __init__(self, env: Environment) -> None:
        self.env = env
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Add ``item``; wakes the oldest blocked getter, if any."""
        if self._getters:
            self._getters.popleft().succeed(item, priority=URGENT)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Event that fires with the next item (immediately if available)."""
        ev = Event(self.env)
        if self._items:
            ev.succeed(self._items.popleft(), priority=URGENT)
        else:
            self._getters.append(ev)
        return ev
