"""Exception types for the discrete-event simulation kernel."""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for errors raised by the simulation kernel."""


class EventAlreadyTriggered(SimulationError):
    """An event was succeeded or failed more than once."""


class StopSimulation(Exception):
    """Internal control-flow signal used by :meth:`Environment.run`.

    Raised (and caught) inside the event loop when the ``until`` event
    triggers; user code never needs to handle it.
    """

    def __init__(self, value: object = None) -> None:
        super().__init__(value)
        self.value = value


class ProcessCrashed(SimulationError):
    """A process generator raised an exception that nobody caught.

    The original exception is available as ``__cause__``.
    """
