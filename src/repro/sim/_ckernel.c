/* Compiled event-calendar kernel for repro.sim (the "compiled" backend).
 *
 * This module mirrors the pure-python kernel in repro/sim/engine.py with
 * the event calendar, the Timeout lifecycle and the run loops moved into
 * C.  The contract is *bit identity* with the reference kernel: the heap
 * is keyed on (when, priority << 56 | seq) and the sequence counter makes
 * every key unique, so the calendar induces a total order on events and
 * any correct binary heap — heapq's or this one's — pops the same
 * sequence.  All floating-point arithmetic is the same IEEE-754 double
 * math CPython floats use, so computed due times are identical bit
 * patterns.
 *
 * Two types are exported:
 *
 *   Timeout — the C counterpart of repro.sim.engine.Timeout: born
 *     triggered, fields laid out as C struct members but exposed under
 *     the same names (_value/_ok/_triggered/_defused/_inline/
 *     _scheduled_at/callbacks/env/delay) plus the read-only
 *     triggered/processed/ok/value properties, so every pure-python
 *     consumer (Process._advance, all_of/any_of, resources) treats it
 *     exactly like the python class.
 *
 *   Kernel — the calendar: a C array binary heap of
 *     {double when; uint64 key; PyObject *event}, the clock, the shared
 *     sequence counter, and C implementations of timeout/schedule/
 *     schedule_at/peek/step/run_core/run_window including the
 *     refcount-guarded freelist recycling (Py_REFCNT(event) == 1 here is
 *     exactly getrefcount(event) == 2 in the python loop: the popped
 *     local plus getrefcount's argument).
 *
 * The wrapper class lives in repro/sim/backend.py; it binds the Kernel's
 * methods straight into instance slots so python callers dispatch into C
 * without an intermediate python frame.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <structmember.h>
#include <math.h>

#define CK_POOL_MAX 256            /* matches engine._POOL_MAX */
#define CK_PRIO_SHIFT 56           /* matches engine._PRIO_SHIFT */
#define CK_NORMAL 1ULL

/* set by configure(); the kernel raises it from Timeout.succeed/fail */
static PyObject *ck_EventAlreadyTriggered = NULL;

/* interned attribute names for dispatching generic (python Event) objects */
static PyObject *s_callbacks = NULL;
static PyObject *s_ok = NULL;
static PyObject *s_defused = NULL;
static PyObject *s_value = NULL;
static PyObject *s_scheduled_at = NULL;

/* ================================================================ */
/* Timeout                                                           */
/* ================================================================ */

typedef struct {
    PyObject_HEAD
    PyObject *env;        /* the owning (wrapper) Environment */
    PyObject *callbacks;  /* list while pending, None once processed */
    PyObject *value;
    double scheduled_at;
    double delay;
    char ok;
    char triggered;
    char defused;
    char inline_flag;
} CTimeout;

static PyTypeObject CTimeout_Type;  /* forward */

static int
CTimeout_traverse(CTimeout *self, visitproc visit, void *arg)
{
    Py_VISIT(self->env);
    Py_VISIT(self->callbacks);
    Py_VISIT(self->value);
    return 0;
}

static int
CTimeout_clear_impl(CTimeout *self)
{
    Py_CLEAR(self->env);
    Py_CLEAR(self->callbacks);
    Py_CLEAR(self->value);
    return 0;
}

static void
CTimeout_dealloc(CTimeout *self)
{
    PyObject_GC_UnTrack(self);
    CTimeout_clear_impl(self);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static PyObject *
CTimeout_repr(CTimeout *self)
{
    const char *state = (self->callbacks == Py_None) ? "processed"
                        : (self->triggered ? "triggered" : "pending");
    return PyUnicode_FromFormat("<Timeout %s at %p>", state, (void *)self);
}

static PyObject *
CTimeout_get_triggered(CTimeout *self, void *closure)
{
    return PyBool_FromLong(self->triggered);
}

static PyObject *
CTimeout_get_processed(CTimeout *self, void *closure)
{
    return PyBool_FromLong(self->callbacks == Py_None);
}

static PyObject *
CTimeout_get_ok(CTimeout *self, void *closure)
{
    return PyBool_FromLong(self->ok);
}

static PyObject *
CTimeout_get_value(CTimeout *self, void *closure)
{
    PyObject *v = self->value ? self->value : Py_None;
    Py_INCREF(v);
    return v;
}

/* A Timeout is born triggered, so succeed/fail always raise — exactly
 * what Event.succeed/fail do for an already-triggered event. */
static PyObject *
CTimeout_succeed(CTimeout *self, PyObject *args, PyObject *kwargs)
{
    PyErr_Format(ck_EventAlreadyTriggered, "%R already triggered",
                 (PyObject *)self);
    return NULL;
}

static PyObject *
CTimeout_fail(CTimeout *self, PyObject *args, PyObject *kwargs)
{
    PyErr_Format(ck_EventAlreadyTriggered, "%R already triggered",
                 (PyObject *)self);
    return NULL;
}

static PyObject *
CTimeout_new(PyTypeObject *type, PyObject *args, PyObject *kwargs)
{
    PyErr_SetString(PyExc_TypeError,
                    "cannot construct Timeout directly; use "
                    "Environment.timeout()");
    return NULL;
}

static PyMemberDef CTimeout_members[] = {
    {"env", T_OBJECT, offsetof(CTimeout, env), 0,
     "owning environment"},
    {"callbacks", T_OBJECT, offsetof(CTimeout, callbacks), 0,
     "pending callbacks (None once processed)"},
    {"_value", T_OBJECT, offsetof(CTimeout, value), 0, NULL},
    {"_scheduled_at", T_DOUBLE, offsetof(CTimeout, scheduled_at), 0, NULL},
    {"delay", T_DOUBLE, offsetof(CTimeout, delay), 0, NULL},
    {"_ok", T_BOOL, offsetof(CTimeout, ok), 0, NULL},
    {"_triggered", T_BOOL, offsetof(CTimeout, triggered), 0, NULL},
    {"_defused", T_BOOL, offsetof(CTimeout, defused), 0, NULL},
    {"_inline", T_BOOL, offsetof(CTimeout, inline_flag), 0, NULL},
    {NULL}
};

static PyGetSetDef CTimeout_getset[] = {
    {"triggered", (getter)CTimeout_get_triggered, NULL,
     "True once succeed() or fail() has been called.", NULL},
    {"processed", (getter)CTimeout_get_processed, NULL,
     "True once the environment has run this event's callbacks.", NULL},
    {"ok", (getter)CTimeout_get_ok, NULL,
     "True if the event succeeded.", NULL},
    {"value", (getter)CTimeout_get_value, NULL,
     "The success value carried by the event.", NULL},
    {NULL}
};

static PyMethodDef CTimeout_methods[] = {
    {"succeed", (PyCFunction)CTimeout_succeed,
     METH_VARARGS | METH_KEYWORDS, NULL},
    {"fail", (PyCFunction)CTimeout_fail,
     METH_VARARGS | METH_KEYWORDS, NULL},
    {NULL}
};

static PyTypeObject CTimeout_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.sim._ckernel.Timeout",
    .tp_basicsize = sizeof(CTimeout),
    .tp_dealloc = (destructor)CTimeout_dealloc,
    .tp_repr = (reprfunc)CTimeout_repr,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "C Timeout: fires automatically `delay` units from creation.",
    .tp_traverse = (traverseproc)CTimeout_traverse,
    .tp_clear = (inquiry)CTimeout_clear_impl,
    .tp_methods = CTimeout_methods,
    .tp_members = CTimeout_members,
    .tp_getset = CTimeout_getset,
    .tp_new = CTimeout_new,
};

/* ================================================================ */
/* Kernel                                                            */
/* ================================================================ */

typedef struct {
    double when;
    unsigned long long key;
    PyObject *event;  /* strong reference */
} HeapEntry;

typedef struct {
    PyObject_HEAD
    double now;
    unsigned long long seq;
    int fastlane;
    HeapEntry *heap;
    Py_ssize_t heap_len;
    Py_ssize_t heap_cap;
    PyObject *env;            /* wrapper Environment (set via set_env) */
    PyObject *event_pool;     /* the wrapper's python list of plain Events */
    PyObject *py_event_type;  /* exact python Event class, for recycling */
    CTimeout *tpool[CK_POOL_MAX];  /* C Timeout freelist (strong refs) */
    Py_ssize_t tpool_len;
    unsigned long long pool_hits;
    unsigned long long pool_allocs;
} Kernel;

static PyTypeObject Kernel_Type;  /* forward */

/* -- heap -------------------------------------------------------- */

static inline int
entry_lt(double a_when, unsigned long long a_key,
         const HeapEntry *b)
{
    return a_when < b->when || (a_when == b->when && a_key < b->key);
}

static int
heap_push(Kernel *k, double when, unsigned long long key, PyObject *event)
{
    /* steals a reference to event */
    if (k->heap_len == k->heap_cap) {
        Py_ssize_t cap = k->heap_cap ? k->heap_cap * 2 : 256;
        HeapEntry *grown = PyMem_Realloc(k->heap, cap * sizeof(HeapEntry));
        if (grown == NULL) {
            Py_DECREF(event);
            PyErr_NoMemory();
            return -1;
        }
        k->heap = grown;
        k->heap_cap = cap;
    }
    Py_ssize_t pos = k->heap_len++;
    while (pos > 0) {
        Py_ssize_t parent = (pos - 1) >> 1;
        HeapEntry *p = &k->heap[parent];
        if (entry_lt(when, key, p)) {
            k->heap[pos] = *p;
            pos = parent;
        } else {
            break;
        }
    }
    k->heap[pos].when = when;
    k->heap[pos].key = key;
    k->heap[pos].event = event;
    return 0;
}

static PyObject *
heap_pop(Kernel *k, double *when_out)
{
    /* caller guarantees heap_len > 0; returns the (strong) event ref */
    HeapEntry root = k->heap[0];
    Py_ssize_t n = --k->heap_len;
    if (n > 0) {
        HeapEntry last = k->heap[n];
        Py_ssize_t pos = 0;
        for (;;) {
            Py_ssize_t child = 2 * pos + 1;
            if (child >= n)
                break;
            Py_ssize_t right = child + 1;
            if (right < n
                && entry_lt(k->heap[right].when, k->heap[right].key,
                            &k->heap[child]))
                child = right;
            if (entry_lt(k->heap[child].when, k->heap[child].key, &last)) {
                k->heap[pos] = k->heap[child];
                pos = child;
            } else {
                break;
            }
        }
        k->heap[pos] = last;
    }
    *when_out = root.when;
    return root.event;
}

/* -- gc plumbing -------------------------------------------------- */

static int
Kernel_traverse(Kernel *self, visitproc visit, void *arg)
{
    Py_VISIT(self->env);
    Py_VISIT(self->event_pool);
    Py_VISIT(self->py_event_type);
    for (Py_ssize_t i = 0; i < self->heap_len; i++)
        Py_VISIT(self->heap[i].event);
    for (Py_ssize_t i = 0; i < self->tpool_len; i++)
        Py_VISIT((PyObject *)self->tpool[i]);
    return 0;
}

static int
Kernel_clear_impl(Kernel *self)
{
    Py_CLEAR(self->env);
    Py_CLEAR(self->event_pool);
    Py_CLEAR(self->py_event_type);
    while (self->heap_len > 0) {
        Py_ssize_t i = --self->heap_len;
        Py_CLEAR(self->heap[i].event);
    }
    while (self->tpool_len > 0) {
        Py_ssize_t i = --self->tpool_len;
        CTimeout *t = self->tpool[i];
        self->tpool[i] = NULL;
        Py_XDECREF((PyObject *)t);
    }
    return 0;
}

static void
Kernel_dealloc(Kernel *self)
{
    PyObject_GC_UnTrack(self);
    Kernel_clear_impl(self);
    PyMem_Free(self->heap);
    self->heap = NULL;
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static int
Kernel_init(Kernel *self, PyObject *args, PyObject *kwargs)
{
    static char *kwlist[] = {"initial_time", "fastlane", "event_pool",
                             "event_type", NULL};
    double initial_time;
    int fastlane;
    PyObject *event_pool;
    PyObject *event_type;
    if (!PyArg_ParseTupleAndKeywords(args, kwargs, "dpOO", kwlist,
                                     &initial_time, &fastlane,
                                     &event_pool, &event_type))
        return -1;
    if (!PyList_CheckExact(event_pool)) {
        PyErr_SetString(PyExc_TypeError, "event_pool must be a list");
        return -1;
    }
    if (!PyType_Check(event_type)) {
        PyErr_SetString(PyExc_TypeError, "event_type must be a class");
        return -1;
    }
    self->now = initial_time;
    self->seq = 0;
    self->fastlane = fastlane;
    self->pool_hits = 0;
    self->pool_allocs = 0;
    Py_INCREF(event_pool);
    Py_XSETREF(self->event_pool, event_pool);
    Py_INCREF(event_type);
    Py_XSETREF(self->py_event_type, event_type);
    return 0;
}

static PyObject *
Kernel_set_env(Kernel *self, PyObject *env)
{
    Py_INCREF(env);
    Py_XSETREF(self->env, env);
    Py_RETURN_NONE;
}

/* -- scheduling --------------------------------------------------- */

static CTimeout *
ctimeout_fresh(Kernel *k, PyObject *value)
{
    CTimeout *t = PyObject_GC_New(CTimeout, &CTimeout_Type);
    if (t == NULL)
        return NULL;
    PyObject *env = k->env ? k->env : Py_None;
    Py_INCREF(env);
    t->env = env;
    t->callbacks = PyList_New(0);
    if (t->callbacks == NULL) {
        t->value = NULL;
        Py_DECREF(t);
        return NULL;
    }
    Py_INCREF(value);
    t->value = value;
    t->scheduled_at = 0.0;
    t->delay = 0.0;
    t->ok = 1;
    t->triggered = 1;
    t->defused = 0;
    t->inline_flag = 0;
    PyObject_GC_Track((PyObject *)t);
    return t;
}

static PyObject *
Kernel_timeout(Kernel *self, PyObject *args, PyObject *kwargs)
{
    static char *kwlist[] = {"delay", "value", NULL};
    PyObject *delay_obj;
    PyObject *value = Py_None;
    if (!PyArg_ParseTupleAndKeywords(args, kwargs, "O|O", kwlist,
                                     &delay_obj, &value))
        return NULL;
    double delay = PyFloat_AsDouble(delay_obj);
    if (delay == -1.0 && PyErr_Occurred())
        return NULL;
    if (delay < 0.0) {
        PyErr_Format(PyExc_ValueError, "negative delay: %R", delay_obj);
        return NULL;
    }
    CTimeout *t;
    if (self->fastlane && self->tpool_len > 0) {
        self->pool_hits++;
        t = self->tpool[--self->tpool_len];
        PyObject *cbs = PyList_New(0);
        if (cbs == NULL) {
            self->tpool[self->tpool_len++] = t;
            return NULL;
        }
        Py_XSETREF(t->callbacks, cbs);
        Py_INCREF(value);
        Py_XSETREF(t->value, value);
        t->ok = 1;
        t->triggered = 1;
        t->defused = 0;
        t->inline_flag = 0;
    } else {
        if (self->fastlane)
            self->pool_allocs++;
        t = ctimeout_fresh(self, value);
        if (t == NULL)
            return NULL;
    }
    t->delay = delay;
    unsigned long long seq = self->seq++;
    double when = self->now + delay;
    t->scheduled_at = when;
    Py_INCREF((PyObject *)t);  /* heap's reference */
    if (heap_push(self, when, (CK_NORMAL << CK_PRIO_SHIFT) | seq,
                  (PyObject *)t) < 0) {
        Py_DECREF((PyObject *)t);
        return NULL;
    }
    return (PyObject *)t;
}

static int
stamp_scheduled_at(PyObject *event, PyObject *when_obj, double when)
{
    if (Py_TYPE(event) == &CTimeout_Type) {
        ((CTimeout *)event)->scheduled_at = when;
        return 0;
    }
    return PyObject_SetAttr(event, s_scheduled_at, when_obj);
}

static PyObject *
Kernel_schedule(Kernel *self, PyObject *args, PyObject *kwargs)
{
    static char *kwlist[] = {"event", "delay", "priority", NULL};
    PyObject *event;
    PyObject *delay_obj = NULL;
    long priority = (long)CK_NORMAL;
    if (!PyArg_ParseTupleAndKeywords(args, kwargs, "O|$Ol", kwlist,
                                     &event, &delay_obj, &priority))
        return NULL;
    double delay = 0.0;
    if (delay_obj != NULL) {
        delay = PyFloat_AsDouble(delay_obj);
        if (delay == -1.0 && PyErr_Occurred())
            return NULL;
    }
    unsigned long long seq = self->seq++;
    double when = self->now + delay;
    PyObject *when_obj = PyFloat_FromDouble(when);
    if (when_obj == NULL)
        return NULL;
    if (stamp_scheduled_at(event, when_obj, when) < 0) {
        Py_DECREF(when_obj);
        return NULL;
    }
    Py_DECREF(when_obj);
    Py_INCREF(event);
    if (heap_push(self, when,
                  ((unsigned long long)priority << CK_PRIO_SHIFT) | seq,
                  event) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *
Kernel_schedule_at(Kernel *self, PyObject *args, PyObject *kwargs)
{
    static char *kwlist[] = {"event", "when", "priority", NULL};
    PyObject *event;
    PyObject *when_obj;
    long priority = (long)CK_NORMAL;
    if (!PyArg_ParseTupleAndKeywords(args, kwargs, "OO|$l", kwlist,
                                     &event, &when_obj, &priority))
        return NULL;
    double when = PyFloat_AsDouble(when_obj);
    if (when == -1.0 && PyErr_Occurred())
        return NULL;
    if (when < self->now) {
        PyObject *now_obj = PyFloat_FromDouble(self->now);
        if (now_obj == NULL)
            return NULL;
        PyErr_Format(PyExc_ValueError,
                     "schedule_at(%R) is in the past (now=%R)",
                     when_obj, now_obj);
        Py_DECREF(now_obj);
        return NULL;
    }
    unsigned long long seq = self->seq++;
    if (stamp_scheduled_at(event, when_obj, when) < 0)
        return NULL;
    Py_INCREF(event);
    if (heap_push(self, when,
                  ((unsigned long long)priority << CK_PRIO_SHIFT) | seq,
                  event) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *
Kernel_peek(Kernel *self, PyObject *Py_UNUSED(ignored))
{
    if (self->heap_len == 0)
        return PyFloat_FromDouble(Py_HUGE_VAL);
    return PyFloat_FromDouble(self->heap[0].when);
}

/* -- dispatch ----------------------------------------------------- */

static void
raise_event_value(PyObject *value)
{
    if (PyExceptionInstance_Check(value)) {
        PyErr_SetObject(PyExceptionInstance_Class(value), value);
    } else if (PyExceptionClass_Check(value)) {
        PyErr_SetObject(value, NULL);
    } else {
        PyErr_Format(PyExc_TypeError,
                     "exceptions must derive from BaseException, not %R",
                     value);
    }
}

static int
run_callbacks(PyObject *callbacks, PyObject *event)
{
    /* mirrors `for callback in callbacks: callback(event)` over a list,
     * including python's live-size semantics if a callback appends */
    if (PyList_CheckExact(callbacks)) {
        for (Py_ssize_t i = 0; i < PyList_GET_SIZE(callbacks); i++) {
            PyObject *cb = PyList_GET_ITEM(callbacks, i);
            Py_INCREF(cb);
            PyObject *res = PyObject_CallOneArg(cb, event);
            Py_DECREF(cb);
            if (res == NULL)
                return -1;
            Py_DECREF(res);
        }
        return 0;
    }
    PyObject *it = PyObject_GetIter(callbacks);
    if (it == NULL)
        return -1;
    PyObject *cb;
    while ((cb = PyIter_Next(it)) != NULL) {
        PyObject *res = PyObject_CallOneArg(cb, event);
        Py_DECREF(cb);
        if (res == NULL) {
            Py_DECREF(it);
            return -1;
        }
        Py_DECREF(res);
    }
    Py_DECREF(it);
    return PyErr_Occurred() ? -1 : 0;
}

static int
dispatch_event(Kernel *self, PyObject *event)
{
    /* one step() body: detach callbacks, run them, surface unhandled
     * failures — identical control flow to the python loop */
    if (Py_TYPE(event) == &CTimeout_Type) {
        CTimeout *t = (CTimeout *)event;
        PyObject *callbacks = t->callbacks;
        Py_INCREF(callbacks);
        Py_INCREF(Py_None);
        Py_XSETREF(t->callbacks, Py_None);
        int had = (callbacks != Py_None
                   && (!PyList_CheckExact(callbacks)
                       || PyList_GET_SIZE(callbacks) > 0));
        if (had && run_callbacks(callbacks, event) < 0) {
            Py_DECREF(callbacks);
            return -1;
        }
        Py_DECREF(callbacks);
        if (!t->ok && !t->defused) {
            PyObject *value = t->value ? t->value : Py_None;
            Py_INCREF(value);
            raise_event_value(value);
            Py_DECREF(value);
            return -1;
        }
        return 0;
    }
    PyObject *callbacks = PyObject_GetAttr(event, s_callbacks);
    if (callbacks == NULL)
        return -1;
    if (PyObject_SetAttr(event, s_callbacks, Py_None) < 0) {
        Py_DECREF(callbacks);
        return -1;
    }
    if (callbacks != Py_None) {
        int truthy = PyList_CheckExact(callbacks)
            ? (PyList_GET_SIZE(callbacks) > 0)
            : PyObject_IsTrue(callbacks);
        if (truthy < 0) {
            Py_DECREF(callbacks);
            return -1;
        }
        if (truthy && run_callbacks(callbacks, event) < 0) {
            Py_DECREF(callbacks);
            return -1;
        }
    }
    Py_DECREF(callbacks);
    PyObject *ok = PyObject_GetAttr(event, s_ok);
    if (ok == NULL)
        return -1;
    int ok_b = PyObject_IsTrue(ok);
    Py_DECREF(ok);
    if (ok_b < 0)
        return -1;
    if (!ok_b) {
        PyObject *defused = PyObject_GetAttr(event, s_defused);
        if (defused == NULL)
            return -1;
        int d = PyObject_IsTrue(defused);
        Py_DECREF(defused);
        if (d < 0)
            return -1;
        if (!d) {
            PyObject *value = PyObject_GetAttr(event, s_value);
            if (value == NULL)
                return -1;
            raise_event_value(value);
            Py_DECREF(value);
            return -1;
        }
    }
    return 0;
}

static PyObject *
Kernel_step(Kernel *self, PyObject *Py_UNUSED(ignored))
{
    if (self->heap_len == 0) {
        /* matches heappop([]) in the reference step() */
        PyErr_SetString(PyExc_IndexError, "index out of range");
        return NULL;
    }
    double when;
    PyObject *event = heap_pop(self, &when);
    self->now = when;
    int rc = dispatch_event(self, event);
    Py_DECREF(event);
    if (rc < 0)
        return NULL;
    Py_RETURN_NONE;
}

static int
run_loop(Kernel *self, double boundary, int inclusive)
{
    /* the inlined run()/run_window() body, freelist recycling included */
    int recycle = self->fastlane;
    while (self->heap_len
           && (inclusive ? self->heap[0].when <= boundary
                         : self->heap[0].when < boundary)) {
        double when;
        PyObject *event = heap_pop(self, &when);
        self->now = when;
        if (dispatch_event(self, event) < 0) {
            Py_DECREF(event);
            return -1;
        }
        if (recycle) {
            if (Py_TYPE(event) == &CTimeout_Type) {
                if (self->tpool_len < CK_POOL_MAX && Py_REFCNT(event) == 1) {
                    CTimeout *t = (CTimeout *)event;
                    Py_INCREF(Py_None);
                    Py_XSETREF(t->value, Py_None);  /* don't pin the payload */
                    self->tpool[self->tpool_len++] = t;  /* keeps our ref */
                    continue;
                }
            } else if ((PyObject *)Py_TYPE(event) == self->py_event_type) {
                if (PyList_GET_SIZE(self->event_pool) < CK_POOL_MAX
                    && Py_REFCNT(event) == 1) {
                    if (PyObject_SetAttr(event, s_value, Py_None) < 0) {
                        Py_DECREF(event);
                        return -1;
                    }
                    if (PyList_Append(self->event_pool, event) < 0) {
                        Py_DECREF(event);
                        return -1;
                    }
                }
            }
        }
        Py_DECREF(event);
    }
    return 0;
}

static PyObject *
Kernel_run_core(Kernel *self, PyObject *arg)
{
    double stop_at = PyFloat_AsDouble(arg);
    if (stop_at == -1.0 && PyErr_Occurred())
        return NULL;
    if (run_loop(self, stop_at, 1) < 0)
        return NULL;
    if (!isinf(stop_at) && stop_at > self->now)
        self->now = stop_at;
    Py_RETURN_NONE;
}

static PyObject *
Kernel_run_window(Kernel *self, PyObject *arg)
{
    double stop_before = PyFloat_AsDouble(arg);
    if (stop_before == -1.0 && PyErr_Occurred())
        return NULL;
    if (run_loop(self, stop_before, 0) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyMemberDef Kernel_members[] = {
    {"now", T_DOUBLE, offsetof(Kernel, now), READONLY,
     "current simulation time"},
    {"seq", T_ULONGLONG, offsetof(Kernel, seq), READONLY,
     "calendar entries created (the FIFO tie-break counter)"},
    {"fastlane", T_INT, offsetof(Kernel, fastlane), READONLY, NULL},
    {"pool_hits", T_ULONGLONG, offsetof(Kernel, pool_hits), READONLY,
     "Timeouts served from the C freelist"},
    {"pool_allocs", T_ULONGLONG, offsetof(Kernel, pool_allocs), READONLY,
     "fresh Timeout allocations on pooled paths"},
    {NULL}
};

static PyMethodDef Kernel_methods[] = {
    {"set_env", (PyCFunction)Kernel_set_env, METH_O,
     "Bind the wrapper Environment stamped onto new Timeouts."},
    {"timeout", (PyCFunction)Kernel_timeout, METH_VARARGS | METH_KEYWORDS,
     "timeout(delay, value=None) -> Timeout due `delay` units from now."},
    {"schedule", (PyCFunction)Kernel_schedule, METH_VARARGS | METH_KEYWORDS,
     "schedule(event, *, delay=0.0, priority=NORMAL)"},
    {"schedule_at", (PyCFunction)Kernel_schedule_at,
     METH_VARARGS | METH_KEYWORDS,
     "schedule_at(event, when, *, priority=NORMAL)"},
    {"peek", (PyCFunction)Kernel_peek, METH_NOARGS,
     "Time of the next scheduled event, or inf."},
    {"step", (PyCFunction)Kernel_step, METH_NOARGS,
     "Process exactly one event."},
    {"run_core", (PyCFunction)Kernel_run_core, METH_O,
     "Run every event due at or before the float boundary."},
    {"run_window", (PyCFunction)Kernel_run_window, METH_O,
     "Run every event strictly before the float boundary."},
    {NULL}
};

static PyTypeObject Kernel_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.sim._ckernel.Kernel",
    .tp_basicsize = sizeof(Kernel),
    .tp_dealloc = (destructor)Kernel_dealloc,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "C event calendar: heap, clock, sequence counter, run loops.",
    .tp_traverse = (traverseproc)Kernel_traverse,
    .tp_clear = (inquiry)Kernel_clear_impl,
    .tp_methods = Kernel_methods,
    .tp_members = Kernel_members,
    .tp_init = (initproc)Kernel_init,
    .tp_new = PyType_GenericNew,
};

/* ================================================================ */
/* module                                                            */
/* ================================================================ */

static PyObject *
ckernel_configure(PyObject *module, PyObject *exc_type)
{
    if (!PyExceptionClass_Check(exc_type)) {
        PyErr_SetString(PyExc_TypeError,
                        "configure() expects the EventAlreadyTriggered "
                        "exception class");
        return NULL;
    }
    Py_INCREF(exc_type);
    Py_XSETREF(ck_EventAlreadyTriggered, exc_type);
    Py_RETURN_NONE;
}

static PyMethodDef ckernel_methods[] = {
    {"configure", (PyCFunction)ckernel_configure, METH_O,
     "Install the kernel's exception class (called once by backend.py)."},
    {NULL}
};

static struct PyModuleDef ckernel_module = {
    PyModuleDef_HEAD_INIT,
    .m_name = "repro.sim._ckernel",
    .m_doc = "Compiled event-calendar kernel (bit-identical to "
             "repro.sim.engine).",
    .m_size = -1,
    .m_methods = ckernel_methods,
};

PyMODINIT_FUNC
PyInit__ckernel(void)
{
    s_callbacks = PyUnicode_InternFromString("callbacks");
    s_ok = PyUnicode_InternFromString("_ok");
    s_defused = PyUnicode_InternFromString("_defused");
    s_value = PyUnicode_InternFromString("_value");
    s_scheduled_at = PyUnicode_InternFromString("_scheduled_at");
    if (!s_callbacks || !s_ok || !s_defused || !s_value || !s_scheduled_at)
        return NULL;
    if (PyType_Ready(&CTimeout_Type) < 0)
        return NULL;
    if (PyType_Ready(&Kernel_Type) < 0)
        return NULL;
    PyObject *module = PyModule_Create(&ckernel_module);
    if (module == NULL)
        return NULL;
    Py_INCREF(&CTimeout_Type);
    if (PyModule_AddObject(module, "Timeout",
                           (PyObject *)&CTimeout_Type) < 0) {
        Py_DECREF(&CTimeout_Type);
        Py_DECREF(module);
        return NULL;
    }
    Py_INCREF(&Kernel_Type);
    if (PyModule_AddObject(module, "Kernel", (PyObject *)&Kernel_Type) < 0) {
        Py_DECREF(&Kernel_Type);
        Py_DECREF(module);
        return NULL;
    }
    if (PyModule_AddIntConstant(module, "POOL_MAX", CK_POOL_MAX) < 0
        || PyModule_AddIntConstant(module, "PRIO_SHIFT", CK_PRIO_SHIFT) < 0) {
        Py_DECREF(module);
        return NULL;
    }
    return module;
}
