"""Discrete-event simulation core: events, timeouts, and the environment.

The kernel follows the classic event-calendar design (a binary heap keyed on
``(time, priority, sequence)``) with generator-coroutine processes layered on
top in :mod:`repro.sim.process`.  It is deliberately small, dependency-free
and deterministic: two runs with the same seed and configuration produce
identical event orderings, which the test-suite and benchmark harness rely
on.

Hot-path notes
--------------
The calendar stores 3-tuples ``(time, key, event)`` where ``key`` packs the
priority and a monotonically-increasing sequence number into one integer
(``priority << 56 | seq``).  Lexicographic tuple order is therefore exactly
the historical ``(time, priority, seq)`` order — priority-major, FIFO-minor
at equal times — but each heap sift compares at most two ints instead of
three fields, and each entry is one element smaller.  :class:`Timeout`
bypasses the generic ``succeed``/``schedule`` ceremony entirely (it is born
triggered), and :meth:`Environment.run` inlines :meth:`Environment.step`
with the queue and ``heappop`` bound to locals; both paths are covered by
the event-order golden tests in ``tests/sim/test_engine_hotpath.py``.

Settled-event fast lane
-----------------------
When the fast lane is on (``REPRO_FASTPATH``, read once per environment),
producers whose outcome is known synchronously — an uncontended
``Resource.request()``, a ``Store.get()`` with an item buffered — return an
*inline-settled* event: triggered, value frozen, due now, but never pushed
onto the calendar.  :class:`~repro.sim.process.Process` consumes such an
event without a heap round-trip, ``all_of``/``any_of`` treat it exactly
like any other already-settled event, and ``run(until=...)`` returns its
value immediately.  The fast lane also enables freelist pooling: the run
loop recycles :class:`Timeout` and plain :class:`Event` objects whose
refcount proves no one can observe them again, and the process fast lane
recycles the inline events it consumed.  ``kernel_stats()`` reports events
scheduled, fast-lane resumes and pool reuse so the churn reduction is
visible; with the fast lane off every structure and code path is exactly
the reference heap kernel.
"""

from __future__ import annotations

import heapq
from sys import getrefcount
from typing import Any, Callable, Iterable, Optional

from .errors import EventAlreadyTriggered, StopSimulation

#: Scheduling priorities.  Lower sorts earlier at equal times.  URGENT is used
#: internally (e.g. resource handoffs) so that bookkeeping completes before
#: ordinary activity scheduled at the same instant.
URGENT = 0
NORMAL = 1

#: Bits reserved for the FIFO sequence inside a packed heap key.  2**56
#: schedules per run is far beyond any simulation here; priority occupies
#: the bits above so it dominates the tie-break.
_PRIO_SHIFT = 56
_NORMAL_KEY = NORMAL << _PRIO_SHIFT

_heappush = heapq.heappush
_heappop = heapq.heappop

#: Freelist bound per pooled class: enough to absorb steady-state churn,
#: small enough that a burst cannot pin memory.
_POOL_MAX = 256

_INF = float("inf")


class Event:
    """A condition that may be *triggered* once with a value or an error.

    Callbacks appended to :attr:`callbacks` run, in order, when the event is
    processed by the environment's loop.  After processing, the event is
    *defused*: its value (or exception) is frozen and further ``succeed`` /
    ``fail`` calls raise :class:`EventAlreadyTriggered`.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_triggered", "_defused",
                 "_scheduled_at", "_inline")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: Optional[list[Callable[[Event], None]]] = []
        self._value: Any = None
        self._ok: bool = True
        self._triggered = False
        self._defused = False
        self._scheduled_at: float = _INF  # calendar due time
        self._inline = False  # settled synchronously, never on the calendar

    # -- state ------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once :meth:`succeed` or :meth:`fail` has been called."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once the environment has run this event's callbacks."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The success value or failure exception carried by the event."""
        return self._value

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None, *, priority: int = NORMAL) -> "Event":
        """Schedule the event to fire successfully at the current time."""
        if self._triggered:
            raise EventAlreadyTriggered(f"{self!r} already triggered")
        self._triggered = True
        self._ok = True
        self._value = value
        env = self.env
        env.schedule(self, priority=priority)
        return self

    def fail(self, exception: BaseException, *, priority: int = NORMAL) -> "Event":
        """Schedule the event to fire with ``exception`` at the current time."""
        if self._triggered:
            raise EventAlreadyTriggered(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._triggered = True
        self._ok = False
        self._value = exception
        self.env.schedule(self, priority=priority)
        return self

    def _settle_inline(self, value: Any = None) -> None:
        """Fast-lane handoff: succeed now and run callbacks synchronously.

        The event never touches the calendar — it settles at the current
        instant and its waiters (typically one suspended process) resume
        immediately, eliding the URGENT heap round-trip the reference path
        pays.  Callers are responsible for dispatch-order equivalence
        (golden-ordering and fixed-seed equivalence tests arbitrate); only
        success paths use this, failures always go through the calendar.
        """
        self._triggered = True
        self._ok = True
        self._value = value
        self._scheduled_at = self.env._now
        self._inline = True
        callbacks = self.callbacks
        self.callbacks = None  # mark processed
        if callbacks:
            for callback in callbacks:
                callback(self)

    def trigger_from(self, other: "Event") -> None:
        """Trigger this event with the outcome of an already-settled event."""
        if other._ok:
            self.succeed(other._value)
        else:
            self.fail(other._value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self.processed else (
            "triggered" if self._triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires automatically ``delay`` time units from creation.

    Timeouts are the kernel's single most-allocated event type (every think
    time, service time and network hop is one), so construction takes a fast
    path: the event is born triggered and is pushed straight onto the
    calendar, skipping the generic ``succeed`` -> ``schedule`` method chain.
    FIFO ordering at equal ``(time, priority)`` is identical to an event
    triggered through :meth:`Event.succeed` because both draw from the same
    sequence counter.
    """

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative delay: {delay!r}")
        # Inlined Event.__init__ + succeed() + schedule().
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self._triggered = True
        self._defused = False
        self._inline = False
        self.delay = delay
        seq = env._seq
        env._seq = seq + 1
        when = env._now + delay
        self._scheduled_at = when
        _heappush(env._queue, (when, _NORMAL_KEY | seq, self))


class Environment:
    """Execution environment: the event calendar and simulation clock.

    ``fastlane`` controls the settled-event fast lane and freelist pooling;
    ``None`` (the default) reads ``REPRO_FASTPATH`` once at construction.
    With the lane off the kernel is exactly the reference heap
    implementation — CI's golden-equivalence runs rely on that.
    """

    __slots__ = ("_now", "_queue", "_seq", "_fastlane", "_event_pool",
                 "_timeout_pool", "_request_pool", "fast_resumes",
                 "pool_hits", "pool_allocs")

    def __init__(self, initial_time: float = 0.0, *,
                 fastlane: Optional[bool] = None) -> None:
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, Event]] = []
        self._seq = 0  # tie-breaker preserving FIFO order at equal (t, prio)
        if fastlane is None:
            from .._fastpath import fastpath_enabled

            fastlane = fastpath_enabled()
        self._fastlane = fastlane
        #: freelists for the hot event classes (fast lane only)
        self._event_pool: list[Event] = []
        self._timeout_pool: list[Timeout] = []
        self._request_pool: list[Event] = []  # Request instances
        #: kernel counters (see :meth:`kernel_stats`)
        self.fast_resumes = 0   # generator resumes without a heap round-trip
        self.pool_hits = 0      # events served from a freelist
        self.pool_allocs = 0    # fresh allocations on pooled paths

    # -- clock ------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def fastlane(self) -> bool:
        """True when the settled-event fast lane and pools are active."""
        return self._fastlane

    def kernel_stats(self) -> dict[str, float]:
        """Kernel churn counters (pay-for-use: plain ints, read on demand).

        ``events_scheduled`` is the number of calendar entries created (the
        sequence counter — every heap push draws one).  ``fast_resumes``
        counts generator resumes served inline without a heap round-trip.
        ``pool_hits`` / ``pool_allocs`` split pooled-path constructions into
        freelist reuses vs fresh allocations; ``pool_reuse_rate`` is the
        fraction reused (0.0 when the pools were never exercised).
        """
        pooled = self.pool_hits + self.pool_allocs
        return {
            "fastlane": self._fastlane,
            "events_scheduled": self._seq,
            "fast_resumes": self.fast_resumes,
            "pool_hits": self.pool_hits,
            "pool_allocs": self.pool_allocs,
            "pool_reuse_rate": (self.pool_hits / pooled) if pooled else 0.0,
        }

    # -- construction helpers ----------------------------------------------
    def event(self) -> Event:
        """Create a new untriggered :class:`Event`."""
        if self._fastlane:
            pool = self._event_pool
            if pool:
                self.pool_hits += 1
                ev = pool.pop()
                ev.callbacks = []
                ev._value = None
                ev._ok = True
                ev._triggered = False
                ev._defused = False
                ev._scheduled_at = _INF
                ev._inline = False
                return ev
            self.pool_allocs += 1
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create a :class:`Timeout` firing ``delay`` units from now."""
        if self._fastlane:
            pool = self._timeout_pool
            if pool:
                if delay < 0:
                    raise ValueError(f"negative delay: {delay!r}")
                self.pool_hits += 1
                t = pool.pop()
                t.callbacks = []
                t._value = value
                t._ok = True
                t._triggered = True
                t._defused = False
                t.delay = delay
                seq = self._seq
                self._seq = seq + 1
                when = self._now + delay
                t._scheduled_at = when
                _heappush(self._queue, (when, _NORMAL_KEY | seq, t))
                return t
            self.pool_allocs += 1
        return Timeout(self, delay, value)

    def process(self, generator) -> "Process":
        """Start a new :class:`~repro.sim.process.Process` from a generator."""
        from .process import Process

        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> Event:
        """Event that succeeds once every event in ``events`` has succeeded.

        The result value is the list of individual event values, in input
        order.  If any constituent fails, the combined event fails with that
        exception (first failure wins).

        Already-settled constituents — triggered with a calendar due time at
        or before ``now``, whether or not their callbacks have run yet —
        contribute immediately at construction time, in input order; such an
        event's value is frozen, so there is nothing to wait for.  Pending
        constituents (including future :class:`Timeout`\\ s, which are
        *triggered* from birth but not yet due) contribute when the kernel
        processes them.
        """
        events = list(events)
        combined = self.event()
        remaining = len(events)
        values: list[Any] = [None] * remaining
        if remaining == 0:
            combined.succeed([])
            return combined

        def make_cb(index: int):
            def _cb(ev: Event) -> None:
                nonlocal remaining
                if combined._triggered:
                    return
                if not ev._ok:
                    combined.fail(ev._value)
                    return
                values[index] = ev._value
                remaining -= 1
                if remaining == 0:
                    combined.succeed(list(values))

            return _cb

        now = self._now
        for i, ev in enumerate(events):
            if ev._triggered and ev._scheduled_at <= now:
                # Already settled (value frozen, due now): contribute
                # immediately instead of waiting for callback dispatch.
                make_cb(i)(ev)
            else:
                ev.callbacks.append(make_cb(i))
        return combined

    def any_of(self, events: Iterable[Event]) -> Event:
        """Event that settles as soon as the first of ``events`` settles.

        Ordering is explicit and mirrors :meth:`all_of`'s already-settled
        handling: if any constituent is already settled at construction time
        — triggered with a calendar due time at or before ``now``, whether
        processed or still awaiting callback dispatch; its value is frozen
        either way — the combined event settles immediately from the
        **first such event in input order**.  Otherwise the first
        constituent the kernel dispatches wins (a future :class:`Timeout`
        counts as pending until it is due).
        """
        events = list(events)
        combined = self.event()
        if not events:
            combined.succeed(None)
            return combined

        def _cb(ev: Event) -> None:
            if not combined._triggered:
                combined.trigger_from(ev)

        now = self._now
        for ev in events:
            if ev._triggered and ev._scheduled_at <= now:
                combined.trigger_from(ev)
                return combined
        for ev in events:
            ev.callbacks.append(_cb)
        return combined

    # -- scheduling ---------------------------------------------------------
    def schedule(self, event: Event, *, delay: float = 0.0,
                 priority: int = NORMAL) -> None:
        """Place a triggered event on the calendar ``delay`` units from now."""
        seq = self._seq
        self._seq = seq + 1
        when = self._now + delay
        event._scheduled_at = when
        _heappush(self._queue, (when, (priority << _PRIO_SHIFT) | seq, event))

    def schedule_at(self, event: Event, when: float, *,
                    priority: int = NORMAL) -> None:
        """Place a triggered event on the calendar at absolute time ``when``.

        The sharded executor uses this to inject cross-shard messages at
        their precomputed arrival times; the entry draws this calendar's
        own sequence counter, so injected events interleave with local
        ones under exactly the ``(time, priority, seq)`` order the serial
        kernel would have produced.
        """
        if when < self._now:
            raise ValueError(
                f"schedule_at({when!r}) is in the past (now={self._now!r})")
        seq = self._seq
        self._seq = seq + 1
        event._scheduled_at = when
        _heappush(self._queue, (when, (priority << _PRIO_SHIFT) | seq, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if the queue is empty."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event (advance the clock to it)."""
        when, _key, event = _heappop(self._queue)
        self._now = when
        callbacks = event.callbacks
        event.callbacks = None  # mark processed
        if callbacks:
            for callback in callbacks:
                callback(event)
        if not event._ok and not event._defused:
            # Nobody handled the failure: surface it instead of silently
            # swallowing a crashed process.
            exc = event._value
            raise exc

    def run(self, until: "float | Event | None" = None) -> Any:
        """Run the event loop.

        ``until`` may be:

        * ``None`` — run until the calendar empties;
        * a number — run until the clock reaches that time;
        * an :class:`Event` — run until that event is processed, returning
          its value (or raising its exception).
        """
        if until is None:
            stop_at = float("inf")
            stop_event: Optional[Event] = None
        elif isinstance(until, Event):
            stop_at = float("inf")
            stop_event = until

            def _stop(ev: Event) -> None:
                ev._defused = True
                raise StopSimulation(ev)

            if stop_event.processed or (stop_event._inline
                                        and stop_event._triggered):
                # processed, or settled inline (never on the calendar):
                # the outcome is already frozen
                if stop_event._ok:
                    return stop_event._value
                raise stop_event._value
            stop_event.callbacks.append(_stop)
        else:
            stop_at = float(until)
            stop_event = None
            if stop_at < self._now:
                raise ValueError(
                    f"until={stop_at!r} is in the past (now={self._now!r})")

        # The loop below is step() inlined with the queue, heappop and the
        # boundary bound to locals: attribute loads dominate the per-event
        # cost at this call volume (one iteration per simulated event).
        # With the fast lane on, dispatched Timeout/Event objects whose
        # refcount proves them unreachable (the loop local plus the
        # getrefcount argument) are recycled onto the freelists.
        queue = self._queue
        heappop = _heappop
        recycle = self._fastlane
        timeout_pool = self._timeout_pool
        event_pool = self._event_pool
        try:
            while queue and queue[0][0] <= stop_at:
                when, _key, event = heappop(queue)
                self._now = when
                callbacks = event.callbacks
                event.callbacks = None  # mark processed
                if callbacks:
                    for callback in callbacks:
                        callback(event)
                if not event._ok and not event._defused:
                    raise event._value
                if recycle:
                    cls = event.__class__
                    if cls is Timeout:
                        if (len(timeout_pool) < _POOL_MAX
                                and getrefcount(event) == 2):
                            event._value = None  # don't pin the payload
                            timeout_pool.append(event)
                    elif cls is Event:
                        if (len(event_pool) < _POOL_MAX
                                and getrefcount(event) == 2):
                            event._value = None
                            event_pool.append(event)
        except StopSimulation as stop:
            ev: Event = stop.value  # type: ignore[assignment]
            if ev._ok:
                return ev._value
            raise ev._value from None
        if stop_event is not None:
            raise RuntimeError(
                "run(until=<event>) exhausted the calendar before the event "
                "triggered")
        if stop_at != float("inf"):
            self._now = max(self._now, stop_at)
        return None

    def run_window(self, stop_before: float) -> None:
        """Process every event strictly before ``stop_before``.

        The conservative-synchronisation window of the sharded executor:
        a shard may safely simulate ``[now, barrier + lookahead)`` because
        no cross-shard message can arrive earlier than one lookahead past
        the barrier.  Unlike :meth:`run`, the boundary is **exclusive**
        (events at exactly ``stop_before`` wait for the next window, after
        message exchange) and the clock is left at the last processed
        event so later injections at ``stop_before`` are still in the
        future.  The loop is :meth:`run`'s inlined body, including the
        fast-lane freelist recycling.
        """
        queue = self._queue
        heappop = _heappop
        recycle = self._fastlane
        timeout_pool = self._timeout_pool
        event_pool = self._event_pool
        while queue and queue[0][0] < stop_before:
            when, _key, event = heappop(queue)
            self._now = when
            callbacks = event.callbacks
            event.callbacks = None  # mark processed
            if callbacks:
                for callback in callbacks:
                    callback(event)
            if not event._ok and not event._defused:
                raise event._value
            if recycle:
                cls = event.__class__
                if cls is Timeout:
                    if (len(timeout_pool) < _POOL_MAX
                            and getrefcount(event) == 2):
                        event._value = None  # don't pin the payload
                        timeout_pool.append(event)
                elif cls is Event:
                    if (len(event_pool) < _POOL_MAX
                            and getrefcount(event) == 2):
                        event._value = None
                        event_pool.append(event)
