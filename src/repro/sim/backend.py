"""Kernel backend selection: the reference heap kernel or the compiled one.

The event-calendar kernel sits behind a narrow backend seam.  Two
implementations exist:

* ``reference`` — the pure-python kernel in :mod:`repro.sim.engine`,
  untouched, byte-for-byte the implementation every prior PR validated.
* ``compiled`` — a hand-written C extension (``repro.sim._ckernel``)
  holding the calendar (a C array binary heap keyed on
  ``(when, priority << 56 | seq)``), the clock, the sequence counter, the
  ``Timeout`` lifecycle and the inlined run loops, wrapped by
  :class:`CompiledEnvironment` so every pure-python consumer (processes,
  resources, the shard runtime) sees the exact :class:`Environment`
  surface.

Selection follows the repo's gate discipline (config field > env var >
default, see :func:`repro.experiments.config.env_gates`): the
``REPRO_KERNEL`` environment variable or ``ExperimentConfig.kernel``
accepts ``reference`` (the default), ``compiled``, or ``auto``.  Both
``compiled`` and ``auto`` degrade *silently* to the reference kernel when
the extension is missing or fails to import (no C toolchain, unbuilt
checkout) — mirroring the ``parallel_viable`` pattern — and every
``Simulation.summary().kernel`` and bench report records
``kernel_backend`` / ``compiled_viable`` so a silent fallback is still
visible in the artifacts.

Bit identity
------------
The sequence counter makes every heap key unique, so the calendar induces
a **total order** on scheduled events; any correct binary heap — heapq's
or the C one's — therefore pops the identical sequence, and due times are
computed with the same IEEE-754 double arithmetic either way.  The golden
ordering, fastpath-equivalence and shard bit-identity suites run
parametrized over both backends to enforce this.
"""

from __future__ import annotations

import os
from typing import Any, Optional

from .engine import Environment, Event, _INF
from .errors import EventAlreadyTriggered, StopSimulation

#: Kernel backend switch: unset/"reference" runs the pure-python kernel,
#: "compiled" prefers the C extension (silent fallback when unbuilt),
#: "auto" is an alias for "compiled".
KERNEL_ENV = "REPRO_KERNEL"

REFERENCE = "reference"
COMPILED = "compiled"

_KERNEL_TOKENS = frozenset({REFERENCE, COMPILED, "auto"})

try:
    from . import _ckernel as _C
except Exception as exc:  # pragma: no cover - host without the built ext
    _C = None
    _CKERNEL_ERROR: Optional[str] = f"{type(exc).__name__}: {exc}"
    CTimeout = None
    #: classes the kernel treats as events (isinstance targets)
    EVENT_TYPES: "tuple[type, ...]" = (Event,)
else:
    _C.configure(EventAlreadyTriggered)
    _CKERNEL_ERROR = None
    #: the C Timeout class (``None`` when the extension is unavailable)
    CTimeout = _C.Timeout
    EVENT_TYPES = (Event, CTimeout)


def compiled_viable() -> bool:
    """True when the compiled kernel extension imported successfully."""
    return _C is not None


def compiled_unavailable_reason() -> Optional[str]:
    """Why the compiled backend cannot run, or ``None`` when it can."""
    return _CKERNEL_ERROR


def parse_kernel_env(raw: Optional[str]) -> Optional[str]:
    """Interpret a ``REPRO_KERNEL`` value.

    Returns ``None`` when unset/empty (default: reference), else one of
    the mode tokens.  Raises on anything else, like the other gates.
    """
    if raw is None:
        return None
    token = raw.strip().lower()
    if not token:
        return None
    if token not in _KERNEL_TOKENS:
        raise ValueError(
            f"{KERNEL_ENV}={raw!r} is not one of "
            f"{sorted(_KERNEL_TOKENS)}")
    return token


def resolve_kernel(gate: Optional[str] = None) -> str:
    """The effective backend name for a gate value.

    ``gate`` is a resolved gate token (``None``, ``"reference"``,
    ``"compiled"`` or ``"auto"``); ``None`` reads ``REPRO_KERNEL``.
    ``compiled``/``auto`` fall back silently to ``reference`` when the
    extension is unavailable.
    """
    if gate is None:
        gate = parse_kernel_env(os.environ.get(KERNEL_ENV))
    if gate in (None, REFERENCE):
        return REFERENCE
    return COMPILED if compiled_viable() else REFERENCE


def make_environment(initial_time: float = 0.0, *,
                     fastlane: Optional[bool] = None,
                     kernel: Optional[str] = None) -> Environment:
    """Construct an :class:`Environment` on the selected kernel backend.

    ``kernel`` is a gate value (:func:`parse_kernel_env` semantics);
    ``None`` defers to ``REPRO_KERNEL``.  The reference backend returns a
    plain :class:`Environment`; the compiled backend returns a
    :class:`CompiledEnvironment` exposing the identical surface.
    """
    if resolve_kernel(kernel) == COMPILED:
        return CompiledEnvironment(initial_time, fastlane=fastlane)
    return Environment(initial_time, fastlane=fastlane)


def backend_of(env: Environment) -> str:
    """Which backend built ``env`` (``"reference"`` or ``"compiled"``)."""
    if _C is not None and isinstance(env, CompiledEnvironment):
        return COMPILED
    return REFERENCE


def kernel_info(env: Optional[Environment] = None) -> "dict[str, Any]":
    """The backend-provenance fields summaries and bench reports carry."""
    backend = backend_of(env) if env is not None else resolve_kernel()
    return {"kernel_backend": backend, "compiled_viable": compiled_viable()}


class CompiledEnvironment(Environment):
    """:class:`Environment` running on the C calendar.

    The calendar, clock, sequence counter and run loops live in a
    ``_ckernel.Kernel``; the C-implemented methods are bound straight
    into instance slots (shadowing the base-class definitions) so hot
    callers dispatch into C without a delegating python frame.  The
    python-side pools and counters (``_event_pool``/``_request_pool``,
    ``fast_resumes``, ``pool_hits``/``pool_allocs``) stay plain python
    attributes because :mod:`repro.sim.resources` and
    :mod:`repro.sim.process` mutate them directly — ``kernel_stats``
    merges them with the C-side counters.
    """

    __slots__ = ("_kernel", "timeout", "schedule", "schedule_at", "peek",
                 "step", "run_window")

    def __init__(self, initial_time: float = 0.0, *,
                 fastlane: Optional[bool] = None) -> None:
        if _C is None:
            raise RuntimeError(
                "compiled kernel backend unavailable "
                f"({_CKERNEL_ERROR}); build it with "
                "`python tools/build_kernel.py` or use REPRO_KERNEL=reference")
        if fastlane is None:
            from .._fastpath import fastpath_enabled

            fastlane = fastpath_enabled()
        self._fastlane = fastlane
        self._event_pool: list = []
        self._timeout_pool: list = []  # surface parity; C pools Timeouts
        self._request_pool: list = []
        self.fast_resumes = 0
        self.pool_hits = 0
        self.pool_allocs = 0
        kernel = _C.Kernel(float(initial_time), bool(fastlane),
                           self._event_pool, Event)
        kernel.set_env(self)
        self._kernel = kernel
        self.timeout = kernel.timeout
        self.schedule = kernel.schedule
        self.schedule_at = kernel.schedule_at
        self.peek = kernel.peek
        self.step = kernel.step
        self.run_window = kernel.run_window

    # The clock and sequence counter live in the C kernel; these shadow
    # the base-class slots for the python code that reads them directly
    # (shard runtime `env._now`, kernel tests `env._seq`).
    @property
    def _now(self) -> float:  # type: ignore[override]
        return self._kernel.now

    @property
    def _seq(self) -> int:  # type: ignore[override]
        return self._kernel.seq

    def kernel_stats(self) -> "dict[str, float]":
        """Reference-shaped churn counters, merged across C and python.

        ``events_scheduled`` is the C sequence counter; ``pool_hits`` /
        ``pool_allocs`` sum the python-side Event/Request pools and the
        C-side Timeout freelist.
        """
        kernel = self._kernel
        hits = self.pool_hits + kernel.pool_hits
        allocs = self.pool_allocs + kernel.pool_allocs
        pooled = hits + allocs
        return {
            "fastlane": self._fastlane,
            "events_scheduled": kernel.seq,
            "fast_resumes": self.fast_resumes,
            "pool_hits": hits,
            "pool_allocs": allocs,
            "pool_reuse_rate": (hits / pooled) if pooled else 0.0,
        }

    def run(self, until: "float | Event | None" = None) -> Any:
        """:meth:`Environment.run` with the loop in C (`run_core`)."""
        if until is None:
            stop_at = _INF
            stop_event = None
        elif isinstance(until, EVENT_TYPES):
            stop_at = _INF
            stop_event = until

            def _stop(ev) -> None:
                ev._defused = True
                raise StopSimulation(ev)

            if stop_event.processed or (stop_event._inline
                                        and stop_event._triggered):
                if stop_event._ok:
                    return stop_event._value
                raise stop_event._value
            stop_event.callbacks.append(_stop)
        else:
            stop_at = float(until)
            stop_event = None
            if stop_at < self._kernel.now:
                raise ValueError(
                    f"until={stop_at!r} is in the past "
                    f"(now={self._kernel.now!r})")
        try:
            self._kernel.run_core(stop_at)
        except StopSimulation as stop:
            ev = stop.value
            if ev._ok:
                return ev._value
            raise ev._value from None
        if stop_event is not None:
            raise RuntimeError(
                "run(until=<event>) exhausted the calendar before the event "
                "triggered")
        return None


__all__ = [
    "COMPILED",
    "CTimeout",
    "CompiledEnvironment",
    "EVENT_TYPES",
    "KERNEL_ENV",
    "REFERENCE",
    "backend_of",
    "compiled_unavailable_reason",
    "compiled_viable",
    "kernel_info",
    "make_environment",
    "parse_kernel_env",
    "resolve_kernel",
]
