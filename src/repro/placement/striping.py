"""File striping: inode -> object sequence -> OSD placement (§2.1.1).

"File data is striped and replicated across a large number of objects on a
large number of OSDs ... the sequence of object identifiers and OSD devices
can be recalculated by the client — without interaction with the MDS
cluster — given a single small input value, such as an inode number",
augmented by a replication-group identifier.

:class:`FileMapper` is that computation: a pure function of
``(ino, size)`` and the (cluster-wide, rarely-changing) layout parameters.
The MDS needs to store nothing per file beyond the inode number and the
replication-group id — the "fixed size of only a few bytes" the paper
highlights.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from .rush import StableHashPlacement


@dataclass(frozen=True)
class ObjectExtent:
    """One object of a striped file and the byte range it carries."""

    object_id: int
    file_offset: int
    length: int
    osds: "tuple[int, ...]"  # replica devices, primary first


@dataclass(frozen=True)
class StripeLayout:
    """Cluster-wide striping parameters."""

    object_size: int = 1 << 22      # 4 MiB objects
    n_replicas: int = 2
    n_replication_groups: int = 256

    def __post_init__(self) -> None:
        if self.object_size < 1:
            raise ValueError("object_size must be positive")
        if self.n_replicas < 1:
            raise ValueError("need at least one replica")
        if self.n_replication_groups < 1:
            raise ValueError("need at least one replication group")


def object_id_for(ino: int, index: int) -> int:
    """Deterministic object id for stripe ``index`` of file ``ino``."""
    if ino < 0 or index < 0:
        raise ValueError("ino and index must be non-negative")
    return (ino << 24) | index


def replication_group_for(ino: int, layout: StripeLayout) -> int:
    """The file's replication group (all its objects share it, [28])."""
    return (ino * 2654435761) % layout.n_replication_groups


class FileMapper:
    """Client-side recalculation of a file's object/OSD layout."""

    def __init__(self, placement: StableHashPlacement,
                 layout: StripeLayout = StripeLayout()) -> None:
        self.placement = placement
        self.layout = layout

    def n_objects(self, size: int) -> int:
        if size < 0:
            raise ValueError("size must be non-negative")
        if size == 0:
            return 0
        return (size + self.layout.object_size - 1) // self.layout.object_size

    def map_file(self, ino: int, size: int) -> List[ObjectExtent]:
        """Every object of the file with its byte range and replica OSDs."""
        group = replication_group_for(ino, self.layout)
        extents: List[ObjectExtent] = []
        for index in range(self.n_objects(size)):
            offset = index * self.layout.object_size
            length = min(self.layout.object_size, size - offset)
            oid = object_id_for(ino, index)
            # the placement key mixes the object id with the replication
            # group so whole groups can be rebuilt together after failures
            key = (oid << 16) ^ group
            osds = tuple(self.placement.place(key, self.layout.n_replicas))
            extents.append(ObjectExtent(object_id=oid, file_offset=offset,
                                        length=length, osds=osds))
        return extents

    def locate_offset(self, ino: int, size: int, offset: int) -> ObjectExtent:
        """The extent containing byte ``offset`` (what a read needs)."""
        if not (0 <= offset < size):
            raise ValueError(f"offset {offset} outside file of size {size}")
        index = offset // self.layout.object_size
        extents = self.map_file(ino, size)
        return extents[index]
