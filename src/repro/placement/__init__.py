"""Data placement substrate (§2.1.1): deterministic, client-recalculable
file -> object -> OSD mapping (RUSH-style weighted rendezvous hashing plus
striping/replication-group layout)."""

from .rush import Device, StableHashPlacement
from .striping import (FileMapper, ObjectExtent, StripeLayout,
                       object_id_for, replication_group_for)

__all__ = [
    "Device",
    "FileMapper",
    "ObjectExtent",
    "StableHashPlacement",
    "StripeLayout",
    "object_id_for",
    "replication_group_for",
]
