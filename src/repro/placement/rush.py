"""Deterministic pseudo-random data placement (§2.1.1, after RUSH [11]).

The architecture's file data path never consults the MDS: given a small
input value (the inode number plus a replication-group id), any client can
recompute which OSDs hold every object of a file.  The placement function
must be deterministic, probabilistically balanced across heterogeneous
devices, and stable under expansion — adding storage moves only the data
that lands on the new devices.

We implement weighted rendezvous (highest-random-weight) hashing, which
has exactly those properties and is a close cousin of the RUSH family the
paper cites: each (key, device) pair gets an independent uniform draw,
scaled by device weight via the exponential trick; the device with the
best score wins.  When new devices join, a key's existing scores are
unchanged, so it moves only if a new device beats its previous winner —
the minimal-migration property.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple


@dataclass(frozen=True)
class Device:
    """One OSD with a relative capacity weight."""

    device_id: int
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError(f"weight must be positive, got {self.weight}")


def _uniform(key: int, replica: int, device_id: int) -> float:
    """A stable uniform(0,1] draw for the (key, replica, device) triple."""
    digest = hashlib.sha256(
        f"{key}:{replica}:{device_id}".encode()).digest()
    raw = int.from_bytes(digest[:8], "little")
    return (raw + 1) / (2 ** 64 + 1)


class StableHashPlacement:
    """Weighted rendezvous placement over a set of OSDs."""

    def __init__(self, devices: Sequence[Device]) -> None:
        if not devices:
            raise ValueError("need at least one device")
        ids = [d.device_id for d in devices]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate device ids")
        self.devices: Tuple[Device, ...] = tuple(devices)

    @classmethod
    def uniform(cls, n_devices: int) -> "StableHashPlacement":
        """A pool of ``n_devices`` equal-weight OSDs numbered from 0."""
        return cls([Device(i) for i in range(n_devices)])

    def expanded(self, new_devices: Sequence[Device]) -> "StableHashPlacement":
        """A new placement with additional devices (stable expansion)."""
        return StableHashPlacement(tuple(self.devices) + tuple(new_devices))

    # ------------------------------------------------------------------
    def place(self, key: int, n_replicas: int = 1) -> List[int]:
        """The ``n_replicas`` distinct device ids holding ``key``.

        Replica ``r`` takes the device with the ``r``-th best score, so the
        replica list is a stable permutation prefix: losing a device
        promotes the next-best choice without disturbing the others.
        """
        if n_replicas < 1:
            raise ValueError("need at least one replica")
        if n_replicas > len(self.devices):
            raise ValueError(
                f"cannot place {n_replicas} replicas on "
                f"{len(self.devices)} devices")
        scored = []
        for device in self.devices:
            u = _uniform(key, 0, device.device_id)
            # exponential/weighted-rendezvous score: smaller is better
            score = -math.log(u) / device.weight
            scored.append((score, device.device_id))
        scored.sort()
        return [device_id for _score, device_id in scored[:n_replicas]]

    def primary(self, key: int) -> int:
        """The first replica's device."""
        return self.place(key, 1)[0]
