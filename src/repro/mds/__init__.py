"""Metadata server cluster (S5/S7/S8/S9 in DESIGN.md)."""

from .cluster import MdsCluster
from .config import DEFAULT_PARAMS, SimParams
from .dirfrag import DirFragManager
from .failover import fail_node, recover_node, warm_from_journal
from .loadbalance import LoadBalancer, NodeLoad
from .messages import (ANY_NODE, MUTATING_OPS, READ_ONLY_OPS, MdsReply,
                       MdsRequest, OpType)
from .migration import migrate_subtree
from .node import MdsNode
from .policy import (BalancePolicy, PriorityPathsPolicy, WeightedNodesPolicy)
from .popularity import DecayCounter, PopularityMap
from .stats import NodeStats, aggregate_forward_fraction, aggregate_hit_rate

__all__ = [
    "ANY_NODE",
    "BalancePolicy",
    "DEFAULT_PARAMS",
    "PriorityPathsPolicy",
    "WeightedNodesPolicy",
    "DecayCounter",
    "DirFragManager",
    "LoadBalancer",
    "MUTATING_OPS",
    "MdsCluster",
    "MdsNode",
    "MdsReply",
    "MdsRequest",
    "NodeLoad",
    "NodeStats",
    "OpType",
    "PopularityMap",
    "READ_ONLY_OPS",
    "SimParams",
    "aggregate_forward_fraction",
    "aggregate_hit_rate",
    "fail_node",
    "migrate_subtree",
    "recover_node",
    "warm_from_journal",
]
