"""Subtree authority transfer (§4.3).

A migration moves authority for a directory subtree from one MDS to
another with a double-commit exchange during which all active cached state
for the subtree is transferred — explicitly *not* re-read from disk, which
"would be orders of magnitude slower".  The receiving node must cache the
subtree root's prefix (ancestor) inodes, which is the small per-delegation
overhead the paper notes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

from ..namespace import ROOT_INO
from ..partition import DynamicSubtreePartition
from ..sim import Event

if TYPE_CHECKING:  # pragma: no cover
    from .cluster import MdsCluster


def migrate_subtree(cluster: "MdsCluster", subtree_ino: int, src_id: int,
                    dst_id: int) -> Generator[Event, Any, int]:
    """Transfer authority for ``subtree_ino`` from ``src_id`` to ``dst_id``.

    Returns the number of cached entries transferred.  A sub-process: costs
    the double-commit handshake plus per-entry transfer time on the source
    node's CPU.
    """
    strategy = cluster.strategy
    if not isinstance(strategy, DynamicSubtreePartition):
        raise TypeError("migration requires a dynamic subtree partition")
    if subtree_ino == ROOT_INO:
        raise ValueError("cannot migrate the root")
    if src_id == dst_id:
        raise ValueError("source and destination are the same node")
    src = cluster.nodes[src_id]
    dst = cluster.nodes[dst_id]
    ns = cluster.ns
    params = cluster.params

    # Only state this delegation transfer actually covers moves: entries
    # nested under a *different* delegation, or cached here as replicas,
    # stay behind.  An entry is covered iff its nearest delegation root is
    # the same as the migrating subtree's (the subtree itself when it is
    # already delegated, its covering root when this is a fresh split).
    covering_root = strategy.delegation_root_of(subtree_ino)
    entries = [
        entry for entry in src.cache.collect_subtree(subtree_ino)
        if not entry.replica
        and entry.ino in cluster.ns
        and strategy.authority_of_ino(entry.ino) == src_id
        and strategy.delegation_root_of(entry.ino) == covering_root
    ]
    transfer_cost = (params.migration_fixed_s
                     + params.migration_per_entry_s * len(entries))
    # The exporter drives the exchange; its CPU is busy for the duration.
    yield from src.cpu.use(transfer_cost)
    yield cluster.env.timeout(2 * params.net_hop_s)  # double commit

    # Destination anchors the new delegation with prefix inodes (§4.3).
    if subtree_ino in ns:
        for ancestor in ns.ancestors(subtree_ino):
            if ancestor.ino not in dst.cache:
                is_auth = strategy.authority_of_ino(ancestor.ino) == dst_id
                dst._insert(ancestor, replica=not is_auth)

    # Move cached state: insert top-down at the destination, then release
    # bottom-up at the source.
    now = cluster.env.now
    moved = 0
    for entry in reversed(entries):  # root-first
        if entry.ino not in ns:
            continue
        dst._insert(ns.inode(entry.ino), replica=False)
        moved += 1
        popularity = src.popularity.read(entry.ino, now)
        if popularity > 0:
            dst.popularity.add(entry.ino, now, popularity)
        holders = src.replicas.drop_ino(entry.ino)
        for holder in holders:
            if holder != dst_id:
                dst.replicas.register(entry.ino, holder)
        # open handles follow the authority (their pin moves with them)
        refs = src._open_refs.pop(entry.ino, 0)
        if refs:
            dst._open_refs[entry.ino] = dst._open_refs.get(entry.ino, 0) + refs
            if entry.ino in dst.cache and entry.ino not in dst._open_pinned:
                dst.cache.pin(entry.ino)
                dst._open_pinned.add(entry.ino)
            if entry.ino in src._open_pinned:
                src._open_pinned.discard(entry.ino)
                if entry.ino in src.cache:
                    src.cache.unpin(entry.ino)
    for entry in entries:  # deepest-first
        # re-read the live entry: the ino may have been evicted and
        # re-inserted (with new pins) while the transfer was in flight
        live = src.cache.get(entry.ino, touch=False)
        if live is not None and not live.pinned:
            src.cache.remove(live.ino)

    # The commit point: authority flips.
    strategy.delegate(subtree_ino, dst_id)

    src.stats.migrations_out += 1
    dst.stats.migrations_in += 1
    src.stats.entries_migrated += moved
    return moved
