"""Simulation parameters.

One dataclass gathers every timing constant and cluster knob so experiment
configs are explicit and self-documenting.  Defaults are chosen so that a
cache-hot MDS peaks at a few thousand ops/s — the scale of the paper's
Figures 2 and 5 — with disk transactions three to four decimal orders
slower than CPU handling, as the paper assumes ("orders of magnitude
slower", §4.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional


@dataclass(frozen=True)
class SimParams:
    """All tunables for an MDS-cluster simulation."""

    # -- service times (seconds) ------------------------------------------
    cpu_op_s: float = 0.0003         # CPU to process one metadata op
    cpu_forward_s: float = 0.00005   # CPU to receive-and-forward a request
    #: per-node CPU speed multipliers for heterogeneous clusters (§4.3:
    #: "different nodes may be bound by different resource constraints");
    #: None = homogeneous.  Length must cover the cluster when set.
    node_speed_factors: "Optional[tuple]" = None
    net_hop_s: float = 0.0002        # one network traversal
    disk_read_s: float = 0.008       # one OSD read transaction (2004-era avg)
    disk_write_s: float = 0.006      # one OSD write transaction
    journal_write_s: float = 0.0005  # sequential append (NVRAM-maskable)

    # -- per-node resources --------------------------------------------------
    cache_capacity: int = 2000       # inode slots per MDS
    journal_capacity: int = 2000     # journal entries per MDS
    writeback_flush_s: float = 0.25  # tier-2 writeback batching window
    workers_per_node: int = 4        # concurrent request handlers per MDS
    osds_per_mds: int = 2            # shared OSD pool scales with cluster
    #: admission control: bound on requests outstanding at one node
    #: (in flight to it + queued + in service).  Arrivals beyond the bound
    #: are shed at dispatch with an overload error reply (the client sees
    #: an explicit drop, not unbounded queueing).  None = unbounded inbox,
    #: the pre-admission-control behaviour, event-for-event.
    inbox_capacity: Optional[int] = None

    # -- prefetch placement (§4.5) --------------------------------------------
    # True inserts prefetched siblings at the cold end of the LRU (the
    # paper's most conservative reading of "near the tail"); False treats
    # them as normal insertions.  Under heavy cache pressure cold-end
    # insertion evicts prefetched entries before first use, forfeiting the
    # directory-grain amortization — see the prefetch ablation bench.
    prefetch_cold_insert: bool = False

    # -- traffic control (§4.4) ----------------------------------------------
    traffic_control: bool = True
    popularity_halflife_s: float = 1.0   # decay of access counters
    replicate_threshold: float = 300.0   # decayed counter value to replicate
    unreplicate_threshold: float = 30.0  # fall below -> consolidate

    # -- load balancing (§4.3) -------------------------------------------------
    balance_interval_s: float = 2.0      # heartbeat / rebalance period
    balance_threshold: float = 0.25      # trigger if load > (1+θ)·mean
    balance_miss_weight: float = 2.0     # weight of miss rate in load metric
    balance_queue_weight: float = 25.0   # weight of request backlog; a
                                         # saturated node completes *less*,
                                         # so demand must count too
    migration_fixed_s: float = 0.010     # double-commit handshake cost
    migration_per_entry_s: float = 0.00002  # per cached entry transferred
    max_migrations_per_round: int = 4

    # -- Lazy Hybrid background propagation (§3.1.3) ---------------------------
    # Updates owed by dir-chmod/rename are normally applied on next access;
    # a positive rate also drains them in the background ("one network trip
    # per affected file").  If updates are created faster than this rate
    # the backlog diverges — the paper's stated precondition.
    lh_drain_rate_per_s: float = 0.0

    # -- dirfrag (§4.3) --------------------------------------------------------
    dirfrag_enabled: bool = False
    dirfrag_size_threshold: int = 10_000     # entries before hashing a dir
    dirfrag_unfrag_size: int = 2_000         # shrink below -> consolidate

    # -- sharded execution (repro.shard) ---------------------------------------
    # Partition-affine resource layout: inode numbers are allocated from
    # per-subtree arenas (stable under any shard count) and each inode's
    # OSD object is placed on a device owned by its authority node, so a
    # cluster split into logical processes touches no cross-shard disk
    # state.  The serial reference uses the *same* layout when this is on —
    # sharded and serial runs stay bit-identical.
    shard_affinity: bool = False

    # -- measurement --------------------------------------------------------
    stats_bucket_s: float = 0.1   # width of per-node rate buckets; timeline
                                  # sampling intervals must be multiples

    # -- safety limits -----------------------------------------------------
    max_forward_hops: int = 8

    def validate(self) -> "SimParams":
        """Sanity-check the parameter set; returns self for chaining.

        Catches the configuration mistakes that would otherwise surface as
        baffling simulation behaviour (negative latencies, zero-capacity
        resources, inverted traffic-control thresholds).
        """
        non_negative = ("cpu_op_s", "cpu_forward_s", "net_hop_s",
                        "disk_read_s", "disk_write_s", "journal_write_s",
                        "migration_fixed_s", "migration_per_entry_s",
                        "lh_drain_rate_per_s")
        for field_name in non_negative:
            if getattr(self, field_name) < 0:
                raise ValueError(f"{field_name} must be non-negative")
        positive = ("cache_capacity", "journal_capacity",
                    "workers_per_node", "osds_per_mds",
                    "popularity_halflife_s", "balance_interval_s",
                    "stats_bucket_s", "writeback_flush_s")
        for field_name in positive:
            if getattr(self, field_name) <= 0:
                raise ValueError(f"{field_name} must be positive")
        if self.unreplicate_threshold > self.replicate_threshold:
            raise ValueError(
                "unreplicate_threshold must not exceed replicate_threshold "
                "(items would oscillate between hot and cold)")
        if self.dirfrag_unfrag_size >= self.dirfrag_size_threshold:
            raise ValueError(
                "dirfrag_unfrag_size must be below dirfrag_size_threshold")
        if self.max_forward_hops < 1:
            raise ValueError("max_forward_hops must be >= 1")
        if self.inbox_capacity is not None and self.inbox_capacity < 1:
            raise ValueError("inbox_capacity must be >= 1 when set")
        if self.node_speed_factors is not None:
            for i in range(len(self.node_speed_factors)):
                self.speed_of(i)  # raises on non-positive entries
        return self

    def speed_of(self, node_id: int) -> float:
        """CPU speed multiplier of one node (1.0 when homogeneous)."""
        if self.node_speed_factors is None:
            return 1.0
        if node_id >= len(self.node_speed_factors):
            raise IndexError(
                f"node_speed_factors has no entry for node {node_id}")
        factor = self.node_speed_factors[node_id]
        if factor <= 0:
            raise ValueError(f"speed factor must be positive, got {factor}")
        return factor

    def scaled_cache(self, fraction: float, total_metadata: int) -> "SimParams":
        """Copy with cache sized as a fraction of the namespace (Fig. 4)."""
        capacity = max(8, int(fraction * total_metadata))
        return replace(self, cache_capacity=capacity,
                       journal_capacity=capacity)


DEFAULT_PARAMS = SimParams()
