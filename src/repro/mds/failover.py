"""MDS failure, takeover, and journal-warmed recovery (§2.1.2, §4.6).

The architecture "can be augmented with a failover mechanism such that a
failed node's workload is redistributed among other servers or assumed by
a standby", and because the per-MDS journals live on the *shared* OSD pool,
"shared access facilitates takeover in the case of a node failure": the
bounded log approximates the failed node's working set, so a successor can
preload its cache with the logged inodes instead of faulting them in one
miss at a time.

Implemented here:

* :func:`fail_node` — mark a node dead, redistribute its subtree
  delegations over the survivors (or a designated standby), drop its
  volatile state; requests already addressed to it are bounced to live
  nodes (modelling client retry).
* :func:`warm_from_journal` — stream another node's surviving journal and
  preload a cache with the logged working set (one cheap sequential log
  read per entry batch instead of a random read per inode).
* :func:`recover_node` — bring a node back, optionally warming its cache
  from its own journal; the load balancer re-populates it over time.
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional, TYPE_CHECKING

from ..namespace import ROOT_INO
from ..partition import DynamicSubtreePartition
from ..sim import Event

if TYPE_CHECKING:  # pragma: no cover
    from .cluster import MdsCluster
    from .node import MdsNode

#: journal entries preloaded per sequential log-read transaction
WARM_BATCH = 64


def fail_node(cluster: "MdsCluster", node_id: int,
              standby: Optional[int] = None) -> List[int]:
    """Kill ``node_id``; returns the subtree roots that were reassigned.

    With ``standby`` given, the whole workload is assumed by that node;
    otherwise delegations are spread round-robin over the survivors.
    Volatile state (cache, popularity, replica registry) is lost; the
    journal survives on shared storage.
    """
    strategy = cluster.strategy
    if not isinstance(strategy, DynamicSubtreePartition):
        raise TypeError("failover requires a dynamic subtree partition")
    node = cluster.nodes[node_id]
    if node.failed:
        raise RuntimeError(f"node {node_id} is already failed")
    survivors = [n.node_id for n in cluster.nodes
                 if not n.failed and n.node_id != node_id]
    if not survivors:
        raise RuntimeError("cannot fail the last live node")
    if standby is not None and standby not in survivors:
        raise ValueError(f"standby {standby} is not a live peer")

    node.failed = True

    # reassign authority for everything the dead node owned
    reassigned: List[int] = []
    owned = sorted(strategy.subtrees_of(node_id))
    for i, subtree_ino in enumerate(owned):
        target = standby if standby is not None \
            else survivors[i % len(survivors)]
        if subtree_ino == ROOT_INO:
            # direct table write (delegate() would coalesce away nested
            # delegations) — must drop memoised authorities by hand
            strategy.delegations[ROOT_INO] = target
            strategy._authority_changed()
        else:
            strategy.delegate(subtree_ino, target)
        reassigned.append(subtree_ino)

    # volatile state is gone
    _drop_volatile_state(node)

    # requests sitting in the dead inbox bounce to live nodes (retry)
    while len(node.inbox):
        pending = node.inbox._items.popleft()
        pending.hops += 1
        if cluster._admission is not None:
            node.inflight -= 1  # leaving the dead node's books
        cluster.deliver_later(cluster.pick_live_node(), pending)
    return reassigned


def _drop_volatile_state(node: "MdsNode") -> None:
    # unpin the root so the cache can drain completely, then rebuild empty
    from ..model.backend import make_metadata_cache, make_popularity_map

    node.cache = make_metadata_cache(node.params.cache_capacity)
    node.replicas.drop_all()
    node.popularity = make_popularity_map(node.params.popularity_halflife_s)
    # open handles die with the node; orphans it retained are reclaimed
    # (the crash-recovery cleanup a real MDS would run from its journal)
    ns = node.cluster.ns
    for ino in list(node.cluster.orphan_authorities):
        if node.cluster.orphan_authorities[ino] == node.node_id:
            if ns.is_orphan(ino):
                ns.release_orphan(ino)
            del node.cluster.orphan_authorities[ino]
    node._open_refs.clear()
    node._open_pinned.clear()


def warm_from_journal(cluster: "MdsCluster", source_node_id: int,
                      target_node_id: int) -> Generator[Event, Any, int]:
    """Preload ``target``'s cache from ``source``'s surviving journal.

    A sub-process: charges one sequential journal-read transaction per
    :data:`WARM_BATCH` entries, then inserts each still-live inode (with
    its ancestors) into the target cache.  Returns inodes preloaded.
    """
    source = cluster.nodes[source_node_id]
    target = cluster.nodes[target_node_id]
    ns = cluster.ns
    inos = source.journal.warm_inos()
    loaded = 0
    for start in range(0, len(inos), WARM_BATCH):
        batch = inos[start:start + WARM_BATCH]
        yield from source.journal.device.read(1)  # one sequential log read
        for ino in batch:
            if ino not in ns:
                continue  # deleted since it was logged
            inode = ns.inode(ino)
            is_auth = cluster.strategy.authority_of_ino(ino) \
                == target_node_id
            for ancestor in ns.ancestors(ino):
                anc_auth = cluster.strategy.authority_of_ino(ancestor.ino) \
                    == target_node_id
                target._insert(ancestor, replica=not anc_auth)
            target._insert(inode, replica=not is_auth)
            loaded += 1
    return loaded


def recover_node(cluster: "MdsCluster", node_id: int,
                 warm: bool = True) -> Generator[Event, Any, int]:
    """Bring a failed node back online.

    The node rejoins with an empty (or journal-warmed) cache and no
    delegations; the load balancer migrates work back to it over time.
    Returns the number of inodes preloaded.
    """
    node = cluster.nodes[node_id]
    if not node.failed:
        raise RuntimeError(f"node {node_id} is not failed")
    node.failed = False
    node._bootstrap_root()
    loaded = 0
    if warm:
        loaded = yield from warm_from_journal(cluster, node_id, node_id)
    return loaded
