"""Request/reply types exchanged between clients and the MDS cluster."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from types import MappingProxyType
from typing import TYPE_CHECKING, Mapping, Optional, Union

from ..namespace.path import Path
from ..sim import Event

if TYPE_CHECKING:  # pragma: no cover
    from ..obs import Trace

#: Location marker in distribution info: item is replicated on every node,
#: contact any of them (§4.4).
ANY_NODE = -1

#: Error string on replies shed by admission control (bounded inboxes).
#: Clients distinguish a deliberate drop from an FS error by this marker.
OVERLOAD_ERROR = "overloaded: inbox full"

#: Shared immutable empty distribution info.  Most replies carry no location
#: hints (the client already knew where to go), so allocating a fresh dict
#: per reply via ``default_factory`` was pure churn; every such reply now
#: shares this one read-only mapping.
EMPTY_LOCATIONS: Mapping[Path, int] = MappingProxyType({})


def _empty_locations() -> Mapping[Path, int]:
    # dataclasses treat a mappingproxy default as mutable (it is unhashable),
    # so the shared singleton is handed out through a factory instead.
    return EMPTY_LOCATIONS


class OpType(enum.Enum):
    """Metadata operations the cluster serves (§2.2)."""

    OPEN = "open"
    CLOSE = "close"
    STAT = "stat"
    READDIR = "readdir"
    CREATE = "create"
    MKDIR = "mkdir"
    UNLINK = "unlink"
    RENAME = "rename"
    CHMOD = "chmod"
    SETATTR = "setattr"
    LINK = "link"


#: Operations that only read metadata — a replica may serve these without
#: consulting the authority.
READ_ONLY_OPS = frozenset({OpType.OPEN, OpType.CLOSE, OpType.STAT,
                           OpType.READDIR})

#: Operations that mutate metadata and must be serialized at the authority.
MUTATING_OPS = frozenset(OpType) - READ_ONLY_OPS


@dataclass(slots=True)
class MdsRequest:
    """One client request travelling through the cluster."""

    op: OpType
    path: Path
    client_id: int
    uid: int = 0
    dst_path: Optional[Path] = None   # for RENAME / LINK
    mode: Optional[int] = None        # for CHMOD / CREATE
    size: Optional[int] = None        # for SETATTR / CREATE
    #: inode handle for CLOSE: lets a client release a file whose name was
    #: unlinked while it was open (§4.5)
    ino: Optional[int] = None
    done: Optional[Event] = None      # completion event (set by the cluster)
    submitted_at: float = 0.0
    hops: int = 0                     # intra-cluster forwards so far
    #: when the request landed in its current node's inbox (set by the
    #: cluster on every delivery; feeds the queue-delay histograms)
    enqueued_at: float = 0.0
    #: span trace riding this request, when the tracer sampled it
    trace: "Optional[Trace]" = None
    #: client-known fact that ``path`` names a directory (a readdir target,
    #: the client's own cwd).  Directory-hash routing needs it: directories
    #: hash on their own path, files on their parent's.
    dir_hint: bool = False
    #: sharded execution (repro.shard): the shard the client lives on and
    #: its key into that shard's pending-completion table.  ``None`` on a
    #: request that has never crossed a shard boundary — i.e. always, in
    #: serial runs.
    origin_shard: Optional[int] = None
    origin_key: Optional[int] = None

    @property
    def is_mutation(self) -> bool:
        return self.op in MUTATING_OPS


@dataclass(slots=True)
class MdsReply:
    """What the serving MDS returns to the client."""

    ok: bool
    served_by: int
    op: OpType
    path: Path
    error: Optional[str] = None
    #: the inode number the op touched; an OPEN reply's value is the handle
    #: the client passes back on CLOSE (and the input to client-side data
    #: placement, §2.1.1)
    target_ino: Optional[int] = None
    #: distribution info (§4.4): path prefix -> MDS id or ANY_NODE.  Clients
    #: cache this to direct future requests.  Read-only by convention; the
    #: shared :data:`EMPTY_LOCATIONS` stands in when there are no hints.
    locations: Mapping[Path, int] = field(default_factory=_empty_locations)
    forwarded: int = 0                # hops this request took
    latency_s: float = 0.0
