"""Heartbeat-driven load balancing for the dynamic subtree partition (§4.3).

Every ``balance_interval_s`` the nodes exchange load levels — modelled as a
single weighted metric combining per-interval throughput and cache misses,
exactly the "primitive" metric the paper's prototype uses (§5.1) — and the
busiest node sheds popular subtrees to the least busy one.  Preference order
follows §4.3: re-delegate entire imported trees first, then split off child
subtrees of locally-rooted delegations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, Generator, List, Optional, \
    Set, Tuple

from ..metrics import LatencyHistogram
from ..namespace import ROOT_INO
from ..partition import DynamicSubtreePartition
from ..sim import Event
from .migration import migrate_subtree

if TYPE_CHECKING:  # pragma: no cover
    from .cluster import MdsCluster


@dataclass(frozen=True)
class NodeLoad:
    """One node's entry in a heartbeat load snapshot.

    Beyond the scalar decision metric (kept identical to the paper's §5.1
    weighted combination so balancing behaviour is unchanged), the snapshot
    exposes *where* the pressure sits: inbox queue-delay percentiles over
    the last interval, not just the instantaneous backlog count.
    """

    node_id: int
    load: float                 # the decision metric (normalized)
    served_per_s: float
    misses_per_s: float
    backlog: int
    queue_delay_p50_s: float
    queue_delay_p95_s: float
    queue_delay_p99_s: float
    queue_delay_samples: int


class LoadBalancer:
    """Periodic rebalancing of the subtree delegation table.

    ``policy`` shapes the distribution (§4.3): node capacities normalize
    the load metric for heterogeneous clusters, and subtree weights bias
    shedding toward prioritized portions of the hierarchy.
    """

    def __init__(self, cluster: "MdsCluster", policy=None) -> None:
        if not isinstance(cluster.strategy, DynamicSubtreePartition):
            raise TypeError("LoadBalancer requires DynamicSubtreePartition")
        from .policy import BalancePolicy

        self.cluster = cluster
        self.params = cluster.params
        self.policy = policy if policy is not None else BalancePolicy()
        #: node -> subtree roots delegated *to* it by balancing (imported)
        self.imported: Dict[int, Set[int]] = {}
        #: subtree -> last time it was moved (damps ping-pong)
        self._last_moved: Dict[int, float] = {}
        self.rounds = 0
        self.migrations = 0
        #: the most recent heartbeat's per-node load snapshot
        self.last_snapshot: List[NodeLoad] = []
        #: queue-delay histogram baselines for interval percentiles
        self._qdelay_baseline: Dict[int, Optional[LatencyHistogram]] = {}

    # -- the heartbeat process ------------------------------------------------
    def run(self) -> Generator[Event, Any, None]:
        while True:
            yield self.cluster.env.timeout(self.params.balance_interval_s)
            yield from self.rebalance_round()

    def rebalance_round(self) -> Generator[Event, Any, None]:
        """One heartbeat: measure, decide, migrate."""
        self.rounds += 1
        loads = self.measure_loads()
        n = len(loads)
        mean = sum(loads) / n
        if mean <= 0:
            return
        busy = max(range(n), key=lambda i: loads[i])
        if loads[busy] <= mean * (1.0 + self.params.balance_threshold):
            return
        # shed to the least-loaded *live* nodes, one subtree each, so a hot
        # spot spreads over the cluster instead of relocating wholesale
        recipients = sorted((i for i in range(n)
                             if i != busy and loads[i] < mean
                             and not self.cluster.nodes[i].failed),
                            key=lambda i: loads[i])
        if not recipients:
            return
        excess_fraction = (loads[busy] - mean) / loads[busy]
        picks = self.select_subtrees(busy, excess_fraction)
        for k, subtree_ino in enumerate(picks):
            idle = recipients[k % len(recipients)]
            try:
                yield from migrate_subtree(self.cluster, subtree_ino, busy,
                                           idle)
            except (TypeError, ValueError):
                continue
            self.imported.setdefault(idle, set()).add(subtree_ino)
            self.imported.get(busy, set()).discard(subtree_ino)
            self._last_moved[subtree_ino] = self.cluster.env.now
            self.migrations += 1

    # -- measurement ------------------------------------------------------------
    def measure_loads(self) -> List[float]:
        """Per-node load over the last interval.

        Weighted combination of throughput and cache misses (§5.1), plus
        the current request backlog: a node drowning in queued requests
        completes *fewer* ops, so completions alone would make the most
        overloaded node look idle.

        Each call also refreshes :attr:`last_snapshot` with a
        :class:`NodeLoad` per node, including interval queue-delay
        percentiles; the *decision* metric deliberately stays the paper's
        primitive combination so snapshot consumers never perturb
        balancing behaviour.
        """
        interval = self.params.balance_interval_s
        loads = []
        snapshot: List[NodeLoad] = []
        for node in self.cluster.nodes:
            delta = node.stats.deltas.snapshot()
            served = delta.get("served", 0.0) / interval
            misses = delta.get("misses", 0.0) / interval
            backlog = len(node.inbox)
            raw = (served
                   + self.params.balance_miss_weight * misses
                   + self.params.balance_queue_weight * backlog)
            # heterogeneous clusters balance *utilization* (§4.3)
            load = raw / self.policy.node_capacity(node.node_id)
            loads.append(load)
            qdelta = node.stats.queue_delay.subtract(
                self._qdelay_baseline.get(node.node_id))
            self._qdelay_baseline[node.node_id] = \
                node.stats.queue_delay.copy()
            snapshot.append(NodeLoad(
                node_id=node.node_id, load=load, served_per_s=served,
                misses_per_s=misses, backlog=backlog,
                queue_delay_p50_s=qdelta.quantile(0.50),
                queue_delay_p95_s=qdelta.quantile(0.95),
                queue_delay_p99_s=qdelta.quantile(0.99),
                queue_delay_samples=qdelta.count))
        self.last_snapshot = snapshot
        return loads

    # -- subtree selection ---------------------------------------------------------
    def select_subtrees(self, busy: int, excess_fraction: float) -> List[int]:
        """Greedily pick subtrees whose popularity covers the excess load."""
        strategy: DynamicSubtreePartition = self.cluster.strategy  # type: ignore[assignment]
        ns = self.cluster.ns
        node = self.cluster.nodes[busy]
        now = self.cluster.env.now

        owned = [ino for ino in strategy.subtrees_of(busy) if ino != ROOT_INO]

        def effective_pop(ino: int) -> float:
            """Policy-weighted popularity of ``ino``'s own coverage.

            Ancestor counters include traffic to nested delegations, which
            would double-count a hot child against its covering root (and
            make the balancer move the hollow root), so nested delegated
            subtrees are subtracted out.  The policy's subtree weight then
            biases shedding toward prioritized hierarchy portions (§4.3).
            """
            value = node.popularity.read(ino, now)
            for other in strategy.delegations:
                if other != ino and other in ns \
                        and ns.is_ancestor_ino(ino, other):
                    value -= node.popularity.read(other, now)
            return max(0.0, value) * self.policy.subtree_weight(ns, ino)

        total_popularity = sum(effective_pop(ino) for ino in owned)
        if total_popularity <= 0:
            return []
        needed = excess_fraction * total_popularity

        imported_here = self.imported.get(busy, set())
        cooldown = 2.5 * self.params.balance_interval_s
        candidates: List[Tuple[float, int, int]] = []  # (pop, tier, ino)
        for ino in owned:
            if ino not in ns:
                continue
            if now - self._last_moved.get(ino, -1e18) < cooldown:
                continue  # recently moved: let the new placement settle
            pop = effective_pop(ino)
            if pop <= 0:
                continue
            tier = 0 if ino in imported_here else 1
            candidates.append((pop, tier, ino))
            # splitting: child directories of an owned root are candidates too
            for child_ino in ns.inode(ino).children.values():  # type: ignore[union-attr]
                child = ns.inode(child_ino)
                if not child.is_dir:
                    continue
                if strategy.authority_of_ino(child_ino) != busy:
                    continue
                child_pop = effective_pop(child_ino)
                if child_pop > 0:
                    candidates.append((child_pop, 2, child_ino))

        # prefer whole imported trees, then whole local trees, then splits;
        # within a tier, most popular first.  A candidate bigger than the
        # remaining excess would merely relocate the hot spot (we watched
        # the dominant subtree ping-pong between nodes without this guard),
        # so oversize trees are skipped and their children — present as
        # split candidates — are taken instead.
        candidates.sort(key=lambda c: (c[1], -c[0]))
        picks: List[int] = []
        moved = 0.0
        chosen: Set[int] = set()
        for pop, _tier, ino in candidates:
            if len(picks) >= self.params.max_migrations_per_round:
                break
            if moved >= needed:
                break
            if pop > 1.2 * (needed - moved) and len(candidates) > 1:
                continue  # too coarse: fall through to finer candidates
            if any(other == ino or ns.is_ancestor_ino(other, ino)
                   or ns.is_ancestor_ino(ino, other) for other in chosen):
                continue  # avoid nested double-moves in one round
            picks.append(ino)
            chosen.add(ino)
            moved += pop
        if not picks and candidates:
            # a monolithic hot spot: every candidate exceeded the cap, so
            # shed the finest-grained (deepest), hottest piece we have
            candidates.sort(key=lambda c: (-c[1], -c[0]))
            picks = [candidates[0][2]]
        return picks
