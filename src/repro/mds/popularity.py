"""Exponentially decaying access counters (§4.4).

The paper's traffic control monitors metadata popularity with "a simple
access counter whose value decays over time".  :class:`DecayCounter`
implements that with lazy decay: the stored value is only brought up to
date when touched, so maintaining counters for every directory an MDS
serves is O(1) per access.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict


@dataclass
class DecayCounter:
    """A counter whose value halves every ``halflife_s`` seconds."""

    halflife_s: float
    value: float = 0.0
    last_t: float = 0.0

    def _decay_to(self, now: float) -> None:
        if now > self.last_t and self.value > 0.0:
            self.value *= math.exp(-math.log(2.0) *
                                   (now - self.last_t) / self.halflife_s)
        self.last_t = max(self.last_t, now)

    def add(self, now: float, amount: float = 1.0) -> float:
        """Record ``amount`` accesses at time ``now``; returns the new value."""
        self._decay_to(now)
        self.value += amount
        return self.value

    def read(self, now: float) -> float:
        """Current (decayed) value without recording an access."""
        self._decay_to(now)
        return self.value


class PopularityMap:
    """Per-inode decay counters with shared half-life."""

    def __init__(self, halflife_s: float) -> None:
        if halflife_s <= 0:
            raise ValueError("halflife must be positive")
        self.halflife_s = halflife_s
        self._counters: Dict[int, DecayCounter] = {}

    def add(self, ino: int, now: float, amount: float = 1.0) -> float:
        counter = self._counters.get(ino)
        if counter is None:
            counter = DecayCounter(self.halflife_s, last_t=now)
            self._counters[ino] = counter
        return counter.add(now, amount)

    def read(self, ino: int, now: float) -> float:
        counter = self._counters.get(ino)
        return counter.read(now) if counter is not None else 0.0

    def prune(self, now: float, floor: float = 0.01) -> int:
        """Drop counters that decayed below ``floor``; returns count removed."""
        dead = [ino for ino, c in self._counters.items()
                if c.read(now) < floor]
        for ino in dead:
            del self._counters[ino]
        return len(dead)

    def __len__(self) -> int:
        return len(self._counters)
