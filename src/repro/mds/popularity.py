"""Exponentially decaying access counters (§4.4).

The paper's traffic control monitors metadata popularity with "a simple
access counter whose value decays over time".  :class:`DecayCounter`
implements that with lazy decay: the stored value is only brought up to
date when touched, so maintaining counters for every directory an MDS
serves is O(1) per access.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable

# Hoisted so the hot path does not recompute log(2); the product below keeps
# the exact expression shape `-log(2) * dt / halflife` — do NOT fold this
# into a per-counter rate constant, the different rounding would flip
# replicate-threshold crossings and break bit-identical reproducibility.
_LN2 = math.log(2.0)
_exp = math.exp


@dataclass(slots=True)
class DecayCounter:
    """A counter whose value halves every ``halflife_s`` seconds."""

    halflife_s: float
    value: float = 0.0
    last_t: float = 0.0

    def _decay_to(self, now: float) -> None:
        if now > self.last_t and self.value > 0.0:
            self.value *= _exp(-_LN2 *
                               (now - self.last_t) / self.halflife_s)
        self.last_t = max(self.last_t, now)

    def add(self, now: float, amount: float = 1.0) -> float:
        """Record ``amount`` accesses at time ``now``; returns the new value."""
        self._decay_to(now)
        self.value += amount
        return self.value

    def read(self, now: float) -> float:
        """Current (decayed) value without recording an access."""
        self._decay_to(now)
        return self.value


class PopularityMap:
    """Per-inode decay counters with shared half-life."""

    def __init__(self, halflife_s: float) -> None:
        if halflife_s <= 0:
            raise ValueError("halflife must be positive")
        self.halflife_s = halflife_s
        self._counters: Dict[int, DecayCounter] = {}

    def add(self, ino: int, now: float, amount: float = 1.0) -> float:
        counter = self._counters.get(ino)
        if counter is None:
            counter = DecayCounter(self.halflife_s, last_t=now)
            self._counters[ino] = counter
        return counter.add(now, amount)

    def add_chain(self, inos: Iterable[int], now: float) -> None:
        """Record one access on every counter in ``inos`` at time ``now``.

        Batch form of :meth:`add` for the per-request ancestor-chain
        accounting: decay is applied inline, one pass, no per-call method
        dispatch.  Float semantics are identical to calling :meth:`add` per
        ino (same expression order as ``DecayCounter._decay_to``).
        """
        counters = self._counters
        halflife = self.halflife_s
        for ino in inos:
            counter = counters.get(ino)
            if counter is None:
                # fresh counter at `now`: no decay, first access counts 1
                counters[ino] = DecayCounter(halflife, value=1.0, last_t=now)
                continue
            last_t = counter.last_t
            if now > last_t:
                if counter.value > 0.0:
                    counter.value *= _exp(-_LN2 *
                                          (now - last_t) / halflife)
                counter.last_t = now
            counter.value += 1.0

    def read(self, ino: int, now: float) -> float:
        counter = self._counters.get(ino)
        return counter.read(now) if counter is not None else 0.0

    def prune(self, now: float, floor: float = 0.01) -> int:
        """Drop counters that decayed below ``floor``; returns count removed."""
        dead = [ino for ino, c in self._counters.items()
                if c.read(now) < floor]
        for ino in dead:
            del self._counters[ino]
        return len(dead)

    def __len__(self) -> int:
        return len(self._counters)
