"""Workload distribution policies for the load balancer (§4.3).

The paper's point about dynamic partitioning's flexibility: "a dynamic
distribution algorithm can be predicated on any hierarchical performance
metric, and need not be based on vanilla balancing.  Policies can be
formulated that prioritize active portions of the file system at the
expense of archival data" — none of which a hashed distribution can
express, because hashing ignores file-system structure.

A :class:`BalancePolicy` shapes two decisions:

* ``node_capacity`` — normalizes measured load, so heterogeneous nodes
  (see ``SimParams.node_speed_factors``) are balanced by *utilization*
  rather than raw ops/s;
* ``subtree_weight`` — scales a candidate subtree's popularity during
  selection, so prioritized portions of the hierarchy are shed from busy
  nodes first (they end up with more headroom) while archival portions
  tolerate crowding.
"""

from __future__ import annotations

from typing import Iterable, Sequence, TYPE_CHECKING

from ..namespace import Namespace
from ..namespace.path import Path

if TYPE_CHECKING:  # pragma: no cover
    from .cluster import MdsCluster


class BalancePolicy:
    """Vanilla balancing: equal nodes, equal metadata."""

    def node_capacity(self, node_id: int) -> float:
        return 1.0

    def subtree_weight(self, ns: Namespace, ino: int) -> float:
        return 1.0

    def describe(self) -> str:
        return type(self).__name__


class WeightedNodesPolicy(BalancePolicy):
    """Heterogeneous cluster: balance utilization, not raw throughput."""

    def __init__(self, capacities: Sequence[float]) -> None:
        if not capacities or any(c <= 0 for c in capacities):
            raise ValueError("capacities must be positive")
        self.capacities = tuple(capacities)

    def node_capacity(self, node_id: int) -> float:
        if node_id >= len(self.capacities):
            raise IndexError(f"no capacity for node {node_id}")
        return self.capacities[node_id]

    @classmethod
    def from_params(cls, params, n_mds: int) -> "WeightedNodesPolicy":
        """Capacities matching ``SimParams.node_speed_factors``."""
        factors = params.node_speed_factors or (1.0,) * n_mds
        return cls(factors[:n_mds])


class PriorityPathsPolicy(BalancePolicy):
    """Prioritize active portions of the hierarchy over archival ones.

    Subtrees at or under a prioritized path weigh ``boost``× their
    popularity in shed decisions — the balancer moves them off busy nodes
    first, giving their clients the most headroom, while de-prioritized
    (``demote``×) archival subtrees are the last to be relieved.
    """

    def __init__(self, ns: Namespace, prioritized: Iterable[Path],
                 boost: float = 4.0, demoted: Iterable[Path] = (),
                 demote: float = 0.25) -> None:
        if boost <= 0 or demote <= 0:
            raise ValueError("weights must be positive")
        self.boost = boost
        self.demote = demote
        self._prioritized = self._resolve(ns, prioritized)
        self._demoted = self._resolve(ns, demoted)

    @staticmethod
    def _resolve(ns: Namespace, paths: Iterable[Path]) -> "set[int]":
        inos = set()
        for path in paths:
            node = ns.try_resolve(path)
            if node is None or not node.is_dir:
                raise ValueError(f"priority path {path!r} is not a directory")
            inos.add(node.ino)
        return inos

    def subtree_weight(self, ns: Namespace, ino: int) -> float:
        if self._covered(ns, ino, self._prioritized):
            return self.boost
        if self._covered(ns, ino, self._demoted):
            return self.demote
        return 1.0

    @staticmethod
    def _covered(ns: Namespace, ino: int, anchors: "set[int]") -> bool:
        if not anchors or ino not in ns:
            return False
        if ino in anchors:
            return True
        return any(ns.is_ancestor_ino(anchor, ino) for anchor in anchors)
