"""The MDS cluster: nodes, shared storage, network, background services.

The cluster owns what is global: the ground-truth namespace, the partition
strategy, the shared OSD pool, the set of traffic-control-replicated "hot"
inodes, and the background processes (load balancer, hot-set sweeper,
optional dirfrag manager).  Clients interact only through
:meth:`submit` — everything else is intra-cluster.
"""

from __future__ import annotations

import random
from typing import Any, Dict, Generator, List, Optional, Set

from .._fastpath import fastpath_enabled
from ..namespace import Namespace
from ..namespace.errors import FileNotFound
from ..obs import Tracer
from ..partition import DynamicSubtreePartition, Strategy
from ..sim import Environment, Event
from ..storage import ObjectStore
from .config import SimParams
from .dirfrag import DirFragManager
from .distmemo import DistributionMemo
from .loadbalance import LoadBalancer
from .messages import OVERLOAD_ERROR, MdsReply, MdsRequest
from .node import MdsNode
from .stats import NodeStats, aggregate_forward_fraction, aggregate_hit_rate


class MdsCluster:
    """A cluster of metadata servers over a shared object store."""

    def __init__(self, env: Environment, ns: Namespace, strategy: Strategy,
                 params: SimParams = SimParams(), *,
                 n_mds: Optional[int] = None,
                 tracer: Optional[Tracer] = None) -> None:
        self.env = env
        self.ns = ns
        self.strategy = strategy
        self.params = params
        #: request-level observability (spans + latency histograms); a
        #: ``None`` tracer disables both without any hot-path cost
        self.tracer = tracer
        self.n_mds = n_mds if n_mds is not None else strategy.n_mds
        if self.n_mds != strategy.n_mds:
            raise ValueError(
                f"cluster size {self.n_mds} != strategy n_mds {strategy.n_mds}")
        params.validate()
        if strategy.ns is not ns:
            strategy.bind(ns)
        if fastpath_enabled():
            # request-path fast lane: memoise resolutions/ancestor chains
            # (invalidated precisely by the namespace on structural change)
            ns.enable_resolution_memo()

        placement = None
        if params.shard_affinity:
            # Partition-affine layout (used identically by serial and
            # sharded runs): arena ino numbering plus authority-owned OSD
            # placement, so no shard ever touches another shard's devices.
            ns.enable_arena_ino_allocation()
            placement = self._affine_placement
        self.object_store = ObjectStore(
            env, n_osds=max(1, params.osds_per_mds * self.n_mds),
            read_s=params.disk_read_s, write_s=params.disk_write_s,
            placement=placement)
        #: inos replicated on every node by traffic control (§4.4)
        self.hot_inos: Set[int] = set()
        #: path -> distribution-info mapping, shared by all nodes (the info
        #: depends only on global state: namespace structure, partition
        #: state, hot set).  Invalidated precisely: the namespace reports
        #: structural mutations per ino, hot-set toggles invalidate the
        #: toggled ino, and partition-state changes (``_auth_gen``) clear
        #: it wholesale.  ``None`` when the fast lane is off (reference
        #: mode computes per reply).
        self._dist_memo: Optional[DistributionMemo] = (
            DistributionMemo() if env.fastlane else None)
        if self._dist_memo is not None:
            ns.attach_structure_watcher(self._dist_memo)
        #: the strategy generation the memo was last cleared at
        self._dist_auth_gen = -1
        #: unlinked-while-open inodes -> the node retaining them (§4.5)
        self.orphan_authorities: Dict[int, int] = {}
        self.deferred_work_created = 0
        #: admission control (None = unbounded, the exact legacy path).
        #: The bound is checked at *dispatch* against a per-node
        #: outstanding-request counter rather than at arrival against the
        #: inbox deque: counter updates happen at the same simulated
        #: instants in both fast-lane modes, so drop decisions — and with
        #: them whole-run results — stay bit-identical across modes.
        self._admission: Optional[int] = params.inbox_capacity

        self.nodes: List[MdsNode] = [
            MdsNode(env, i, self, params) for i in range(self.n_mds)]
        #: deterministic retry routing for failover bounces
        self._retry_rng = random.Random(0xC0FFEE)
        #: set before start() to customize the distribution policy (§4.3);
        #: defaults to capacity-weighted balancing for heterogeneous
        #: clusters, vanilla balancing otherwise
        self.balance_policy = None
        self.balancer: Optional[LoadBalancer] = None
        self.dirfrag: Optional[DirFragManager] = None
        self._started = False
        #: cross-shard message seam (attached by repro.shard before
        #: ``start()``); ``None`` keeps every path exactly the serial one
        self._transport = None

    def _affine_placement(self, ino: int) -> int:
        """OSD index for ``ino`` on a device owned by its authority node."""
        try:
            authority = self.strategy.authority_of_ino(ino)
        except FileNotFound:
            # released orphan being written back: any stable map works, as
            # long as serial and sharded runs agree (the writeback happens
            # on the shard that owned the inode in both)
            return ino * 2654435761
        return (authority * self.params.osds_per_mds
                + (ino * 2654435761) % self.params.osds_per_mds)

    def attach_transport(self, transport) -> None:
        """Install the cross-shard transport (before :meth:`start`)."""
        if self._started:
            raise RuntimeError("attach_transport() after start()")
        self._transport = transport

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def traffic_control_active(self) -> bool:
        """Traffic control is a capability of the dynamic partition (§4.4)."""
        return (self.params.traffic_control
                and isinstance(self.strategy, DynamicSubtreePartition))

    def start(self) -> None:
        """Spawn worker and background processes.  Idempotent."""
        if self._started:
            return
        self._started = True
        transport = self._transport
        for node in self.nodes:
            if transport is None or transport.owns(node.node_id):
                node.start_workers()
        if (isinstance(self.strategy, DynamicSubtreePartition)
                and self.strategy.supports_rebalancing):
            policy = self.balance_policy
            if policy is None and self.params.node_speed_factors is not None:
                from .policy import WeightedNodesPolicy
                policy = WeightedNodesPolicy.from_params(self.params,
                                                         self.n_mds)
            self.balancer = LoadBalancer(self, policy)
            self.env.process(self.balancer.run())
        if self.traffic_control_active:
            self.env.process(self._hot_set_sweeper())
        if (self.params.dirfrag_enabled
                and isinstance(self.strategy, DynamicSubtreePartition)):
            self.dirfrag = DirFragManager(self)
            self.env.process(self.dirfrag.run())
        from ..partition import LazyHybridPartition
        if (self.params.lh_drain_rate_per_s > 0
                and isinstance(self.strategy, LazyHybridPartition)):
            self.env.process(self._lazy_update_drainer())

    # ------------------------------------------------------------------
    # client interface
    # ------------------------------------------------------------------
    def submit(self, dest: int, request: MdsRequest) -> Event:
        """Send ``request`` to node ``dest``; returns its completion event."""
        if not (0 <= dest < self.n_mds):
            raise ValueError(f"destination {dest} out of range")
        request.done = self.env.event()
        request.submitted_at = self.env.now
        self.deliver_later(dest, request)
        return request.done

    # ------------------------------------------------------------------
    # intra-cluster messaging
    # ------------------------------------------------------------------
    def pick_live_node(self) -> int:
        """A uniformly random live node (client-retry routing)."""
        live = [n.node_id for n in self.nodes if not n.failed]
        if not live:
            raise RuntimeError("no live MDS nodes")
        return self._retry_rng.choice(live)

    def deliver_later(self, node_id: int, request: MdsRequest) -> None:
        """Enqueue ``request`` at a node after one network hop.

        A request addressed to a failed node is rerouted to a random live
        one, modelling the client's connection-refused retry.
        """
        transport = self._transport
        if transport is not None and not transport.owns(node_id):
            transport.send_request(node_id, request)
            return
        if self.nodes[node_id].failed:
            request.hops += 1
            node_id = self.pick_live_node()
        capacity = self._admission
        if capacity is not None:
            node = self.nodes[node_id]
            if node.inflight >= capacity:
                # inbox full: shed the request with an explicit overload
                # reply instead of queueing without bound
                node.stats.record_drop(self.env.now)
                self._send_reply(request, MdsReply(
                    ok=False, served_by=node_id, op=request.op,
                    path=request.path, error=OVERLOAD_ERROR,
                    forwarded=request.hops,
                    latency_s=self.env.now - request.submitted_at))
                return
            node.inflight += 1
        now = self.env.now
        request.enqueued_at = now + self.params.net_hop_s
        if request.trace is not None:
            request.trace.add("net.hop", now, request.enqueued_at,
                              node=node_id)
        # The request rides the delivering timeout as its value and a
        # prebound Store method enqueues it on arrival — no closure per
        # message.
        timer = self.env.timeout(self.params.net_hop_s, request)
        timer.callbacks.append(self.nodes[node_id].inbox._put_from_event)

    def reply_later(self, request: MdsRequest, reply: MdsReply) -> None:
        """Complete a request's done-event after one network hop."""
        if self._admission is not None:
            # the serving node releases its outstanding-request slot
            self.nodes[reply.served_by].inflight -= 1
        self._send_reply(request, reply)

    def _send_reply(self, request: MdsRequest, reply: MdsReply) -> None:
        """Schedule delivery of ``reply`` (no admission bookkeeping)."""
        transport = self._transport
        if (transport is not None and request.origin_shard is not None
                and request.origin_shard != transport.shard_id):
            transport.send_reply(request, reply)
            return
        done = request.done
        assert done is not None
        if request.trace is not None:
            now = self.env.now
            request.trace.add("net.reply", now,
                              now + self.params.net_hop_s,
                              node=reply.served_by)
        env = self.env
        if env.fastlane:
            # One calendar entry instead of two: the done event itself is
            # scheduled one hop out, already carrying the reply, instead
            # of a timer whose callback re-schedules it at arrival time.
            done._triggered = True
            done._ok = True
            done._value = reply
            env.schedule(done, delay=self.params.net_hop_s)
        else:
            timer = env.timeout(self.params.net_hop_s)
            timer.callbacks.append(lambda _ev: done.succeed(reply))

    def on_deferred_work(self, count: int) -> None:
        """Strategies report lazily-owed updates here (visibility only)."""
        self.deferred_work_created += count

    # ------------------------------------------------------------------
    # background services
    # ------------------------------------------------------------------
    def _hot_set_sweeper(self) -> Generator[Event, Any, None]:
        """Consolidate items whose popularity decayed away (§4.4)."""
        interval = max(0.25, self.params.popularity_halflife_s / 2)
        while True:
            yield self.env.timeout(interval)
            now = self.env.now
            cooled = []
            for ino in self.hot_inos:
                if ino not in self.ns:
                    cooled.append(ino)
                    continue
                authority = self.strategy.authority_of_ino(ino)
                value = self.nodes[authority].popularity.read(ino, now)
                if value < self.params.unreplicate_threshold:
                    cooled.append(ino)
            if cooled:
                memo = self._dist_memo
                for ino in cooled:
                    self.hot_inos.discard(ino)
                    if memo is not None:
                        memo.invalidate_ino(ino)

    def _lazy_update_drainer(self) -> Generator[Event, Any, None]:
        """Background propagation of Lazy Hybrid's owed updates (§3.1.3).

        Drains the pending set at ``lh_drain_rate_per_s``, charging each
        applied update one network round trip plus a journal commit on the
        record's authority — the paper's amortized "one network trip per
        affected file".
        """
        from ..partition import LazyHybridPartition

        strategy = self.strategy
        assert isinstance(strategy, LazyHybridPartition)
        interval = 0.1
        per_tick = max(1, int(self.params.lh_drain_rate_per_s * interval))
        while True:
            yield self.env.timeout(interval)
            batch = strategy.pop_pending_batch(per_tick)
            if not batch:
                continue
            yield self.env.timeout(2 * self.params.net_hop_s)
            for ino in batch:
                if ino not in self.ns:
                    continue
                authority = self.nodes[strategy.authority_of_ino(ino)]
                if authority.failed:
                    continue
                yield from authority._journal_update(ino)
                authority.stats.lazy_updates += 1

    # ------------------------------------------------------------------
    # measurement helpers (used by experiments and tests)
    # ------------------------------------------------------------------
    def node_stats(self) -> List[NodeStats]:
        return [node.stats for node in self.nodes]

    def mean_node_throughput(self, t_start: float, t_end: float) -> float:
        rates = [s.throughput(t_start, t_end) for s in self.node_stats()]
        return sum(rates) / len(rates)

    def node_throughputs(self, t_start: float, t_end: float) -> List[float]:
        return [s.throughput(t_start, t_end) for s in self.node_stats()]

    def cluster_hit_rate(self) -> float:
        return aggregate_hit_rate(self.node_stats())

    def forward_fraction(self) -> float:
        return aggregate_forward_fraction(self.node_stats())

    def mean_prefix_fraction(self) -> float:
        fracs = [node.cache.prefix_fraction() for node in self.nodes]
        return sum(fracs) / len(fracs)

    def queue_delay_summaries(self) -> "List":
        """Per-node inbox queue-delay percentile digests."""
        return [node.stats.queue_delay.summary() for node in self.nodes]

    def cache_report(self) -> Dict[str, float]:
        """Aggregated slot census over all node caches."""
        total: Dict[str, float] = {}
        for node in self.nodes:
            for key, count in node.cache.slot_census().items():
                total[key] = total.get(key, 0) + count
        return total
