"""Dynamic directory fragmentation (§4.3).

When an individual directory grows extraordinarily large, holding it on a
single MDS becomes a bottleneck; the dynamic partition can hash *that one
directory's* entries across the cluster, and consolidate it again when it
shrinks.  The manager scans periodically — directory growth is much slower
than the request rate, so a coarse scan matches the mechanism's spirit
without per-op bookkeeping.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

from ..partition import DynamicSubtreePartition
from ..sim import Event

if TYPE_CHECKING:  # pragma: no cover
    from .cluster import MdsCluster


class DirFragManager:
    """Fragment huge directories; consolidate them when they shrink."""

    def __init__(self, cluster: "MdsCluster") -> None:
        if not isinstance(cluster.strategy, DynamicSubtreePartition):
            raise TypeError("DirFragManager requires DynamicSubtreePartition")
        self.cluster = cluster
        self.params = cluster.params
        self.fragmented_count = 0
        self.consolidated_count = 0

    def run(self, interval_s: float = 1.0) -> Generator[Event, Any, None]:
        while True:
            yield self.cluster.env.timeout(interval_s)
            self.scan_once()

    def scan_once(self) -> None:
        """One pass: apply the size thresholds to every directory."""
        strategy: DynamicSubtreePartition = self.cluster.strategy  # type: ignore[assignment]
        ns = self.cluster.ns

        # consolidate shrunken fragmented directories first (cheap set)
        for dir_ino in list(strategy.fragmented):
            if (dir_ino not in ns
                    or ns.inode(dir_ino).entry_count
                    < self.params.dirfrag_unfrag_size):
                strategy.unfragment_directory(dir_ino)
                self.consolidated_count += 1

        for node in ns.iter_subtree(1):
            if not node.is_dir or node.ino in strategy.fragmented:
                continue
            if node.entry_count >= self.params.dirfrag_size_threshold:
                strategy.fragment_directory(node.ino)
                self.fragmented_count += 1
