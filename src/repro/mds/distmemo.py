"""Cluster-wide memo of reply distribution info (§4.4 location hints).

``MdsNode._distribution_info`` walks the dentry tree once per reply to
build the ``prefix -> authority`` hints clients learn from.  The result
is a pure function of global state — namespace structure, partition
state, hot set — so :class:`DistributionMemo` caches one mapping per
path, shared read-only by every reply for that path (like
``EMPTY_LOCATIONS``).

Invalidation mirrors :class:`~repro.namespace.memo.ResolutionMemo`:
every entry is indexed by each inode on its resolved walk, and
``invalidate_ino`` drops exactly the entries passing through a mutated
inode.  It is driven from three places:

* **structural mutations** — the namespace broadcasts
  ``_structure_changed(ino)`` to registered listeners (the memo is one);
* **hot-set membership changes** — ``_replicate_everywhere`` /
  ``_invalidate_replicas`` / the hot-set sweeper invalidate the toggled
  ino (its hint flips between ``ANY_NODE`` and the owner);
* **partition-state mutations** — ``Strategy._authority_changed()``
  bumps ``_auth_gen``; the caller clears the whole memo, because a
  delegation/fragment change can move ownership anywhere.

Dentry *additions* never invalidate: a new entry can only extend a walk
that ended early, so entries for fully-resolved walks are immune while
truncated entries carry the ``dentry_add_epoch`` they were computed at
and are revalidated against it on lookup.

This precision contract assumes an inode's authority depends only on
its ancestor chain and partition state (true of subtree partitioning
and every built-in strategy); a strategy violating that must call
``_authority_changed()`` on the mutations the memo cannot see — the
same rule the base authority cache already imposes.
"""

from __future__ import annotations

from typing import Dict, Mapping, Set, Tuple

from ..namespace.path import Path

#: entry: (complete walk?, dentry_add_epoch at compute, info, walk inos)
_Entry = Tuple[bool, int, Mapping, Tuple[int, ...]]


class DistributionMemo:
    """Bounded ino-indexed memo of per-path distribution info."""

    __slots__ = ("capacity", "entries", "_deps",
                 "hits", "misses", "invalidations")

    def __init__(self, capacity: int = 16384) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.entries: Dict[Path, _Entry] = {}
        #: ino -> paths whose walk passes through it
        self._deps: Dict[int, Set[Path]] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self.entries)

    # ------------------------------------------------------------------
    # lookup / recording  (the hit path is inlined in ``MdsNode``)
    # ------------------------------------------------------------------
    def store(self, path: Path, complete: bool, dentry_epoch: int,
              info: Mapping, walk_inos: Tuple[int, ...]) -> None:
        if path in self.entries:       # re-store after a stale truncation
            self._drop(path)
        while len(self.entries) >= self.capacity:
            self._drop(next(iter(self.entries)))
        self.entries[path] = (complete, dentry_epoch, info, walk_inos)
        deps = self._deps
        for ino in walk_inos:
            bucket = deps.get(ino)
            if bucket is None:
                bucket = deps[ino] = set()
            bucket.add(path)

    # ------------------------------------------------------------------
    # invalidation
    # ------------------------------------------------------------------
    def invalidate_ino(self, ino: int) -> int:
        """Drop every entry whose walk passes through ``ino``."""
        paths = self._deps.pop(ino, None)
        if not paths:
            return 0
        dropped = 0
        for path in list(paths):
            if self._drop(path):
                dropped += 1
        self.invalidations += dropped
        return dropped

    def clear(self) -> None:
        self.entries.clear()
        self._deps.clear()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _drop(self, path: Path) -> bool:
        entry = self.entries.pop(path, None)
        if entry is None:
            return False
        deps = self._deps
        for ino in entry[3]:
            bucket = deps.get(ino)
            if bucket is not None:
                bucket.discard(path)
                if not bucket:
                    del deps[ino]
        return True

    # ------------------------------------------------------------------
    # introspection (tests, bench report)
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        return {"entries": len(self.entries), "hits": self.hits,
                "misses": self.misses, "invalidations": self.invalidations}

    def verify_invariants(self) -> None:
        """Raise ``AssertionError`` on index inconsistency (tests only)."""
        expected: Dict[int, Set[Path]] = {}
        for path, entry in self.entries.items():
            for ino in entry[3]:
                expected.setdefault(ino, set()).add(path)
        assert self._deps == expected, (
            f"dep index mismatch: {self._deps} != {expected}")


__all__ = ["DistributionMemo"]
