"""One metadata server: request workers, cache, journal, coherence (§4).

The node is where every paper mechanism meets:

* **authority & forwarding** (§4.2): requests for metadata this node does
  not own are forwarded to the authority — unless a replica can serve a
  read locally (collaborative caching / traffic control).
* **path traversal** (§4.1): the ancestors of every served item are pulled
  into cache (locally from disk when this node owns them, from the owning
  peer otherwise) so permission checks never need extra I/O afterwards.
* **embedded inodes & prefetch** (§4.5): a miss under a directory-grain
  layout loads the whole directory; siblings enter the cache near the cold
  end of the LRU.
* **two-tier storage** (§4.6): mutations append to the bounded journal;
  entries that fall off are written back to the shared object store off the
  critical path.
* **popularity & replication** (§4.4): the authority counts accesses with
  decaying counters and pushes replicas of suddenly-popular metadata to the
  whole cluster.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, List, Optional

from ..cache import ReplicaRegistry
from ..model.backend import make_metadata_cache, make_popularity_map
from ..namespace import FsError, Inode, ROOT_INO
from ..namespace import path as pathmod
from ..sim import Environment, Event, Resource, Store
from ..storage import DiskDevice, Journal
from .config import SimParams
from .messages import (ANY_NODE, EMPTY_LOCATIONS, MdsReply, MdsRequest,
                       OpType)
from .stats import NodeStats

if TYPE_CHECKING:  # pragma: no cover
    from .cluster import MdsCluster


class MdsNode:
    """A single metadata server in the cluster."""

    def __init__(self, env: Environment, node_id: int, cluster: "MdsCluster",
                 params: SimParams) -> None:
        self.env = env
        self.node_id = node_id
        self.cluster = cluster
        self.params = params
        self.inbox: Store = Store(env)
        self.cpu = Resource(env, capacity=1)
        self.cache = make_metadata_cache(params.cache_capacity)
        journal_dev = DiskDevice(env, read_s=params.journal_write_s,
                                 write_s=params.journal_write_s,
                                 name=f"journal{node_id}")
        self.journal = Journal(env, journal_dev,
                               capacity=params.journal_capacity)
        #: replicas of *my* metadata held by peers
        self.replicas = ReplicaRegistry()
        self.popularity = make_popularity_map(params.popularity_halflife_s)
        self.stats = NodeStats(bucket_width_s=params.stats_bucket_s)
        self.failed = False  # set by mds.failover; a dead node serves nothing
        #: requests outstanding at this node (in flight + queued + in
        #: service); maintained only when admission control is on
        #: (``SimParams.inbox_capacity``), otherwise stays 0
        self.inflight = 0
        #: open-file handles this authority has exposed: ino -> refcount.
        #: The cache entry is pinned while open; an unlinked-while-open
        #: inode is retained as a namespace orphan until the last close
        #: (§4.5).
        self._open_refs: dict = {}
        self._open_pinned: set = set()
        self._writeback_buffer: List[int] = []
        #: per-ino embargo on re-replication after a mutation invalidated
        #: the replica set (prevents replicate/invalidate churn on items
        #: that are both read- and write-hot)
        self._replication_cooldown: dict = {}
        self._bootstrap_root()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _bootstrap_root(self) -> None:
        """Every node caches (and pins) the root — all clients know it."""
        ns = self.cluster.ns
        is_auth = self.cluster.strategy.authority_of_ino(ROOT_INO) == self.node_id
        self.cache.insert(ROOT_INO, None, True, replica=not is_auth)
        self.cache.pin(ROOT_INO)

    def start_workers(self) -> None:
        for _ in range(self.params.workers_per_node):
            self.env.process(self._worker())
        self.env.process(self._writeback_flusher())

    def _worker(self) -> Generator[Event, Any, None]:
        inbox = self.inbox
        handle = self._handle
        if self.env.fastlane:
            # Batch inbox draining: one wakeup serves every already-queued
            # message before blocking again, eliding the per-item get()
            # event.  Service order is unchanged — get_nowait() pops the
            # same FIFO the reference get() path would have handed over
            # one URGENT event at a time.
            get_nowait = inbox.get_nowait
            while True:
                request: MdsRequest = yield inbox.get()
                yield from handle(request)
                while True:
                    queued = get_nowait()
                    if queued is None:
                        break
                    yield from handle(queued)
        while True:
            request = yield inbox.get()
            yield from handle(request)

    # ------------------------------------------------------------------
    # request handling
    # ------------------------------------------------------------------
    def _handle(self, req: MdsRequest) -> Generator[Event, Any, None]:
        trace = req.trace
        now = self.env.now
        self.stats.record_queue_delay(now - req.enqueued_at)
        if trace is not None:
            trace.add("node.queue", req.enqueued_at, now, node=self.node_id)
        if self.failed:
            # a dead server answers nothing: the client's retry lands on a
            # random live node (which forwards to the new authority)
            req.hops += 1
            if self.cluster._admission is not None:
                self.inflight -= 1  # the request leaves this node
            self.cluster.deliver_later(self.cluster.pick_live_node(), req)
            return
        ns = self.cluster.ns
        strategy = self.cluster.strategy

        target, authority, error = self._locate(req)
        if error is not None:
            t0 = self.env.now
            hold = self.cpu.acquire(self.params.cpu_op_s)
            if hold is not None:  # uncontended: one event, no sub-generator
                yield hold
            else:
                yield from self.cpu.use(self.params.cpu_op_s)
            if trace is not None:
                trace.add("node.cpu", t0, self.env.now, node=self.node_id,
                          detail="locate-error")
            self._reply(req, ok=False, error=error)
            return

        if authority != self.node_id:
            cached = self.cache.get(target.ino) if target is not None else None
            replica_can_serve = (cached is not None and not req.is_mutation)
            if not replica_can_serve:
                yield from self._forward(req, authority)
                return
            # fall through: serve the read from the local replica
            if trace is not None:
                trace.bump("replica.read")

        t0 = self.env.now
        service_s = self.params.cpu_op_s / self.params.speed_of(self.node_id)
        hold = self.cpu.acquire(service_s)
        if hold is not None:  # uncontended: one event, no sub-generator
            yield hold
        else:
            yield from self.cpu.use(service_s)
        if trace is not None:
            trace.add("node.cpu", t0, self.env.now, node=self.node_id)

        # Everything below touches ground truth that concurrent workers may
        # mutate (the target can be unlinked while we wait on disk), so the
        # whole serve path shares one failure exit.
        try:
            # -- path traversal & permission check (§4.1) -----------------
            # The cache-hit case is inlined: a generator per ancestor per
            # request is measurable overhead at ~5 lookups/request, and
            # after warmup nearly every lookup hits.
            if strategy.needs_path_traversal and target is not None:
                cache_get = self.cache.get
                stats = self.stats
                for aino in ns.ancestor_inos(target.ino):
                    if cache_get(aino) is not None:
                        stats.cache_hits += 1
                        if trace is not None:
                            trace.bump("cache.hit")
                    else:
                        yield from self._fetch_missing(ns.inode(aino),
                                                       trace=trace)

            # -- Lazy Hybrid / rename-migration deferred work -------------
            if target is not None and strategy.take_pending(target.ino):
                t0 = self.env.now
                yield self.env.timeout(2 * self.params.net_hop_s)
                yield from self._journal_update(target.ino)
                if trace is not None:
                    trace.add("lazy.update", t0, self.env.now,
                              node=self.node_id)
                self.stats.lazy_updates += 1

            # -- bring the target itself into cache ------------------------
            if target is not None:
                if self.cache.get(target.ino) is not None:
                    self.stats.cache_hits += 1
                    if trace is not None:
                        trace.bump("cache.hit")
                else:
                    yield from self._fetch_missing(target, trace=trace)

            # -- apply the operation ----------------------------------------
            touched_ino = yield from self._apply(req, target)
        except FsError as exc:
            self.stats.errors += 1
            self._reply(req, ok=False, error=str(exc))
            return

        # -- popularity accounting & traffic control (§4.4) ----------------
        # The accounting itself never yields; only the rare replication
        # broadcast does, so the common case stays a plain call.
        if touched_ino is not None and authority == self.node_id:
            if self._note_access(touched_ino):
                t0 = self.env.now
                try:
                    yield from self._replicate_everywhere(touched_ino)
                except FsError:
                    pass  # the item vanished while we were broadcasting
                else:
                    if trace is not None:
                        trace.add("traffic.replicate", t0, self.env.now,
                                  node=self.node_id,
                                  detail=f"ino={touched_ino}")

        self._reply(req, ok=True, target_ino=touched_ino)

    def _locate(self, req: MdsRequest):
        """Resolve the request target and its authority.

        Returns ``(target_inode_or_None, authority, error_or_None)``.  For
        creations the target is the parent directory and the authority is
        where the new entry will live.
        """
        ns = self.cluster.ns
        strategy = self.cluster.strategy
        if req.op in (OpType.CREATE, OpType.MKDIR):
            parent = ns.try_resolve(pathmod.parent(req.path))
            if parent is None or not parent.is_dir:
                return None, self.node_id, "no such parent directory"
            return parent, strategy.authority_of_new(req.path, parent.ino), None
        if req.op is OpType.LINK:
            if req.dst_path is None:
                return None, self.node_id, "link without destination"
            parent = ns.try_resolve(pathmod.parent(req.dst_path))
            if parent is None or not parent.is_dir:
                return None, self.node_id, "no such link directory"
            return parent, strategy.authority_of_new(req.dst_path,
                                                     parent.ino), None
        target = ns.try_resolve(req.path)
        if target is None:
            if (req.op is OpType.CLOSE and req.ino is not None
                    and ns.is_orphan(req.ino)):
                # closing a file whose name was unlinked while open: the
                # orphaned inode is still addressable by its handle
                authority = self.cluster.orphan_authorities.get(
                    req.ino, self.node_id)
                return ns.inode(req.ino), authority, None
            return None, self.node_id, "no such entry"
        return target, strategy.authority_of_ino(target.ino), None

    def _forward(self, req: MdsRequest,
                 authority: int) -> Generator[Event, Any, None]:
        """Pass a misdirected request to its authority (§5.3.3)."""
        t0 = self.env.now
        hold = self.cpu.acquire(self.params.cpu_forward_s)
        if hold is not None:
            yield hold
        else:
            yield from self.cpu.use(self.params.cpu_forward_s)
        if req.trace is not None:
            req.trace.add("node.forward", t0, self.env.now,
                          node=self.node_id, detail=f"to={authority}")
        req.hops += 1
        self.stats.record_forward(self.env.now)
        if req.hops > self.params.max_forward_hops:
            # Pathological ping-pong (e.g. racing migrations): answer with an
            # error rather than looping forever.
            self._reply(req, ok=False, error="too many forwards")
            return
        if self.cluster._admission is not None:
            self.inflight -= 1  # handing off: the authority re-admits it
        self.cluster.deliver_later(authority, req)

    # ------------------------------------------------------------------
    # cache management
    # ------------------------------------------------------------------
    def _ensure_cached(self, inode: Inode,
                       trace=None) -> Generator[Event, Any, None]:
        """Make sure ``inode`` is in the local cache, fetching if needed."""
        entry = self.cache.get(inode.ino)
        if entry is not None:
            self.stats.record_hit()
            if trace is not None:
                trace.bump("cache.hit")
            return
        yield from self._fetch_missing(inode, trace=trace)

    def _fetch_missing(self, inode: Inode,
                       trace=None) -> Generator[Event, Any, None]:
        """Cache-miss path of :meth:`_ensure_cached` (caller checked)."""
        self.stats.record_miss()
        if trace is not None:
            trace.bump("cache.miss")
        if self.cluster.ns.is_orphan(inode.ino):
            # orphans have no path to hash or traverse: the retaining
            # authority (normally us) reloads it directly
            yield from self._fetch_from_disk(inode, trace=trace)
            return
        authority = self.cluster.strategy.authority_of_ino(inode.ino)
        if authority == self.node_id:
            yield from self._fetch_from_disk(inode, trace=trace)
        else:
            yield from self._fetch_from_peer(inode, authority, trace=trace)

    def _fetch_from_disk(self, inode: Inode,
                         trace=None) -> Generator[Event, Any, None]:
        """Load locally-owned metadata from the shared object store."""
        ns = self.cluster.ns
        layout = self.cluster.strategy.layout
        t0 = self.env.now
        siblings = yield from layout.fetch(self.cluster.object_store, ns,
                                           inode)
        if trace is not None:
            trace.add("osd.read", t0, self.env.now, node=self.node_id,
                      detail=f"ino={inode.ino}")
        self._insert(inode, replica=False)
        if inode.ino not in self.cache:  # pragma: no cover - all-pinned edge
            return
        # hold the entry we actually came for: under pressure the sibling
        # prefetch below could otherwise evict it before it is ever used
        self.cache.pin(inode.ino)
        try:
            for sibling_ino in siblings:
                if sibling_ino in self.cache or sibling_ino not in ns:
                    continue
                sibling = ns.inode(sibling_ino)
                # Only prefetch what this node is authoritative for — under
                # directory hashing the whole directory is; under subtree
                # partitioning nested delegations may carve children out.
                if self.cluster.strategy.authority_of_ino(sibling_ino) \
                        != self.node_id:
                    continue
                self._insert(sibling, replica=False,
                             prefetched=self.params.prefetch_cold_insert)
                self.stats.prefetches += 1
        finally:
            self._notify_evictions(self.cache.unpin(inode.ino))

    def _fetch_from_peer(self, inode: Inode, authority: int,
                         trace=None) -> Generator[Event, Any, None]:
        """Replicate metadata from its authority (prefix fetch, §4.2)."""
        transport = self.cluster._transport
        if transport is not None and not transport.owns(authority):
            yield from transport.fetch_from_peer(self, inode, authority,
                                                 trace)
            return
        t0 = self.env.now
        peer_missed = False
        yield self.env.timeout(self.params.net_hop_s)
        peer = self.cluster.nodes[authority]
        if inode.ino not in peer.cache:
            # the authority must load it before it can hand out a replica
            peer.stats.record_miss()
            peer_missed = True
            yield from peer._fetch_from_disk(inode)
        else:
            peer.cache.get(inode.ino)  # refresh recency at the authority
        yield self.env.timeout(self.params.net_hop_s)
        if trace is not None:
            # the peer's own disk miss (if any) is inside this span
            trace.add("peer.fetch", t0, self.env.now, node=self.node_id,
                      detail=f"from={authority}"
                             + (" peer-miss" if peer_missed else ""))
        self._insert(inode, replica=True)
        peer.replicas.register(inode.ino, self.node_id)
        self.stats.remote_fetches += 1

    def _insert(self, inode: Inode, *, replica: bool,
                prefetched: bool = False) -> None:
        """Cache an inode, keeping the hierarchical pin structure.

        The parent link is only recorded when the parent is itself cached —
        and never for strategies without path traversal (Lazy Hybrid), whose
        local store is hash-keyed and flat: a file record there neither
        needs nor pins its ancestors.
        """
        if inode.ino in self.cache:
            return
        parent: Optional[int] = None
        if (self.cluster.strategy.needs_path_traversal
                and inode.ino != ROOT_INO
                and inode.parent_ino in self.cache):
            parent = inode.parent_ino
        evicted = self.cache.insert(inode.ino, parent, inode.is_dir,
                                    replica=replica, prefetched=prefetched)
        self._notify_evictions(evicted)

    def _notify_evictions(self, evicted) -> None:
        """Tell authorities we dropped their replicas (free, piggybacked)."""
        transport = self.cluster._transport
        for entry in evicted:
            if entry.replica:
                authority = self.cluster.strategy.authority_of_ino(entry.ino) \
                    if entry.ino in self.cluster.ns else None
                if authority is not None and authority != self.node_id:
                    if transport is not None and not transport.owns(authority):
                        transport.send_unregister(authority, entry.ino,
                                                  self.node_id)
                    else:
                        self.cluster.nodes[authority].replicas.unregister(
                            entry.ino, self.node_id)

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def _apply(self, req: MdsRequest,
               target: Optional[Inode]) -> Generator[Event, Any, Optional[int]]:
        """Execute the operation against ground truth; returns touched ino."""
        ns = self.cluster.ns
        now = self.env.now
        op = req.op
        trace = req.trace

        if op is OpType.READDIR:
            assert target is not None
            fragmented = getattr(self.cluster.strategy, "fragmented", ())
            if target.ino in fragmented:
                # a fragmented directory's entries are scattered by name
                # hash; readdir is the one op that must gather from every
                # node (§4.3) — one parallel round trip
                t0 = self.env.now
                yield self.env.timeout(2 * self.params.net_hop_s)
                if trace is not None:
                    trace.add("net.gather", t0, self.env.now,
                              node=self.node_id, detail="fragmented-readdir")
            return target.ino

        if op is OpType.OPEN:
            assert target is not None
            if target.is_file:
                self._register_open(target.ino)
            return target.ino

        if op is OpType.CLOSE:
            assert target is not None
            self._register_close(target.ino)
            return target.ino

        if op is OpType.STAT:
            assert target is not None
            return target.ino

        if op in (OpType.CREATE, OpType.MKDIR):
            assert target is not None  # the parent directory
            if op is OpType.CREATE:
                inode = ns.create_file(req.path, mode=req.mode or 0,
                                       owner=req.uid, size=req.size or 0,
                                       mtime=now)
            else:
                inode = ns.mkdir(req.path, mode=req.mode or 0, owner=req.uid,
                                 mtime=now)
            self._insert(inode, replica=False)
            yield from self._journal_update(inode.ino, trace=trace)
            yield from self._invalidate_replicas(target.ino,
                                                 trace=trace)  # dir changed
            return inode.ino

        if op is OpType.LINK:
            assert target is not None and req.dst_path is not None
            inode = ns.link(req.path, req.dst_path, mtime=now)
            yield from self._journal_update(inode.ino, trace=trace)
            yield from self._invalidate_replicas(target.ino, trace=trace)
            return inode.ino

        if op is OpType.UNLINK:
            assert target is not None
            yield from self._invalidate_replicas(target.ino, trace=trace)
            still_open = (target.is_file and target.nlink == 1
                          and self._open_refs.get(target.ino, 0) > 0)
            ns.unlink(req.path, mtime=now, retain_inode=still_open)
            if still_open:
                # deleted while open: the record stays addressable (and
                # pinned in our cache) until the last close (§4.5)
                self.cluster.orphan_authorities[target.ino] = self.node_id
            else:
                entry = self.cache.get(target.ino, touch=False)
                if entry is not None and not entry.pinned:
                    self.cache.remove(target.ino)
            yield from self._journal_update(target.parent_ino, trace=trace)
            return None

        if op is OpType.RENAME:
            assert target is not None and req.dst_path is not None
            dst_parent = ns.try_resolve(pathmod.parent(req.dst_path))
            if dst_parent is None or not dst_parent.is_dir:
                raise FsError("no such destination directory")
            dst_authority = self.cluster.strategy.authority_of_ino(
                dst_parent.ino)
            yield from self._invalidate_replicas(target.ino, trace=trace)
            old_path = req.path
            ns.rename(req.path, req.dst_path, mtime=now)
            deferred = self.cluster.strategy.on_rename(target.ino, old_path,
                                                       req.dst_path)
            self.cluster.on_deferred_work(deferred)
            if dst_authority != self.node_id:
                # renames frequently involve two directories (§4.3)
                t0 = self.env.now
                yield self.env.timeout(2 * self.params.net_hop_s)
                if trace is not None:
                    trace.add("net.gather", t0, self.env.now,
                              node=self.node_id, detail="cross-dir-rename")
            yield from self._journal_update(target.ino, trace=trace)
            return target.ino

        if op is OpType.CHMOD:
            assert target is not None
            yield from self._invalidate_replicas(target.ino, trace=trace)
            ns.chmod(req.path, req.mode or 0o755, mtime=now)
            deferred = self.cluster.strategy.on_chmod(target.ino)
            self.cluster.on_deferred_work(deferred)
            yield from self._journal_update(target.ino, trace=trace)
            return target.ino

        if op is OpType.SETATTR:
            assert target is not None
            ns.setattr(req.path, size=req.size, mtime=now)
            yield from self._journal_update(target.ino, trace=trace)
            return target.ino

        raise FsError(f"unsupported operation {op}")  # pragma: no cover

    # ------------------------------------------------------------------
    # open-file handles (§4.5)
    # ------------------------------------------------------------------
    def _register_open(self, ino: int) -> None:
        """Expose an inode to a client; pin it while any handle is live."""
        count = self._open_refs.get(ino, 0)
        self._open_refs[ino] = count + 1
        if count == 0 and ino in self.cache:
            self.cache.pin(ino)
            self._open_pinned.add(ino)

    def _register_close(self, ino: int) -> None:
        """Release one handle; drop orphans on the last close.

        A close the table does not know about (handle opened before a
        migration or failover) is accepted as a no-op — the pin it would
        release lives wherever the open was registered.
        """
        count = self._open_refs.get(ino)
        if count is None:
            return
        if count > 1:
            self._open_refs[ino] = count - 1
            return
        del self._open_refs[ino]
        if ino in self._open_pinned:
            self._open_pinned.discard(ino)
            if ino in self.cache:
                self._notify_evictions(self.cache.unpin(ino))
        ns = self.cluster.ns
        if ns.is_orphan(ino):
            entry = self.cache.get(ino, touch=False)
            if entry is not None and not entry.pinned:
                self.cache.remove(ino)
            ns.release_orphan(ino)
            self.cluster.orphan_authorities.pop(ino, None)

    @property
    def open_file_count(self) -> int:
        """Distinct inodes with at least one live handle here."""
        return len(self._open_refs)

    def _journal_update(self, ino: int,
                        trace=None) -> Generator[Event, Any, None]:
        """Commit an update to the journal; queue retired entries for tier 2."""
        t0 = self.env.now
        retired = yield from self.journal.append(ino)
        if trace is not None:
            trace.add("journal.append", t0, self.env.now, node=self.node_id)
        self.stats.journal_appends += 1
        self._writeback_buffer.extend(retired)

    def _writeback_flusher(self) -> Generator[Event, Any, None]:
        """Background tier-2 writeback of retired journal entries.

        Retirements accumulate over a flush window and go through the
        layout's batch path, so inodes retiring from the same directory
        cost one object rewrite under directory-grain storage (§4.6).
        """
        ns = self.cluster.ns
        store = self.cluster.object_store
        while True:
            yield self.env.timeout(self.params.writeback_flush_s)
            if not self._writeback_buffer:
                continue
            batch, self._writeback_buffer = self._writeback_buffer, []
            # coalesce repeat retirements of the same inode within a flush
            # window (§4.6): one tier-2 write covers them all.  Insertion
            # order is kept so the layout sees a deterministic batch.
            batch = list(dict.fromkeys(batch))
            live = [ns.inode(ino) for ino in batch if ino in ns]
            if not live:
                continue
            layout = self.cluster.strategy.layout
            transactions = yield from layout.writeback_batch(store, ns, live)
            self.stats.tier2_writes += transactions

    def _invalidate_replicas(self, ino: int,
                             trace=None) -> Generator[Event, Any, None]:
        """Coherence callback: drop peer replicas before mutating (§4.2)."""
        holders = self.replicas.drop_ino(ino)
        if not holders:
            return
        transport = self.cluster._transport
        if transport is not None:
            foreign = sorted(h for h in holders if not transport.owns(h))
            if foreign:
                # one hop out, exactly when the serial loop below removes
                # the replica on a local holder
                transport.send_invalidations(foreign, ino)
        t0 = self.env.now
        yield self.env.timeout(self.params.net_hop_s)
        if trace is not None:
            trace.add("coherence.invalidate", t0, self.env.now,
                      node=self.node_id, detail=f"holders={len(holders)}")
        for holder in holders:
            if transport is not None and not transport.owns(holder):
                continue
            peer = self.cluster.nodes[holder]
            entry = peer.cache.get(ino, touch=False)
            # pinned replicas (open handles, cached children) stay put; the
            # peer refreshes from ground truth on next use
            if entry is not None and entry.replica and not entry.pinned:
                peer.cache.remove(ino)
        self.stats.invalidations_sent += len(holders)
        if ino in self.cluster.hot_inos:
            self.cluster.hot_inos.discard(ino)
            if self.cluster._dist_memo is not None:
                self.cluster._dist_memo.invalidate_ino(ino)
        self._replication_cooldown[ino] = (
            self.env.now + 4 * self.params.popularity_halflife_s)

    # ------------------------------------------------------------------
    # popularity / traffic control (§4.4)
    # ------------------------------------------------------------------
    def _note_access(self, ino: int) -> bool:
        """Popularity bookkeeping; True when the item crossed the
        replication threshold (caller runs the broadcast)."""
        ns = self.cluster.ns
        now = self.env.now
        value = self.popularity.add(ino, now)
        # hierarchical accounting for the load balancer: each ancestor
        # directory absorbs the access (a directory absorbs its own as
        # well).  The chain comes from the memoised ancestor walk and is
        # recorded in one batch — counters are independent, so the order
        # within the chain is irrelevant to the decayed values.
        if ino in ns:
            self.popularity.add_chain(ns.ancestor_inos(ino), now)
            if ns.inode(ino).is_dir:
                self.popularity.add(ino, now)
        return (self.cluster.traffic_control_active
                and value >= self.params.replicate_threshold
                and ino not in self.cluster.hot_inos
                and ino in ns
                and now >= self._replication_cooldown.get(ino, 0.0))

    def _replicate_everywhere(self, ino: int) -> Generator[Event, Any, None]:
        """Push replicas of a suddenly popular item to every node (§4.4)."""
        ns = self.cluster.ns
        inode = ns.inode(ino)
        chain = ns.ancestors(ino) + [inode]
        yield self.env.timeout(self.params.net_hop_s)  # parallel broadcast
        for peer in self.cluster.nodes:
            if peer.node_id == self.node_id or peer.failed:
                continue
            for link in chain:
                if link.ino in peer.cache:
                    continue
                peer._insert(link, replica=True)
                if (self.cluster.strategy.authority_of_ino(link.ino)
                        == self.node_id):
                    self.replicas.register(link.ino, peer.node_id)
        self.cluster.hot_inos.add(ino)
        if self.cluster._dist_memo is not None:
            self.cluster._dist_memo.invalidate_ino(ino)
        self.stats.replications_pushed += 1

    # ------------------------------------------------------------------
    # replies
    # ------------------------------------------------------------------
    def _reply(self, req: MdsRequest, *, ok: bool,
               error: Optional[str] = None,
               target_ino: Optional[int] = None) -> None:
        now = self.env.now
        locations = EMPTY_LOCATIONS  # shared read-only map; no per-reply dict
        if ok and self.cluster.strategy.client_locate(req.path) is None:
            locations = self._distribution_info(req.path)
        reply = MdsReply(ok=ok, served_by=self.node_id, op=req.op,
                         path=req.path, error=error, locations=locations,
                         target_ino=target_ino, forwarded=req.hops,
                         latency_s=now - req.submitted_at)
        self.stats.record_served(now)
        if not ok:
            self.stats.errors += 1
        self.cluster.reply_later(req, reply)

    def _distribution_info(self, path) -> dict:
        """Location hints for the path and its prefixes (§4.4).

        One incremental walk down the dentry tree covers every prefix —
        resolution is hierarchical, so the first unresolvable component
        ends the hints (deeper prefixes cannot resolve either).

        The result depends only on global state — namespace structure,
        partition state, hot set — so with the fast lane on it is memoised
        cluster-wide per path (:class:`~repro.mds.distmemo.DistributionMemo`).
        Invalidation is precise: entries are indexed by the inodes on
        their walk; structural mutations and hot-set toggles drop exactly
        the walks through the mutated ino, and only a partition-state
        change (``_auth_gen``) clears the memo wholesale.  Dentry
        *additions* never invalidate: a new entry can only extend a walk
        that ended early, so a **complete** entry (every component
        resolved) stays valid across creates, while a truncated one is
        revalidated against ``dentry_add_epoch``.  Replies share the
        memoised mapping; clients only read it (like ``EMPTY_LOCATIONS``).
        """
        cluster = self.cluster
        memo = cluster._dist_memo
        if memo is not None:
            ns = cluster.ns
            auth_gen = cluster.strategy._auth_gen
            if auth_gen != cluster._dist_auth_gen:
                memo.clear()
                cluster._dist_auth_gen = auth_gen
            entry = memo.entries.get(path)
            if entry is not None:
                if entry[0] or entry[1] == ns.dentry_add_epoch:
                    memo.hits += 1
                    return entry[2]
            memo.misses += 1
            info, walk_inos = self._compute_distribution_walk(path)
            # root entry + one per component <=> the whole path resolved
            memo.store(path, len(info) == len(path) + 1,
                       ns.dentry_add_epoch, info, walk_inos)
            return info
        return self._compute_distribution_walk(path)[0]

    def _compute_distribution_walk(self, path) -> "tuple[dict, tuple]":
        """Walk the dentry tree once: ``(prefix -> authority hints,
        inos of the resolved components)``.  The ino tuple is what the
        memo indexes invalidation by."""
        ns = self.cluster.ns
        strategy = self.cluster.strategy
        hot = self.cluster.hot_inos
        info: dict = {(): ANY_NODE}  # the root is cached on every node
        walk: list = []
        node = ns.root
        depth = 0
        for name in path:
            if not node.is_dir:
                break
            child_ino = node.children.get(name)  # type: ignore[union-attr]
            if child_ino is None:
                break
            node = ns.inode(child_ino)
            depth += 1
            prefix = path[:depth]
            walk.append(child_ino)
            if child_ino in hot:
                info[prefix] = ANY_NODE
            else:
                info[prefix] = strategy.authority_of_ino(child_ino)
        return info, tuple(walk)
