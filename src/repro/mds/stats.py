"""Per-node and cluster-level statistics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..metrics import BucketCounter, DeltaTracker, LatencyHistogram


@dataclass
class NodeStats:
    """Activity counters for one MDS node."""

    bucket_width_s: float = 0.5

    ops_served: int = 0          # requests this node replied to
    forwards: int = 0            # requests this node passed along
    errors: int = 0              # ops that failed with an FS error
    drops: int = 0               # arrivals shed by admission control
    cache_hits: int = 0          # inode lookups satisfied from cache
    cache_misses: int = 0        # inode lookups requiring a fetch
    remote_fetches: int = 0      # prefix/replica fetches from peer nodes
    replications_pushed: int = 0  # traffic-control replica broadcasts
    invalidations_sent: int = 0  # coherence callbacks on update
    lazy_updates: int = 0        # Lazy Hybrid deferred updates applied
    prefetches: int = 0          # sibling inodes brought in by dir fetches
    journal_appends: int = 0
    tier2_writes: int = 0
    migrations_out: int = 0      # subtrees shed by the balancer
    migrations_in: int = 0
    entries_migrated: int = 0

    served_by_time: BucketCounter = field(init=False)
    forwards_by_time: BucketCounter = field(init=False)
    drops_by_time: BucketCounter = field(init=False)
    deltas: DeltaTracker = field(default_factory=DeltaTracker)
    #: inbox-queueing delay of every request this node picked up; the load
    #: balancer reads interval percentiles out of this (not just counts)
    queue_delay: LatencyHistogram = field(init=False)

    def __post_init__(self) -> None:
        self.served_by_time = BucketCounter(self.bucket_width_s)
        self.forwards_by_time = BucketCounter(self.bucket_width_s)
        self.drops_by_time = BucketCounter(self.bucket_width_s)
        self.queue_delay = LatencyHistogram(lo=1e-6, hi=100.0)

    # -- recording helpers --------------------------------------------------
    def record_served(self, now: float) -> None:
        self.ops_served += 1
        self.served_by_time.add(now)
        self.deltas.add("served")

    def record_forward(self, now: float) -> None:
        self.forwards += 1
        self.forwards_by_time.add(now)
        self.deltas.add("forwards")

    def record_queue_delay(self, delay_s: float) -> None:
        self.queue_delay.record(delay_s)

    def record_drop(self, now: float) -> None:
        self.drops += 1
        self.drops_by_time.add(now)
        self.deltas.add("drops")

    def record_hit(self) -> None:
        self.cache_hits += 1

    def record_miss(self) -> None:
        self.cache_misses += 1
        self.deltas.add("misses")

    # -- derived -------------------------------------------------------------
    @property
    def lookups(self) -> int:
        return self.cache_hits + self.cache_misses

    @property
    def hit_rate(self) -> float:
        return self.cache_hits / self.lookups if self.lookups else 0.0

    def throughput(self, t_start: float, t_end: float) -> float:
        """Ops/sec replied in the window."""
        if t_end <= t_start:
            return 0.0
        return self.served_by_time.count_in(t_start, t_end) / (t_end - t_start)


def aggregate_hit_rate(stats: "list[NodeStats]") -> float:
    hits = sum(s.cache_hits for s in stats)
    lookups = sum(s.lookups for s in stats)
    return hits / lookups if lookups else 0.0


def aggregate_forward_fraction(stats: "list[NodeStats]") -> float:
    served = sum(s.ops_served for s in stats)
    forwards = sum(s.forwards for s in stats)
    total = served + forwards
    return forwards / total if total else 0.0
