"""Adaptive metadata proxy tier (MIDAS-style) in front of the MDS cluster.

See :mod:`repro.proxy.tier` for the model and :class:`ProxySpec` for the
knobs.  ``ExperimentConfig.proxy = ProxySpec(...)`` wires the tier between
the clients and the cluster; ``None`` keeps the direct pre-proxy path.
"""

from .tier import ProxySpec, ProxyStats, ProxyTier

__all__ = ["ProxySpec", "ProxyStats", "ProxyTier"]
