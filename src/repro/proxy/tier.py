"""An adaptive proxy tier that absorbs metadata hotspots (MIDAS-style).

The paper's own answer to flash crowds is server-side: traffic control
(§4.4) replicates suddenly-popular metadata across the MDS cluster.  The
MIDAS line of work puts an *adaptive middleware tier in front of* the
cluster instead: proxies detect hot items from the request stream, serve
repeated hot reads from a short-TTL reply cache, and coalesce concurrent
identical reads into one upstream fetch — the authority sees one request
per TTL window instead of one per client.

Model
-----
Each :class:`ProxyNode` is a single-CPU station (service time
``ProxySpec.cpu_op_s``, far cheaper than an MDS op) fed by *key
affinity*: requests are routed by a stable hash of their path, so every
hot key is owned by exactly one proxy — its cache entry is filled once
per TTL window instead of once per proxy, and a mutation's invalidation
lands where the cached copy lives.  Every request pays one extra network hop into the proxy and one
out of it; misses additionally pay the full MDS round trip, so the proxy
is only a win when it actually absorbs work — the overload figures measure
exactly that trade against §4.4 traffic control.

Hotness reuses the popularity machinery (:class:`~repro.mds.popularity.
PopularityMap` keyed by ``(op, path)``): a decayed access counter above
``hot_threshold`` marks an item hot.  Only *hot, read-only* replies are
cached (TTL-bounded staleness) or coalesced; mutations always go upstream
and invalidate the touched paths, so a client can never read its own
write stale.

The tier exposes the cluster's client-facing surface (``submit``,
``strategy``, ``n_mds``, ``params``, ``tracer``), so closed- and open-loop
clients work unchanged whether they talk to the cluster or the tier.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, replace
from typing import Any, Dict, Generator, List, Optional, Tuple

from ..mds.messages import MdsReply, MdsRequest, OVERLOAD_ERROR
from ..model.backend import make_popularity_map
from ..sim import Environment, Event, Resource


@dataclass(frozen=True)
class ProxySpec:
    """Knobs for the proxy tier."""

    n_proxies: int = 2
    #: CPU to proxy one request (cache probe / relay) — metadata ops are
    #: ~6x more expensive at the MDS, which is what makes absorption pay
    cpu_op_s: float = 0.00005
    #: how long an absorbed reply may be served before going upstream again
    cache_ttl_s: float = 0.5
    #: decayed popularity at which an item counts as hot
    hot_threshold: float = 30.0
    popularity_halflife_s: float = 0.5
    #: merge concurrent identical hot reads into one upstream request
    coalesce: bool = True
    #: reply-cache entries per proxy (oldest-first eviction)
    max_cached_paths: int = 4096
    #: times the designated hot-fetch is re-submitted when admission
    #: control sheds it (the fetch carries every coalesced waiter, so
    #: giving up on the first overload reply would fail them all —
    #: exactly when absorption matters most)
    overload_retries: int = 6
    #: initial retry backoff; doubles per attempt, alternating MDS nodes
    retry_backoff_s: float = 0.0005

    def validate(self) -> "ProxySpec":
        if self.n_proxies < 1:
            raise ValueError("n_proxies must be >= 1")
        if self.cpu_op_s < 0:
            raise ValueError("cpu_op_s must be non-negative")
        if self.cache_ttl_s <= 0:
            raise ValueError("cache_ttl_s must be positive")
        if self.hot_threshold <= 0:
            raise ValueError("hot_threshold must be positive")
        if self.popularity_halflife_s <= 0:
            raise ValueError("popularity_halflife_s must be positive")
        if self.max_cached_paths < 1:
            raise ValueError("max_cached_paths must be >= 1")
        if self.overload_retries < 0:
            raise ValueError("overload_retries must be non-negative")
        if self.retry_backoff_s < 0:
            raise ValueError("retry_backoff_s must be non-negative")
        return self


@dataclass
class ProxyStats:
    """Counters for one proxy node."""

    requests: int = 0       # everything routed through this proxy
    absorbed: int = 0       # hot reads served from the reply cache
    coalesced: int = 0      # hot reads merged into an in-flight upstream
    forwarded: int = 0      # requests that went to the MDS cluster
    invalidations: int = 0  # cache entries dropped by mutations
    retries: int = 0        # hot fetches re-submitted after overload drops

    def merge(self, other: "ProxyStats") -> None:
        self.requests += other.requests
        self.absorbed += other.absorbed
        self.coalesced += other.coalesced
        self.forwarded += other.forwarded
        self.invalidations += other.invalidations
        self.retries += other.retries


#: reply-cache / coalescing key: the same path means different things to
#: different ops (an OPEN reply is not a READDIR reply)
_Key = Tuple[Any, Any]


class ProxyNode:
    """One proxy: a cheap single-CPU station with a hot-reply cache."""

    def __init__(self, env: Environment, proxy_id: int, tier: "ProxyTier",
                 spec: ProxySpec) -> None:
        self.env = env
        self.proxy_id = proxy_id
        self.tier = tier
        self.spec = spec
        self.cpu = Resource(env, capacity=1)
        self.popularity = make_popularity_map(spec.popularity_halflife_s)
        self.stats = ProxyStats()
        #: key -> (reply, cached_at); insertion-ordered for FIFO eviction
        self._cache: Dict[_Key, Tuple[MdsReply, float]] = {}
        #: key -> waiters piggybacking on an in-flight upstream request
        self._inflight: Dict[_Key, List[Tuple[Event, MdsRequest, float]]] = {}

    # ------------------------------------------------------------------
    def serve(self, request: MdsRequest, dest: int,
              done: Event) -> Generator[Event, Any, None]:
        env = self.env
        spec = self.spec
        submitted = request.submitted_at
        yield env.timeout(self.tier.net_hop_s)  # client -> proxy hop
        read = not request.is_mutation
        key: _Key = (request.op, request.path)
        if read:
            hot = (self.popularity.add(key, env.now)
                   >= spec.hot_threshold)
            if hot:
                cached = self._cache.get(key)
                if cached is not None:
                    reply, at = cached
                    # stale-while-revalidate: while a refresher is already
                    # in flight, keep serving the stale entry — stalling
                    # the whole burst behind one upstream fetch is the
                    # worse trade for TTL-bounded metadata reads
                    if (env.now - at <= spec.cache_ttl_s
                            or (spec.coalesce and key in self._inflight)):
                        yield from self._cpu(spec.cpu_op_s)
                        self.stats.absorbed += 1
                        # served here: zero MDS hops this time around
                        self._finish(done, reply, submitted, forwarded=0)
                        return
                    # stale with no refresher in flight: fall through and
                    # refresh; the entry stays cached so arrivals during
                    # the refresh are served stale, and it remains a
                    # fallback if admission control sheds the refresh
                if spec.coalesce:
                    waiters = self._inflight.get(key)
                    if waiters is not None:
                        self.stats.coalesced += 1
                        waiters.append((done, request, submitted))
                        return
                    self._inflight[key] = []

        yield from self._cpu(spec.cpu_op_s)
        self.stats.forwarded += 1
        reply = yield self.tier.cluster.submit(dest, request)
        request.done = None
        if read and key in self._inflight:
            # the designated hot fetch carries every coalesced waiter, so
            # an admission-control shed would fail the whole burst exactly
            # when absorption matters most: back off and retry, rotating
            # across MDS nodes to dodge the overloaded inbox
            attempt = 0
            while (not reply.ok and reply.error == OVERLOAD_ERROR
                   and attempt < spec.overload_retries):
                # don't hold coalesced waiters through the whole backoff
                # chain: flush them with the shed reply now (a cheap,
                # explicit drop) and let only the fetch itself keep
                # retrying — new arrivals coalesce onto the next attempt
                waiters = self._inflight.get(key)
                if waiters:
                    for wdone, _wreq, wsub in waiters:
                        self._finish(wdone, reply, wsub,
                                     forwarded=reply.forwarded)
                    waiters.clear()
                yield env.timeout(spec.retry_backoff_s * (1 << attempt))
                attempt += 1
                self.stats.retries += 1
                self.stats.forwarded += 1
                retry_dest = (dest + attempt) % self.tier.cluster.n_mds
                reply = yield self.tier.cluster.submit(retry_dest, request)
                request.done = None
        if read:
            if reply.ok:
                self._remember(key, reply)
            elif reply.error == OVERLOAD_ERROR:
                cached = self._cache.get(key)
                if cached is not None:
                    # refresh shed even after retries: a stale hot reply
                    # beats failing everyone who piggybacked on the fetch
                    self.stats.absorbed += 1
                    reply = cached[0]
            waiters = self._inflight.pop(key, None)
            if waiters:
                for wdone, _wreq, wsub in waiters:
                    self._finish(wdone, reply, wsub,
                                 forwarded=reply.forwarded)
        else:
            self.tier.invalidate(request)
        self._finish(done, reply, submitted, forwarded=reply.forwarded)

    # ------------------------------------------------------------------
    def _cpu(self, hold_s: float) -> Generator[Event, Any, None]:
        hold = self.cpu.acquire(hold_s)
        if hold is not None:  # uncontended fast lane: one event
            yield hold
        else:
            yield from self.cpu.use(hold_s)

    def _finish(self, done: Event, reply: MdsReply, submitted_at: float,
                *, forwarded: int) -> None:
        """Deliver ``reply`` to the client after the proxy->client hop."""
        env = self.env
        net = self.tier.net_hop_s
        final = replace(reply, forwarded=forwarded,
                        latency_s=env.now - submitted_at)
        timer = env.timeout(net, final)
        timer.callbacks.append(lambda ev, d=done: d.succeed(ev._value))

    def _remember(self, key: _Key, reply: MdsReply) -> None:
        cache = self._cache
        if key in cache:
            del cache[key]  # refresh insertion order
        elif len(cache) >= self.spec.max_cached_paths:
            del cache[next(iter(cache))]
        cache[key] = (reply, self.env.now)

    def _invalidate(self, request: MdsRequest) -> None:
        """A mutation went upstream: drop every cached reply it staled."""
        for path in (request.path, request.dst_path):
            if path is None:
                continue
            stale = [key for key in self._cache if key[1] == path]
            for key in stale:
                del self._cache[key]
                self.stats.invalidations += 1


class ProxyTier:
    """The client-facing front: routes every request through a proxy."""

    def __init__(self, env: Environment, cluster, spec: ProxySpec) -> None:
        spec.validate()
        self.env = env
        self.cluster = cluster
        self.spec = spec
        self.net_hop_s = cluster.params.net_hop_s
        self.nodes: List[ProxyNode] = [
            ProxyNode(env, i, self, spec) for i in range(spec.n_proxies)]

    # -- the cluster surface clients actually use ----------------------
    @property
    def strategy(self):
        return self.cluster.strategy

    @property
    def n_mds(self) -> int:
        return self.cluster.n_mds

    @property
    def params(self):
        return self.cluster.params

    @property
    def tracer(self):
        return self.cluster.tracer

    def submit(self, dest: int, request: MdsRequest) -> Event:
        """Route ``request`` through the proxy owning its path; returns
        the completion event the client waits on (the proxy keeps its own
        upstream event, so the MDS round trip stays invisible)."""
        done = self.env.event()
        request.submitted_at = self.env.now
        node = self.nodes[self._route(request.path)]
        node.stats.requests += 1
        self.env.process(node.serve(request, dest, done))
        return done

    def _route(self, path) -> int:
        """Key-affinity routing: a stable hash of the path (``zlib.crc32``
        — Python's ``hash()`` is salted per process, which would make
        fixed-seed runs irreproducible)."""
        return zlib.crc32(str(path).encode()) % len(self.nodes)

    def invalidate(self, request: MdsRequest) -> None:
        """Drop every cached reply ``request`` staled, on every proxy
        (a rename's destination path may be owned by a different proxy
        than the one the mutation was routed to)."""
        for node in self.nodes:
            node._invalidate(request)

    # -- measurement ----------------------------------------------------
    def stats_dict(self) -> Dict[str, int]:
        """Aggregated counters over all proxies (summary-friendly)."""
        total = ProxyStats()
        for node in self.nodes:
            total.merge(node.stats)
        return {"requests": total.requests, "absorbed": total.absorbed,
                "coalesced": total.coalesced, "forwarded": total.forwarded,
                "invalidations": total.invalidations,
                "retries": total.retries}
