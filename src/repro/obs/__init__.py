"""Request-level tracing and latency observability.

``repro.obs`` answers "where did this request's time go?" for the
simulated MDS cluster: sampled requests carry a :class:`Trace` whose
:class:`Span` s cover every stage of the request path (network hops, inbox
queueing, CPU, cache misses against OSDs or peers, journal appends,
coherence callbacks, the reply hop), while *all* requests feed per-op-type
streaming latency histograms.  See docs/ARCHITECTURE.md ("Observability")
for the span taxonomy and sampling semantics.
"""

from .sinks import (JsonlSink, NullSink, RingBufferSink, TeeSink, TraceSink,
                    export_jsonl, read_jsonl)
from .span import REPLY_SPANS, Span, Trace
from .tracer import Tracer

__all__ = [
    "JsonlSink",
    "NullSink",
    "REPLY_SPANS",
    "RingBufferSink",
    "Span",
    "TeeSink",
    "Trace",
    "TraceSink",
    "Tracer",
    "export_jsonl",
    "read_jsonl",
]
