"""Spans and traces: where one request's simulated time goes.

A :class:`Trace` rides an :class:`~repro.mds.messages.MdsRequest` through
the cluster; each stage that consumes simulated time appends a completed
:class:`Span`.  Spans of one trace are disjoint in time (the request is in
exactly one stage at any instant), so their durations sum to the observed
client latency up to the network-hop granularity of the model.

Span taxonomy (the ``name`` field):

=====================  ====================================================
``net.hop``            one network traversal toward an MDS (submit,
                       forward, or failover bounce)
``node.queue``         waiting in a node's inbox for a free worker
``node.cpu``           request processing CPU (includes CPU queueing)
``node.forward``       CPU to receive-and-forward a misdirected request
``osd.read``           cache-miss fetch from the shared object store
                       (directory-grain reads prefetch siblings, §4.5)
``peer.fetch``         remote prefix/replica fetch from the authority
                       (§4.2); the peer's own disk miss is inside this span
``journal.append``     bounded-log commit of a mutation (§4.6)
``coherence.invalidate``  replica-invalidation callbacks before a mutation
``lazy.update``        Lazy Hybrid deferred-update applied on access
``net.gather``         cross-node gather (fragmented readdir, two-directory
                       rename)
``traffic.replicate``  traffic-control replica broadcast (§4.4)
``net.reply``          the reply's network traversal back to the client
=====================  ====================================================

Counters that take no simulated time (cache hits during traversal) land in
:attr:`Trace.notes` instead of producing zero-width spans.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: Span names that are not part of the server-side service time: the reply
#: hop happens after the serving node stamped the request's latency.
REPLY_SPANS = frozenset({"net.reply"})


@dataclass(slots=True)
class Span:
    """One timestamped stage of a request's journey."""

    name: str
    start_s: float
    end_s: float
    node: Optional[int] = None
    detail: Optional[str] = None

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    def to_dict(self) -> dict:
        out = {"name": self.name, "start_s": self.start_s,
               "end_s": self.end_s}
        if self.node is not None:
            out["node"] = self.node
        if self.detail is not None:
            out["detail"] = self.detail
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        return cls(name=data["name"], start_s=data["start_s"],
                   end_s=data["end_s"], node=data.get("node"),
                   detail=data.get("detail"))


@dataclass(slots=True)
class Trace:
    """Every span one sampled request opened, client submit to reply."""

    trace_id: int
    op: str
    path: str
    client_id: int
    submitted_at: float
    completed_at: float = 0.0
    ok: bool = True
    spans: List[Span] = field(default_factory=list)
    #: zero-cost event counters (e.g. ``cache.hit`` during traversal)
    notes: Dict[str, int] = field(default_factory=dict)

    # -- recording (hot path: called from inside the simulation) ----------
    def add(self, name: str, start_s: float, end_s: float,
            node: Optional[int] = None, detail: Optional[str] = None) -> None:
        self.spans.append(Span(name, start_s, end_s, node, detail))

    def bump(self, key: str, by: int = 1) -> None:
        self.notes[key] = self.notes.get(key, 0) + by

    # -- accounting --------------------------------------------------------
    @property
    def latency_s(self) -> float:
        """Client-observed latency: submit to reply arrival."""
        return self.completed_at - self.submitted_at

    @property
    def span_sum_s(self) -> float:
        """Total time attributed to spans (including the reply hop)."""
        return sum(span.duration_s for span in self.spans)

    @property
    def unaccounted_s(self) -> float:
        """Latency the spans do not explain (should be ~0)."""
        return self.latency_s - self.span_sum_s

    def by_stage(self) -> Dict[str, float]:
        """Total duration per span name, insertion-ordered."""
        out: Dict[str, float] = {}
        for span in self.spans:
            out[span.name] = out.get(span.name, 0.0) + span.duration_s
        return out

    # -- presentation ------------------------------------------------------
    def render(self, width: int = 64) -> str:
        """ASCII timeline of this request (one row per span)."""
        from ..metrics.asciichart import render_timeline

        rows = [(f"{s.name}" + (f"@{s.node}" if s.node is not None else ""),
                 s.start_s, s.end_s) for s in self.spans]
        title = (f"trace {self.trace_id}: {self.op} {self.path} "
                 f"client={self.client_id} "
                 f"latency={self.latency_s * 1e3:.3f}ms "
                 f"{'ok' if self.ok else 'ERROR'}")
        return render_timeline(rows, origin=self.submitted_at,
                               width=width, title=title)

    # -- serialization -----------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "op": self.op,
            "path": self.path,
            "client_id": self.client_id,
            "submitted_at": self.submitted_at,
            "completed_at": self.completed_at,
            "ok": self.ok,
            "latency_s": self.latency_s,
            "spans": [span.to_dict() for span in self.spans],
            "notes": dict(self.notes),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Trace":
        return cls(
            trace_id=data["trace_id"], op=data["op"], path=data["path"],
            client_id=data["client_id"], submitted_at=data["submitted_at"],
            completed_at=data["completed_at"], ok=data["ok"],
            spans=[Span.from_dict(s) for s in data.get("spans", ())],
            notes=dict(data.get("notes", {})))
