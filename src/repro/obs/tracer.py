"""The tracer: sampling decisions, trace lifecycle, latency histograms.

One :class:`Tracer` serves a whole simulation.  It makes two independent
measurements:

* **Latency histograms** — every completed request, sampled or not, lands
  in a per-op-type :class:`~repro.metrics.histogram.LatencyHistogram`
  (O(1) per request), so p50/p95/p99 are always available.
* **Span traces** — a ``sample_rate`` fraction of requests carry a
  :class:`~repro.obs.span.Trace` that stages along the request path append
  spans to.  At 0.0 (the default) :meth:`maybe_trace` returns ``None``
  without consuming randomness, so the hot path stays cheap and the
  simulation's event ordering is bit-identical to an untraced run.

Sampling uses a private seeded RNG — deterministic across runs and fully
separate from the simulation's own streams, so changing the sample rate
never perturbs workload randomness.
"""

from __future__ import annotations

import random
from typing import Dict, Optional

from ..metrics.histogram import LatencyHistogram, LatencySummary
from .sinks import NullSink, TraceSink
from .span import Trace


def _op_name(op) -> str:
    """Accept an OpType enum or a plain string without importing mds."""
    return getattr(op, "value", None) or str(op)


class Tracer:
    """Per-simulation tracing front-end."""

    def __init__(self, sample_rate: float = 0.0,
                 sink: Optional[TraceSink] = None, seed: int = 0) -> None:
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(
                f"sample_rate must be in [0, 1], got {sample_rate}")
        self.sample_rate = sample_rate
        self.sink: TraceSink = sink if sink is not None else NullSink()
        # xor with a constant so tracer decisions never mirror any workload
        # stream that happens to share the config seed
        self._rng = random.Random(seed ^ 0x0B5E7FED)
        self.latency_by_op: Dict[str, LatencyHistogram] = {}
        #: op object (enum member or string) -> its histogram; skips the
        #: per-call ``_op_name`` getattr on the request hot path
        self._hist_for_op: Dict[object, LatencyHistogram] = {}
        self.latency_overall = LatencyHistogram()
        self.started = 0
        self.finished = 0
        self._next_id = 0

    # -- span tracing ------------------------------------------------------
    @property
    def enabled(self) -> bool:
        return self.sample_rate > 0.0

    def maybe_trace(self, op, path, client_id: int,
                    now: float) -> Optional[Trace]:
        """A new :class:`Trace` for this request, or ``None`` (unsampled)."""
        rate = self.sample_rate
        if rate <= 0.0:
            return None
        if rate < 1.0 and self._rng.random() >= rate:
            return None
        self._next_id += 1
        self.started += 1
        return Trace(trace_id=self._next_id, op=_op_name(op), path=str(path),
                     client_id=client_id, submitted_at=now)

    def finish(self, trace: Trace, now: float, ok: bool) -> None:
        """Seal a trace at reply arrival and hand it to the sink."""
        trace.completed_at = now
        trace.ok = ok
        self.finished += 1
        self.sink.emit(trace)

    # -- latency histograms ------------------------------------------------
    def record_latency(self, op, seconds: float) -> None:
        """Record one completed request (always, independent of sampling)."""
        hist = self._hist_for_op.get(op)
        if hist is None:
            name = _op_name(op)
            hist = self.latency_by_op.get(name)
            if hist is None:
                hist = self.latency_by_op[name] = LatencyHistogram()
            self._hist_for_op[op] = hist
        hist.record(seconds)
        self.latency_overall.record(seconds)

    def latency_summaries(self) -> Dict[str, LatencySummary]:
        """Per-op-type percentile digests, op name -> summary."""
        return {name: hist.summary()
                for name, hist in sorted(self.latency_by_op.items())}
