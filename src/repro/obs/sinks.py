"""Where finished traces go: ring buffer, JSONL, or nowhere.

Sinks receive each :class:`~repro.obs.span.Trace` exactly once, when the
client absorbs the reply.  The ring buffer is the in-memory default (tests
and interactive use); the JSONL sink streams traces to disk for offline
analysis (one JSON object per line, read back with :func:`read_jsonl`).
"""

from __future__ import annotations

import json
from collections import deque
from typing import Iterable, Iterator, List, Optional, Protocol

from .span import Trace


class TraceSink(Protocol):
    """Anything that can accept finished traces."""

    def emit(self, trace: Trace) -> None: ...


class NullSink:
    """Discards everything (tracing enabled purely for histograms)."""

    def emit(self, trace: Trace) -> None:
        pass


class RingBufferSink:
    """Keeps the most recent ``capacity`` traces in memory."""

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._traces: "deque[Trace]" = deque(maxlen=capacity)
        self.emitted = 0  # total ever emitted (ring may have dropped some)

    def emit(self, trace: Trace) -> None:
        self._traces.append(trace)
        self.emitted += 1

    def __len__(self) -> int:
        return len(self._traces)

    def __iter__(self) -> Iterator[Trace]:
        return iter(self._traces)

    @property
    def traces(self) -> List[Trace]:
        return list(self._traces)

    def clear(self) -> None:
        self._traces.clear()


class JsonlSink:
    """Appends each finished trace as one JSON line to ``path``.

    The file is opened lazily on first emit and must be closed (or the sink
    used as a context manager) to guarantee a complete flush.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self.emitted = 0
        self._fp = None

    def emit(self, trace: Trace) -> None:
        if self._fp is None:
            self._fp = open(self.path, "w", encoding="utf-8")
        json.dump(trace.to_dict(), self._fp, separators=(",", ":"))
        self._fp.write("\n")
        self.emitted += 1

    def close(self) -> None:
        if self._fp is not None:
            self._fp.close()
            self._fp = None

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class TeeSink:
    """Fans each trace out to several sinks (e.g. ring buffer + JSONL)."""

    def __init__(self, *sinks: TraceSink) -> None:
        self.sinks = list(sinks)

    def emit(self, trace: Trace) -> None:
        for sink in self.sinks:
            sink.emit(trace)


def export_jsonl(traces: Iterable[Trace], path: str) -> int:
    """Write ``traces`` to ``path`` as JSONL; returns the number written."""
    count = 0
    with open(path, "w", encoding="utf-8") as fp:
        for trace in traces:
            json.dump(trace.to_dict(), fp, separators=(",", ":"))
            fp.write("\n")
            count += 1
    return count


def read_jsonl(path: str, limit: Optional[int] = None) -> List[Trace]:
    """Load traces back from a JSONL export."""
    out: List[Trace] = []
    with open(path, "r", encoding="utf-8") as fp:
        for line in fp:
            line = line.strip()
            if not line:
                continue
            out.append(Trace.from_dict(json.loads(line)))
            if limit is not None and len(out) >= limit:
                break
    return out
