"""The public facade: one import surface for building, running and
observing experiments.

Everything ``examples/`` and ``benchmarks/`` need lives here::

    from repro.api import ExperimentConfig, run_experiment

    result = run_experiment(ExperimentConfig(n_mds=4,
                                             trace_sample_rate=1.0))
    print(result.summary.format())        # aggregates + per-op p50/p95/p99
    print(result.traces[0].render())      # where one request's time went

Three layers, lowest first:

* ``build_simulation(config) -> Simulation`` — wire everything, run it
  yourself (``sim.run_to``, ``sim.summary()``, ``sim.traces()``).
* ``run_experiment(config) -> RunResult`` — build, run to completion,
  return aggregated stats plus collected traces; optionally export the
  traces as JSONL.
* ``run_many(configs)`` / ``run_many_timeline(configs)`` — fan a whole
  sweep of independent configs across worker processes with input-order,
  bit-identical-to-serial result assembly (``REPRO_PARALLEL=0`` forces
  serial; a failed config yields a ``TaskError`` in its slot).
* the figure drivers (``fig2`` … ``fig7``, ``run_steady_state``,
  ``run_timeline``) — the paper's evaluation, now submitting their sweeps
  through ``run_many``.

Deep imports of ``repro.experiments.builder`` are deprecated; that path
still works but warns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .experiments._build import Simulation, build_simulation
from .experiments.config import (SHARDS_ENV, EnvGates, ExperimentConfig,
                                 env_gates, env_scale, parse_parallel_env,
                                 parse_shards_env, resolve_shard_count)
from .experiments.extensions import extA_scientific, scientific_config
from .experiments.figures import (FIGURES, FigureResult, fig2, fig3, fig4,
                                  fig5, fig6, fig7, flash_config,
                                  run_shift_experiment, scaling_config,
                                  shift_config)
from .experiments.overload import (fig_hotspot, fig_overload,
                                   hotspot_config, overload_config)
from .experiments.runner import (SteadyStateResult, TimelineResult,
                                 run_steady_state, run_timeline)
from .experiments.summary import ClusterSummary
from .experiments.workload import (ClosedLoopSpec, OpenLoopSpec,
                                   WorkloadSpec, normalize_workload)
from .mds import SimParams
from .metrics import LatencyHistogram, LatencySummary
from .obs import (JsonlSink, RingBufferSink, Span, Trace, Tracer,
                  export_jsonl, read_jsonl)
from .parallel import (SweepError, TaskError, require_ok, run_many,
                       run_many_timeline)
from .model.backend import (MODEL_ENV, compiled_model_viable, model_info,
                            parse_model_env, resolve_model)
from .proxy import ProxySpec, ProxyTier
from .shard import (ShardingUnsupported, run_sharded, run_sharded_summary,
                    shard_viability, sharded_config)
from .sim.backend import (KERNEL_ENV, backend_of, compiled_viable,
                          kernel_info, make_environment, parse_kernel_env,
                          resolve_kernel)


@dataclass
class RunResult:
    """What :func:`run_experiment` hands back."""

    config: ExperimentConfig
    summary: ClusterSummary
    #: sampled span traces (bounded by ``config.trace_buffer``)
    traces: List[Trace] = field(default_factory=list)
    #: where the JSONL export landed, if one was requested
    jsonl_path: Optional[str] = None

    @property
    def latency_by_op(self) -> Dict[str, LatencySummary]:
        """Per-op-type p50/p95/p99 digests (op name -> summary)."""
        return self.summary.latency_by_op

    # -- overload accessors (all zero for classic closed-loop runs) --------
    @property
    def offered_ops(self) -> int:
        """Requests submitted by open-loop sources."""
        return self.summary.offered_ops

    @property
    def dropped_ops(self) -> int:
        """Requests shed by admission control (bounded inboxes)."""
        return self.summary.dropped_ops

    @property
    def slo_violations(self) -> int:
        """Completed ops whose latency missed the workload's SLO."""
        return self.summary.slo_violations

    @property
    def goodput_ops_per_s(self) -> float:
        """Within-SLO completions per second over the measure window."""
        return self.summary.goodput_ops_per_s


def run_experiment(config: ExperimentConfig, *,
                   run_until: Optional[float] = None,
                   jsonl_path: Optional[str] = None) -> RunResult:
    """Build a simulation, run it, and return aggregated observability.

    Tracing is wired per ``config.trace_sample_rate`` (0.0 by default:
    histograms only, bit-identical event ordering to an untraced run).
    ``jsonl_path`` additionally exports every collected trace as JSONL
    for offline analysis.
    """
    sim = build_simulation(config)
    sim.run_to(config.run_until_s if run_until is None else run_until)
    traces = sim.traces()
    if jsonl_path is not None:
        export_jsonl(traces, jsonl_path)
    return RunResult(config=config, summary=sim.summary(), traces=traces,
                     jsonl_path=jsonl_path)


__all__ = [
    # configuration & construction
    "ClosedLoopSpec",
    "EnvGates",
    "ExperimentConfig",
    "OpenLoopSpec",
    "ProxySpec",
    "ProxyTier",
    "SimParams",
    "Simulation",
    "WorkloadSpec",
    "build_simulation",
    "env_gates",
    "env_scale",
    "normalize_workload",
    "parse_parallel_env",
    # kernel backend selection
    "KERNEL_ENV",
    "backend_of",
    "compiled_viable",
    "kernel_info",
    "make_environment",
    "parse_kernel_env",
    "resolve_kernel",
    # model backend selection
    "MODEL_ENV",
    "compiled_model_viable",
    "model_info",
    "parse_model_env",
    "resolve_model",
    # one-call running
    "RunResult",
    "run_experiment",
    # parallel sweep execution
    "SweepError",
    "TaskError",
    "require_ok",
    "run_many",
    "run_many_timeline",
    # within-experiment sharding
    "SHARDS_ENV",
    "ShardingUnsupported",
    "parse_shards_env",
    "resolve_shard_count",
    "run_sharded",
    "run_sharded_summary",
    "shard_viability",
    "sharded_config",
    # typed summaries
    "ClusterSummary",
    "LatencyHistogram",
    "LatencySummary",
    # observability types
    "JsonlSink",
    "RingBufferSink",
    "Span",
    "Trace",
    "Tracer",
    "export_jsonl",
    "read_jsonl",
    # figure drivers & their configs
    "FIGURES",
    "FigureResult",
    "SteadyStateResult",
    "TimelineResult",
    "extA_scientific",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig_hotspot",
    "fig_overload",
    "flash_config",
    "hotspot_config",
    "overload_config",
    "run_shift_experiment",
    "run_steady_state",
    "run_timeline",
    "scaling_config",
    "scientific_config",
    "shift_config",
]
