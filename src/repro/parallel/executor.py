"""Process-pool sweep execution with deterministic assembly.

The figure experiments are embarrassingly parallel: a sweep is dozens of
independent ``ExperimentConfig``\\ s (strategies × cluster sizes × seeds)
whose only shared state is read-only module code.  :func:`run_many` fans
such a sweep across worker processes and reassembles results **in input
order**, so callers see exactly what the historical list comprehension
produced — the serial/parallel equivalence tests assert bit-identical
:class:`~repro.experiments.runner.SteadyStateResult`\\ s.

Design points:

* **Determinism** — every simulation seeds its own RNG streams from its
  config, so placement across workers cannot perturb results; assembly is
  by submission index, never completion order.
* **Isolation** — workers enable the per-process namespace-snapshot memo
  (:func:`repro.experiments._build.enable_snapshot_memo`), so tasks sharing
  ``(scale, seed)`` don't regenerate the same tree; each task still gets a
  private deep copy.
* **Failure capture** — a config that raises (or exceeds ``timeout_s``)
  yields a :class:`TaskError` in its slot instead of killing the sweep; a
  hard worker crash (pool breakage) falls back to in-process execution for
  the unfinished tasks.
* **Reproducible escape hatch** — ``REPRO_PARALLEL=0`` (or ``serial`` /
  ``off``), or any config with ``parallel=False``, forces serial in-process
  execution for CI and debugging; ``REPRO_PARALLEL=<n>`` pins the worker
  count.

A custom ``task`` callable that is not one of the canonical runners is
always executed serially in-process: it may be a closure or a test double
that cannot cross a process boundary, and unit tests rely on patching the
runner by name.
"""

from __future__ import annotations

import os
import signal
import traceback
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Union

import multiprocessing

from ..experiments.config import ExperimentConfig, PARALLEL_ENV, \
    parse_parallel_env
from ..experiments.runner import (SteadyStateResult, TimelineResult,
                                  run_steady_state, run_timeline)

# PARALLEL_ENV is re-exported here for backward compatibility; the parsing
# itself lives with the other env gates in repro.experiments.config
# (env_gates / parse_parallel_env).


class SweepError(RuntimeError):
    """Raised by :func:`require_ok` when a sweep contains failed tasks."""


@dataclass(frozen=True)
class TaskError:
    """Structured record of one failed sweep task.

    Occupies the failed config's slot in the result list so the sweep's
    shape is preserved; ``kind`` distinguishes an in-task exception from a
    worker-side timeout or a hard crash of the worker process itself.
    """

    config: ExperimentConfig
    kind: str                 # "exception" | "timeout" | "crash"
    error_type: str
    message: str
    traceback: str = ""

    def __str__(self) -> str:
        return (f"[{self.kind}] {self.error_type}: {self.message} "
                f"(strategy={self.config.strategy!r}, "
                f"n_mds={self.config.n_mds}, seed={self.config.seed})")


SweepResult = Union[SteadyStateResult, TimelineResult, TaskError]


def require_ok(results: Sequence[SweepResult]) -> List:
    """Return ``results`` unchanged, raising :class:`SweepError` on failures."""
    errors = [r for r in results if isinstance(r, TaskError)]
    if errors:
        first = errors[0]
        detail = f"\n--- first failure ---\n{first.traceback}" \
            if first.traceback else ""
        raise SweepError(
            f"{len(errors)}/{len(results)} sweep task(s) failed; "
            f"first: {first}{detail}")
    return list(results)


# ---------------------------------------------------------------------------
# Mode resolution
# ---------------------------------------------------------------------------
def resolve_mode(configs: Sequence[ExperimentConfig],
                 mode: Optional[str] = None,
                 max_workers: Optional[int] = None) -> "tuple[bool, int]":
    """Decide ``(parallel?, n_workers)`` for a sweep.

    Precedence: explicit ``mode`` argument > any config with
    ``parallel=False`` > ``REPRO_PARALLEL`` > auto (parallel iff the host
    has more than one CPU and the sweep more than one task).
    """
    cpus = os.cpu_count() or 1
    workers = max_workers or min(cpus, max(1, len(configs)))

    if mode is not None:
        token = mode.strip().lower()
        if token == "serial":
            return False, 1
        if token == "parallel":
            return True, workers
        raise ValueError(f"mode must be 'serial' or 'parallel', got {mode!r}")

    if any(cfg.parallel is False for cfg in configs):
        return False, 1

    decision, pinned = parse_parallel_env(os.environ.get(PARALLEL_ENV))
    if decision is False:
        return False, 1
    if decision is True:
        assert pinned is not None
        return True, (max_workers or pinned)

    if cpus <= 1 or len(configs) <= 1:
        return False, 1
    return True, workers


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------
def _pool_init() -> None:
    """Per-worker initialiser: turn on the namespace-snapshot memo."""
    from ..experiments._build import enable_snapshot_memo

    enable_snapshot_memo(True)


class _TaskTimeout(BaseException):
    """Internal alarm signal; BaseException so task code can't swallow it."""


def _alarm_handler(_signum, _frame):  # pragma: no cover - signal context
    raise _TaskTimeout()


def _guarded(task: Callable, config: ExperimentConfig, kwargs: dict,
             timeout_s: Optional[float]) -> SweepResult:
    """Run one task, converting any failure into a :class:`TaskError`.

    ``timeout_s`` is enforced with ``SIGALRM`` where available (Unix main
    thread); elsewhere the task simply runs to completion.
    """
    use_alarm = timeout_s is not None and hasattr(signal, "setitimer")
    old_handler = None
    if use_alarm:
        try:
            old_handler = signal.signal(signal.SIGALRM, _alarm_handler)
            signal.setitimer(signal.ITIMER_REAL, timeout_s)
        except ValueError:  # not the main thread: no alarm enforcement
            use_alarm = False
            old_handler = None
    try:
        return task(config, **kwargs)
    except _TaskTimeout:
        return TaskError(config=config, kind="timeout",
                         error_type="TimeoutError",
                         message=f"task exceeded {timeout_s}s")
    except Exception as exc:
        return TaskError(config=config, kind="exception",
                         error_type=type(exc).__name__, message=str(exc),
                         traceback=traceback.format_exc())
    finally:
        if use_alarm:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            if old_handler is not None:
                signal.signal(signal.SIGALRM, old_handler)


def _steady_task(config: ExperimentConfig, kwargs: dict,
                 timeout_s: Optional[float]) -> SweepResult:
    return _guarded(run_steady_state, config, kwargs, timeout_s)


def _timeline_task(config: ExperimentConfig, kwargs: dict,
                   timeout_s: Optional[float]) -> SweepResult:
    return _guarded(run_timeline, config, kwargs, timeout_s)


# ---------------------------------------------------------------------------
# Driver side
# ---------------------------------------------------------------------------
def _run_sweep(worker: Callable, task: Callable,
               configs: Sequence[ExperimentConfig], kwargs: dict,
               mode: Optional[str], max_workers: Optional[int],
               timeout_s: Optional[float],
               progress: Optional[Callable[[str], None]]) -> List[SweepResult]:
    configs = list(configs)
    if not configs:
        return []
    parallel, workers = resolve_mode(configs, mode, max_workers)

    if not parallel:
        # The serial path gets the same snapshot memo the pool workers use:
        # sweeps whose configs share (scale, seed) skip regenerating the
        # namespace tree in either mode, and results stay bit-identical
        # (each run receives a private deep copy of the pristine tree).
        from ..experiments._build import snapshot_memo

        results: List[SweepResult] = []
        with snapshot_memo(True):
            for i, cfg in enumerate(configs):
                results.append(_guarded(task, cfg, kwargs, timeout_s))
                if progress:
                    progress(f"task {i + 1}/{len(configs)} done (serial)")
        return results

    slots: List[Optional[SweepResult]] = [None] * len(configs)
    pending = dict()  # future -> index
    try:
        ctx = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods()
            else None)
        with ProcessPoolExecutor(max_workers=workers, mp_context=ctx,
                                 initializer=_pool_init) as pool:
            for i, cfg in enumerate(configs):
                pending[pool.submit(worker, cfg, kwargs, timeout_s)] = i
            for future, i in pending.items():
                try:
                    slots[i] = future.result()
                except BrokenExecutor:
                    raise
                except Exception as exc:  # unpicklable result etc.
                    slots[i] = TaskError(
                        config=configs[i], kind="crash",
                        error_type=type(exc).__name__, message=str(exc),
                        traceback=traceback.format_exc())
                if progress:
                    progress(f"task {i + 1}/{len(configs)} done "
                             f"({workers} workers)")
    except BrokenExecutor:
        # A worker died hard (OOM kill, segfault).  Finish the unfinished
        # tasks in-process so the sweep still returns one entry per config.
        for i, slot in enumerate(slots):
            if slot is None:
                slots[i] = _guarded(task, configs[i], kwargs, timeout_s)
                if progress:
                    progress(f"task {i + 1}/{len(configs)} done "
                             "(pool broke; in-process fallback)")
    return slots  # type: ignore[return-value]


def run_many(configs: Sequence[ExperimentConfig], *,
             mode: Optional[str] = None,
             max_workers: Optional[int] = None,
             timeout_s: Optional[float] = None,
             task: Optional[Callable[..., SteadyStateResult]] = None,
             progress: Optional[Callable[[str], None]] = None,
             ) -> List[SweepResult]:
    """Run ``run_steady_state`` over every config, fanned across processes.

    Returns one entry per config, in input order: a
    :class:`SteadyStateResult` on success or a :class:`TaskError` on
    failure.  Pass ``mode='serial'``/``'parallel'`` to override the
    ``REPRO_PARALLEL``/auto decision (see :func:`resolve_mode`), and
    ``timeout_s`` to bound each task's wall time.  A non-canonical ``task``
    (a stub, a closure) runs serially in-process.
    """
    if task is None or task is run_steady_state:
        return _run_sweep(_steady_task, run_steady_state, configs, {},
                          mode, max_workers, timeout_s, progress)
    return _run_sweep(_steady_task, task, configs, {}, "serial",
                      max_workers, timeout_s, progress)


def run_many_timeline(configs: Sequence[ExperimentConfig], *,
                      sample_interval_s: float = 1.0,
                      mode: Optional[str] = None,
                      max_workers: Optional[int] = None,
                      timeout_s: Optional[float] = None,
                      task: Optional[Callable[..., TimelineResult]] = None,
                      progress: Optional[Callable[[str], None]] = None,
                      ) -> List[SweepResult]:
    """Timeline variant of :func:`run_many` (one entry per config, in order)."""
    kwargs = {"sample_interval_s": sample_interval_s}
    if task is None or task is run_timeline:
        return _run_sweep(_timeline_task, run_timeline, configs, kwargs,
                          mode, max_workers, timeout_s, progress)
    return _run_sweep(_timeline_task, task, configs, kwargs, "serial",
                      max_workers, timeout_s, progress)
