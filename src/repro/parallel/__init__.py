"""Parallel sweep execution (see :mod:`repro.parallel.executor`).

One import surface::

    from repro.parallel import run_many, run_many_timeline, require_ok

``run_many`` fans independent experiment configs across worker processes
with input-order result assembly and per-task failure capture; set
``REPRO_PARALLEL=0`` (or ``ExperimentConfig(parallel=False)``) to force
serial execution with bit-identical results.
"""

from .executor import (PARALLEL_ENV, SweepError, TaskError, require_ok,
                       resolve_mode, run_many, run_many_timeline)

__all__ = [
    "PARALLEL_ENV",
    "SweepError",
    "TaskError",
    "require_ok",
    "resolve_mode",
    "run_many",
    "run_many_timeline",
]
