"""Whole-system integration scenarios across modules."""

import pytest

from repro.clients import Client, GeneralWorkload, GeneralWorkloadSpec
from repro.mds import MdsCluster, OpType, SimParams
from repro.namespace import Namespace, SnapshotSpec, generate_snapshot
from repro.partition import make_strategy, strategy_names
from repro.sim import Environment, RngStreams


def build(strategy_name, n_mds=4, seed=3, cache=300, **params_kw):
    env = Environment()
    streams = RngStreams(seed)
    ns = Namespace()
    snapshot = generate_snapshot(
        ns, SnapshotSpec(n_users=8, files_per_user=40), streams)
    strat = make_strategy(strategy_name, n_mds)
    strat.bind(ns)
    params = SimParams(cache_capacity=cache, journal_capacity=cache,
                       **params_kw)
    cluster = MdsCluster(env, ns, strat, params)
    cluster.start()
    wl = GeneralWorkload(ns, snapshot.user_roots,
                         GeneralWorkloadSpec(think_time_s=0.01))
    clients = [Client(env, i, cluster, wl, streams.py_stream(f"c{i}"))
               for i in range(24)]
    for c in clients:
        c.start()
    return env, ns, cluster, clients


@pytest.mark.parametrize("name", strategy_names())
def test_every_strategy_serves_a_full_workload(name):
    env, ns, cluster, clients = build(name)
    env.run(until=4.0)
    total = sum(c.stats.ops_completed for c in clients)
    errors = sum(c.stats.errors for c in clients)
    assert total > 500
    assert errors < 0.1 * total
    ns.verify_invariants()
    for node in cluster.nodes:
        node.cache.verify_invariants()


@pytest.mark.parametrize("name", strategy_names())
def test_namespace_consistent_under_concurrent_mutation(name):
    env, ns, cluster, clients = build(name)
    for checkpoint in (1.0, 2.0, 3.0):
        env.run(until=checkpoint)
        ns.verify_invariants()


def test_deterministic_end_to_end():
    def signature():
        env, ns, cluster, clients = build("DynamicSubtree", seed=11)
        env.run(until=3.0)
        return (sum(c.stats.ops_completed for c in clients),
                len(ns),
                sum(s.forwards for s in cluster.node_stats()),
                cluster.cluster_hit_rate())

    assert signature() == signature()


def test_mutations_are_serialized_at_the_authority():
    env, ns, cluster, clients = build("DynamicSubtree")
    env.run(until=3.0)
    # every journaled mutation happened on the node that owned the target:
    # spot-check that no node journals wildly more than it served
    for node in cluster.nodes:
        assert node.stats.journal_appends <= node.stats.ops_served * 2


def test_cache_capacity_respected_cluster_wide():
    env, ns, cluster, clients = build("DynamicSubtree", cache=150)
    env.run(until=3.0)
    for node in cluster.nodes:
        # overflow is tolerated only transiently; by quiescence-ish points
        # the cache should be within a small factor of its bound
        assert len(node.cache) <= 150 + 10


def test_journal_retirements_flow_to_tier2():
    env, ns, cluster, clients = build("DynamicSubtree", cache=100)
    env.run(until=5.0)
    retirements = sum(n.journal.stats.retirements for n in cluster.nodes)
    tier2 = sum(n.stats.tier2_writes for n in cluster.nodes)
    if retirements > 50:
        assert tier2 > 0
        # tier2_writes is credited when a flush batch completes, while the
        # store counts each transaction as it happens; a batch may still be
        # in flight when the clock stops
        assert tier2 <= cluster.object_store.total_writes


def test_forward_fraction_reasonable_for_subtree():
    env, ns, cluster, clients = build("StaticSubtree")
    env.run(until=4.0)
    # clients learn the partition quickly; most traffic is direct
    assert cluster.forward_fraction() < 0.25


def test_collaborative_caching_registers_replicas():
    env, ns, cluster, clients = build("DirHash")
    env.run(until=3.0)
    registered = sum(len(node.replicas) for node in cluster.nodes)
    replicas_cached = sum(
        1 for node in cluster.nodes
        for entry in node.cache.entries() if entry.replica)
    assert replicas_cached > 0
    assert registered > 0
