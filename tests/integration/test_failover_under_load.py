"""Integration: node failure and recovery while clients keep running."""

import pytest

from repro.clients import Client, GeneralWorkload, GeneralWorkloadSpec
from repro.mds import MdsCluster, SimParams, fail_node, recover_node
from repro.namespace import Namespace, SnapshotSpec, generate_snapshot
from repro.partition import make_strategy
from repro.sim import Environment, RngStreams


@pytest.fixture
def running_system():
    env = Environment()
    streams = RngStreams(13)
    ns = Namespace()
    snapshot = generate_snapshot(
        ns, SnapshotSpec(n_users=9, files_per_user=40), streams)
    strat = make_strategy("DynamicSubtree", 3)
    strat.bind(ns)
    cluster = MdsCluster(env, ns, strat,
                         SimParams(cache_capacity=400, journal_capacity=400))
    cluster.start()
    wl = GeneralWorkload(ns, snapshot.user_roots,
                         GeneralWorkloadSpec(think_time_s=0.01))
    clients = [Client(env, i, cluster, wl, streams.py_stream(f"c{i}"))
               for i in range(18)]
    for c in clients:
        c.start()
    return env, ns, cluster, clients


def test_service_survives_failure_and_recovery(running_system):
    env, ns, cluster, clients = running_system
    env.run(until=2.0)
    before = sum(c.stats.ops_completed for c in clients)
    assert before > 200

    fail_node(cluster, 1)
    env.run(until=4.0)
    during = sum(c.stats.ops_completed for c in clients) - before
    assert during > 200  # the cluster keeps serving on two nodes

    done = env.event()

    def bring_back():
        loaded = yield from recover_node(cluster, 1, warm=True)
        done.succeed(loaded)

    env.process(bring_back())
    env.run(until=done)
    env.run(until=7.0)
    after = sum(c.stats.ops_completed for c in clients) - before - during
    assert after > 200
    errors = sum(c.stats.errors for c in clients)
    total = sum(c.stats.ops_completed for c in clients)
    assert errors < 0.05 * total
    ns.verify_invariants()
    for node in cluster.nodes:
        node.cache.verify_invariants()


def test_no_request_is_ever_lost(running_system):
    env, ns, cluster, clients = running_system
    env.run(until=1.5)
    fail_node(cluster, 0)
    env.run(until=3.0)
    # closed-loop invariant: every client always has exactly one request
    # outstanding or is thinking — nobody deadlocks on a dead node
    for c in clients:
        assert c.stats.ops_completed > 20


def test_balancer_repopulates_recovered_node(running_system):
    env, ns, cluster, clients = running_system
    env.run(until=2.0)
    fail_node(cluster, 2)
    env.run(until=4.0)
    done = env.event()

    def bring_back():
        yield from recover_node(cluster, 2, warm=False)
        done.succeed(None)

    env.process(bring_back())
    env.run(until=done)
    assert cluster.strategy.subtrees_of(2) == []
    env.run(until=12.0)  # several balance rounds
    assert len(cluster.strategy.subtrees_of(2)) > 0
    served_after = cluster.nodes[2].stats.throughput(10.0, 12.0)
    assert served_after > 0
