"""Tests for the parallel sweep executor (repro.parallel).

The determinism contract — serial and parallel execution of the same
sweep produce bit-identical results — is the hard requirement here; crash
handling and mode resolution ride along.  Simulations are kept tiny
(scale 0.15, n_mds=2) so the pool tests stay fast.
"""

import dataclasses
import os
from unittest import mock

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import SteadyStateResult
from repro.parallel import (PARALLEL_ENV, SweepError, TaskError, require_ok,
                            resolve_mode, run_many, run_many_timeline)
from repro.parallel import executor as executor_mod


def tiny(seed=42, **kw):
    base = dict(strategy="DynamicSubtree", n_mds=2, seed=seed, scale=0.15,
                users_per_mds=4, files_per_user=20, clients_per_mds=6,
                warmup_s=0.5, duration_s=1.0)
    base.update(kw)
    return ExperimentConfig(**base)


def broken(seed=42):
    return tiny(seed=seed, strategy="NoSuchStrategy")


# ---------------------------------------------------------------------------
# Serial vs parallel equivalence
# ---------------------------------------------------------------------------
def test_serial_and_parallel_results_identical_field_by_field():
    configs = [tiny(seed=42 + 7 * s) for s in range(3)]
    serial = run_many(configs, mode="serial")
    parallel = run_many(configs, mode="parallel", max_workers=2)
    assert len(serial) == len(parallel) == 3
    for s, p in zip(serial, parallel):
        assert isinstance(s, SteadyStateResult)
        assert isinstance(p, SteadyStateResult)
        for f in dataclasses.fields(SteadyStateResult):
            assert getattr(s, f.name) == getattr(p, f.name), f.name


def test_timeline_serial_and_parallel_identical():
    configs = [tiny(seed=1), tiny(seed=2)]
    serial = run_many_timeline(configs, sample_interval_s=0.5, mode="serial")
    parallel = run_many_timeline(configs, sample_interval_s=0.5,
                                 mode="parallel", max_workers=2)
    assert serial == parallel
    assert serial[0].throughput_series  # non-trivial run


def test_results_assembled_in_input_order():
    configs = [tiny(seed=s) for s in (5, 3, 9)]
    results = run_many(configs, mode="parallel", max_workers=2)
    assert [r.config.seed for r in results] == [5, 3, 9]


# ---------------------------------------------------------------------------
# Failure capture
# ---------------------------------------------------------------------------
def test_worker_crash_surfaces_structured_error_without_hanging():
    configs = [tiny(seed=1), broken(), tiny(seed=2)]
    results = run_many(configs, mode="parallel", max_workers=2)
    assert isinstance(results[0], SteadyStateResult)
    assert isinstance(results[2], SteadyStateResult)
    err = results[1]
    assert isinstance(err, TaskError)
    assert err.kind == "exception"
    assert err.error_type == "ValueError"
    assert "NoSuchStrategy" in err.traceback
    assert err.config.strategy == "NoSuchStrategy"


def test_serial_mode_captures_errors_identically():
    results = run_many([broken()], mode="serial")
    assert isinstance(results[0], TaskError)
    assert results[0].error_type == "ValueError"


def test_require_ok_raises_sweep_error_with_context():
    results = run_many([tiny(seed=1), broken()], mode="serial")
    with pytest.raises(SweepError, match="1/2.*ValueError"):
        require_ok(results)


def test_require_ok_passes_through_clean_results():
    results = run_many([tiny(seed=1)], mode="serial")
    assert require_ok(results) == results


@pytest.mark.skipif(not hasattr(os, "fork"), reason="needs SIGALRM/Unix")
def test_per_task_timeout_returns_structured_error():
    def slow_task(config):
        import time
        time.sleep(5.0)

    results = run_many([tiny()], task=slow_task, timeout_s=0.2)
    assert isinstance(results[0], TaskError)
    assert results[0].kind == "timeout"


def test_empty_sweep():
    assert run_many([]) == []


# ---------------------------------------------------------------------------
# Mode resolution
# ---------------------------------------------------------------------------
def test_env_var_forces_serial(monkeypatch):
    monkeypatch.setenv(PARALLEL_ENV, "0")
    assert resolve_mode([tiny(), tiny(seed=2)]) == (False, 1)
    monkeypatch.setenv(PARALLEL_ENV, "serial")
    assert resolve_mode([tiny(), tiny(seed=2)]) == (False, 1)


def test_env_var_pins_worker_count(monkeypatch):
    monkeypatch.setenv(PARALLEL_ENV, "3")
    parallel, workers = resolve_mode([tiny(seed=s) for s in range(4)])
    assert parallel is True
    assert workers == 3


def test_env_var_garbage_rejected(monkeypatch):
    monkeypatch.setenv(PARALLEL_ENV, "sideways")
    with pytest.raises(ValueError, match="REPRO_PARALLEL"):
        resolve_mode([tiny(), tiny(seed=2)])


def test_config_level_switch_forces_serial(monkeypatch):
    monkeypatch.delenv(PARALLEL_ENV, raising=False)
    configs = [tiny(seed=1), tiny(seed=2, parallel=False)]
    assert resolve_mode(configs) == (False, 1)


def test_explicit_mode_overrides_everything(monkeypatch):
    monkeypatch.setenv(PARALLEL_ENV, "0")
    parallel, _ = resolve_mode([tiny(), tiny(seed=2)], mode="parallel")
    assert parallel is True


def test_single_task_runs_serial_by_default(monkeypatch):
    monkeypatch.delenv(PARALLEL_ENV, raising=False)
    assert resolve_mode([tiny()]) == (False, 1)


def test_invalid_mode_rejected():
    with pytest.raises(ValueError, match="serial.*parallel"):
        resolve_mode([tiny()], mode="sideways")


# ---------------------------------------------------------------------------
# Custom tasks (test doubles) run serially in-process
# ---------------------------------------------------------------------------
def test_custom_task_runs_in_process_even_in_parallel_mode():
    seen = []

    def stub(config):
        seen.append(config.seed)
        return config.seed * 10

    results = run_many([tiny(seed=1), tiny(seed=2)], task=stub,
                       mode="parallel")
    assert results == [10, 20]
    assert seen == [1, 2]  # ran here, in submission order


# ---------------------------------------------------------------------------
# Pool breakage falls back to in-process execution
# ---------------------------------------------------------------------------
def test_broken_pool_falls_back_in_process():
    calls = []

    class ExplodingPool:
        def __init__(self, *a, **kw):
            pass

        def __enter__(self):
            return self

        def __exit__(self, *exc):
            return False

        def submit(self, *a, **kw):
            from concurrent.futures.process import BrokenProcessPool
            raise BrokenProcessPool("worker died")

    with mock.patch.object(executor_mod, "ProcessPoolExecutor",
                           ExplodingPool):
        results = run_many([tiny(seed=1), tiny(seed=2)], mode="parallel",
                           progress=calls.append)
    assert all(isinstance(r, SteadyStateResult) for r in results)
    assert [r.config.seed for r in results] == [1, 2]
    assert any("fallback" in msg for msg in calls)


# ---------------------------------------------------------------------------
# Snapshot memo: enabled in sweeps, bit-identical to regeneration
# ---------------------------------------------------------------------------
def test_snapshot_memo_matches_regeneration():
    from repro.experiments._build import (enable_snapshot_memo,
                                          snapshot_memo_enabled)
    from repro.experiments.runner import run_steady_state

    cfg = tiny(seed=4)
    assert not snapshot_memo_enabled()
    fresh = run_steady_state(cfg)
    enable_snapshot_memo(True)
    try:
        memo_miss = run_steady_state(cfg)
        memo_hit = run_steady_state(cfg)
    finally:
        enable_snapshot_memo(False)
    assert fresh == memo_miss == memo_hit


def test_sweep_results_match_plain_runner_calls():
    from repro.experiments.runner import run_steady_state

    configs = [tiny(seed=11), tiny(seed=12)]
    plain = [run_steady_state(c) for c in configs]
    assert run_many(configs, mode="serial") == plain
    assert run_many(configs, mode="parallel", max_workers=2) == plain
