"""Single-CPU hosts: auto mode stays serial, bench_sweep skips the pool.

On a 1-CPU box the process pool can only add overhead, so ``resolve_mode``
must pick serial without being told, and ``tools/bench_sweep.py`` must
record ``parallel_viable: false`` instead of benchmarking a slowdown.
"""

import importlib.util
import json
import sys
from pathlib import Path
from types import SimpleNamespace

import pytest

from repro.parallel import PARALLEL_ENV, resolve_mode

REPO = Path(__file__).resolve().parents[2]


def tiny(seed=1, **kw):
    from repro.api import scaling_config
    return scaling_config("DynamicSubtree", 2, 0.05, seed=seed, **kw)


def _load_bench_sweep():
    spec = importlib.util.spec_from_file_location(
        "bench_sweep", REPO / "tools" / "bench_sweep.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_auto_mode_stays_serial_on_one_cpu(monkeypatch):
    monkeypatch.delenv(PARALLEL_ENV, raising=False)
    import repro.parallel.executor as executor
    monkeypatch.setattr(executor.os, "cpu_count", lambda: 1)
    assert resolve_mode([tiny(seed=s) for s in range(4)]) == (False, 1)


def test_auto_mode_goes_parallel_with_cpus(monkeypatch):
    monkeypatch.delenv(PARALLEL_ENV, raising=False)
    import repro.parallel.executor as executor
    monkeypatch.setattr(executor.os, "cpu_count", lambda: 8)
    parallel, workers = resolve_mode([tiny(seed=s) for s in range(4)])
    assert parallel is True and workers == 4


@pytest.mark.parametrize("cpus,viable", [(1, False), (4, True)])
def test_bench_sweep_records_parallel_viability(monkeypatch, tmp_path,
                                               cpus, viable):
    bench = _load_bench_sweep()
    monkeypatch.setattr(bench.os, "cpu_count", lambda: cpus)
    # stub out the heavy lifting: one fake result per sweep config, and an
    # instant single run, so the test only exercises the decision logic
    fake = SimpleNamespace(total_ops=100)
    modes_timed = []

    def fake_time_sweep(configs, mode):
        modes_timed.append(mode)
        return 1.0, [fake] * len(configs)

    monkeypatch.setattr(bench, "time_sweep", fake_time_sweep)
    monkeypatch.setattr(bench, "run_steady_state", lambda cfg: fake)
    out = tmp_path / "report.json"
    rc = bench.main(["--quick", "--seeds", "1", "--repeat", "1",
                     "--out", str(out)])
    assert rc == 0
    report = json.loads(out.read_text())
    assert report["sweep"]["parallel_viable"] is viable
    if viable:
        assert modes_timed == ["serial", "parallel"]
        assert report["sweep"]["parallel_s"] is not None
    else:
        assert modes_timed == ["serial"]
        assert report["sweep"]["parallel_s"] is None
        assert report["sweep"]["speedup"] is None
        assert report["identical_results"] is True
