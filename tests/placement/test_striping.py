"""Tests for file striping and client-side layout recalculation."""

import pytest

from repro.placement import (FileMapper, StableHashPlacement, StripeLayout,
                             object_id_for, replication_group_for)


@pytest.fixture
def mapper():
    return FileMapper(StableHashPlacement.uniform(10),
                      StripeLayout(object_size=1 << 20, n_replicas=2))


def test_layout_validation():
    with pytest.raises(ValueError):
        StripeLayout(object_size=0)
    with pytest.raises(ValueError):
        StripeLayout(n_replicas=0)
    with pytest.raises(ValueError):
        StripeLayout(n_replication_groups=0)


def test_object_id_unique_per_stripe():
    ids = {object_id_for(ino, idx) for ino in range(50) for idx in range(20)}
    assert len(ids) == 50 * 20


def test_object_id_validation():
    with pytest.raises(ValueError):
        object_id_for(-1, 0)


def test_n_objects(mapper):
    assert mapper.n_objects(0) == 0
    assert mapper.n_objects(1) == 1
    assert mapper.n_objects(1 << 20) == 1
    assert mapper.n_objects((1 << 20) + 1) == 2


def test_extents_cover_file_exactly(mapper):
    size = 3 * (1 << 20) + 12345
    extents = mapper.map_file(ino=77, size=size)
    assert len(extents) == 4
    covered = 0
    for i, ext in enumerate(extents):
        assert ext.file_offset == covered
        covered += ext.length
        assert len(ext.osds) == 2
        assert len(set(ext.osds)) == 2
    assert covered == size


def test_client_recalculation_matches(mapper):
    # two independent "clients" with the same layout params agree exactly
    other = FileMapper(StableHashPlacement.uniform(10),
                       StripeLayout(object_size=1 << 20, n_replicas=2))
    a = mapper.map_file(ino=123, size=5 << 20)
    b = other.map_file(ino=123, size=5 << 20)
    assert a == b


def test_objects_of_one_file_spread_over_osds(mapper):
    extents = mapper.map_file(ino=5, size=32 << 20)
    primaries = {ext.osds[0] for ext in extents}
    assert len(primaries) > 3


def test_replication_group_stable(mapper):
    layout = mapper.layout
    assert replication_group_for(9, layout) == replication_group_for(9, layout)
    groups = {replication_group_for(ino, layout) for ino in range(1000)}
    assert len(groups) > layout.n_replication_groups * 0.8


def test_locate_offset(mapper):
    size = 4 << 20
    ext = mapper.locate_offset(ino=3, size=size, offset=(2 << 20) + 5)
    assert ext.file_offset == 2 << 20
    assert ext.file_offset <= (2 << 20) + 5 < ext.file_offset + ext.length


def test_locate_offset_bounds(mapper):
    with pytest.raises(ValueError):
        mapper.locate_offset(ino=3, size=100, offset=100)
    with pytest.raises(ValueError):
        mapper.locate_offset(ino=3, size=100, offset=-1)


def test_fixed_metadata_footprint(mapper):
    # the MDS-side mapping state is just (ino, size): the whole layout is a
    # pure function of those — nothing per-object is stored anywhere
    a = mapper.map_file(ino=42, size=10 << 20)
    b = mapper.map_file(ino=42, size=10 << 20)
    assert a == b and len(a) == 10
