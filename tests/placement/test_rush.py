"""Tests for the weighted rendezvous placement function."""

from collections import Counter

import pytest

from repro.placement import Device, StableHashPlacement


def test_requires_devices():
    with pytest.raises(ValueError):
        StableHashPlacement([])


def test_rejects_duplicate_ids():
    with pytest.raises(ValueError):
        StableHashPlacement([Device(1), Device(1)])


def test_rejects_nonpositive_weight():
    with pytest.raises(ValueError):
        Device(0, weight=0.0)


def test_deterministic():
    p1 = StableHashPlacement.uniform(8)
    p2 = StableHashPlacement.uniform(8)
    for key in range(50):
        assert p1.place(key, 3) == p2.place(key, 3)


def test_replicas_distinct():
    placement = StableHashPlacement.uniform(6)
    for key in range(200):
        replicas = placement.place(key, 3)
        assert len(set(replicas)) == 3


def test_replica_count_validation():
    placement = StableHashPlacement.uniform(3)
    with pytest.raises(ValueError):
        placement.place(1, 0)
    with pytest.raises(ValueError):
        placement.place(1, 4)


def test_balanced_for_uniform_weights():
    placement = StableHashPlacement.uniform(8)
    counts = Counter(placement.primary(key) for key in range(8000))
    expected = 8000 / 8
    for device_id in range(8):
        assert 0.8 * expected < counts[device_id] < 1.2 * expected


def test_weighted_devices_get_proportional_share():
    placement = StableHashPlacement(
        [Device(0, weight=1.0), Device(1, weight=3.0)])
    counts = Counter(placement.primary(key) for key in range(8000))
    ratio = counts[1] / counts[0]
    assert 2.4 < ratio < 3.7


def test_expansion_moves_only_what_lands_on_new_devices():
    before = StableHashPlacement.uniform(8)
    after = before.expanded([Device(8), Device(9)])
    moved = 0
    for key in range(4000):
        old = before.primary(key)
        new = after.primary(key)
        if old != new:
            moved += 1
            assert new in (8, 9)  # movement only toward the new devices
    # expected movement fraction = new capacity share = 2/10
    assert 0.12 < moved / 4000 < 0.28


def test_losing_a_device_promotes_next_replica():
    placement = StableHashPlacement.uniform(6)
    for key in range(100):
        first, second, third = placement.place(key, 3)
        survivors = StableHashPlacement(
            [d for d in placement.devices if d.device_id != first])
        assert survivors.place(key, 2) == [second, third]
