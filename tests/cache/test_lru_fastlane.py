"""Edge cases of the intrusive linked-list LRU (fast-lane rewrite).

These pin down behaviours the OrderedDict implementation provided
implicitly: recency order under mid-list prefetch insertion, overflow
tolerance when every entry is pinned, and category accounting staying
consistent across evictions.
"""

import pytest

from repro.cache import MetadataCache


def test_all_entries_pinned_overflow_and_recovery():
    cache = MetadataCache(2)
    cache.insert(1, None, True)
    cache.insert(2, 1, True)
    cache.pin(2)  # 1 is pinned by its child, 2 externally
    # nothing evictable: inserts overflow instead of evicting
    evicted = cache.insert(3, 2, False)
    assert evicted == []
    cache.pin(3)
    assert cache.insert(4, 2, False) == []
    cache.pin(4)
    assert cache.overflowed and len(cache) == 4
    assert cache._lru_order() == []
    cache.verify_invariants()
    # releasing a pin resolves the pressure immediately
    dropped = cache.unpin(3)
    assert [e.ino for e in dropped] == [3]
    assert len(cache) == 3  # still one over; 4 is pinned, 1/2 have children
    dropped = cache.unpin(4)
    assert [e.ino for e in dropped] == [4]
    assert len(cache) == 2 and not cache.overflowed
    cache.verify_invariants()


def test_prefetch_inserts_at_cold_end():
    cache = MetadataCache(10)
    cache.insert(1, None, True)
    cache.insert(2, 1, False)
    cache.insert(3, 1, False)
    # prefetched entries jump the queue for eviction: cold end, not hot
    cache.insert(4, 1, False, prefetched=True)
    assert cache._lru_order() == [4, 2, 3]
    cache.verify_invariants()


def test_prefetch_insertion_preserves_relative_order():
    cache = MetadataCache(10)
    cache.insert(1, None, True)
    for ino in (2, 3, 4):
        cache.insert(ino, 1, False)
    cache.get(2)  # coldest->hottest is now 3, 4, 2
    cache.insert(5, 1, False, prefetched=True)
    cache.insert(6, 1, False)
    assert cache._lru_order() == [5, 3, 4, 2, 6]
    # and eviction follows exactly that order
    cache.capacity = 4  # shrink-on-next-insert
    evicted = cache.insert(7, 1, False)
    assert [e.ino for e in evicted] == [5, 3, 4]
    cache.verify_invariants()


def test_prefetch_reinsert_does_not_touch():
    cache = MetadataCache(10)
    cache.insert(1, None, True)
    cache.insert(2, 1, False)
    cache.insert(3, 1, False)
    # re-inserting 2 as a prefetch must NOT refresh its recency
    cache.insert(2, 1, False, prefetched=True)
    assert cache._lru_order() == [2, 3]
    # ...while a demand re-insert does
    cache.insert(2, 1, False)
    assert cache._lru_order() == [3, 2]
    cache.verify_invariants()


def test_category_accounting_after_eviction():
    cache = MetadataCache(4)
    cache.insert(1, None, True)
    cache.insert(2, 1, True)
    cache.insert(3, 2, False, replica=True)
    cache.insert(4, 2, False)
    census = cache.slot_census()
    assert census == {"local_prefix": 2, "local_other": 1,
                      "replica_prefix": 0, "replica_other": 1}
    assert cache.prefix_fraction() == pytest.approx(0.5)
    assert cache.replica_fraction() == pytest.approx(0.25)
    # force the replica leaf (coldest) out
    evicted = cache.insert(5, 2, False)
    assert [e.ino for e in evicted] == [3]
    census = cache.slot_census()
    assert census == {"local_prefix": 2, "local_other": 2,
                      "replica_prefix": 0, "replica_other": 0}
    assert cache.replica_fraction() == 0.0
    assert cache.prefix_fraction() == pytest.approx(0.5)
    cache.verify_invariants()


def test_evicting_leaf_unpins_prefix_into_lru():
    cache = MetadataCache(10)
    cache.insert(1, None, True)
    cache.insert(2, 1, True)
    cache.insert(3, 2, False)
    assert cache._lru_order() == [3]  # 1 and 2 are pinned prefixes
    cache.remove(3)
    # 2 lost its last child: it re-enters the LRU as a cold candidate
    assert cache._lru_order() == [2]
    assert cache.get(2, touch=False).pin_count == 0
    cache.verify_invariants()
