"""Run the whole cache suite once per model backend.

Every test module in this package constructs caches through the module
global ``MetadataCache``; the autouse fixture below swaps that name for a
backend-selecting factory so the identical assertions run against both
the pure-Python reference implementation and the compiled
``repro.model._cmodel`` extension.  Module scope keeps hypothesis happy
(stateful suites may not depend on function-scoped fixtures) and means
each module runs twice, once per backend.
"""

import pytest

from repro.model.backend import compiled_model_viable, make_metadata_cache


@pytest.fixture(scope="module", autouse=True,
                params=["reference", "compiled"])
def cache_backend(request):
    backend = request.param
    if backend == "compiled" and not compiled_model_viable():
        pytest.skip("compiled model extension not built")
    module = request.module
    original = getattr(module, "MetadataCache", None)
    if original is not None:
        def factory(capacity):
            return make_metadata_cache(capacity, model=backend)
        module.MetadataCache = factory
    yield backend
    if original is not None:
        module.MetadataCache = original
