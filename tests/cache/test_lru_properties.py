"""Property-based tests: the cache's tree constraint under random workloads.

The machine mirrors cache contents against a model namespace: inserts always
provide a cached parent (as the MDS does, inserting prefixes root-first) and
the invariant checks pin-count consistency, the connected-tree property, and
the capacity bound (modulo tolerated all-pinned overflow).
"""

import hypothesis.strategies as st
from hypothesis import settings
from hypothesis.stateful import (RuleBasedStateMachine, initialize, invariant,
                                 rule, run_state_machine_as_test)

from repro.cache import MetadataCache


class CacheMachine(RuleBasedStateMachine):
    @initialize(capacity=st.integers(2, 12))
    def setup(self, capacity):
        self.cache = MetadataCache(capacity)
        self.cache.insert(1, None, True)
        self.cache.pin(1)  # the MDS always pins the root
        self.next_ino = 2
        self.pins = []  # inos we have externally pinned (besides root)

    def _cached_dirs(self):
        return [e.ino for e in self.cache.entries() if e.is_dir]

    def _cached_anything(self):
        return [e.ino for e in self.cache.entries()]

    @rule(parent_choice=st.integers(0, 100), make_dir=st.booleans(),
          prefetched=st.booleans(), replica=st.booleans())
    def insert_under_cached_dir(self, parent_choice, make_dir, prefetched,
                                replica):
        dirs = self._cached_dirs()
        parent = dirs[parent_choice % len(dirs)]
        ino = self.next_ino
        self.next_ino += 1
        self.cache.insert(ino, parent, make_dir, replica=replica,
                          prefetched=prefetched)

    @rule(choice=st.integers(0, 100))
    def touch(self, choice):
        inos = self._cached_anything()
        self.cache.get(inos[choice % len(inos)])

    @rule(choice=st.integers(0, 100))
    def external_pin(self, choice):
        inos = self._cached_anything()
        ino = inos[choice % len(inos)]
        self.cache.pin(ino)
        self.pins.append(ino)

    @rule()
    def release_pin(self):
        if self.pins:
            self.cache.unpin(self.pins.pop())

    @rule(choice=st.integers(0, 100))
    def remove_unpinned_leaf(self, choice):
        candidates = [e.ino for e in self.cache.entries()
                      if not e.pinned and e.ino != 1]
        if not candidates:
            return
        self.cache.remove(candidates[choice % len(candidates)])

    @invariant()
    def consistent(self):
        if not hasattr(self, "cache"):
            return
        self.cache.verify_invariants()
        # root is always present (externally pinned at setup)
        assert 1 in self.cache
        # capacity respected unless everything is pinned; at most the most
        # recent insertion may remain evictable (insert never evicts itself)
        if self.cache.overflowed:
            evictable = [e for e in self.cache.entries() if not e.pinned]
            assert len(evictable) <= 1, (
                "cache overflowed while multiple evictable entries existed")


# driven as a plain pytest function (not CacheMachine.TestCase) so the
# package's backend-parametrizing fixture applies — unittest collection
# cannot take parametrized fixtures
def test_cache_properties():
    run_state_machine_as_test(
        CacheMachine,
        settings=settings(max_examples=60, stateful_step_count=40,
                          deadline=None))
