"""Unit tests for the hierarchical LRU metadata cache."""

import pytest

from repro.cache import MetadataCache


def insert_chain(cache, *inos, is_dir=True, replica=False):
    """Insert a root-first chain of directories (last may be a file)."""
    parent = None
    for ino in inos:
        cache.insert(ino, parent, is_dir, replica=replica)
        parent = ino


def test_capacity_validation():
    with pytest.raises(ValueError):
        MetadataCache(0)


def test_insert_and_get():
    cache = MetadataCache(10)
    cache.insert(1, None, True)
    entry = cache.get(1)
    assert entry is not None and entry.ino == 1
    assert 1 in cache and len(cache) == 1


def test_insert_requires_cached_parent():
    cache = MetadataCache(10)
    with pytest.raises(KeyError):
        cache.insert(5, 4, False)


def test_child_pins_parent():
    cache = MetadataCache(10)
    insert_chain(cache, 1, 2)
    assert cache.get(1).pin_count == 1
    assert cache.get(2).pin_count == 0
    cache.verify_invariants()


def test_eviction_lru_order_among_leaves():
    cache = MetadataCache(3)
    cache.insert(1, None, True)
    cache.insert(2, 1, False)
    cache.insert(3, 1, False)
    # cache full: 1(pinned), 2, 3.  Insert 4 -> evicts 2 (coldest leaf).
    evicted = cache.insert(4, 1, False)
    assert [e.ino for e in evicted] == [2]
    assert 3 in cache and 4 in cache
    cache.verify_invariants()


def test_touch_refreshes_recency():
    cache = MetadataCache(3)
    cache.insert(1, None, True)
    cache.insert(2, 1, False)
    cache.insert(3, 1, False)
    cache.get(2)  # 2 becomes MRU; 3 is now coldest
    evicted = cache.insert(4, 1, False)
    assert [e.ino for e in evicted] == [3]


def test_pinned_directory_never_evicted():
    cache = MetadataCache(2)
    cache.insert(1, None, True)
    cache.insert(2, 1, False)
    # full; new leaf evicts the old leaf, not the pinned dir
    evicted = cache.insert(3, 1, False)
    assert [e.ino for e in evicted] == [2]
    assert 1 in cache
    cache.verify_invariants()


def test_overflow_tolerated_when_all_pinned():
    cache = MetadataCache(2)
    insert_chain(cache, 1, 2, 3)  # chain: 3 pins 2 pins 1; only 3 evictable
    evicted = cache.insert(4, 3, False)
    # victim candidates: only 4 itself is excluded, 3 became pinned by 4...
    # chain 1-2-3-4 with capacity 2: nothing but the new leaf is evictable,
    # and the new leaf is excluded, so the cache overflows.
    assert evicted == []
    assert cache.overflowed
    cache.verify_invariants()


def test_eviction_of_leaf_unpins_parent_chain():
    cache = MetadataCache(10)
    insert_chain(cache, 1, 2)
    cache.insert(3, 2, False)
    entry3 = cache.remove(3)
    assert entry3.ino == 3
    assert cache.get(2).pin_count == 0
    cache.verify_invariants()


def test_remove_pinned_dir_rejected():
    cache = MetadataCache(10)
    insert_chain(cache, 1, 2)
    with pytest.raises(RuntimeError):
        cache.remove(1)


def test_parent_becomes_cold_after_last_child_leaves():
    cache = MetadataCache(3)
    cache.insert(1, None, True)
    cache.insert(2, 1, True)
    cache.insert(3, 2, False)
    cache.remove(3)  # dir 2 now unpinned and cold
    cache.insert(4, 1, False)  # back at capacity (1, 2, 4)
    evicted = cache.insert(5, 1, False)
    # 2 was placed at the eviction end, so it goes before leaf 4
    assert [e.ino for e in evicted] == [2]
    cache.verify_invariants()


def test_external_pin_blocks_eviction():
    cache = MetadataCache(2)
    cache.insert(1, None, True)
    cache.insert(2, 1, False)
    cache.pin(2)
    evicted = cache.insert(3, 1, False)
    assert evicted == []  # nothing evictable: 1 pinned by children, 2 pinned
    assert cache.overflowed
    cache.unpin(2)
    cache.verify_invariants()


def test_unpin_without_pin_raises():
    cache = MetadataCache(2)
    cache.insert(1, None, True)
    with pytest.raises(RuntimeError):
        cache.unpin(1)


def test_prefetched_entries_evicted_first():
    cache = MetadataCache(3)
    cache.insert(1, None, True)
    cache.insert(2, 1, False)                  # normal, older
    cache.insert(3, 1, False, prefetched=True)  # prefetched, newer
    evicted = cache.insert(4, 1, False)
    # despite being newer, the prefetched entry goes first
    assert [e.ino for e in evicted] == [3]
    assert cache.counters.prefetch_insertions == 1


def test_reinsert_refreshes_and_deduplicates():
    cache = MetadataCache(3)
    cache.insert(1, None, True)
    cache.insert(2, 1, False)
    cache.insert(3, 1, False)
    assert cache.insert(2, 1, False) == []  # refresh, no growth
    assert len(cache) == 3
    evicted = cache.insert(4, 1, False)
    assert [e.ino for e in evicted] == [3]


def test_reinsert_as_authority_clears_replica_flag():
    cache = MetadataCache(3)
    cache.insert(1, None, True)
    cache.insert(2, 1, False, replica=True)
    assert cache.get(2).replica
    cache.insert(2, 1, False, replica=False)
    assert not cache.get(2).replica
    # but a replica re-insert never upgrades an authoritative entry
    cache.insert(2, 1, False, replica=True)
    assert not cache.get(2).replica


def test_slot_census_and_fractions():
    cache = MetadataCache(10)
    cache.insert(1, None, True)           # root dir, pinned by 2,3 -> prefix
    cache.insert(2, 1, True, replica=True)  # replica dir, pinned -> prefix
    cache.insert(3, 2, False, replica=True)  # replica file
    cache.insert(4, 1, False)             # local file
    census = cache.slot_census()
    assert census == {"local_prefix": 1, "local_other": 1,
                      "replica_prefix": 1, "replica_other": 1}
    assert cache.prefix_fraction() == pytest.approx(0.5)
    assert cache.replica_fraction() == pytest.approx(0.5)


def test_prefix_fraction_empty_cache():
    cache = MetadataCache(4)
    assert cache.prefix_fraction() == 0.0
    assert cache.replica_fraction() == 0.0


def test_collect_subtree_depth_order():
    cache = MetadataCache(20)
    cache.insert(1, None, True)
    cache.insert(2, 1, True)
    cache.insert(3, 2, True)
    cache.insert(4, 3, False)
    cache.insert(5, 2, False)
    cache.insert(6, 1, False)  # outside subtree rooted at 2
    members = [e.ino for e in cache.collect_subtree(2)]
    assert set(members) == {2, 3, 4, 5}
    assert members.index(4) < members.index(3) < members.index(2)
    # removal in that order never violates pins
    for ino in members:
        cache.remove(ino)
    cache.verify_invariants()


def test_collect_subtree_missing_root():
    cache = MetadataCache(4)
    cache.insert(1, None, True)
    assert cache.collect_subtree(99) == []


def test_eviction_counter():
    cache = MetadataCache(2)
    cache.insert(1, None, True)
    cache.insert(2, 1, False)
    cache.insert(3, 1, False)
    assert cache.counters.evictions == 1
    assert cache.counters.insertions == 3
