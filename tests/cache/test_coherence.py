"""Unit tests for the replica registry."""

from repro.cache import ReplicaRegistry


def test_register_and_holders():
    reg = ReplicaRegistry()
    reg.register(5, 1)
    reg.register(5, 2)
    assert reg.holders(5) == frozenset({1, 2})
    assert reg.is_replicated(5)


def test_holders_empty_for_unknown():
    reg = ReplicaRegistry()
    assert reg.holders(9) == frozenset()
    assert not reg.is_replicated(9)


def test_unregister_removes_holder():
    reg = ReplicaRegistry()
    reg.register(5, 1)
    reg.register(5, 2)
    reg.unregister(5, 1)
    assert reg.holders(5) == frozenset({2})


def test_unregister_last_holder_cleans_up():
    reg = ReplicaRegistry()
    reg.register(5, 1)
    reg.unregister(5, 1)
    assert len(reg) == 0
    assert not reg.is_replicated(5)


def test_unregister_idempotent():
    reg = ReplicaRegistry()
    reg.unregister(5, 1)  # never registered: no error
    reg.register(5, 1)
    reg.unregister(5, 2)  # different holder: no error
    assert reg.holders(5) == frozenset({1})


def test_drop_ino_returns_holders():
    reg = ReplicaRegistry()
    reg.register(7, 1)
    reg.register(7, 3)
    dropped = reg.drop_ino(7)
    assert dropped == frozenset({1, 3})
    assert not reg.is_replicated(7)
    assert reg.drop_ino(7) == frozenset()


def test_replicated_inos():
    reg = ReplicaRegistry()
    reg.register(1, 0)
    reg.register(2, 0)
    assert reg.replicated_inos() == frozenset({1, 2})
