"""Smoke tests: the runnable examples must keep running.

Each fast example is executed in-process (fresh module namespace) and must
complete without raising.  The slow sweep examples (strategy_comparison,
workload_shift, trace_replay) are exercised indirectly by the benchmark
suite, which runs the same experiment code.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "flash_crowd.py",
    "scientific_burst.py",
    "data_placement.py",
    "failover.py",
    "snapshots.py",
    "custom_strategy.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script, capsys):
    path = EXAMPLES / script
    assert path.exists(), f"example missing: {script}"
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script} produced no output"


def test_all_examples_are_documented():
    for script in EXAMPLES.glob("*.py"):
        text = script.read_text()
        assert text.startswith("#!/usr/bin/env python3"), script.name
        assert '"""' in text.splitlines()[1], (
            f"{script.name} missing a module docstring")
