"""Hard links and the anchor table (§4.5)."""

import pytest

from repro.namespace import (InvalidOperation, Namespace, build_tree)
from repro.namespace import path as p


@pytest.fixture
def ns():
    namespace = Namespace()
    build_tree(namespace, {
        "a": {"deep": {"file.txt": 10}},
        "b": {},
        "c": {"other.txt": 5},
    })
    return namespace


def test_link_increments_nlink(ns):
    ns.link(p.parse("/a/deep/file.txt"), p.parse("/b/alias.txt"))
    inode = ns.resolve(p.parse("/b/alias.txt"))
    assert inode.nlink == 2
    assert inode is ns.resolve(p.parse("/a/deep/file.txt"))
    ns.verify_invariants()


def test_link_to_directory_rejected(ns):
    with pytest.raises(InvalidOperation):
        ns.link(p.parse("/a/deep"), p.parse("/b/deep2"))


def test_anchor_table_tracks_multiply_linked_only(ns):
    assert len(ns.anchors) == 0
    ns.link(p.parse("/a/deep/file.txt"), p.parse("/b/alias.txt"))
    ino = ns.resolve(p.parse("/b/alias.txt")).ino
    # table holds: file, /a/deep, /a  (chain to root, root excluded)
    assert ino in ns.anchors
    assert ns.resolve(p.parse("/a/deep")).ino in ns.anchors
    assert ns.resolve(p.parse("/a")).ino in ns.anchors
    assert ns.resolve(p.parse("/b")).ino not in ns.anchors
    assert len(ns.anchors) == 3


def test_anchor_locate_walks_to_root(ns):
    ns.link(p.parse("/a/deep/file.txt"), p.parse("/b/alias.txt"))
    ino = ns.resolve(p.parse("/a/deep/file.txt")).ino
    chain = ns.anchors.locate(ino)
    expected = [ns.resolve(p.parse("/a/deep")).ino,
                ns.resolve(p.parse("/a")).ino,
                1]  # root ino
    assert chain == expected


def test_unlink_extra_link_clears_anchor(ns):
    ns.link(p.parse("/a/deep/file.txt"), p.parse("/b/alias.txt"))
    ns.unlink(p.parse("/b/alias.txt"))
    inode = ns.resolve(p.parse("/a/deep/file.txt"))
    assert inode.nlink == 1
    assert len(ns.anchors) == 0
    ns.verify_invariants()


def test_unlink_primary_promotes_extra_link(ns):
    ns.link(p.parse("/a/deep/file.txt"), p.parse("/b/alias.txt"))
    ino = ns.resolve(p.parse("/a/deep/file.txt")).ino
    ns.unlink(p.parse("/a/deep/file.txt"))
    # still reachable at the alias; now singly linked and embedded under /b
    inode = ns.resolve(p.parse("/b/alias.txt"))
    assert inode.ino == ino
    assert inode.nlink == 1
    assert ns.path_of(ino) == p.parse("/b/alias.txt")
    assert len(ns.anchors) == 0
    ns.verify_invariants()


def test_three_links_then_unlink_primary(ns):
    ns.link(p.parse("/a/deep/file.txt"), p.parse("/b/alias.txt"))
    ns.link(p.parse("/a/deep/file.txt"), p.parse("/c/alias2.txt"))
    inode = ns.resolve(p.parse("/a/deep/file.txt"))
    assert inode.nlink == 3
    ns.unlink(p.parse("/a/deep/file.txt"))
    assert inode.nlink == 2
    # still anchored (nlink > 1) via its new embedding chain
    assert inode.ino in ns.anchors
    ns.verify_invariants()


def test_rename_anchored_file_updates_chain(ns):
    ns.link(p.parse("/a/deep/file.txt"), p.parse("/b/alias.txt"))
    ns.rename(p.parse("/a/deep/file.txt"), p.parse("/c/file.txt"))
    ino = ns.resolve(p.parse("/c/file.txt")).ino
    chain = ns.anchors.locate(ino)
    assert chain[0] == ns.resolve(p.parse("/c")).ino
    # old chain dirs released
    assert ns.resolve(p.parse("/a/deep")).ino not in ns.anchors
    assert ns.resolve(p.parse("/a")).ino not in ns.anchors
    ns.verify_invariants()


def test_rename_nonprimary_link_keeps_anchor(ns):
    ns.link(p.parse("/a/deep/file.txt"), p.parse("/b/alias.txt"))
    ns.rename(p.parse("/b/alias.txt"), p.parse("/c/alias.txt"))
    ino = ns.resolve(p.parse("/c/alias.txt")).ino
    # embedding unchanged: chain still goes through /a/deep
    assert ns.anchors.locate(ino)[0] == ns.resolve(p.parse("/a/deep")).ino
    ns.verify_invariants()


def test_rename_ancestor_dir_of_anchored_file(ns):
    ns.link(p.parse("/a/deep/file.txt"), p.parse("/b/alias.txt"))
    ns.rename(p.parse("/a/deep"), p.parse("/c/deep"))
    ino = ns.resolve(p.parse("/c/deep/file.txt")).ino
    chain = ns.anchors.locate(ino)
    assert chain[0] == ns.resolve(p.parse("/c/deep")).ino
    assert chain[1] == ns.resolve(p.parse("/c")).ino
    assert ns.resolve(p.parse("/a")).ino not in ns.anchors
    ns.verify_invariants()


def test_two_anchored_files_share_ancestor_refcount(ns):
    ns.create_file(p.parse("/a/deep/second.txt"))
    ns.link(p.parse("/a/deep/file.txt"), p.parse("/b/l1.txt"))
    ns.link(p.parse("/a/deep/second.txt"), p.parse("/b/l2.txt"))
    deep_ino = ns.resolve(p.parse("/a/deep")).ino
    assert ns.anchors.entry(deep_ino).refcount == 2
    ns.unlink(p.parse("/b/l1.txt"))
    assert ns.anchors.entry(deep_ino).refcount == 1
    ns.verify_invariants()


def test_link_same_dir_two_names(ns):
    ns.link(p.parse("/a/deep/file.txt"), p.parse("/a/deep/same.txt"))
    inode = ns.resolve(p.parse("/a/deep/same.txt"))
    assert inode.nlink == 2
    ns.unlink(p.parse("/a/deep/same.txt"))
    assert inode.nlink == 1
    ns.verify_invariants()
