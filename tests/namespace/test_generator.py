"""Tests for the synthetic snapshot generator."""

import pytest

from repro.namespace import Namespace, SnapshotSpec, generate_snapshot
from repro.namespace import path as p
from repro.sim import RngStreams


def make(seed=1, **kw):
    ns = Namespace()
    spec = SnapshotSpec(**kw)
    stats = generate_snapshot(ns, spec, RngStreams(seed))
    return ns, spec, stats


def test_generates_requested_users():
    ns, spec, stats = make(n_users=5, files_per_user=40)
    assert len(stats.user_roots) == 5
    for root in stats.user_roots:
        assert ns.try_resolve(root) is not None


def test_stats_match_namespace():
    ns, _, stats = make(n_users=4, files_per_user=50)
    assert stats.n_files == ns.count_files()
    # generator stats exclude the pre-existing root directory
    assert stats.n_dirs == ns.count_dirs() - 1
    assert stats.n_inodes == len(ns) - 1


def test_file_count_near_mean():
    ns, spec, stats = make(n_users=20, files_per_user=100, seed=3)
    target = spec.n_users * spec.files_per_user
    assert 0.5 * target < stats.n_files < 2.0 * target


def test_deterministic_given_seed():
    ns1, _, s1 = make(seed=7, n_users=6, files_per_user=30)
    ns2, _, s2 = make(seed=7, n_users=6, files_per_user=30)
    assert s1.n_files == s2.n_files
    assert s1.n_dirs == s2.n_dirs
    paths1 = sorted(ns1.path_of(i.ino) for i in ns1.iter_subtree(1))
    paths2 = sorted(ns2.path_of(i.ino) for i in ns2.iter_subtree(1))
    assert paths1 == paths2


def test_different_seeds_differ():
    _, _, s1 = make(seed=1, n_users=6, files_per_user=30)
    _, _, s2 = make(seed=2, n_users=6, files_per_user=30)
    assert s1.n_files != s2.n_files


def test_depth_bounded():
    _, spec, stats = make(n_users=10, files_per_user=300, max_depth=4)
    # /home/uNNNN + max_depth levels below the user root
    assert stats.max_depth_seen <= 2 + spec.max_depth


def test_user_ownership():
    ns, _, stats = make(n_users=3, files_per_user=20)
    for u, root in enumerate(stats.user_roots):
        root_inode = ns.resolve(root)
        assert root_inode.owner == u
        for node in ns.iter_subtree(root_inode.ino):
            assert node.owner == u


def test_shared_tree_present():
    ns, spec, _ = make(n_users=2, files_per_user=10,
                       shared_tree_files=50, shared_tree_dirs=5)
    usr = ns.try_resolve(p.parse("/usr"))
    assert usr is not None
    assert usr.entry_count == 5


def test_shared_tree_optional():
    ns, _, _ = make(n_users=2, files_per_user=10, shared_tree_files=0)
    assert ns.try_resolve(p.parse("/usr")) is None


def test_requires_fresh_namespace():
    ns = Namespace()
    ns.mkdir(p.parse("/dirty"))
    with pytest.raises(ValueError):
        generate_snapshot(ns, SnapshotSpec(), RngStreams(0))


def test_invariants_hold():
    ns, _, _ = make(n_users=8, files_per_user=60)
    ns.verify_invariants()
