"""Unit tests for unlinked-while-open orphan retention (§4.5)."""

import pytest

from repro.namespace import Namespace, build_tree
from repro.namespace import path as p


@pytest.fixture
def ns():
    namespace = Namespace()
    build_tree(namespace, {"d": {"f.txt": 10, "g.txt": 20}, "e": {}})
    return namespace


def test_unlink_retain_keeps_inode(ns):
    ino = ns.resolve(p.parse("/d/f.txt")).ino
    ns.unlink(p.parse("/d/f.txt"), retain_inode=True)
    assert ns.try_resolve(p.parse("/d/f.txt")) is None
    assert ino in ns
    assert ns.is_orphan(ino)
    assert ns.inode(ino).nlink == 0
    assert ns.orphan_count() == 1
    ns.verify_invariants()


def test_release_orphan_removes_inode(ns):
    ino = ns.resolve(p.parse("/d/f.txt")).ino
    ns.unlink(p.parse("/d/f.txt"), retain_inode=True)
    ns.release_orphan(ino)
    assert ino not in ns
    assert ns.orphan_count() == 0
    ns.verify_invariants()


def test_release_non_orphan_raises(ns):
    ino = ns.resolve(p.parse("/d/g.txt")).ino
    with pytest.raises(KeyError):
        ns.release_orphan(ino)


def test_unlink_without_retain_is_immediate(ns):
    ino = ns.resolve(p.parse("/d/f.txt")).ino
    ns.unlink(p.parse("/d/f.txt"))
    assert ino not in ns
    assert not ns.is_orphan(ino)


def test_retain_ignored_for_multiply_linked(ns):
    ns.link(p.parse("/d/f.txt"), p.parse("/e/alias.txt"))
    ino = ns.resolve(p.parse("/d/f.txt")).ino
    ns.unlink(p.parse("/d/f.txt"), retain_inode=True)
    # another link survives: no orphan is created
    assert not ns.is_orphan(ino)
    assert ns.resolve(p.parse("/e/alias.txt")).ino == ino
    assert ns.inode(ino).nlink == 1
    ns.verify_invariants()


def test_retain_ignored_for_directories(ns):
    ino = ns.resolve(p.parse("/e")).ino
    ns.unlink(p.parse("/e"), retain_inode=True)
    # empty-directory removal is unconditional
    assert ino not in ns
    assert not ns.is_orphan(ino)


def test_orphan_still_reachable_by_ino(ns):
    ino = ns.resolve(p.parse("/d/f.txt")).ino
    ns.unlink(p.parse("/d/f.txt"), retain_inode=True)
    inode = ns.inode(ino)
    assert inode.size == 10
    # ancestry still walkable (the parent directory is alive)
    chain = ns.ancestors(ino)
    assert chain[-1].ino == ns.resolve(p.parse("/d")).ino


def test_name_reusable_while_orphan_lives(ns):
    old = ns.resolve(p.parse("/d/f.txt")).ino
    ns.unlink(p.parse("/d/f.txt"), retain_inode=True)
    new = ns.create_file(p.parse("/d/f.txt"), size=99).ino
    assert new != old
    assert ns.is_orphan(old)
    assert ns.resolve(p.parse("/d/f.txt")).size == 99
    ns.verify_invariants()
