"""Unit tests for path utilities."""

import pytest

from repro.namespace import path as p


def test_parse_simple():
    assert p.parse("/usr/local") == ("usr", "local")


def test_parse_root():
    assert p.parse("/") == ()


def test_parse_redundant_slashes():
    assert p.parse("//usr///local/") == ("usr", "local")


def test_parse_rejects_relative():
    with pytest.raises(ValueError):
        p.parse("usr/local")


def test_parse_rejects_dots():
    with pytest.raises(ValueError):
        p.parse("/usr/../etc")
    with pytest.raises(ValueError):
        p.parse("/usr/./etc")


def test_format_roundtrip():
    for text in ("/", "/a", "/a/b/c"):
        assert p.format_path(p.parse(text)) == text


def test_parent_and_basename():
    assert p.parent(("a", "b")) == ("a",)
    assert p.parent(()) == ()
    assert p.basename(("a", "b")) == "b"
    assert p.basename(()) == ""


def test_is_ancestor():
    assert p.is_ancestor((), ("a",))
    assert p.is_ancestor(("a",), ("a", "b"))
    assert not p.is_ancestor(("a",), ("a",))
    assert not p.is_ancestor(("a", "b"), ("a",))
    assert not p.is_ancestor(("x",), ("a", "b"))


def test_is_prefix_includes_self():
    assert p.is_prefix(("a",), ("a",))
    assert p.is_prefix((), ())
    assert not p.is_prefix(("a", "b"), ("a", "c"))


def test_prefixes_root_first():
    assert list(p.prefixes(("a", "b", "c"))) == [(), ("a",), ("a", "b")]
    assert list(p.prefixes(())) == []


def test_join_validates_component():
    assert p.join(("a",), "b") == ("a", "b")
    with pytest.raises(ValueError):
        p.join(("a",), "")
    with pytest.raises(ValueError):
        p.join(("a",), "b/c")


def test_depth():
    assert p.depth(()) == 0
    assert p.depth(("a", "b")) == 2
