"""Unit tests for the permission model and Lazy Hybrid dual-entry ACLs."""

from repro.namespace.permissions import (DEFAULT_DIR_MODE, DEFAULT_FILE_MODE,
                                         Access, access_for, can_traverse,
                                         merge_path_acl)


def test_owner_gets_owner_bits():
    acc = access_for(0o700, uid=5, owner=5)
    assert acc == Access(True, True, True)


def test_other_gets_other_bits():
    acc = access_for(0o704, uid=9, owner=5)
    assert acc == Access(True, False, False)


def test_default_modes():
    assert access_for(DEFAULT_FILE_MODE, 1, 1) == Access(True, True, False)
    assert access_for(DEFAULT_FILE_MODE, 2, 1) == Access(True, False, False)
    assert can_traverse(DEFAULT_DIR_MODE, 2, 1)


def test_access_and_operator():
    a = Access(True, True, False)
    b = Access(True, False, False)
    assert (a & b) == Access(True, False, False)


def test_merge_path_acl_open_path():
    # all ancestors world-traversable
    acl = merge_path_acl([(0o755, 0), (0o755, 0)], 0o644, file_owner=7)
    assert acl.access(7).read and acl.access(7).write
    assert acl.access(3).read and not acl.access(3).write


def test_merge_path_acl_blocked_for_others():
    # one ancestor is owner-only (0o700, owned by uid 7)
    acl = merge_path_acl([(0o755, 0), (0o700, 7)], 0o644, file_owner=7)
    assert acl.access(7).read
    other = acl.access(3)
    assert not other.read and not other.write and not other.execute


def test_merge_path_acl_blocked_even_for_owner():
    # ancestor owned by someone else with no other-execute
    acl = merge_path_acl([(0o750, 99)], 0o644, file_owner=7)
    assert not acl.access(7).read
    assert not acl.access(3).read


def test_merge_path_acl_empty_ancestry():
    acl = merge_path_acl([], 0o600, file_owner=4)
    assert acl.access(4).read and acl.access(4).write
    assert not acl.access(5).read
