"""Property-based (hypothesis) tests for namespace invariants.

A stateful machine applies random sequences of create/link/unlink/rename
operations and checks after every step that the namespace's structural
invariants hold: dentry/nlink agreement, primary-parent consistency, and
exact anchor-table contents (see ``Namespace.verify_invariants``).
"""

import hypothesis.strategies as st
from hypothesis import settings
from hypothesis.stateful import (RuleBasedStateMachine, initialize,
                                 invariant, rule)

from repro.namespace import (AlreadyExists, FsError, InvalidOperation,
                             Namespace)
from repro.namespace import path as p

NAMES = ["a", "b", "c", "d"]


class NamespaceMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self) -> None:
        self.ns = Namespace()
        self.dirs = [()]  # known directory paths
        self.files = []   # known file paths

    # -- helpers ----------------------------------------------------------
    def _fresh_name(self, parent, rng_name):
        inode = self.ns.try_resolve(parent)
        if inode is None or not inode.is_dir:
            return None
        if rng_name in inode.children:
            return None
        return p.join(parent, rng_name)

    def _refresh_paths(self) -> None:
        """Recompute known paths from ground truth (renames move subtrees)."""
        self.dirs = []
        self.files = []
        for node in self.ns.iter_subtree(1):
            path = self.ns.path_of(node.ino)
            if node.is_dir:
                self.dirs.append(path)
            else:
                self.files.append(path)
        # multiply-linked files are reachable at several paths; path_of only
        # reports the primary.  That is fine for choosing operation targets.

    # -- rules --------------------------------------------------------------
    @rule(parent_idx=st.integers(0, 200), name=st.sampled_from(NAMES))
    def mkdir(self, parent_idx, name):
        parent = self.dirs[parent_idx % len(self.dirs)]
        target = self._fresh_name(parent, name)
        if target is None:
            return
        self.ns.mkdir(target)
        self.dirs.append(target)

    @rule(parent_idx=st.integers(0, 200), name=st.sampled_from(NAMES),
          size=st.integers(0, 10_000))
    def create_file(self, parent_idx, name, size):
        parent = self.dirs[parent_idx % len(self.dirs)]
        target = self._fresh_name(parent, name + ".f")
        if target is None:
            return
        self.ns.create_file(target, size=size)
        self.files.append(target)

    @rule(file_idx=st.integers(0, 200), dir_idx=st.integers(0, 200),
          name=st.sampled_from(NAMES))
    def hard_link(self, file_idx, dir_idx, name):
        if not self.files:
            return
        source = self.files[file_idx % len(self.files)]
        parent = self.dirs[dir_idx % len(self.dirs)]
        target = self._fresh_name(parent, name + ".l")
        if target is None or self.ns.try_resolve(source) is None:
            return
        self.ns.link(source, target)
        self.files.append(target)

    @rule(file_idx=st.integers(0, 200))
    def unlink_file(self, file_idx):
        if not self.files:
            return
        target = self.files[file_idx % len(self.files)]
        node = self.ns.try_resolve(target)
        if node is None or node.is_dir:
            self._refresh_paths()
            return
        self.ns.unlink(target)
        self._refresh_paths()

    @rule(dir_idx=st.integers(0, 200))
    def rmdir_if_empty(self, dir_idx):
        if len(self.dirs) <= 1:
            return
        target = self.dirs[dir_idx % len(self.dirs)]
        if not target:
            return
        node = self.ns.try_resolve(target)
        if node is None or not node.is_dir or node.entry_count:
            return
        self.ns.unlink(target)
        self._refresh_paths()

    @rule(src_idx=st.integers(0, 200), dst_dir_idx=st.integers(0, 200),
          name=st.sampled_from(NAMES))
    def rename_any(self, src_idx, dst_dir_idx, name):
        everything = self.dirs[1:] + self.files
        if not everything:
            return
        src = everything[src_idx % len(everything)]
        dst_parent = self.dirs[dst_dir_idx % len(self.dirs)]
        dst = self._fresh_name(dst_parent, name + ".r")
        if dst is None or self.ns.try_resolve(src) is None:
            return
        try:
            self.ns.rename(src, dst)
        except (InvalidOperation, AlreadyExists, FsError):
            return  # e.g. renaming a directory into its own subtree
        self._refresh_paths()

    # -- invariant ----------------------------------------------------------
    @invariant()
    def namespace_consistent(self):
        if hasattr(self, "ns"):
            self.ns.verify_invariants()


NamespaceMachine.TestCase.settings = settings(
    max_examples=60, stateful_step_count=30, deadline=None)
TestNamespaceProperties = NamespaceMachine.TestCase
