"""Resolution-memo correctness: error paths, invalidation, invariants.

The memo must be invisible: every resolution through it must match what a
cold walk returns, before and after any structural mutation.  These tests
drive ``resolve``/``try_resolve``/``ancestors`` with the memo attached and
check staleness is impossible after rename/unlink/orphan release.
"""

import copy

import pytest

from repro.model.backend import (compiled_model_viable, make_resolution_memo,
                                 set_model_gate)
from repro.namespace import (FileNotFound, Namespace, NotADirectory,
                             build_tree)


@pytest.fixture(scope="module", autouse=True,
                params=["reference", "compiled"])
def model_backend(request):
    """Run every memo test against both backends.

    ``enable_resolution_memo`` builds its memo through the model-backend
    factory, so steering the process-wide gate is enough to swap the
    implementation under the whole suite.
    """
    if request.param == "compiled" and not compiled_model_viable():
        pytest.skip("compiled model extension not built")
    previous = set_model_gate(request.param)
    yield request.param
    set_model_gate(previous)


@pytest.fixture
def ns():
    namespace = Namespace()
    build_tree(namespace, {
        "home": {
            "alice": {"notes.txt": 100, "src": {"main.c": 50}},
            "bob": {"todo.txt": 10},
        },
        "usr": {"bin": {"ls": 900}},
    })
    namespace.enable_resolution_memo()
    return namespace


# ----------------------------------------------------------------------
# error paths (dangling / wrong-type components)
# ----------------------------------------------------------------------
def test_resolve_missing_leaf_raises_and_is_not_cached(ns):
    with pytest.raises(FileNotFound):
        ns.resolve(("home", "alice", "nope"))
    # negative lookups are never memoised
    assert ("home", "alice", "nope") not in ns.resolution_memo.paths
    ns.resolution_memo.verify_invariants()


def test_resolve_missing_middle_component(ns):
    with pytest.raises(FileNotFound):
        ns.resolve(("home", "carol", "x"))
    assert ns.try_resolve(("home", "carol", "x")) is None


def test_resolve_through_file_raises_not_a_directory(ns):
    with pytest.raises(NotADirectory):
        ns.resolve(("home", "alice", "notes.txt", "deeper"))
    assert ns.try_resolve(("home", "alice", "notes.txt", "deeper")) is None
    ns.resolution_memo.verify_invariants()


def test_try_resolve_memo_hit_matches_cold_walk(ns):
    path = ("home", "alice", "src", "main.c")
    first = ns.try_resolve(path)
    hits_before = ns.resolution_memo.hits
    second = ns.try_resolve(path)  # memo hit
    assert second is first
    assert ns.resolution_memo.hits > hits_before
    cold = Namespace()
    build_tree(cold, {"home": {"alice": {"src": {"main.c": 50}}}})
    assert cold.resolve(path).ino is not None  # sanity: path is real


# ----------------------------------------------------------------------
# invalidation on structural mutations
# ----------------------------------------------------------------------
def test_rename_invalidates_old_and_serves_new(ns):
    old = ("home", "alice", "notes.txt")
    new = ("home", "bob", "notes.txt")
    ino = ns.resolve(old).ino  # memoised
    epoch = ns.structure_epoch
    ns.rename(old, new)
    assert ns.structure_epoch > epoch
    assert ns.try_resolve(old) is None
    assert ns.resolve(new).ino == ino
    ns.resolution_memo.verify_invariants()


def test_rename_directory_invalidates_cached_subtree(ns):
    deep = ("home", "alice", "src", "main.c")
    ns.resolve(deep)                      # memoise a path through the dir
    ns.ancestors(ns.resolve(deep).ino)    # and a chain through it
    ns.rename(("home", "alice"), ("home", "alice2"))
    with pytest.raises(FileNotFound):
        ns.resolve(deep)
    assert ns.resolve(("home", "alice2", "src", "main.c")).is_file
    ns.resolution_memo.verify_invariants()


def test_unlink_invalidates_path(ns):
    path = ("home", "bob", "todo.txt")
    ns.resolve(path)
    ns.unlink(path)
    assert ns.try_resolve(path) is None
    with pytest.raises(FileNotFound):
        ns.resolve(path)
    ns.resolution_memo.verify_invariants()


def test_create_after_unlink_resolves_fresh_inode(ns):
    path = ("home", "bob", "todo.txt")
    old_ino = ns.resolve(path).ino
    ns.unlink(path)
    fresh = ns.create_file(path)
    assert ns.resolve(path).ino == fresh.ino != old_ino
    ns.resolution_memo.verify_invariants()


def test_ancestors_chain_invalidated_by_rename(ns):
    ino = ns.resolve(("home", "alice", "src", "main.c")).ino
    before = [a.ino for a in ns.ancestors(ino)]
    assert list(ns.ancestor_inos(ino)) == before
    ns.rename(("home", "alice", "src"), ("usr", "src"))
    after = [a.ino for a in ns.ancestors(ino)]
    assert after != before
    assert list(ns.ancestor_inos(ino)) == after
    ns.resolution_memo.verify_invariants()


def test_creations_do_not_invalidate(ns):
    ns.resolve(("home", "alice", "notes.txt"))
    invals = ns.resolution_memo.invalidations
    ns.mkdir(("home", "alice", "newdir"))
    ns.create_file(("home", "alice", "newdir", "f.txt"))
    assert ns.resolution_memo.invalidations == invals
    ns.resolution_memo.verify_invariants()


def test_memo_capacity_eviction_keeps_index_consistent():
    ns = Namespace()
    build_tree(ns, {"d": {f"f{i}.txt": i + 1 for i in range(32)}})
    ns.enable_resolution_memo(capacity=4)
    for i in range(32):
        ns.resolve(("d", f"f{i}.txt"))
    memo = ns.resolution_memo
    assert len(memo.paths) <= 4
    memo.verify_invariants()
    # evicted entries still resolve correctly (just cold)
    assert ns.resolve(("d", "f0.txt")).is_file


def test_disable_detaches_and_clears(ns):
    ns.resolve(("usr", "bin", "ls"))
    assert len(ns.resolution_memo) > 0
    ns.disable_resolution_memo()
    assert ns.resolution_memo is None
    assert ns.resolve(("usr", "bin", "ls")).is_file  # plain walk still works


def test_memo_survives_deepcopy_independently(ns):
    ns.resolve(("home", "alice", "notes.txt"))
    clone = copy.deepcopy(ns)
    clone.unlink(("home", "alice", "notes.txt"))
    # the original's memo must be untouched by the clone's mutation
    assert ns.resolve(("home", "alice", "notes.txt")).is_file
    assert clone.try_resolve(("home", "alice", "notes.txt")) is None
    ns.resolution_memo.verify_invariants()
    clone.resolution_memo.verify_invariants()


def test_memo_rejects_bad_capacity():
    with pytest.raises(ValueError):
        make_resolution_memo(capacity=0)
