"""Unit tests for the Namespace tree: create/unlink/rename/link/chmod."""

import pytest

from repro.namespace import (AlreadyExists, FileNotFound, InvalidOperation,
                             IsADirectory, Namespace, NotADirectory, NotEmpty,
                             ROOT_INO, build_tree)
from repro.namespace import path as p


@pytest.fixture
def ns():
    namespace = Namespace()
    build_tree(namespace, {
        "home": {
            "alice": {"notes.txt": 100, "src": {"main.c": 50, "util.c": 30}},
            "bob": {"todo.txt": 10},
        },
        "usr": {"bin": {"ls": 900}},
    })
    return namespace


def test_root_exists():
    ns = Namespace()
    assert ns.resolve(()).ino == ROOT_INO
    assert len(ns) == 1


def test_resolve_nested(ns):
    inode = ns.resolve(p.parse("/home/alice/src/main.c"))
    assert inode.is_file
    assert inode.size == 50


def test_resolve_missing_raises(ns):
    with pytest.raises(FileNotFound):
        ns.resolve(p.parse("/home/carol"))


def test_resolve_through_file_raises(ns):
    with pytest.raises(NotADirectory):
        ns.resolve(p.parse("/home/alice/notes.txt/deep"))


def test_try_resolve_returns_none(ns):
    assert ns.try_resolve(p.parse("/nope")) is None
    assert ns.try_resolve(p.parse("/home")) is not None


def test_path_of_roundtrip(ns):
    target = p.parse("/home/alice/src/util.c")
    ino = ns.resolve(target).ino
    assert ns.path_of(ino) == target


def test_ancestors_root_first(ns):
    ino = ns.resolve(p.parse("/home/alice/src/main.c")).ino
    chain = [a.ino for a in ns.ancestors(ino)]
    expected = [ns.resolve(p.parse(t)).ino
                for t in ("/", "/home", "/home/alice", "/home/alice/src")]
    assert chain == expected


def test_is_ancestor_ino(ns):
    home = ns.resolve(p.parse("/home")).ino
    leaf = ns.resolve(p.parse("/home/alice/notes.txt")).ino
    assert ns.is_ancestor_ino(home, leaf)
    assert not ns.is_ancestor_ino(leaf, home)
    assert not ns.is_ancestor_ino(leaf, leaf)


def test_readdir_order_and_content(ns):
    assert ns.readdir(p.parse("/home/alice")) == ["notes.txt", "src"]


def test_readdir_on_file_raises(ns):
    with pytest.raises(NotADirectory):
        ns.readdir(p.parse("/home/bob/todo.txt"))


def test_create_duplicate_raises(ns):
    with pytest.raises(AlreadyExists):
        ns.create_file(p.parse("/home/bob/todo.txt"))


def test_create_in_missing_parent_raises(ns):
    with pytest.raises(FileNotFound):
        ns.create_file(p.parse("/home/carol/x.txt"))


def test_create_root_rejected(ns):
    with pytest.raises(InvalidOperation):
        ns.mkdir(())


def test_unlink_file(ns):
    target = p.parse("/home/bob/todo.txt")
    ino = ns.resolve(target).ino
    ns.unlink(target)
    assert ns.try_resolve(target) is None
    assert ino not in ns
    ns.verify_invariants()


def test_unlink_missing_raises(ns):
    with pytest.raises(FileNotFound):
        ns.unlink(p.parse("/home/bob/nothere"))


def test_unlink_nonempty_dir_raises(ns):
    with pytest.raises(NotEmpty):
        ns.unlink(p.parse("/home/alice"))


def test_unlink_empty_dir(ns):
    ns.mkdir(p.parse("/home/bob/empty"))
    ns.unlink(p.parse("/home/bob/empty"))
    assert ns.try_resolve(p.parse("/home/bob/empty")) is None
    ns.verify_invariants()


def test_unlink_root_rejected(ns):
    with pytest.raises(InvalidOperation):
        ns.unlink(())


def test_rename_file_same_dir(ns):
    ns.rename(p.parse("/home/bob/todo.txt"), p.parse("/home/bob/done.txt"))
    assert ns.try_resolve(p.parse("/home/bob/todo.txt")) is None
    assert ns.resolve(p.parse("/home/bob/done.txt")).size == 10
    ns.verify_invariants()


def test_rename_file_across_dirs(ns):
    ns.rename(p.parse("/home/bob/todo.txt"), p.parse("/home/alice/todo.txt"))
    inode = ns.resolve(p.parse("/home/alice/todo.txt"))
    assert ns.path_of(inode.ino) == p.parse("/home/alice/todo.txt")
    ns.verify_invariants()


def test_rename_directory_moves_subtree(ns):
    ns.rename(p.parse("/home/alice/src"), p.parse("/usr/src"))
    moved = ns.resolve(p.parse("/usr/src/main.c"))
    assert moved.size == 50
    assert ns.try_resolve(p.parse("/home/alice/src")) is None
    ns.verify_invariants()


def test_rename_into_own_subtree_rejected(ns):
    with pytest.raises(InvalidOperation):
        ns.rename(p.parse("/home"), p.parse("/home/alice/home"))


def test_rename_onto_existing_rejected(ns):
    with pytest.raises(AlreadyExists):
        ns.rename(p.parse("/home/bob/todo.txt"),
                  p.parse("/home/alice/notes.txt"))


def test_rename_root_rejected(ns):
    with pytest.raises(InvalidOperation):
        ns.rename((), p.parse("/elsewhere"))


def test_chmod(ns):
    ns.chmod(p.parse("/home/bob/todo.txt"), 0o600)
    assert ns.resolve(p.parse("/home/bob/todo.txt")).mode == 0o600


def test_setattr_size(ns):
    ns.setattr(p.parse("/home/bob/todo.txt"), size=77)
    assert ns.resolve(p.parse("/home/bob/todo.txt")).size == 77


def test_setattr_size_on_dir_raises(ns):
    with pytest.raises(IsADirectory):
        ns.setattr(p.parse("/home/bob"), size=1)


def test_mtime_propagates_to_parent(ns):
    ns.create_file(p.parse("/home/bob/new.txt"), mtime=42.0)
    assert ns.resolve(p.parse("/home/bob")).mtime == 42.0


def test_iter_subtree_counts(ns):
    alice = ns.resolve(p.parse("/home/alice")).ino
    names = {n.ino for n in ns.iter_subtree(alice)}
    assert len(names) == 5  # alice, notes.txt, src, main.c, util.c
    assert ns.subtree_inode_count(alice) == 5


def test_counts(ns):
    # dirs: /, home, alice, src, bob, usr, bin = 7
    assert ns.count_dirs() == 7
    assert ns.count_files() == 5
    assert len(ns) == 12


def test_invariants_on_fixture(ns):
    ns.verify_invariants()
