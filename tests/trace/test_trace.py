"""Tests for trace recording, serialization, and replay."""

import io

import pytest

from repro.clients import Client, GeneralWorkload, GeneralWorkloadSpec
from repro.mds import MdsCluster, MdsRequest, OpType, SimParams
from repro.namespace import Namespace, SnapshotSpec, generate_snapshot
from repro.namespace import path as p
from repro.partition import make_strategy
from repro.sim import Environment, RngStreams
from repro.trace import (RecordingWorkload, Trace, TraceRecord,
                         TraceReplayWorkload)


def build(seed=5, strategy="DynamicSubtree"):
    env = Environment()
    streams = RngStreams(seed)
    ns = Namespace()
    snapshot = generate_snapshot(
        ns, SnapshotSpec(n_users=4, files_per_user=25), streams)
    strat = make_strategy(strategy, 3)
    strat.bind(ns)
    cluster = MdsCluster(env, ns, strat, SimParams())
    cluster.start()
    return env, streams, ns, snapshot, cluster


def record_run(seed=5, until=1.5, n_clients=5):
    env, streams, ns, snapshot, cluster = build(seed)
    inner = GeneralWorkload(ns, snapshot.user_roots,
                            GeneralWorkloadSpec(think_time_s=0.02))
    recording = RecordingWorkload(inner)
    clients = [Client(env, i, cluster, recording,
                      streams.py_stream(f"c{i}")) for i in range(n_clients)]
    for c in clients:
        c.start()
    env.run(until=until)
    return recording.trace


def test_record_roundtrip_json():
    record = TraceRecord(t=1.5, client_id=3, op="open", path="/a/b",
                         size=10)
    line = record.to_json()
    assert TraceRecord.from_json(line) == record


def test_record_from_request_roundtrip():
    req = MdsRequest(op=OpType.RENAME, path=p.parse("/a/b"), client_id=2,
                     dst_path=p.parse("/c/d"), mode=0o600, size=5,
                     dir_hint=True)
    record = TraceRecord.from_request(2.5, req)
    back = record.to_request()
    assert back.op is OpType.RENAME
    assert back.path == p.parse("/a/b")
    assert back.dst_path == p.parse("/c/d")
    assert back.mode == 0o600 and back.size == 5 and back.dir_hint


def test_recording_captures_operations():
    trace = record_run()
    assert len(trace) > 50
    assert trace.clients() <= set(range(5))
    assert trace.duration() > 0.5
    ops = {r.op for r in trace.records}
    assert "open" in ops or "stat" in ops


def test_trace_dump_and_load():
    trace = record_run(until=0.8)
    buffer = io.StringIO()
    written = trace.dump(buffer)
    assert written == len(trace)
    buffer.seek(0)
    loaded = Trace.load(buffer)
    assert loaded.records == trace.records


def test_replay_reproduces_op_stream():
    trace = record_run(seed=7, until=1.0)
    env, streams, ns, snapshot, cluster = build(seed=7)
    replay = TraceReplayWorkload(trace)
    clients = [Client(env, i, cluster, replay,
                      streams.py_stream(f"c{i}"))
               for i in sorted(trace.clients())]
    for c in clients:
        c.start()
    env.run(until=2.0)
    replayed = sum(c.stats.ops_completed for c in clients)
    assert replayed == len(trace)
    for c in clients:
        assert replay.remaining(c.client_id) == 0


def test_replay_against_a_different_strategy():
    trace = record_run(seed=9, until=1.0)
    env, streams, ns, snapshot, cluster = build(seed=9, strategy="FileHash")
    replay = TraceReplayWorkload(trace)
    clients = [Client(env, i, cluster, replay, streams.py_stream(f"c{i}"))
               for i in sorted(trace.clients())]
    for c in clients:
        c.start()
    env.run(until=2.5)
    replayed = sum(c.stats.ops_completed for c in clients)
    # a few ops may fail (different interleaving of mutations) but the
    # stream must drive through
    assert replayed == len(trace)


def test_replay_time_scale():
    trace = record_run(seed=11, until=1.0)
    env, streams, ns, snapshot, cluster = build(seed=11)
    replay = TraceReplayWorkload(trace, time_scale=0.5)
    clients = [Client(env, i, cluster, replay, streams.py_stream(f"c{i}"))
               for i in sorted(trace.clients())]
    for c in clients:
        c.start()
    env.run(until=0.75)  # compressed timeline finishes sooner
    replayed = sum(c.stats.ops_completed for c in clients)
    assert replayed > 0.8 * len(trace)


def test_replay_rejects_bad_time_scale():
    with pytest.raises(ValueError):
        TraceReplayWorkload(Trace(), time_scale=0.0)


def test_exhausted_client_goes_idle():
    trace = Trace([TraceRecord(t=0.1, client_id=0, op="stat", path="/")])
    env, streams, ns, snapshot, cluster = build()
    replay = TraceReplayWorkload(trace)
    client = Client(env, 0, cluster, replay, streams.py_stream("c0"))
    client.start()
    env.run(until=1.0)
    assert client.stats.ops_completed == 1
    assert replay.remaining(0) == 0
