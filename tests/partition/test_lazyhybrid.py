"""Unit tests for Lazy Hybrid: merged ACLs and deferred updates."""

import pytest

from repro.namespace import Namespace, build_tree
from repro.namespace import path as p
from repro.partition import LazyHybridPartition


def bind(n_mds=4):
    ns = Namespace()
    build_tree(ns, {
        "proj": {"secret": {"plan.txt": 10}, "open": {"pub.txt": 5}},
    }, owner=7)
    strat = LazyHybridPartition(n_mds)
    strat.bind(ns)
    return ns, strat


def test_no_path_traversal():
    _, strat = bind()
    assert strat.needs_path_traversal is False


def test_inode_grain_layout():
    _, strat = bind()
    assert not strat.layout.prefetches_directory


def test_client_can_compute_authority():
    ns, strat = bind()
    path = p.parse("/proj/open/pub.txt")
    assert strat.client_locate(path) == strat.authority_of_ino(
        ns.resolve(path).ino)


def test_effective_acl_reflects_ancestors():
    ns, strat = bind()
    plan = ns.resolve(p.parse("/proj/secret/plan.txt")).ino
    acl_open = strat.effective_acl(plan)
    assert acl_open.access(7).read          # owner can read
    assert acl_open.access(3).read          # world-readable so far
    # lock down the ancestor
    ns.chmod(p.parse("/proj/secret"), 0o700)
    acl_locked = strat.effective_acl(plan)
    assert acl_locked.access(7).read
    assert not acl_locked.access(3).read    # others blocked by the directory


def test_dir_chmod_owes_updates_for_nested_files():
    ns, strat = bind()
    proj = ns.resolve(p.parse("/proj")).ino
    owed = strat.on_chmod(proj)
    # everything nested: secret, plan.txt, open, pub.txt
    assert owed == 4
    assert strat.pending_count == 4
    assert strat.stats.acl_updates_owed == 4


def test_file_chmod_owes_nothing():
    ns, strat = bind()
    f = ns.resolve(p.parse("/proj/open/pub.txt")).ino
    assert strat.on_chmod(f) == 0


def test_rename_owes_migrations():
    ns, strat = bind()
    secret = ns.resolve(p.parse("/proj/secret")).ino
    ns.rename(p.parse("/proj/secret"), p.parse("/proj/hidden"))
    owed = strat.on_rename(secret, p.parse("/proj/secret"),
                           p.parse("/proj/hidden"))
    assert owed == 2  # the dir and plan.txt
    assert strat.stats.migrations_owed == 2


def test_take_pending_applies_once():
    ns, strat = bind()
    proj = ns.resolve(p.parse("/proj")).ino
    strat.on_chmod(proj)
    f = ns.resolve(p.parse("/proj/open/pub.txt")).ino
    assert strat.take_pending(f)
    assert not strat.take_pending(f)
    assert strat.stats.updates_applied == 1
    assert strat.pending_count == 3


def test_pending_set_deduplicates():
    ns, strat = bind()
    proj = ns.resolve(p.parse("/proj")).ino
    strat.on_chmod(proj)
    strat.on_chmod(proj)  # second change before first propagated
    # owed counts accumulate but the pending set stays deduplicated:
    # one lazy visit fixes the record to current truth
    assert strat.stats.acl_updates_owed == 8
    assert strat.pending_count == 4
