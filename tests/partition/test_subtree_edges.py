"""Additional edge-case tests for subtree partitioning."""

import pytest

from repro.namespace import Namespace, build_tree
from repro.namespace import path as p
from repro.partition import DynamicSubtreePartition, StaticSubtreePartition


def deep_ns():
    ns = Namespace()
    build_tree(ns, {
        "a": {"b": {"c": {"d": {"leaf.txt": 1}}}},
        "x": {"y.txt": 2},
    })
    return ns


def test_split_depth_controls_initial_partition():
    ns = deep_ns()
    shallow = StaticSubtreePartition(4, split_depth=1)
    shallow.bind(ns)
    deep = StaticSubtreePartition(4, split_depth=3)
    deep.bind(ns)
    # deeper splitting delegates more directories explicitly
    assert len(deep.delegations) > len(shallow.delegations)
    c = ns.resolve(p.parse("/a/b/c")).ino
    assert c in deep.delegations
    assert c not in shallow.delegations


def test_delegation_root_of_file_uses_parent_dir():
    ns = deep_ns()
    strat = StaticSubtreePartition(4)
    strat.bind(ns)
    leaf = ns.resolve(p.parse("/a/b/c/d/leaf.txt")).ino
    root = strat.delegation_root_of(leaf)
    assert ns.inode(root).is_dir
    assert ns.is_ancestor_ino(root, leaf)


def test_rebind_resets_partition_state():
    ns = deep_ns()
    strat = DynamicSubtreePartition(4)
    strat.bind(ns)
    b = ns.resolve(p.parse("/a/b")).ino
    strat.delegate(b, 3)
    strat.fragment_directory(b)
    strat.bind(ns)  # re-setup
    assert b not in strat.fragmented
    # delegations rebuilt from the hash rule only
    depth_ok = all(
        len(ns.path_of(ino)) <= strat.split_depth
        for ino in strat.delegations if ino != 1)
    assert depth_ok


def test_every_mds_id_reachable_with_many_subtrees():
    ns = Namespace()
    build_tree(ns, {f"u{i:03d}": {"f": 1} for i in range(64)})
    strat = StaticSubtreePartition(8, split_depth=1)
    strat.bind(ns)
    owners = {strat.authority_of_ino(ns.resolve((f"u{i:03d}",)).ino)
              for i in range(64)}
    assert owners == set(range(8))


def test_authority_follows_rename_across_delegations():
    ns = deep_ns()
    strat = DynamicSubtreePartition(4)
    strat.bind(ns)
    a = ns.resolve(p.parse("/a")).ino
    x = ns.resolve(p.parse("/x")).ino
    if strat.authority_of_ino(a) == strat.authority_of_ino(x):
        strat.delegate(x, (strat.authority_of_ino(a) + 1) % 4)
    leaf_path = p.parse("/a/b/c/d/leaf.txt")
    leaf = ns.resolve(leaf_path).ino
    before = strat.authority_of_ino(leaf)
    ns.rename(leaf_path, p.parse("/x/leaf.txt"))
    after = strat.authority_of_ino(leaf)
    assert after == strat.authority_of_ino(x)
    assert after != before


def test_fragmented_lookup_is_deterministic():
    ns = Namespace()
    build_tree(ns, {"big": {f"f{i}": 1 for i in range(30)}})
    strat = DynamicSubtreePartition(5)
    strat.bind(ns)
    big = ns.resolve(p.parse("/big")).ino
    strat.fragment_directory(big)
    first = {ino: strat.authority_of_ino(ino)
             for ino in ns.inode(big).children.values()}
    second = {ino: strat.authority_of_ino(ino)
              for ino in ns.inode(big).children.values()}
    assert first == second
