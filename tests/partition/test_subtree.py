"""Unit tests for static/dynamic subtree partitioning."""

import pytest

from repro.namespace import Namespace, build_tree
from repro.namespace import path as p
from repro.partition import (DynamicSubtreePartition, StaticSubtreePartition)


def make_ns():
    ns = Namespace()
    build_tree(ns, {
        "home": {
            "alice": {"src": {"main.c": 10}, "notes.txt": 5},
            "bob": {"doc": {"t.tex": 3}},
        },
        "usr": {"pkg0": {"bin0": 7}},
    })
    return ns


def bind(strategy_cls, n_mds=4, **kw):
    ns = make_ns()
    strat = strategy_cls(n_mds, **kw)
    strat.bind(ns)
    return ns, strat


def test_requires_at_least_one_mds():
    with pytest.raises(ValueError):
        StaticSubtreePartition(0)


def test_initial_partition_delegates_near_root():
    ns, strat = bind(StaticSubtreePartition, n_mds=4)
    # root + depth 1-2 directories: /home /usr /home/alice /home/bob /usr/pkg0
    delegated = set(strat.delegations)
    expected = {1} | {ns.resolve(p.parse(t)).ino for t in
                      ("/home", "/usr", "/home/alice", "/home/bob",
                       "/usr/pkg0")}
    assert delegated == expected


def test_everything_under_a_subtree_shares_authority():
    ns, strat = bind(StaticSubtreePartition)
    alice = ns.resolve(p.parse("/home/alice")).ino
    owner = strat.authority_of_ino(alice)
    for node in ns.iter_subtree(alice):
        assert strat.authority_of_ino(node.ino) == owner


def test_authority_is_deterministic():
    _, s1 = bind(StaticSubtreePartition)
    _, s2 = bind(StaticSubtreePartition)
    for ino in (1, 2, 3, 5, 8):
        assert s1.authority_of_ino(ino) == s2.authority_of_ino(ino)


def test_authorities_in_range():
    ns, strat = bind(StaticSubtreePartition, n_mds=3)
    for node in ns.iter_subtree(1):
        assert 0 <= strat.authority_of_ino(node.ino) < 3


def test_clients_cannot_compute_subtree_authority():
    _, strat = bind(StaticSubtreePartition)
    assert strat.client_locate(p.parse("/home/alice/notes.txt")) is None


def test_delegation_root_of():
    ns, strat = bind(StaticSubtreePartition)
    main_c = ns.resolve(p.parse("/home/alice/src/main.c")).ino
    alice = ns.resolve(p.parse("/home/alice")).ino
    assert strat.delegation_root_of(main_c) == alice


def test_subtrees_of_lists_owned_roots():
    ns, strat = bind(StaticSubtreePartition, n_mds=2)
    all_roots = set()
    for mds in range(2):
        roots = strat.subtrees_of(mds)
        for r in roots:
            assert strat.delegations[r] == mds
        all_roots.update(roots)
    assert all_roots == set(strat.delegations)


def test_dynamic_delegate_changes_authority():
    ns, strat = bind(DynamicSubtreePartition, n_mds=4)
    src = ns.resolve(p.parse("/home/alice/src")).ino
    old = strat.authority_of_ino(src)
    new = (old + 1) % 4
    strat.delegate(src, new)
    assert strat.authority_of_ino(src) == new
    main_c = ns.resolve(p.parse("/home/alice/src/main.c")).ino
    assert strat.authority_of_ino(main_c) == new
    # siblings outside the subtree keep the old authority
    notes = ns.resolve(p.parse("/home/alice/notes.txt")).ino
    assert strat.authority_of_ino(notes) == old


def test_delegate_rejects_files_and_bad_mds():
    ns, strat = bind(DynamicSubtreePartition)
    f = ns.resolve(p.parse("/home/alice/notes.txt")).ino
    with pytest.raises(ValueError):
        strat.delegate(f, 0)
    d = ns.resolve(p.parse("/home/alice/src")).ino
    with pytest.raises(ValueError):
        strat.delegate(d, 99)


def test_undelegate_restores_covering_authority():
    ns, strat = bind(DynamicSubtreePartition, n_mds=4)
    alice = ns.resolve(p.parse("/home/alice")).ino
    src = ns.resolve(p.parse("/home/alice/src")).ino
    covering = strat.authority_of_ino(alice)
    strat.delegate(src, (covering + 1) % 4)
    strat.undelegate(src)
    assert strat.authority_of_ino(src) == covering


def test_undelegate_root_rejected():
    _, strat = bind(DynamicSubtreePartition)
    with pytest.raises(ValueError):
        strat.undelegate(1)


def test_coalesce_drops_redundant_nested_delegation():
    ns, strat = bind(DynamicSubtreePartition, n_mds=4)
    alice = ns.resolve(p.parse("/home/alice")).ino
    src = ns.resolve(p.parse("/home/alice/src")).ino
    strat.delegate(src, 2)
    # now delegate the covering tree to the same MDS: nested one is redundant
    strat.delegate(alice, 2)
    assert src not in strat.delegations
    assert strat.authority_of_ino(src) == 2


def test_coalesce_keeps_nested_delegation_with_interposed_owner():
    ns, strat = bind(DynamicSubtreePartition, n_mds=4)
    home = ns.resolve(p.parse("/home")).ino
    alice = ns.resolve(p.parse("/home/alice")).ino
    src = ns.resolve(p.parse("/home/alice/src")).ino
    strat.delegate(src, 2)
    strat.delegate(alice, 3)   # interposed, different owner
    strat.delegate(home, 2)    # same owner as src, but alice(3) sits between
    assert src in strat.delegations
    assert strat.authority_of_ino(src) == 2
    assert strat.authority_of_ino(alice) == 3


def test_fragmented_directory_scatters_children():
    ns, strat = bind(DynamicSubtreePartition, n_mds=4)
    src = ns.resolve(p.parse("/home/alice/src")).ino
    # add enough files that hashing must hit more than one MDS
    for i in range(20):
        ns.create_file(p.parse(f"/home/alice/src/f{i}.c"))
    strat.fragment_directory(src)
    owners = {strat.authority_of_ino(ino)
              for ino in ns.inode(src).children.values()}
    assert len(owners) > 1
    # the directory inode itself keeps its subtree authority
    assert strat.authority_of_ino(src) == strat.authority_of_ino(
        ns.resolve(p.parse("/home/alice")).ino)
    strat.unfragment_directory(src)
    owners_after = {strat.authority_of_ino(ino)
                    for ino in ns.inode(src).children.values()}
    assert owners_after == {strat.authority_of_ino(src)}


def test_fragment_rejects_files():
    ns, strat = bind(DynamicSubtreePartition)
    f = ns.resolve(p.parse("/home/alice/notes.txt")).ino
    with pytest.raises(ValueError):
        strat.fragment_directory(f)


def test_static_layout_is_directory_grain():
    _, strat = bind(StaticSubtreePartition)
    assert strat.layout.prefetches_directory
    assert strat.needs_path_traversal
