"""Unit tests for file-hash and directory-hash partitioning."""

import pytest

from repro.namespace import Namespace, build_tree
from repro.namespace import path as p
from repro.partition import (DirHashPartition, FileHashPartition,
                             stable_hash)


def make_ns():
    ns = Namespace()
    build_tree(ns, {
        "d1": {"a.txt": 1, "b.txt": 2, "sub": {"c.txt": 3}},
        "d2": {"x.txt": 4},
    })
    return ns


def bind(cls, n_mds=4):
    ns = make_ns()
    strat = cls(n_mds)
    strat.bind(ns)
    return ns, strat


def test_stable_hash_is_stable():
    assert stable_hash(("a", "b")) == stable_hash(("a", "b"))
    assert stable_hash(("a", "b")) != stable_hash(("a", "c"))
    assert stable_hash(("a",), salt=1) != stable_hash(("a",), salt=2)


def test_filehash_matches_client_computation():
    ns, strat = bind(FileHashPartition)
    for text in ("/d1/a.txt", "/d1/sub/c.txt", "/d2/x.txt", "/d1", "/"):
        path = p.parse(text)
        ino = ns.resolve(path).ino
        assert strat.authority_of_ino(ino) == strat.client_locate(path)


def test_filehash_scatters_directory_contents():
    ns, strat = bind(FileHashPartition, n_mds=8)
    big = Namespace()
    build_tree(big, {"d": {f"f{i}.txt": 1 for i in range(40)}})
    strat2 = FileHashPartition(8)
    strat2.bind(big)
    d = big.resolve(p.parse("/d"))
    owners = {strat2.authority_of_ino(i) for i in d.children.values()}
    assert len(owners) > 1


def test_dirhash_groups_directory_contents():
    ns, strat = bind(DirHashPartition, n_mds=8)
    d1 = ns.resolve(p.parse("/d1"))
    file_owners = {strat.authority_of_ino(i)
                   for name, i in d1.children.items() if name.endswith(".txt")}
    assert len(file_owners) == 1
    # the directory inode is grouped with its contents
    assert strat.authority_of_ino(d1.ino) in file_owners
    # a nested subdirectory groups with *its own* contents instead
    sub = ns.resolve(p.parse("/d1/sub"))
    c = ns.resolve(p.parse("/d1/sub/c.txt"))
    assert strat.authority_of_ino(sub.ino) == strat.authority_of_ino(c.ino)


def test_dirhash_different_dirs_can_differ():
    big = Namespace()
    build_tree(big, {f"d{i}": {"f.txt": 1} for i in range(30)})
    strat = DirHashPartition(8)
    strat.bind(big)
    owners = {strat.authority_of_ino(big.resolve(p.parse(f"/d{i}")).ino)
              for i in range(30)}
    assert len(owners) > 1


def test_dirhash_client_locate_exact_for_files():
    ns, strat = bind(DirHashPartition)
    path = p.parse("/d1/a.txt")
    assert strat.client_locate(path) == strat.authority_of_ino(
        ns.resolve(path).ino)


def test_layouts():
    _, fh = bind(FileHashPartition)
    _, dh = bind(DirHashPartition)
    assert not fh.layout.prefetches_directory
    assert dh.layout.prefetches_directory


def test_rename_marks_subtree_pending():
    ns, strat = bind(FileHashPartition)
    sub = ns.resolve(p.parse("/d1/sub")).ino
    old, new = p.parse("/d1/sub"), p.parse("/d2/sub")
    ns.rename(old, new)
    owed = strat.on_rename(sub, old, new)
    assert owed == 2  # sub + c.txt
    assert strat.pending_count == 2


def test_take_pending_consumes_once():
    ns, strat = bind(FileHashPartition)
    sub = ns.resolve(p.parse("/d1/sub")).ino
    ns.rename(p.parse("/d1/sub"), p.parse("/d2/sub"))
    strat.on_rename(sub, p.parse("/d1/sub"), p.parse("/d2/sub"))
    c = ns.resolve(p.parse("/d2/sub/c.txt")).ino
    assert strat.take_pending(c) is True
    assert strat.take_pending(c) is False
    assert strat.pending_count == 1


def test_rename_changes_authority():
    ns, strat = bind(FileHashPartition, n_mds=64)
    a = ns.resolve(p.parse("/d1/a.txt")).ino
    before = strat.authority_of_ino(a)
    ns.rename(p.parse("/d1/a.txt"), p.parse("/d2/renamed.txt"))
    after = strat.authority_of_ino(a)
    # with 64 buckets a collision is possible but this particular pair differs
    assert before != after


def test_chmod_is_free_for_plain_hashing():
    ns, strat = bind(FileHashPartition)
    d1 = ns.resolve(p.parse("/d1")).ino
    assert strat.on_chmod(d1) == 0
