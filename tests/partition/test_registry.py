"""Registry and cross-strategy property tests."""

import pytest

from repro.namespace import Namespace, SnapshotSpec, generate_snapshot
from repro.partition import make_strategy, strategy_names
from repro.sim import RngStreams


def test_strategy_names_cover_the_paper():
    assert strategy_names() == ["StaticSubtree", "DynamicSubtree", "DirHash",
                                "LazyHybrid", "FileHash"]


def test_make_strategy_all_names():
    for name in strategy_names():
        strat = make_strategy(name, 4)
        assert strat.name == name
        assert strat.n_mds == 4


def test_make_strategy_unknown():
    with pytest.raises(ValueError, match="unknown strategy"):
        make_strategy("Nope", 4)


@pytest.mark.parametrize("name", ["StaticSubtree", "DynamicSubtree",
                                  "DirHash", "LazyHybrid", "FileHash"])
def test_every_inode_has_an_authority_in_range(name):
    ns = Namespace()
    generate_snapshot(ns, SnapshotSpec(n_users=4, files_per_user=30),
                      RngStreams(11))
    strat = make_strategy(name, 5)
    strat.bind(ns)
    for node in ns.iter_subtree(1):
        mds = strat.authority_of_ino(node.ino)
        assert 0 <= mds < 5


@pytest.mark.parametrize("name", ["DirHash", "LazyHybrid", "FileHash"])
def test_hash_strategies_spread_load(name):
    ns = Namespace()
    generate_snapshot(ns, SnapshotSpec(n_users=6, files_per_user=50),
                      RngStreams(13))
    strat = make_strategy(name, 4)
    strat.bind(ns)
    counts = [0] * 4
    for node in ns.iter_subtree(1):
        counts[strat.authority_of_ino(node.ino)] += 1
    total = sum(counts)
    for c in counts:
        assert c > 0.1 * total / 4  # nothing starved
