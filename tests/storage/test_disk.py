"""Unit tests for the average-latency disk device."""

import pytest

from repro.sim import Environment
from repro.storage import DiskDevice


def test_latency_validation():
    env = Environment()
    with pytest.raises(ValueError):
        DiskDevice(env, read_s=-1.0, write_s=0.0)


def test_single_read_takes_read_latency():
    env = Environment()
    disk = DiskDevice(env, read_s=0.004, write_s=0.002)

    def body():
        yield from disk.read()

    proc = env.process(body())
    env.run(until=proc)
    assert env.now == pytest.approx(0.004)
    assert disk.stats.reads == 1
    assert disk.stats.writes == 0


def test_multi_unit_read_scales():
    env = Environment()
    disk = DiskDevice(env, read_s=0.004, write_s=0.002)

    def body():
        yield from disk.read(units=3)

    proc = env.process(body())
    env.run(until=proc)
    assert env.now == pytest.approx(0.012)
    assert disk.stats.reads == 3


def test_zero_units_rejected():
    env = Environment()
    disk = DiskDevice(env, read_s=0.004, write_s=0.002)
    with pytest.raises(ValueError):
        next(disk.read(units=0))


def test_contention_serializes():
    env = Environment()
    disk = DiskDevice(env, read_s=0.010, write_s=0.002)
    done = []

    def reader(name):
        yield from disk.read()
        done.append((name, env.now))

    env.process(reader("a"))
    env.process(reader("b"))
    env.run()
    assert done == [("a", pytest.approx(0.010)), ("b", pytest.approx(0.020))]


def test_queue_length_visible_during_contention():
    env = Environment()
    disk = DiskDevice(env, read_s=0.010, write_s=0.002)
    samples = []

    def reader():
        yield from disk.read()

    def sampler():
        yield env.timeout(0.005)
        samples.append(disk.queue_length)

    env.process(reader())
    env.process(reader())
    env.process(reader())
    env.process(sampler())
    env.run()
    assert samples == [2]


def test_busy_time_and_utilization():
    env = Environment()
    disk = DiskDevice(env, read_s=0.004, write_s=0.006)

    def body():
        yield from disk.read()
        yield from disk.write()

    proc = env.process(body())
    env.run(until=proc)
    assert disk.stats.busy_s == pytest.approx(0.010)
    assert disk.utilization(0.020) == pytest.approx(0.5)
    assert disk.utilization(0.0) == 0.0


def test_mixed_read_write_counts():
    env = Environment()
    disk = DiskDevice(env, read_s=0.001, write_s=0.001)

    def body():
        yield from disk.write(units=2)
        yield from disk.read(units=1)

    env.run(until=env.process(body()))
    assert disk.stats.transactions == 3
