"""Unit tests for the average-latency disk device."""

import pytest

from repro.sim import Environment
from repro.storage import DiskDevice


def test_latency_validation():
    env = Environment()
    with pytest.raises(ValueError):
        DiskDevice(env, read_s=-1.0, write_s=0.0)


def test_single_read_takes_read_latency():
    env = Environment()
    disk = DiskDevice(env, read_s=0.004, write_s=0.002)

    def body():
        yield from disk.read()

    proc = env.process(body())
    env.run(until=proc)
    assert env.now == pytest.approx(0.004)
    assert disk.stats.reads == 1
    assert disk.stats.writes == 0


def test_multi_unit_read_scales():
    env = Environment()
    disk = DiskDevice(env, read_s=0.004, write_s=0.002)

    def body():
        yield from disk.read(units=3)

    proc = env.process(body())
    env.run(until=proc)
    assert env.now == pytest.approx(0.012)
    assert disk.stats.reads == 3


def test_zero_units_rejected():
    env = Environment()
    disk = DiskDevice(env, read_s=0.004, write_s=0.002)
    with pytest.raises(ValueError):
        next(disk.read(units=0))


def test_contention_serializes():
    env = Environment()
    disk = DiskDevice(env, read_s=0.010, write_s=0.002)
    done = []

    def reader(name):
        yield from disk.read()
        done.append((name, env.now))

    env.process(reader("a"))
    env.process(reader("b"))
    env.run()
    assert done == [("a", pytest.approx(0.010)), ("b", pytest.approx(0.020))]


def test_queue_length_visible_during_contention():
    env = Environment()
    disk = DiskDevice(env, read_s=0.010, write_s=0.002)
    samples = []

    def reader():
        yield from disk.read()

    def sampler():
        yield env.timeout(0.005)
        samples.append(disk.queue_length)

    env.process(reader())
    env.process(reader())
    env.process(reader())
    env.process(sampler())
    env.run()
    assert samples == [2]


def test_busy_time_and_utilization():
    env = Environment()
    disk = DiskDevice(env, read_s=0.004, write_s=0.006)

    def body():
        yield from disk.read()
        yield from disk.write()

    proc = env.process(body())
    env.run(until=proc)
    assert disk.stats.busy_s == pytest.approx(0.010)
    assert disk.utilization(0.020) == pytest.approx(0.5)
    assert disk.utilization(0.0) == 0.0


def test_mixed_read_write_counts():
    env = Environment()
    disk = DiskDevice(env, read_s=0.001, write_s=0.001)

    def body():
        yield from disk.write(units=2)
        yield from disk.read(units=1)

    env.run(until=env.process(body()))
    assert disk.stats.transactions == 3


def test_invalid_units_rejected_everywhere():
    """Zero and negative unit counts are rejected by both the flattened
    fast path and the queued generator path, for reads and writes."""
    env = Environment(fastlane=True)
    disk = DiskDevice(env, read_s=0.004, write_s=0.002)
    for units in (0, -1, -7):
        with pytest.raises(ValueError):
            disk.read_event(units)
        with pytest.raises(ValueError):
            disk.write_event(units)
        with pytest.raises(ValueError):
            next(disk.read(units=units))
        with pytest.raises(ValueError):
            next(disk.write(units=units))
    assert disk.stats.transactions == 0
    assert disk.queue_length == 0


def test_utilization_clamps_to_unit_interval():
    env = Environment()
    disk = DiskDevice(env, read_s=1.0, write_s=1.0)

    def body():
        yield from disk.read(units=4)

    env.run(until=env.process(body()))
    assert disk.stats.busy_s == pytest.approx(4.0)
    # elapsed shorter than busy time (overlapping accounting) clamps to 1.0
    assert disk.utilization(2.0) == 1.0
    assert disk.utilization(8.0) == pytest.approx(0.5)
    # degenerate windows report zero rather than dividing by <= 0
    assert disk.utilization(0.0) == 0.0
    assert disk.utilization(-1.0) == 0.0


def test_flattened_fast_path_matches_reference_timing():
    """The single-timeout uncontended path and the reference sub-process
    produce identical completion times and stats under contention."""

    def run(fastlane):
        env = Environment(fastlane=fastlane)
        disk = DiskDevice(env, read_s=0.010, write_s=0.004)
        done = []

        def reader(name):
            yield from disk.read()
            done.append((name, round(env.now, 6)))

        def writer(name):
            yield from disk.write(units=2)
            done.append((name, round(env.now, 6)))

        env.process(reader("r1"))
        env.process(writer("w1"))
        env.process(reader("r2"))
        env.run()
        return done, disk.stats.reads, disk.stats.writes, \
            round(disk.stats.busy_s, 6)

    assert run(False) == run(True)
