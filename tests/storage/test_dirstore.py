"""Tests for the B-tree directory-object store and its snapshots."""

import pytest

from repro.namespace import Namespace, build_tree
from repro.namespace import path as p
from repro.storage.dirstore import DirectoryObjectStore, EmbeddedInode


@pytest.fixture
def loaded():
    ns = Namespace()
    build_tree(ns, {
        "proj": {"a.txt": 10, "b.txt": 20, "src": {"m.c": 5}},
        "home": {"x": 1},
    })
    store = DirectoryObjectStore(min_degree=3)
    store.load_from_namespace(ns)
    return ns, store


def test_min_degree_validation():
    with pytest.raises(ValueError):
        DirectoryObjectStore(min_degree=1)


def test_load_mirrors_namespace(loaded):
    ns, store = loaded
    store.verify_against(ns)
    proj = ns.resolve(p.parse("/proj")).ino
    assert store.entry_count(proj) == 3
    names = [name for name, _e in store.readdir(proj)]
    assert names == sorted(names) == ["a.txt", "b.txt", "src"]


def test_lookup_returns_embedded_inode(loaded):
    ns, store = loaded
    proj = ns.resolve(p.parse("/proj")).ino
    emb = store.lookup(proj, "a.txt")
    assert isinstance(emb, EmbeddedInode)
    assert emb.size == 10
    assert store.lookup(proj, "nope") is None
    assert store.lookup(99999, "x") is None


def test_apply_create_and_unlink(loaded):
    ns, store = loaded
    proj_path = p.parse("/proj")
    proj = ns.resolve(proj_path).ino
    inode = ns.create_file(p.parse("/proj/new.txt"), size=7)
    written = store.apply_create(proj, "new.txt", inode)
    assert written >= 1
    store.verify_against(ns)

    ns.unlink(p.parse("/proj/new.txt"))
    store.apply_unlink(proj, "new.txt")
    store.verify_against(ns)


def test_apply_update_rewrites_embed(loaded):
    ns, store = loaded
    proj = ns.resolve(p.parse("/proj")).ino
    inode = ns.setattr(p.parse("/proj/a.txt"), size=999)
    store.apply_update(proj, "a.txt", inode)
    assert store.lookup(proj, "a.txt").size == 999
    store.verify_against(ns)


def test_apply_update_missing_raises(loaded):
    ns, store = loaded
    proj = ns.resolve(p.parse("/proj")).ino
    with pytest.raises(KeyError):
        store.apply_update(proj, "ghost", ns.resolve(p.parse("/proj/a.txt")))


def test_apply_rename_across_objects(loaded):
    ns, store = loaded
    proj = ns.resolve(p.parse("/proj")).ino
    home = ns.resolve(p.parse("/home")).ino
    ns.rename(p.parse("/proj/a.txt"), p.parse("/home/a.txt"))
    store.apply_rename(proj, "a.txt", home, "a.txt")
    store.verify_against(ns)


def test_apply_rename_missing_raises(loaded):
    ns, store = loaded
    proj = ns.resolve(p.parse("/proj")).ino
    with pytest.raises(KeyError):
        store.apply_rename(proj, "ghost", proj, "ghost2")


def test_incremental_cost_tracked(loaded):
    ns, store = loaded
    before = store.stats.btree_nodes_written
    proj = ns.resolve(p.parse("/proj")).ino
    inode = ns.create_file(p.parse("/proj/c.txt"))
    store.apply_create(proj, "c.txt", inode)
    assert store.stats.btree_nodes_written > before
    assert store.stats.updates == 1


def test_snapshot_preserves_old_contents(loaded):
    ns, store = loaded
    proj = ns.resolve(p.parse("/proj")).ino
    store.snapshot_directory(proj, "before")
    inode = ns.create_file(p.parse("/proj/later.txt"))
    store.apply_create(proj, "later.txt", inode)
    ns.unlink(p.parse("/proj/b.txt"))
    store.apply_unlink(proj, "b.txt")

    live = {name for name, _e in store.readdir(proj)}
    snap = {name for name, _e in store.read_snapshot(proj, "before")}
    assert "later.txt" in live and "b.txt" not in live
    assert "later.txt" not in snap and "b.txt" in snap
    assert list(store.snapshot_names(proj)) == ["before"]


def test_snapshot_all(loaded):
    ns, store = loaded
    captured = store.snapshot_all("epoch1")
    assert captured == ns.count_dirs()
    proj = ns.resolve(p.parse("/proj")).ino
    assert {n for n, _ in store.read_snapshot(proj, "epoch1")} == \
        {"a.txt", "b.txt", "src"}


def test_read_missing_snapshot_raises(loaded):
    ns, store = loaded
    proj = ns.resolve(p.parse("/proj")).ino
    with pytest.raises(KeyError):
        list(store.read_snapshot(proj, "never"))


def test_drop_snapshot(loaded):
    ns, store = loaded
    proj = ns.resolve(p.parse("/proj")).ino
    store.snapshot_directory(proj, "s")
    store.drop_snapshot(proj, "s")
    with pytest.raises(KeyError):
        list(store.read_snapshot(proj, "s"))
    store.drop_snapshot(proj, "s")  # idempotent


def test_big_directory_object_depth():
    ns = Namespace()
    build_tree(ns, {"big": {f"f{i:04d}": 1 for i in range(500)}})
    store = DirectoryObjectStore(min_degree=3)
    store.load_from_namespace(ns)
    big = ns.resolve(p.parse("/big")).ino
    assert store.entry_count(big) == 500
    assert store.object_depth(big) >= 3
    store.verify_against(ns)
