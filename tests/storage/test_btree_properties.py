"""Property-based tests: the COW B-tree against a dict model."""

import hypothesis.strategies as st
from hypothesis import settings
from hypothesis.stateful import (RuleBasedStateMachine, initialize,
                                 invariant, rule)

from repro.storage.btree import DirectoryBTree

KEYS = st.text(alphabet="abcdef", min_size=1, max_size=4)


class BTreeMachine(RuleBasedStateMachine):
    @initialize(t=st.integers(2, 5))
    def setup(self, t):
        self.tree = DirectoryBTree(min_degree=t)
        self.model = {}
        self.snapshots = []  # (frozen tree, frozen model)

    @rule(key=KEYS, value=st.integers())
    def insert(self, key, value):
        self.tree.insert(key, value)
        self.model[key] = value

    @rule(key=KEYS)
    def delete_if_present(self, key):
        if key in self.model:
            self.tree.delete(key)
            del self.model[key]

    @rule()
    def snapshot(self):
        if len(self.snapshots) < 4:
            self.snapshots.append((self.tree.snapshot(), dict(self.model)))

    @rule(key=KEYS)
    def get_matches_model(self, key):
        assert self.tree.get(key, default=None) == self.model.get(key)

    @invariant()
    def consistent(self):
        if not hasattr(self, "tree"):
            return
        self.tree.verify_invariants()
        assert len(self.tree) == len(self.model)
        assert dict(self.tree.items()) == self.model
        # snapshots are immune to later mutation
        for snap, frozen_model in self.snapshots:
            assert dict(snap.items()) == frozen_model


BTreeMachine.TestCase.settings = settings(
    max_examples=50, stateful_step_count=40, deadline=None)
TestBTreeProperties = BTreeMachine.TestCase
