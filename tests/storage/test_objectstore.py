"""Unit tests for the shared OSD pool and layout policies."""

import pytest

from repro.namespace import Namespace, build_tree
from repro.namespace import path as p
from repro.sim import Environment
from repro.storage import (DirectoryGrainLayout, InodeGrainLayout,
                           ObjectStore)


def make_store(n_osds=4, read_s=0.004, write_s=0.002):
    env = Environment()
    return env, ObjectStore(env, n_osds=n_osds, read_s=read_s, write_s=write_s)


def make_ns():
    ns = Namespace()
    build_tree(ns, {"d": {"a.txt": 1, "b.txt": 2, "sub": {"c.txt": 3}}})
    return ns


def run(env, gen):
    result = {}

    def body():
        result["value"] = yield from gen

    env.run(until=env.process(body()))
    return result["value"]


def test_needs_at_least_one_osd():
    env = Environment()
    with pytest.raises(ValueError):
        ObjectStore(env, n_osds=0, read_s=0.001, write_s=0.001)


def test_device_for_is_stable_and_in_range():
    env, store = make_store(n_osds=4)
    for ino in range(100):
        dev = store.device_for(ino)
        assert dev is store.device_for(ino)
        assert dev in store.osds


def test_device_for_spreads_objects():
    env, store = make_store(n_osds=4)
    used = {id(store.device_for(ino)) for ino in range(64)}
    assert len(used) == 4


def test_dir_read_costs_one_transaction():
    env, store = make_store()
    run(env, store.read_dir_object(5))
    assert store.stats.dir_reads == 1
    assert env.now == pytest.approx(0.004)


def test_inode_read_write_counters():
    env, store = make_store()
    run(env, store.read_inode(5))
    run(env, store.write_inode(5))
    run(env, store.write_dir_object(6))
    assert store.total_reads == 1
    assert store.total_writes == 2


def test_directory_grain_fetch_prefetches_siblings():
    env, store = make_store()
    ns = make_ns()
    layout = DirectoryGrainLayout()
    target = ns.resolve(p.parse("/d/a.txt"))
    siblings = run(env, layout.fetch(store, ns, target))
    expected = {ns.resolve(p.parse("/d/b.txt")).ino,
                ns.resolve(p.parse("/d/sub")).ino}
    assert set(siblings) == expected
    assert store.stats.dir_reads == 1
    assert store.stats.inode_reads == 0


def test_directory_grain_fetch_of_directory_reads_own_object():
    env, store = make_store()
    ns = make_ns()
    layout = DirectoryGrainLayout()
    d = ns.resolve(p.parse("/d"))
    siblings = run(env, layout.fetch(store, ns, d))
    # fetching the directory object yields its children for prefetch
    assert set(siblings) == {ns.resolve(p.parse("/d/a.txt")).ino,
                             ns.resolve(p.parse("/d/b.txt")).ino,
                             ns.resolve(p.parse("/d/sub")).ino}


def test_inode_grain_fetch_no_prefetch():
    env, store = make_store()
    ns = make_ns()
    layout = InodeGrainLayout()
    target = ns.resolve(p.parse("/d/a.txt"))
    siblings = run(env, layout.fetch(store, ns, target))
    assert siblings == []
    assert store.stats.inode_reads == 1
    assert store.stats.dir_reads == 0


def test_layout_writeback_counters():
    env, store = make_store()
    ns = make_ns()
    target = ns.resolve(p.parse("/d/a.txt"))
    run(env, DirectoryGrainLayout().writeback(store, ns, target))
    run(env, InodeGrainLayout().writeback(store, ns, target))
    assert store.stats.dir_writes == 1
    assert store.stats.inode_writes == 1


def test_prefetch_flags():
    assert DirectoryGrainLayout().prefetches_directory
    assert not InodeGrainLayout().prefetches_directory
