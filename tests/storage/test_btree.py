"""Unit tests for the copy-on-write directory B-tree (§4.6)."""

import pytest

from repro.storage.btree import BTreeNode, DirectoryBTree


def filled(n, t=3):
    tree = DirectoryBTree(min_degree=t)
    for i in range(n):
        tree.insert(f"k{i:04d}", i)
    return tree


def test_min_degree_validation():
    with pytest.raises(ValueError):
        DirectoryBTree(min_degree=1)


def test_empty_tree():
    tree = DirectoryBTree()
    assert len(tree) == 0
    assert "x" not in tree
    assert tree.get("x") is None
    assert tree.get("x", default=7) == 7
    assert list(tree.items()) == []
    assert tree.depth() == 1


def test_insert_and_get():
    tree = DirectoryBTree(min_degree=3)
    tree.insert("b", 2)
    tree.insert("a", 1)
    tree.insert("c", 3)
    assert tree.get("a") == 1 and tree.get("b") == 2 and tree.get("c") == 3
    assert len(tree) == 3
    assert list(tree.keys()) == ["a", "b", "c"]


def test_insert_replace_keeps_count():
    tree = filled(10)
    tree.insert("k0003", 999)
    assert len(tree) == 10
    assert tree.get("k0003") == 999


def test_many_inserts_sorted_iteration():
    tree = filled(200, t=3)
    assert len(tree) == 200
    keys = list(tree.keys())
    assert keys == sorted(keys)
    tree.verify_invariants()


def test_tree_grows_in_depth():
    tree = DirectoryBTree(min_degree=2)
    assert tree.depth() == 1
    for i in range(30):
        tree.insert(f"k{i:02d}", i)
    assert tree.depth() > 1
    tree.verify_invariants()


def test_insert_cost_is_logarithmic_not_linear():
    tree = filled(500, t=8)
    cost = tree.insert("zzzz", 1)
    # path copying: roughly depth nodes, far fewer than total nodes
    assert cost <= 3 * tree.depth() + 2


def test_delete_leaf_and_internal():
    tree = filled(100, t=3)
    cost = tree.delete("k0050")
    assert cost > 0
    assert "k0050" not in tree
    assert len(tree) == 99
    tree.verify_invariants()


def test_delete_everything():
    tree = filled(60, t=2)
    for i in range(60):
        tree.delete(f"k{i:04d}")
        tree.verify_invariants()
    assert len(tree) == 0


def test_delete_missing_raises():
    tree = filled(5)
    with pytest.raises(KeyError):
        tree.delete("nope")


def test_delete_in_random_order():
    import random
    rng = random.Random(3)
    tree = filled(120, t=3)
    names = [f"k{i:04d}" for i in range(120)]
    rng.shuffle(names)
    for name in names:
        tree.delete(name)
        tree.verify_invariants()
    assert len(tree) == 0


def test_snapshot_is_frozen_copy():
    tree = filled(50)
    snap = tree.snapshot()
    tree.insert("new", 1)
    tree.delete("k0000")
    assert "new" in tree and "k0000" not in tree
    assert "new" not in snap and "k0000" in snap
    assert len(snap) == 50
    snap.verify_invariants()
    tree.verify_invariants()


def test_snapshot_shares_nodes():
    tree = filled(50)
    snap = tree.snapshot()
    assert snap.root is tree.root  # O(1): no copying happened


def test_copy_on_write_never_mutates_old_nodes():
    tree = DirectoryBTree(min_degree=2)
    roots = []
    for i in range(40):
        tree.insert(f"k{i:02d}", i)
        roots.append((tree.root, i + 1))
    # every historical root still iterates its own consistent prefix
    for root, count in roots:
        old = DirectoryBTree(min_degree=2, root=root)
        assert len(old) == count
        old.verify_invariants()


def test_node_arity_validation():
    with pytest.raises(ValueError):
        BTreeNode(keys=("a",), values=())
    with pytest.raises(ValueError):
        BTreeNode(keys=("a",), values=(1,),
                  children=(BTreeNode(),))  # needs 2 children
