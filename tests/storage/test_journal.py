"""Unit tests for the bounded update journal."""

import pytest

from repro.sim import Environment
from repro.storage import DiskDevice, Journal


def make(capacity=3, write_s=0.001):
    env = Environment()
    dev = DiskDevice(env, read_s=0.004, write_s=write_s, name="journal")
    return env, Journal(env, dev, capacity=capacity)


def run_append(env, journal, ino):
    """Drive one append to completion and return the retired inos."""
    result = {}

    def body():
        retired = yield from journal.append(ino)
        result["retired"] = retired

    env.run(until=env.process(body()))
    return result["retired"]


def test_capacity_validation():
    env = Environment()
    dev = DiskDevice(env, read_s=0.0, write_s=0.0)
    with pytest.raises(ValueError):
        Journal(env, dev, capacity=0)


def test_append_costs_one_write():
    env, journal = make(write_s=0.002)
    run_append(env, journal, 10)
    assert journal.device.stats.writes == 1
    assert env.now == pytest.approx(0.002)


def test_append_tracks_membership():
    env, journal = make()
    run_append(env, journal, 10)
    assert 10 in journal
    assert len(journal) == 1


def test_overflow_retires_oldest():
    env, journal = make(capacity=2)
    assert run_append(env, journal, 1) == []
    assert run_append(env, journal, 2) == []
    retired = run_append(env, journal, 3)
    assert retired == [1]
    assert 1 not in journal and 2 in journal and 3 in journal


def test_remodification_absorbs_instead_of_retiring():
    env, journal = make(capacity=2)
    run_append(env, journal, 1)
    run_append(env, journal, 2)
    # touch 1 again: moves to the tail, no retirement
    assert run_append(env, journal, 1) == []
    assert journal.stats.overwrites == 1
    # now 2 is oldest
    assert run_append(env, journal, 3) == [2]


def test_warm_inos_oldest_first():
    env, journal = make(capacity=5)
    for ino in (4, 2, 9):
        run_append(env, journal, ino)
    assert journal.warm_inos() == [4, 2, 9]


def test_clear():
    env, journal = make()
    run_append(env, journal, 1)
    journal.clear()
    assert len(journal) == 0
    assert journal.warm_inos() == []


def test_stats_counts():
    env, journal = make(capacity=1)
    run_append(env, journal, 1)
    run_append(env, journal, 2)
    run_append(env, journal, 2)
    assert journal.stats.appends == 3
    assert journal.stats.retirements == 1
    assert journal.stats.overwrites == 1
