"""Tests for steady-state and timeline runners."""

import pytest

from repro.experiments import (ExperimentConfig, run_steady_state,
                               run_timeline)


def small(**kw):
    base = dict(n_mds=3, scale=0.2, warmup_s=0.3, duration_s=1.0,
                workload="general")
    base.update(kw)
    return ExperimentConfig(**base)


def test_steady_state_measures():
    result = run_steady_state(small())
    assert result.mean_node_throughput > 0
    assert len(result.node_throughputs) == 3
    assert 0.0 < result.hit_rate <= 1.0
    assert 0.0 <= result.prefix_fraction < 1.0
    assert result.total_ops > 0
    assert result.client_mean_latency_s > 0
    assert result.total_metadata > 0


def test_steady_state_deterministic():
    a = run_steady_state(small(seed=9))
    b = run_steady_state(small(seed=9))
    assert a.total_ops == b.total_ops
    assert a.mean_node_throughput == pytest.approx(b.mean_node_throughput)
    assert a.hit_rate == pytest.approx(b.hit_rate)


def test_steady_state_seed_changes_results():
    a = run_steady_state(small(seed=1))
    b = run_steady_state(small(seed=2))
    assert a.total_ops != b.total_ops


def test_timeline_series_cover_run():
    cfg = small()
    result = run_timeline(cfg, sample_interval_s=0.2)
    expected_points = round(cfg.run_until_s / 0.2)
    assert len(result.throughput_series) == expected_points
    assert len(result.forward_series) == expected_points
    assert len(result.rate_series) == expected_points
    for t, mn, avg, mx in result.throughput_series:
        assert mn <= avg <= mx


def test_timeline_rates_match_totals():
    cfg = small()
    result = run_timeline(cfg, sample_interval_s=0.2)
    total_replies = sum(r * 0.2 for (_t, r, _f) in result.rate_series)
    assert total_replies > 0


def test_timeline_rejects_misaligned_interval():
    cfg = small()  # stats bucket 0.1s
    with pytest.raises(ValueError, match="multiple"):
        run_timeline(cfg, sample_interval_s=0.25)
