"""Consolidated environment-gate parsing and precedence."""

import pytest

from repro._fastpath import FASTPATH_ENV
from repro.experiments import ExperimentConfig
from repro.experiments.config import (PARALLEL_ENV, SCALE_ENV, EnvGates,
                                      env_gates, parse_parallel_env)
from repro.sim.backend import KERNEL_ENV, parse_kernel_env, resolve_kernel


class TestParseParallelEnv:
    def test_unset_defers_to_auto(self):
        assert parse_parallel_env(None) == (None, None)

    @pytest.mark.parametrize("token", ["0", "off", "serial", "false", "no",
                                       " OFF ", "Serial"])
    def test_serial_tokens(self, token):
        assert parse_parallel_env(token) == (False, None)

    @pytest.mark.parametrize("token", ["", "1", "on", "auto", "true", "yes"])
    def test_auto_tokens(self, token):
        assert parse_parallel_env(token) == (None, None)

    def test_worker_count_pins_parallel(self):
        assert parse_parallel_env("4") == (True, 4)

    def test_degenerate_worker_count_means_serial(self):
        assert parse_parallel_env("-3") == (False, None)

    def test_garbage_raises(self):
        with pytest.raises(ValueError,
                           match="neither a mode token nor a worker count"):
            parse_parallel_env("bogus")


class TestParseKernelEnv:
    @pytest.mark.parametrize("raw", [None, "", "  "])
    def test_unset_or_blank_defers_to_default(self, raw):
        assert parse_kernel_env(raw) is None

    @pytest.mark.parametrize("token,expected", [
        ("reference", "reference"), ("REFERENCE", "reference"),
        ("compiled", "compiled"), (" Compiled ", "compiled"),
        ("auto", "auto"), ("AUTO", "auto"),
    ])
    def test_mode_tokens(self, token, expected):
        assert parse_kernel_env(token) == expected

    @pytest.mark.parametrize("token", ["bogus", "1", "fast", "c"])
    def test_garbage_raises(self, token):
        with pytest.raises(ValueError, match="REPRO_KERNEL"):
            parse_kernel_env(token)

    def test_resolve_defaults_to_reference(self, monkeypatch):
        monkeypatch.delenv(KERNEL_ENV, raising=False)
        assert resolve_kernel() == "reference"
        assert resolve_kernel("reference") == "reference"


class TestEnvGatesPrecedence:
    def test_defaults(self, monkeypatch):
        monkeypatch.delenv(PARALLEL_ENV, raising=False)
        monkeypatch.delenv(SCALE_ENV, raising=False)
        monkeypatch.delenv(FASTPATH_ENV, raising=False)
        monkeypatch.delenv(KERNEL_ENV, raising=False)
        gates = env_gates()
        assert gates == EnvGates(fastpath=True, parallel=None,
                                 parallel_workers=None, scale=1.0)
        assert gates.kernel is None

    def test_env_vars_override_defaults(self, monkeypatch):
        monkeypatch.setenv(PARALLEL_ENV, "6")
        monkeypatch.setenv(SCALE_ENV, "0.4")
        monkeypatch.setenv(FASTPATH_ENV, "0")
        gates = env_gates()
        assert gates.fastpath is False
        assert gates.parallel is True
        assert gates.parallel_workers == 6
        assert gates.scale == pytest.approx(0.4)

    def test_config_field_beats_env_var(self, monkeypatch):
        monkeypatch.setenv(PARALLEL_ENV, "6")
        monkeypatch.setenv(SCALE_ENV, "0.4")
        cfg = ExperimentConfig(parallel=False, scale=0.7)
        gates = env_gates(cfg)
        assert gates.parallel is False        # config wins over REPRO_PARALLEL
        assert gates.scale == pytest.approx(0.7)  # config wins over REPRO_SCALE

    def test_default_scale_used_without_config(self, monkeypatch):
        monkeypatch.delenv(SCALE_ENV, raising=False)
        assert env_gates(default_scale=0.3).scale == pytest.approx(0.3)

    def test_kernel_env_var_flows_through(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV, "compiled")
        assert env_gates().kernel == "compiled"

    def test_kernel_config_field_beats_env_var(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV, "compiled")
        cfg = ExperimentConfig(kernel="reference")
        assert env_gates(cfg).kernel == "reference"

    def test_kernel_env_var_garbage_raises(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV, "turbo")
        with pytest.raises(ValueError, match="REPRO_KERNEL"):
            env_gates()


class TestReExports:
    def test_api_re_exports_gates(self):
        from repro import api
        assert api.env_gates is env_gates
        assert api.EnvGates is EnvGates
        assert api.parse_parallel_env is parse_parallel_env

    def test_executor_still_exposes_parallel_env(self):
        from repro.parallel.executor import PARALLEL_ENV as legacy
        assert legacy == PARALLEL_ENV
