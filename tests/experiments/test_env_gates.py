"""Consolidated environment-gate parsing and precedence."""

import pytest

from repro._fastpath import FASTPATH_ENV
from repro.experiments import ExperimentConfig
from repro.experiments.config import (PARALLEL_ENV, SCALE_ENV, EnvGates,
                                      env_gates, parse_parallel_env)


class TestParseParallelEnv:
    def test_unset_defers_to_auto(self):
        assert parse_parallel_env(None) == (None, None)

    @pytest.mark.parametrize("token", ["0", "off", "serial", "false", "no",
                                       " OFF ", "Serial"])
    def test_serial_tokens(self, token):
        assert parse_parallel_env(token) == (False, None)

    @pytest.mark.parametrize("token", ["", "1", "on", "auto", "true", "yes"])
    def test_auto_tokens(self, token):
        assert parse_parallel_env(token) == (None, None)

    def test_worker_count_pins_parallel(self):
        assert parse_parallel_env("4") == (True, 4)

    def test_degenerate_worker_count_means_serial(self):
        assert parse_parallel_env("-3") == (False, None)

    def test_garbage_raises(self):
        with pytest.raises(ValueError,
                           match="neither a mode token nor a worker count"):
            parse_parallel_env("bogus")


class TestEnvGatesPrecedence:
    def test_defaults(self, monkeypatch):
        monkeypatch.delenv(PARALLEL_ENV, raising=False)
        monkeypatch.delenv(SCALE_ENV, raising=False)
        monkeypatch.delenv(FASTPATH_ENV, raising=False)
        gates = env_gates()
        assert gates == EnvGates(fastpath=True, parallel=None,
                                 parallel_workers=None, scale=1.0)

    def test_env_vars_override_defaults(self, monkeypatch):
        monkeypatch.setenv(PARALLEL_ENV, "6")
        monkeypatch.setenv(SCALE_ENV, "0.4")
        monkeypatch.setenv(FASTPATH_ENV, "0")
        gates = env_gates()
        assert gates.fastpath is False
        assert gates.parallel is True
        assert gates.parallel_workers == 6
        assert gates.scale == pytest.approx(0.4)

    def test_config_field_beats_env_var(self, monkeypatch):
        monkeypatch.setenv(PARALLEL_ENV, "6")
        monkeypatch.setenv(SCALE_ENV, "0.4")
        cfg = ExperimentConfig(parallel=False, scale=0.7)
        gates = env_gates(cfg)
        assert gates.parallel is False        # config wins over REPRO_PARALLEL
        assert gates.scale == pytest.approx(0.7)  # config wins over REPRO_SCALE

    def test_default_scale_used_without_config(self, monkeypatch):
        monkeypatch.delenv(SCALE_ENV, raising=False)
        assert env_gates(default_scale=0.3).scale == pytest.approx(0.3)


class TestReExports:
    def test_api_re_exports_gates(self):
        from repro import api
        assert api.env_gates is env_gates
        assert api.EnvGates is EnvGates
        assert api.parse_parallel_env is parse_parallel_env

    def test_executor_still_exposes_parallel_env(self):
        from repro.parallel.executor import PARALLEL_ENV as legacy
        assert legacy == PARALLEL_ENV
